"""Figure 2 — two concurrent overlapping column-wise writes: MPI atomic mode
(single owner of the overlapped columns) vs the non-atomic/interleaved
outcome when only POSIX per-call atomicity is available."""

from __future__ import annotations

from repro.bench.results import format_table
from repro.core.executor import AtomicWriteExecutor
from repro.core.regions import build_region_sets
from repro.core.strategies import RankOrderingStrategy
from repro.fs import FSClient, ParallelFileSystem, xfs_config
from repro.patterns.partition import column_wise_views
from repro.patterns.workloads import rank_pattern_bytes
from repro.verify.atomicity import check_mpi_atomicity

from conftest import report

M, N, P, R = 64, 1024, 2, 8


def _interleaved_posix_write():
    """Emulate the non-atomic service order: the two processes' per-row
    POSIX writes are interleaved row by row."""
    fs = ParallelFileSystem(xfs_config())
    fobj = fs.create("fig2_nonatomic.dat")
    regions = build_region_sets(column_wise_views(M, N, P, R))
    handles = [FSClient(fs, client_id=r).open("fig2_nonatomic.dat") for r in range(P)]
    data = [rank_pattern_bytes(r, regions[r].total_bytes) for r in range(P)]
    maps = [regions[r].buffer_map() for r in range(P)]
    for row in range(M):
        for rank in ((0, 1) if row % 2 == 0 else (1, 0)):
            buf_off, file_off, length = maps[rank][row]
            handles[rank].write(file_off, data[rank][buf_off:buf_off + length], direct=True)
    return check_mpi_atomicity(fobj.store, regions)


def _atomic_mode_write():
    fs = ParallelFileSystem(xfs_config())
    views = column_wise_views(M, N, P, R)
    executor = AtomicWriteExecutor(fs, RankOrderingStrategy(), "fig2_atomic.dat")
    result = executor.run(P, lambda rank, _P: views[rank], rank_pattern_bytes)
    return check_mpi_atomicity(result.file.store, result.regions)


def test_figure2_atomic_vs_nonatomic(benchmark):
    nonatomic = _interleaved_posix_write()
    atomic = benchmark.pedantic(_atomic_mode_write, rounds=1, iterations=1)
    assert not nonatomic.ok, "uncoordinated POSIX writes should interleave"
    assert atomic.ok, "MPI atomic mode must yield a single owner per overlap"
    rows = [
        {
            "mode": "MPI non-atomic (uncoordinated POSIX calls)",
            "overlapped bytes": str(nonatomic.overlapped_bytes),
            "MPI-atomic outcome": "no (interleaved)",
            "violations": str(len(nonatomic.violations)),
        },
        {
            "mode": "MPI atomic (rank-ordering strategy)",
            "overlapped bytes": str(atomic.overlapped_bytes),
            "MPI-atomic outcome": "yes",
            "violations": "0",
        },
    ]
    report(
        f"Figure 2: two overlapping column-wise writes ({M}x{N}, R={R})",
        format_table(rows),
    )
