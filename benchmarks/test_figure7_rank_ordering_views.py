"""Figure 7 — process file views after rank-ordering trims: overlaps removed,
lower ranks surrender their right-hand ghost columns."""

from __future__ import annotations

from repro.bench.figures import figure7_rank_ordering_views
from repro.bench.results import format_table
from repro.core.rank_ordering import resolve_by_rank, verify_coverage_preserved, verify_disjoint
from repro.core.regions import build_region_sets
from repro.patterns.partition import column_wise_views

from conftest import report


def test_figure7_rank_ordering_file_views(benchmark):
    M, N, P, R = 64, 4096, 8, 4
    rows = benchmark(figure7_rank_ordering_views, M, N, P, R)
    regions = build_region_sets(column_wise_views(M, N, P, R))
    resolution = resolve_by_rank(regions)
    assert verify_disjoint(resolution)
    assert verify_coverage_preserved(regions, resolution)
    # The highest rank keeps its full view; every other rank surrenders R
    # columns (M*R bytes); the total written equals the file size exactly.
    assert rows[-1]["bytes surrendered"] == "0"
    for row in rows[:-1]:
        assert int(row["bytes surrendered"]) == M * R
    assert resolution.total_remaining == M * N
    report(
        f"Figure 7: rank-ordering trimmed views ({M}x{N}, P={P}, R={R})",
        format_table(rows),
    )
