"""Section 3.4 — scalability analysis: the closed-form model's predictions
(locked bytes, transferred volume, parallelism) versus the measured
virtual-time behaviour, plus a large-scale rank sweep.

The event-driven SPMD kernel makes ranks cheap (one cooperative task each,
no OS thread contention), so the sweep measures every registered strategy
at P in {64, 256, 1024} — the regime the paper's Section 3.4 analysis
extrapolates to — and records the *wall-clock* cost of each measurement
alongside the virtual-time bandwidth, so scheduler performance regressions
are visible in ``benchmarks/results/latest.txt``.
"""

from __future__ import annotations

import time

from repro.bench.harness import run_column_wise_experiment
from repro.bench.jsonlog import entries_from_records
from repro.bench.perfgate import check_wall
from repro.bench.results import format_table
from repro.core.analysis import ColumnWiseCase, analyze_regions, estimate_column_wise
from repro.core.registry import default_registry
from repro.core.regions import build_region_sets
from repro.patterns.partition import column_wise_views

from conftest import report, report_json

M, N, P, R = 64, 32768, 8, 4

#: Large-scale sweep shape: fewer rows (segments per rank) but wide rows, so
#: thousand-rank points stay in seconds of wall clock.
SWEEP_M, SWEEP_N, SWEEP_R = 16, 16384, 4
SWEEP_PROCESS_COUNTS = (64, 256, 1024)
#: Wall-clock ceiling per measured point — generous (the points take a few
#: seconds), a failure means the scheduler's scaling regressed massively.
SWEEP_WALL_BUDGET_SECONDS = 90.0


def test_section34_analysis_vs_measurement(benchmark):
    case = ColumnWiseCase(M=M, N=N, P=P, R=R)
    estimates = estimate_column_wise(case)
    regions = build_region_sets(column_wise_views(M, N, P, R))
    measured_views = analyze_regions(regions)

    def measure_all():
        return {
            s: run_column_wise_experiment("IBM SP", M, N, P, s, array_label="sec3.4")
            for s in ("locking", "graph-coloring", "rank-ordering")
        }

    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    # The analysis and the exact view computation agree on the volumes.
    assert measured_views["overlapped_bytes"] == case.overlapped_bytes
    assert measured_views["rank_ordering_bytes"] == case.file_bytes
    # Locking locks nearly the whole file per process.
    assert case.locked_bytes_per_process > 0.95 * case.file_bytes
    # The model's ordering is reproduced by the measurement.
    assert (
        measured["locking"].bandwidth_mb_per_s
        < measured["graph-coloring"].bandwidth_mb_per_s
    )
    assert (
        measured["locking"].bandwidth_mb_per_s
        < measured["rank-ordering"].bandwidth_mb_per_s
    )

    rows = []
    for name in ("locking", "graph-coloring", "rank-ordering"):
        est = estimates[name]
        rec = measured[name]
        rows.append(
            {
                "strategy": name,
                "predicted bytes moved": str(est.bytes_transferred),
                "measured bytes moved": str(rec.bytes_written),
                "predicted parallel steps": str(est.parallel_steps),
                "measured phases": str(rec.phases),
                "locked bytes/process": str(est.locked_bytes),
                "measured BW (MB/s)": f"{rec.bandwidth_mb_per_s:.1f}",
            }
        )
    report(
        f"Section 3.4: analysis vs measurement ({M}x{N}, P={P}, R={R}, GPFS)",
        format_table(rows),
    )


def test_section34_rank_sweep(benchmark):
    """Sweep every registered strategy at {64, 256, 1024} ranks.

    Verifies atomicity at every point (for atomicity-providing strategies),
    checks the virtual-time ordering the paper's analysis predicts at scale
    (locking degrades fastest on the column-wise pattern), and enforces a
    wall-clock ceiling per point so the event kernel's scalability cannot
    silently regress.
    """
    strategies = sorted(default_registry.names())
    rows = []
    measured = {}

    def sweep():
        for nprocs in SWEEP_PROCESS_COUNTS:
            for name in strategies:
                t0 = time.perf_counter()
                rec = run_column_wise_experiment(
                    "IBM SP",
                    SWEEP_M,
                    SWEEP_N,
                    nprocs,
                    name,
                    overlap_columns=SWEEP_R,
                    array_label=f"sweep-{nprocs}",
                    verify=True,
                )
                wall = time.perf_counter() - t0
                measured[(name, nprocs)] = (rec, wall)
                rows.append(
                    {
                        "P": str(nprocs),
                        "strategy": name,
                        "virtual makespan (s)": f"{rec.makespan_seconds:.4f}",
                        "BW (MB/s)": f"{rec.bandwidth_mb_per_s:.1f}",
                        "atomic": "yes" if rec.atomic_ok else "NO",
                        "lock waits": str(rec.lock_waits),
                        "wall clock (s)": f"{wall:.2f}",
                    }
                )
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for (name, nprocs), (rec, wall) in measured.items():
        if default_registry.get(name).provides_atomicity:
            assert rec.atomic_ok, f"{name} violated atomicity at P={nprocs}"
        assert wall < SWEEP_WALL_BUDGET_SECONDS, (
            f"{name} at P={nprocs} took {wall:.1f}s wall clock "
            f"(budget {SWEEP_WALL_BUDGET_SECONDS:.0f}s): scheduler scaling regressed"
        )

    # The paper's Section 3.4 prediction, now measurable at scale: whole-extent
    # locking serialises the column-wise pattern, so its bandwidth falls ever
    # further behind the handshaking strategies as P grows.
    for nprocs in SWEEP_PROCESS_COUNTS:
        locking = measured[("locking", nprocs)][0]
        for name in ("rank-ordering", "two-phase", "graph-coloring"):
            assert (
                locking.bandwidth_mb_per_s < measured[(name, nprocs)][0].bandwidth_mb_per_s
            ), f"locking should trail {name} at P={nprocs}"

    report(
        f"Section 3.4: rank sweep ({SWEEP_M}x{SWEEP_N}, R={SWEEP_R}, GPFS, "
        f"P in {list(SWEEP_PROCESS_COUNTS)})",
        format_table(rows),
    )
    report_json("section34-rank-sweep", [rec for rec, _ in measured.values()])


#: Extended sweep shape (the roadmap's order-of-magnitude push): two rows of
#: 2P-wide columns with ghost width 2, run through the bulk-synchronous
#: replay executor — no engine tasks, so 64k ranks fit in seconds.
EXTENDED_M, EXTENDED_R = 2, 2
EXTENDED_PROCESS_COUNTS = (4096, 16384, 65536)
#: One global aggregator node per 256 ranks, 8 ranks per node (the
#: ``cb_nodes`` / ``cb_ppn`` hints of the hierarchical strategy).
EXTENDED_RANKS_PER_NODE = 8
EXTENDED_RANKS_PER_AGGREGATOR = 256


def test_section34_extended_sweep(benchmark):
    """Hierarchical two-phase at P in {4096, 16384, 65536}.

    Each point records its host wall clock next to the virtual makespan and
    is gated by the absolute wall-clock-per-simulated-op budget of
    ``repro.bench.perfgate.check_wall`` — the check that keeps the extended
    sweep inside the CI wall budget as the data plane evolves.  Atomicity is
    verified at the smallest point (the verifier is itself O(overlap pairs);
    the byte-identity of the bulk replay to the engine path is pinned by
    ``tests/test_core_bulk.py``).
    """
    measured = []

    def sweep():
        for nprocs in EXTENDED_PROCESS_COUNTS:
            rec = run_column_wise_experiment(
                "IBM SP",
                EXTENDED_M,
                2 * nprocs,
                nprocs,
                "two-phase-hier",
                overlap_columns=EXTENDED_R,
                array_label=f"extended-{nprocs}",
                verify=nprocs <= 4096,
                executor="bulk",
                strategy_options={
                    "num_aggregators": max(1, nprocs // EXTENDED_RANKS_PER_AGGREGATOR),
                    "ranks_per_node": EXTENDED_RANKS_PER_NODE,
                },
            )
            measured.append(rec)
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    entries = entries_from_records(measured)
    assert all(e.get("wall_seconds") is not None for e in entries), (
        "every extended-sweep point must record wall clock"
    )
    problems = check_wall(entries, experiment="section34-extended-sweep")
    assert not problems, "wall budget exceeded:\n" + "\n".join(problems)
    assert all(rec.atomic_ok for rec in measured)
    # Weak scaling (the file grows with P on a fixed server pool), so the
    # virtual makespan grows about linearly with the job; what must NOT grow
    # is the virtual time per rank — a super-linear drift there would mean
    # the hierarchical schedule's coordination overhead scales with P.
    makespans = [rec.makespan_seconds for rec in measured]
    assert makespans == sorted(makespans)
    per_rank = [m / p for m, p in zip(makespans, EXTENDED_PROCESS_COUNTS)]
    assert per_rank[-1] < per_rank[0] * 1.5

    rows = [
        {
            "P": str(rec.nprocs),
            "virtual makespan (s)": f"{rec.makespan_seconds:.4f}",
            "BW (MB/s)": f"{rec.bandwidth_mb_per_s:.1f}",
            "atomic": ("yes" if rec.atomic_ok else "NO") if rec.nprocs <= 4096 else "not verified",
            "wall clock (s)": f"{rec.extra['wall_seconds']:.2f}",
            "wall us/op": f"{rec.extra['wall_seconds'] / (rec.nprocs * rec.phases) * 1e6:.1f}",
        }
        for rec in measured
    ]
    report(
        f"Section 3.4: extended sweep ({EXTENDED_M}x2P, R={EXTENDED_R}, GPFS, "
        f"two-phase-hier via bulk executor, P in {list(EXTENDED_PROCESS_COUNTS)})",
        format_table(rows),
    )
    report_json("section34-extended-sweep", measured)
