"""Section 3.4 — scalability analysis: the closed-form model's predictions
(locked bytes, transferred volume, parallelism) versus the measured
virtual-time behaviour."""

from __future__ import annotations

from repro.bench.harness import run_column_wise_experiment
from repro.bench.results import format_table
from repro.core.analysis import ColumnWiseCase, analyze_regions, estimate_column_wise
from repro.core.regions import build_region_sets
from repro.patterns.partition import column_wise_views

from conftest import report

M, N, P, R = 64, 32768, 8, 4


def test_section34_analysis_vs_measurement(benchmark):
    case = ColumnWiseCase(M=M, N=N, P=P, R=R)
    estimates = estimate_column_wise(case)
    regions = build_region_sets(column_wise_views(M, N, P, R))
    measured_views = analyze_regions(regions)

    def measure_all():
        return {
            s: run_column_wise_experiment("IBM SP", M, N, P, s, array_label="sec3.4")
            for s in ("locking", "graph-coloring", "rank-ordering")
        }

    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    # The analysis and the exact view computation agree on the volumes.
    assert measured_views["overlapped_bytes"] == case.overlapped_bytes
    assert measured_views["rank_ordering_bytes"] == case.file_bytes
    # Locking locks nearly the whole file per process.
    assert case.locked_bytes_per_process > 0.95 * case.file_bytes
    # The model's ordering is reproduced by the measurement.
    assert (
        measured["locking"].bandwidth_mb_per_s
        < measured["graph-coloring"].bandwidth_mb_per_s
    )
    assert (
        measured["locking"].bandwidth_mb_per_s
        < measured["rank-ordering"].bandwidth_mb_per_s
    )

    rows = []
    for name in ("locking", "graph-coloring", "rank-ordering"):
        est = estimates[name]
        rec = measured[name]
        rows.append(
            {
                "strategy": name,
                "predicted bytes moved": str(est.bytes_transferred),
                "measured bytes moved": str(rec.bytes_written),
                "predicted parallel steps": str(est.parallel_steps),
                "measured phases": str(rec.phases),
                "locked bytes/process": str(est.locked_bytes),
                "measured BW (MB/s)": f"{rec.bandwidth_mb_per_s:.1f}",
            }
        )
    report(
        f"Section 3.4: analysis vs measurement ({M}x{N}, P={P}, R={R}, GPFS)",
        format_table(rows),
    )
