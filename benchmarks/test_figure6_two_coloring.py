"""Figure 6 — the column-wise overlap matrix W and its 2-colouring
(even-ranked processes write first, odd-ranked processes second)."""

from __future__ import annotations

import numpy as np

from repro.bench.figures import figure6_coloring_demo

from conftest import report


def test_figure6_column_wise_two_coloring(benchmark):
    M, N, P, R = 64, 2048, 4, 4
    demo = benchmark(figure6_coloring_demo, M, N, P, R)
    W = demo["W"]
    # The tridiagonal overlap matrix of Figure 6.
    expected = np.zeros((P, P), dtype=np.int8)
    for i in range(P - 1):
        expected[i, i + 1] = expected[i + 1, i] = 1
    assert np.array_equal(W, expected)
    assert demo["num_colors"] == 2
    assert demo["groups"][0] == [0, 2]
    assert demo["groups"][1] == [1, 3]

    lines = ["W = "]
    for row in W:
        lines.append("    " + " ".join(str(int(v)) for v in row))
    lines.append(f"colors     = {demo['colors']}")
    lines.append(f"step 0 (even ranks write): {demo['groups'][0]}")
    lines.append(f"step 1 (odd ranks write):  {demo['groups'][1]}")
    report(f"Figure 6: column-wise overlap matrix and 2-colouring (P={P})", "\n".join(lines))
