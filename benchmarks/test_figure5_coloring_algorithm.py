"""Figure 5 — the greedy graph-coloring algorithm: cost and colour counts on
the overlap graphs arising from the paper's partitioning patterns."""

from __future__ import annotations

from repro.bench.results import format_table
from repro.core.coloring import greedy_coloring, validate_coloring
from repro.core.overlap import build_overlap_matrix
from repro.core.regions import build_region_sets
from repro.patterns.partition import block_block_views, column_wise_views

from conftest import report


def _overlap_matrix(views):
    return build_overlap_matrix(build_region_sets(views))


def test_figure5_greedy_coloring(benchmark):
    cases = {
        "column-wise P=16": _overlap_matrix(column_wise_views(8, 1024, 16, 4)),
        "column-wise P=64": _overlap_matrix(column_wise_views(8, 4096, 64, 4)),
        "block-block 4x4": _overlap_matrix(block_block_views(64, 64, 4, 4, 2)),
        "block-block 8x8": _overlap_matrix(block_block_views(128, 128, 8, 8, 2)),
    }

    def color_all():
        return {name: greedy_coloring(w) for name, w in cases.items()}

    results = benchmark(color_all)
    rows = []
    for name, coloring in results.items():
        w = cases[name]
        assert validate_coloring(w, coloring)
        rows.append(
            {
                "overlap graph": name,
                "processes": str(w.nprocs),
                "edges": str(len(w.edges())),
                "max degree": str(w.max_degree()),
                "colors (I/O steps)": str(coloring.num_colors),
            }
        )
    # Column-wise graphs colour with 2; 2-D ghost graphs need at most 4.
    assert results["column-wise P=16"].num_colors == 2
    assert results["column-wise P=64"].num_colors == 2
    assert results["block-block 8x8"].num_colors <= 4
    report("Figure 5: greedy graph-coloring of overlap graphs", format_table(rows))
