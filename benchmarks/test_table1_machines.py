"""Table 1 — system configurations of the three experimental platforms."""

from __future__ import annotations

from repro.bench.machines import table1_rows
from repro.bench.results import format_table

from conftest import report


def test_table1_system_configurations(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) == 3
    report(
        "Table 1: System configurations",
        format_table(rows),
    )
