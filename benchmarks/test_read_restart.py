"""Collective read sweep — the restart-after-checkpoint scenario.

Beyond the paper: the staged collective-read pipeline (PR 4) measured on the
paper's machines.  Each point checkpoints a column-wise partitioned array
(atomic two-phase write, not measured), then has every rank read its
overlapping view back collectively under one strategy's read pipeline; read
atomicity is verified from the delivered streams.  A mixed read/write race
(writer group vs reader group under byte-range locking) is measured as well.

Expected qualitative behaviour:
* two-phase aggregation is the fastest read path — each file byte is fetched
  from the servers once, however many ranks request it;
* the naive baseline (`none`), graph-coloring and rank-ordering pay per-rank
  cache refills of the overlapped columns;
* byte-range locking reads pay a direct server round trip per segment.
"""

from __future__ import annotations

import pytest

from repro.bench.adaptive import ADAPTIVE_READ_GRID, run_adaptive_read_sweep
from repro.bench.harness import (
    run_mixed_experiment,
    run_read_experiment,
    run_read_sweep,
)
from repro.bench.jsonlog import entries_from_records
from repro.bench.perfgate import (
    ADAPTIVE_READ_PREFIX,
    check_adaptive,
    check_wall,
)
from repro.bench.results import ResultTable, format_table

from conftest import report, report_json

PROCESS_COUNTS = [4, 8, 16]

#: Extended read sweep shape — the read twin of the Section 3.4 extended
#: write sweep: two rows of 2P-wide columns with ghost width 2, read back
#: through the bulk-synchronous replay executor.
EXTENDED_M, EXTENDED_R = 2, 2
EXTENDED_PROCESS_COUNTS = (4096, 16384, 65536)
EXTENDED_RANKS_PER_NODE = 8
EXTENDED_RANKS_PER_AGGREGATOR = 256


def _sweep(machine_name: str) -> ResultTable:
    return run_read_sweep(
        machines=[machine_name],
        array_labels=["32MB"],
        process_counts=PROCESS_COUNTS,
        row_scale=64,
    )


@pytest.mark.parametrize("machine_name", ["Cplant", "Origin 2000", "IBM SP"])
def test_read_sweep(benchmark, machine_name):
    table = benchmark.pedantic(_sweep, args=(machine_name,), rounds=1, iterations=1)
    assert all(r.atomic_ok for r in table)
    report(
        f"Collective read sweep ({machine_name}, 32MB column-wise)",
        table.to_text(),
    )
    # Two-phase beats the naive per-rank baseline at every process count.
    for nprocs in PROCESS_COUNTS:
        naive = table.filter(strategy="none", nprocs=nprocs).records[0]
        two_phase = table.filter(strategy="two-phase", nprocs=nprocs).records[0]
        assert two_phase.makespan_seconds < naive.makespan_seconds


def test_read_extended_sweep(benchmark):
    """Hierarchical two-phase reads at P in {4096, 16384, 65536}.

    Same contract as the extended write sweep: every point records its host
    wall clock and must stay inside the absolute per-simulated-op budget of
    ``repro.bench.perfgate.check_wall``; delivered-stream correctness is
    verified at the smallest point (the bit-identity of the bulk read replay
    to the engine path is pinned by ``tests/test_core_bulk.py``).
    """
    measured = []

    def sweep():
        for nprocs in EXTENDED_PROCESS_COUNTS:
            rec = run_read_experiment(
                "IBM SP",
                EXTENDED_M,
                2 * nprocs,
                nprocs,
                "two-phase-hier",
                overlap_columns=EXTENDED_R,
                array_label=f"extended-{nprocs}",
                verify=nprocs <= 4096,
                executor="bulk",
                strategy_options={
                    "num_aggregators": max(1, nprocs // EXTENDED_RANKS_PER_AGGREGATOR),
                    "ranks_per_node": EXTENDED_RANKS_PER_NODE,
                },
            )
            measured.append(rec)
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    entries = entries_from_records(measured)
    assert all(e.get("wall_seconds") is not None for e in entries), (
        "every extended read-sweep point must record wall clock"
    )
    problems = check_wall(entries, experiment="read-extended-sweep")
    assert not problems, "wall budget exceeded:\n" + "\n".join(problems)
    assert all(rec.atomic_ok for rec in measured)
    # Weak scaling: the checkpoint grows with P on a fixed server pool, so
    # the virtual makespan grows about linearly — but the virtual time per
    # rank must stay flat, else the read schedule's coordination overhead
    # scales with P.
    makespans = [rec.makespan_seconds for rec in measured]
    assert makespans == sorted(makespans)
    per_rank = [m / p for m, p in zip(makespans, EXTENDED_PROCESS_COUNTS)]
    assert per_rank[-1] < per_rank[0] * 1.5

    rows = [
        {
            "P": str(rec.nprocs),
            "virtual makespan (s)": f"{rec.makespan_seconds:.4f}",
            "BW (MB/s)": f"{rec.bandwidth_mb_per_s:.1f}",
            "verified": ("yes" if rec.atomic_ok else "NO") if rec.nprocs <= 4096 else "not verified",
            "wall clock (s)": f"{rec.extra['wall_seconds']:.2f}",
            "wall us/op": f"{rec.extra['wall_seconds'] / (rec.nprocs * rec.phases) * 1e6:.1f}",
        }
        for rec in measured
    ]
    report(
        f"Extended read sweep ({EXTENDED_M}x2P, R={EXTENDED_R}, GPFS, "
        f"two-phase-hier via bulk read executor, P in {list(EXTENDED_PROCESS_COUNTS)})",
        format_table(rows),
    )
    report_json("read-extended-sweep", measured)


def test_adaptive_read_grid(benchmark):
    """The adaptive read grid: ``auto`` vs every read-capable static.

    The same gate the perfgate CLI enforces — auto within 10% of the best
    static at every (machine, pattern, P) point and strictly ahead at least
    once — asserted here so the benchmark run records the figures.
    """
    table = benchmark.pedantic(run_adaptive_read_sweep, rounds=1, iterations=1)
    groups = {}
    for rec in table:
        name = f"{ADAPTIVE_READ_PREFIX}{rec.file_system.lower()}-{rec.pattern}"
        groups.setdefault(name, []).append(rec)
    measured = {
        name: entries_from_records(records) for name, records in groups.items()
    }
    problems = check_adaptive(measured, prefix=ADAPTIVE_READ_PREFIX)
    assert not problems, "adaptive read gate failed:\n" + "\n".join(problems)
    report(
        f"Adaptive read grid ({len(ADAPTIVE_READ_GRID)} points, auto vs statics)",
        table.to_text(),
    )
    report_json("adaptive-read-grid", table.records)


def test_mixed_read_write_race(benchmark):
    record = benchmark.pedantic(
        run_mixed_experiment,
        args=("Origin 2000", 64, 8192, 16),
        rounds=1,
        iterations=1,
    )
    assert record.atomic_ok
    table = ResultTable([record])
    report("Mixed read/write race (Origin 2000, locking, P=16)", table.to_text())
