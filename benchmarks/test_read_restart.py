"""Collective read sweep — the restart-after-checkpoint scenario.

Beyond the paper: the staged collective-read pipeline (PR 4) measured on the
paper's machines.  Each point checkpoints a column-wise partitioned array
(atomic two-phase write, not measured), then has every rank read its
overlapping view back collectively under one strategy's read pipeline; read
atomicity is verified from the delivered streams.  A mixed read/write race
(writer group vs reader group under byte-range locking) is measured as well.

Expected qualitative behaviour:
* two-phase aggregation is the fastest read path — each file byte is fetched
  from the servers once, however many ranks request it;
* the naive baseline (`none`), graph-coloring and rank-ordering pay per-rank
  cache refills of the overlapped columns;
* byte-range locking reads pay a direct server round trip per segment.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_mixed_experiment, run_read_sweep
from repro.bench.results import ResultTable

from conftest import report

PROCESS_COUNTS = [4, 8, 16]


def _sweep(machine_name: str) -> ResultTable:
    return run_read_sweep(
        machines=[machine_name],
        array_labels=["32MB"],
        process_counts=PROCESS_COUNTS,
        row_scale=64,
    )


@pytest.mark.parametrize("machine_name", ["Cplant", "Origin 2000", "IBM SP"])
def test_read_sweep(benchmark, machine_name):
    table = benchmark.pedantic(_sweep, args=(machine_name,), rounds=1, iterations=1)
    assert all(r.atomic_ok for r in table)
    report(
        f"Collective read sweep ({machine_name}, 32MB column-wise)",
        table.to_text(),
    )
    # Two-phase beats the naive per-rank baseline at every process count.
    for nprocs in PROCESS_COUNTS:
        naive = table.filter(strategy="none", nprocs=nprocs).records[0]
        two_phase = table.filter(strategy="two-phase", nprocs=nprocs).records[0]
        assert two_phase.makespan_seconds < naive.makespan_seconds


def test_mixed_read_write_race(benchmark):
    record = benchmark.pedantic(
        run_mixed_experiment,
        args=("Origin 2000", 64, 8192, 16),
        rounds=1,
        iterations=1,
    )
    assert record.atomic_ok
    table = ResultTable([record])
    report("Mixed read/write race (Origin 2000, locking, P=16)", table.to_text())
