"""Figure 8 — the paper's main result: I/O bandwidth of the three MPI
atomicity strategies for the column-wise partitioned concurrent write, on the
three platforms, three array sizes and 4/8/16 processes.

One benchmark per machine; each regenerates that machine's three panels
(32 MB, 128 MB, 1 GB) and prints the bandwidth series.  Row counts are scaled
down by ``DEFAULT_ROW_SCALE`` (the paper's 4096 rows -> 64) so the grid runs
in seconds; per-row segment sizes and counts per process are unchanged, which
is what drives the relative behaviour (see EXPERIMENTS.md).

Expected qualitative agreement with the paper:
* byte-range file locking has the lowest bandwidth at every point;
* process-rank ordering is generally the best, graph-coloring in between;
* the locking series is absent on Cplant/ENFS (no lock support).
"""

from __future__ import annotations

import pytest

from repro.bench.figures import figure8_report
from repro.bench.harness import DEFAULT_ROW_SCALE, run_figure8_grid
from repro.bench.machines import machine_by_name
from repro.bench.results import figure8_series

from conftest import report, report_json

ARRAY_LABELS = ["32MB", "128MB", "1GB"]
PROCESS_COUNTS = [4, 8, 16]


def _run_panel(machine_name: str):
    return run_figure8_grid(
        machines=[machine_name],
        array_labels=ARRAY_LABELS,
        process_counts=PROCESS_COUNTS,
        row_scale=DEFAULT_ROW_SCALE,
        verify=True,
    )


@pytest.mark.parametrize("machine_name", ["Cplant", "Origin 2000", "IBM SP"])
def test_figure8_bandwidth(benchmark, machine_name):
    machine = machine_by_name(machine_name)
    table = benchmark.pedantic(_run_panel, args=(machine_name,), rounds=1, iterations=1)

    # Every measured point kept MPI atomicity.
    assert all(r.atomic_ok for r in table)

    # Locking is reported only where the platform supports it.
    strategies = {r.strategy for r in table}
    expected = {"graph-coloring", "rank-ordering", "two-phase", "two-phase-hier", "auto"}
    if machine.supports_locking:
        expected = expected | {"locking"}
    assert strategies == expected

    for label in ARRAY_LABELS:
        series = figure8_series(table, machine.name, label)
        for nprocs in PROCESS_COUNTS:
            def bw(strategy):
                return dict(series[strategy])[nprocs]

            if machine.supports_locking:
                # The paper's headline result: locking is the worst strategy.
                assert bw("locking") < bw("graph-coloring")
                assert bw("locking") < bw("rank-ordering")
            # Rank ordering is never significantly worse than graph coloring.
            assert bw("rank-ordering") >= 0.8 * bw("graph-coloring")

    report(
        f"Figure 8 ({machine.name}, {machine.file_system}): bandwidth in MB/s "
        f"(rows scaled by 1/{DEFAULT_ROW_SCALE})",
        figure8_report(table),
    )
    report_json(f"figure8-{machine.file_system.lower()}", table)
