"""Figure 1 — block-block ghost-cell partitioning: how many processes access
each file byte (edges shared by 2, corners by 4)."""

from __future__ import annotations

from repro.bench.figures import figure1_ghost_overlap_counts
from repro.bench.results import format_table

from conftest import report


def test_figure1_ghost_overlap_histogram(benchmark):
    M = N = 256
    Pr = Pc = 4
    R = 4
    hist = benchmark(figure1_ghost_overlap_counts, M, N, Pr, Pc, R)
    # The Figure 1 structure: bytes accessed by 1, 2 and 4 processes.
    assert set(hist) == {1, 2, 4}
    assert sum(hist.values()) == M * N
    rows = [
        {
            "accessed by k processes": str(k),
            "bytes": str(v),
            "fraction": f"{v / (M * N):.4f}",
        }
        for k, v in sorted(hist.items())
    ]
    report(
        f"Figure 1: ghost-cell overlap histogram ({Pr}x{Pc} grid, {M}x{N} array, R={R})",
        format_table(rows),
    )
