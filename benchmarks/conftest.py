"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series, so running ``pytest benchmarks/ --benchmark-only -s``
produces a textual version of the whole evaluation section.  The printed
blocks are also appended to ``benchmarks/results/latest.txt`` for inspection
after a captured (non ``-s``) run.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(title: str, body: str) -> None:
    """Print a captioned block and append it to the results file."""
    block = f"\n===== {title} =====\n{body}\n"
    print(block)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "latest.txt", "a", encoding="utf-8") as fh:
        fh.write(block)
