"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series, so running ``pytest benchmarks/ --benchmark-only -s``
produces a textual version of the whole evaluation section.  The printed
blocks are also appended to ``benchmarks/results/latest.txt`` for inspection
after a captured (non ``-s``) run.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(title: str, body: str) -> None:
    """Print a captioned block and record it in the results file.

    A section with the same title replaces its previous version in place, so
    ``latest.txt`` holds exactly one copy of every section regardless of how
    often or how partially the benchmarks are re-run.
    """
    block = f"\n===== {title} =====\n{body}\n"
    print(block)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "latest.txt"
    text = path.read_text(encoding="utf-8") if path.exists() else ""
    header = f"\n===== {title} =====\n"
    if header in text:
        start = text.index(header)
        next_section = text.find("\n===== ", start + len(header))
        text = text[:start] + block + (text[next_section:] if next_section != -1 else "")
    else:
        text += block
    path.write_text(text, encoding="utf-8")
