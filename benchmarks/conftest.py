"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series, so running ``pytest benchmarks/ --benchmark-only -s``
produces a textual version of the whole evaluation section.  The printed
blocks are also appended to ``benchmarks/results/latest.txt`` for inspection
after a captured (non ``-s``) run, and key experiments are mirrored as JSON
(``benchmarks/results/latest.json``, :mod:`repro.bench.jsonlog`) so the
perf trajectory is machine-checkable across PRs.

Both files are *generated*: the results directory is gitignored apart from
its checked-in ``SUMMARY.md`` inventory (validated by
``repro.bench.doccheck``); CI uploads the generated files as artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench.jsonlog import entries_from_records, record_results

RESULTS_DIR = Path(__file__).parent / "results"


def report(title: str, body: str) -> None:
    """Print a captioned block and record it in the results file.

    A section with the same title replaces its previous version in place, so
    ``latest.txt`` holds exactly one copy of every section regardless of how
    often or how partially the benchmarks are re-run.
    """
    block = f"\n===== {title} =====\n{body}\n"
    print(block)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "latest.txt"
    text = path.read_text(encoding="utf-8") if path.exists() else ""
    header = f"\n===== {title} =====\n"
    if header in text:
        start = text.index(header)
        next_section = text.find("\n===== ", start + len(header))
        text = text[:start] + block + (text[next_section:] if next_section != -1 else "")
    else:
        text += block
    path.write_text(text, encoding="utf-8")


def report_json(experiment: str, records) -> None:
    """Mirror a collection of experiment records into ``latest.json``.

    ``records`` is any iterable of
    :class:`~repro.bench.results.ExperimentRecord` (a ``ResultTable``
    included); re-recording an experiment replaces its entries in place.
    Honours the ``REPRO_RESULTS_DIR`` override the JSON log documents (so
    the benchmarks and the perf gate write one document), defaulting to
    this directory's ``results/``.
    """
    if "REPRO_RESULTS_DIR" in os.environ:
        path = None  # jsonlog.results_dir() resolves the override
    else:
        path = RESULTS_DIR / "latest.json"
    record_results(experiment, entries_from_records(records), path=path)
