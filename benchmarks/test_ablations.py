"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's evaluation, but they probe the mechanisms the paper's
arguments rest on:

* lock granularity — whole-extent locks (correct) vs per-segment locks
  (incorrect for MPI atomicity, Section 3.2): the incorrect variant is faster
  precisely because it gives up the serialisation that correctness requires;
* write-behind — the handshaking strategies with and without client caching;
* rank-ordering priority policy — higher-rank-wins vs lower-rank-wins
  (performance is equivalent; only the surviving data differs).
"""

from __future__ import annotations

from repro.bench.results import format_table
from repro.core.executor import AtomicWriteExecutor
from repro.core.rank_ordering import LOWER_RANK_WINS
from repro.core.regions import build_region_sets
from repro.core.strategies import GraphColoringStrategy, LockingStrategy, RankOrderingStrategy
from repro.fs import FSClient, ParallelFileSystem, gpfs_config, xfs_config
from repro.patterns.partition import column_wise_views
from repro.patterns.workloads import rank_pattern_bytes
from repro.verify.atomicity import check_mpi_atomicity

from conftest import report

M, N, P, R = 64, 32768, 8, 4
MB = 1024.0 * 1024.0


def _run(strategy, fs_factory=xfs_config):
    fs = ParallelFileSystem(fs_factory())
    views = column_wise_views(M, N, P, R)
    executor = AtomicWriteExecutor(fs, strategy, "ablation.dat")
    result = executor.run(P, lambda rank, _P: views[rank], rank_pattern_bytes)
    atomic = check_mpi_atomicity(result.file.store, result.regions)
    bw = result.total_bytes_requested / MB / result.makespan
    return bw, atomic.ok


def _per_segment_locking_bandwidth():
    """The incorrect variant: lock each contiguous row segment individually."""
    fs = ParallelFileSystem(xfs_config())
    fobj = fs.create("per_segment.dat")
    regions = build_region_sets(column_wise_views(M, N, P, R))
    total = sum(r.total_bytes for r in regions)
    makespan = 0.0
    clients = [FSClient(fs, client_id=r) for r in range(P)]
    for rank, region in enumerate(regions):
        handle = clients[rank].open("per_segment.dat")
        data = rank_pattern_bytes(rank, region.total_bytes)
        for buf_off, file_off, length in region.buffer_map():
            lock = handle.lock(file_off, file_off + length)
            handle.write(file_off, data[buf_off:buf_off + length], direct=True)
            handle.unlock(lock)
        makespan = max(makespan, clients[rank].clock.now)
    atomic = check_mpi_atomicity(fobj.store, regions)
    return total / MB / makespan, atomic


def test_ablation_lock_granularity(benchmark):
    whole_bw, whole_ok = benchmark.pedantic(
        lambda: _run(LockingStrategy()), rounds=1, iterations=1
    )
    seg_bw, seg_atomic = _per_segment_locking_bandwidth()
    assert whole_ok
    # Per-segment locking only serialises per row, so rows of an overlapped
    # region can come from different writers: it does not guarantee MPI
    # atomicity (the checker accepts it only when the schedule got lucky).
    rows = [
        {"variant": "whole-extent lock (Section 3.2)", "BW (MB/s)": f"{whole_bw:.1f}",
         "guarantees MPI atomicity": "yes"},
        {"variant": "per-segment lock (incorrect)", "BW (MB/s)": f"{seg_bw:.1f}",
         "guarantees MPI atomicity": "no"},
    ]
    report("Ablation: byte-range lock granularity", format_table(rows))


def test_ablation_write_behind(benchmark):
    def run_both():
        cached_bw, cached_ok = _run(RankOrderingStrategy(use_cache=True), gpfs_config)
        direct_bw, direct_ok = _run(RankOrderingStrategy(use_cache=False), gpfs_config)
        return cached_bw, cached_ok, direct_bw, direct_ok

    cached_bw, cached_ok, direct_bw, direct_ok = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert cached_ok and direct_ok
    rows = [
        {"variant": "write-behind cache + sync", "BW (MB/s)": f"{cached_bw:.1f}", "atomic": "yes"},
        {"variant": "direct (write-through)", "BW (MB/s)": f"{direct_bw:.1f}", "atomic": "yes"},
    ]
    report("Ablation: write-behind caching under rank ordering (GPFS)", format_table(rows))


def test_ablation_priority_policy(benchmark):
    def run_both():
        high_bw, high_ok = _run(RankOrderingStrategy())
        low_bw, low_ok = _run(RankOrderingStrategy(policy=LOWER_RANK_WINS))
        return high_bw, high_ok, low_bw, low_ok

    high_bw, high_ok, low_bw, low_ok = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert high_ok and low_ok
    # The choice of winner does not change the performance character.
    assert 0.5 <= high_bw / low_bw <= 2.0
    rows = [
        {"policy": "higher rank wins (paper)", "BW (MB/s)": f"{high_bw:.1f}"},
        {"policy": "lower rank wins", "BW (MB/s)": f"{low_bw:.1f}"},
    ]
    report("Ablation: rank-ordering priority policy (XFS)", format_table(rows))


def test_ablation_coloring_vs_ordering_volume(benchmark):
    def run_both():
        return _run(GraphColoringStrategy()), _run(RankOrderingStrategy())

    (color_bw, color_ok), (rank_bw, rank_ok) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert color_ok and rank_ok
    rows = [
        {"strategy": "graph-coloring (2 phases, full volume)", "BW (MB/s)": f"{color_bw:.1f}"},
        {"strategy": "rank-ordering (1 phase, reduced volume)", "BW (MB/s)": f"{rank_bw:.1f}"},
    ]
    report("Ablation: phased full-volume vs trimmed single-phase (XFS)", format_table(rows))
