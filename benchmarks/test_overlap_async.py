"""Compute/I-O overlap — blocking vs split-collective vs nonblocking writes.

Beyond the paper: the request-based API (PR 5) measured on a checkpoint
workload.  Each step atomically writes the whole column-wise partitioned
array under the two-phase strategy and then computes for a fixed virtual
duration; the blocking API serialises ``exchange + commit + compute`` per
step, while ``Write_all_begin``/``Write_all_end`` (and ``Iwrite_all``)
run the commit on a detached progress timeline so the computation hides
under it.

Expected behaviour, checked at every measured P: the split-collective
makespan is *strictly* lower than the blocking one — the gap per step is
``min(commit, compute)``, the overlap actually won — and MPI atomicity is
preserved by the detached commits.
"""

from __future__ import annotations

import pytest

from repro.bench.overlap import run_overlap_comparison
from repro.bench.results import ResultTable

from conftest import report, report_json

#: (P, M, N): process count and array shape of each measured point.  The
#: 1024-rank point uses fewer rows purely to bound wall-clock time; the
#: virtual-time comparison is unaffected.
POINTS = [
    (16, 16, 256),
    (256, 16, 1024),
    (1024, 8, 4096),
]

STEPS = 2
COMPUTE_SECONDS = 0.002


@pytest.mark.parametrize("nprocs,M,N", POINTS, ids=[f"P{p}" for p, _, _ in POINTS])
def test_overlap_checkpoint(benchmark, nprocs, M, N):
    apis = ["blocking", "split"] if nprocs > 16 else None  # all three at P=16
    records = benchmark.pedantic(
        run_overlap_comparison,
        args=("IBM SP", M, N, nprocs),
        kwargs={"apis": apis, "steps": STEPS, "compute_seconds": COMPUTE_SECONDS},
        rounds=1,
        iterations=1,
    )
    table = ResultTable(records.values())
    report(
        f"Compute/I-O overlap (IBM SP, {M}x{N}, P={nprocs}, two-phase, "
        f"{STEPS} steps x {COMPUTE_SECONDS}s compute)",
        table.to_text(),
    )
    report_json(f"overlap-P{nprocs}", table)
    assert all(r.atomic_ok for r in records.values())
    blocking = records["blocking"].makespan_seconds
    split = records["split"].makespan_seconds
    # The acceptance bar: nonblocking collectives strictly shrink the
    # virtual-time makespan at every measured P.
    assert split < blocking
    if "nonblocking" in records:
        assert records["nonblocking"].makespan_seconds < blocking
    # The win is bounded by the computation that existed to be hidden.
    assert blocking - split <= STEPS * COMPUTE_SECONDS + 1e-9
