"""Figure 3 — row-wise vs column-wise partitioning: per-rank file-view shape
(contiguity, segment counts, extents)."""

from __future__ import annotations

from repro.bench.figures import figure3_partition_summary
from repro.bench.results import format_table

from conftest import report


def test_figure3_partition_views(benchmark):
    M, N, P, R = 512, 512, 4, 4
    rows = benchmark(figure3_partition_summary, M, N, P, R)
    row_wise = [r for r in rows if r["pattern"] == "row-wise"]
    col_wise = [r for r in rows if r["pattern"] == "column-wise"]
    # Row-wise views are single contiguous ranges; column-wise views are M
    # scattered segments whose extent spans nearly the whole file.
    assert all(r["contiguous"] == "yes" for r in row_wise)
    assert all(r["contiguous"] == "no" for r in col_wise)
    assert all(int(r["segments"]) == M for r in col_wise)
    report(
        f"Figure 3: partitioning file views ({M}x{N}, P={P}, R={R})",
        format_table(rows),
    )
