"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists only
so that legacy editable installs (``pip install -e . --no-use-pep517`` on
environments without the ``wheel`` package, e.g. fully offline machines)
keep working.
"""

from setuptools import setup

setup()
