#!/usr/bin/env python3
"""Figure 4 of the paper, transliterated: column-wise atomic write via MPI-IO.

The paper's code fragment builds a file view with ``MPI_Type_create_subarray``,
enables atomic mode, and performs a collective write.  This example runs the
same call sequence against this library's MPI-IO layer on an XFS-like file
system, once per atomicity strategy, and verifies the resulting file.

Run with:  python examples/column_wise_write.py
"""

from __future__ import annotations

import numpy as np

from repro import MPIFile, ParallelFileSystem, xfs_config
from repro.datatypes import CHAR, subarray
from repro.io import Info, MODE_CREATE, MODE_RDWR
from repro.core.regions import build_region_sets
from repro.mpi import run_spmd
from repro.patterns.partition import column_wise_spec, column_wise_views
from repro.verify import check_coverage, check_mpi_atomicity

M, N, P, R = 128, 4096, 4, 8          # global array, processes, overlapped columns
MB = 1024 * 1024


def column_wise_atomic_write(fs, strategy_hint: str):
    """The Figure 4 call sequence, executed by every rank."""

    def rank_program(comm):
        rank = comm.rank
        #  1. sizes / sub_sizes / starts  (lines 1-6 of Figure 4)
        spec = column_wise_spec(M, N, P, rank, R)
        #  2. MPI_Type_create_subarray + commit  (lines 7-8)
        filetype = subarray(list(spec.sizes), list(spec.subsizes),
                            list(spec.starts), CHAR).commit()
        #  3. MPI_File_open  (line 9 — the info hint picks the strategy)
        info = Info({"atomicity_strategy": strategy_hint})
        fh = MPIFile.Open(comm, "fig4.dat", fs, amode=MODE_RDWR | MODE_CREATE, info=info)
        #  4. MPI_File_set_atomicity(fh, 1)
        fh.Set_atomicity(True)
        #  5. MPI_File_set_view(fh, 0, etype, filetype, "native", info)  (line 10)
        fh.Set_view(0, CHAR, filetype)
        #  6. MPI_File_write_all  (line 11)
        local = np.full(spec.subsizes, ord("A") + rank, dtype=np.uint8)
        outcome = fh.Write_all(local)
        #  7. MPI_File_close  (line 12)
        fh.Close()
        return outcome

    return run_spmd(rank_program, P)


def main() -> None:
    regions = build_region_sets(column_wise_views(M, N, P, R))
    print(f"Figure 4 workload: {M}x{N} char array, {P} processes, R={R} overlapped columns")
    print(f"Each interior rank's view: {M} non-contiguous segments of {N // P + R} bytes\n")

    for strategy in ("locking", "graph-coloring", "rank-ordering"):
        fs = ParallelFileSystem(xfs_config())
        spmd = column_wise_atomic_write(fs, strategy)
        store = fs.lookup("fig4.dat").store
        atomic = check_mpi_atomicity(store, regions)
        complete = check_coverage(store, regions)
        written = sum(o.bytes_written for o in spmd.returns)
        print(
            f"{strategy:16s} atomic={'yes' if atomic.ok else 'NO':3s} "
            f"complete={'yes' if complete.ok else 'NO':3s} "
            f"written={written / MB:6.2f} MB "
            f"virtual time={spmd.makespan:.4f} s"
        )

    print("\nThe overlapped ghost columns contain data from exactly one process "
          "under every strategy — the MPI atomic-mode guarantee of Section 2.2.")


if __name__ == "__main__":
    main()
