#!/usr/bin/env python3
"""Checkpoint-then-restart: the read-heavy scenario, end to end over MPI-IO.

Eight simulated MPI processes checkpoint a column-wise partitioned 2-D array
(ghost columns overlapping between neighbours) to a shared file with an
atomic collective write.  A *restart job with a different process count*
then opens the checkpoint and reads its own overlapping partitioning back
with collective reads — the exchange shape of restart-after-checkpoint and
analysis-consumer pipelines.

The restart is run once per read-capable strategy so the staged read
pipelines can be compared: the naive baseline (``none``) invalidates and
re-reads every overlapped byte per rank, while two-phase aggregation reads
each file byte once and scatters, which shows up directly in the virtual-time
makespan.  Every restart is verified with the read-atomicity checker: each
byte a reader observed must come from a single committed write.

Run with:  python examples/checkpoint_restart.py
"""

from __future__ import annotations

from repro import (
    CheckpointRestartWorkload,
    Info,
    MPIFile,
    ParallelFileSystem,
    ReadObservation,
    check_read_atomicity,
    default_registry,
    gpfs_config,
    run_spmd,
)
from repro.core.regions import FileRegionSet
from repro.datatypes import CHAR, subarray
from repro.io.modes import MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.patterns import column_wise_spec

# 256 x 8192 array, checkpointed by 8 writers, restarted on 6 readers, with
# 64 overlapped ghost columns between neighbours (wide halos, so the restart
# re-reads a substantial overlapped volume).
WORK = CheckpointRestartWorkload(
    label="demo", M=4096, N=8192, writers=8, readers=6, R=64, row_scale=16
)
FILENAME = "checkpoint.dat"
MB = 1024 * 1024


def _column_view(f: MPIFile, rank: int, nprocs: int):
    """Install the rank's column-wise ghost view (the paper's Figure 4)."""
    spec = column_wise_spec(WORK.effective_M, WORK.N, nprocs, rank, WORK.R)
    filetype = subarray(
        list(spec.sizes), list(spec.subsizes), list(spec.starts), CHAR
    ).commit()
    f.Set_view(0, CHAR, filetype)
    return spec


def checkpoint(fs: ParallelFileSystem) -> None:
    """Phase 1: the writers checkpoint the array atomically (two-phase)."""

    def writer(comm):
        f = MPIFile.Open(
            comm,
            FILENAME,
            fs,
            amode=MODE_RDWR | MODE_CREATE,
            info=Info({"atomicity_strategy": "two-phase"}),
        )
        f.Set_atomicity(True)
        spec = _column_view(f, comm.rank, WORK.writers)
        outcome = f.Write_all(WORK.writer_stream(comm.rank), count=spec.total_bytes)
        f.Close()
        return outcome

    result = run_spmd(writer, WORK.writers)
    total = sum(o.bytes_written for o in result.returns)
    print(
        f"checkpoint: {WORK.writers} writers, two-phase atomic write, "
        f"{total / MB:.1f} MB written, makespan {result.makespan:.4f}s"
    )


def restart(fs: ParallelFileSystem, strategy_name: str):
    """Phase 2: a restart job of a different size reads the checkpoint."""

    def reader(comm):
        f = MPIFile.Open(
            comm,
            FILENAME,
            fs,
            amode=MODE_RDONLY,
            info=Info({"atomicity_strategy": strategy_name}),
        )
        f.Set_atomicity(True)
        spec = _column_view(f, comm.rank, WORK.readers)
        buf = bytearray(spec.total_bytes)
        outcome = f.Read_all(buf, count=spec.total_bytes)
        f.Close()
        return bytes(buf), outcome

    result = run_spmd(reader, WORK.readers)
    read_views = WORK.read_views()
    observations = [
        ReadObservation(rank, FileRegionSet(rank, read_views[rank]), data)
        for rank, (data, _) in enumerate(result.returns)
    ]
    write_regions = [
        FileRegionSet(rank, segs) for rank, segs in enumerate(WORK.write_views())
    ]
    write_data = [WORK.writer_stream(rank) for rank in range(WORK.writers)]
    report = check_read_atomicity(observations, write_regions, write_data)
    outcomes = [outcome for _, outcome in result.returns]
    return result, outcomes, report


def main() -> None:
    print(
        f"Workload: {WORK.effective_M}x{WORK.N} array "
        f"({WORK.file_bytes / MB:.1f} MB), {WORK.writers} writers -> "
        f"{WORK.readers} readers, R={WORK.R} ghost columns\n"
    )
    fs = ParallelFileSystem(gpfs_config())
    checkpoint(fs)

    print(f"\n{'restart strategy':18s} {'read OK':>8s} {'MB fetched':>11s} "
          f"{'time (s)':>9s} {'BW (MB/s)':>10s}")
    for name in default_registry.read_capable_names():
        # Each restart is an independent measurement: clear the servers'
        # virtual-time queues (the checkpoint bytes are untouched).
        fs.reset_accounting()
        result, outcomes, report = restart(fs, name)
        fetched = sum(o.bytes_read for o in outcomes)
        requested = sum(o.bytes_requested for o in outcomes)
        bw = requested / result.makespan / MB if result.makespan else float("inf")
        print(
            f"{name:18s} {'yes' if report.ok else 'NO':>8s} "
            f"{fetched / MB:>11.2f} {result.makespan:>9.4f} {bw:>10.1f}"
        )

    print(
        "\nTwo-phase aggregation fetches each checkpoint byte once and "
        "scatters it to the overlapping readers, so the restart moves less "
        "data through the servers than the naive per-rank pipelines."
    )


if __name__ == "__main__":
    main()
