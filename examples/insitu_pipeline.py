#!/usr/bin/env python3
"""In-situ analysis pipeline: a simulation coupled to an analysis group.

Two applications share one SPMD world: four *producer* ranks run a
simulated timestep loop and checkpoint a 32x512 array to a shared file
each step, while two *consumer* ranks read each checkpoint back in situ —
a 4:2 redistribution through the file's byte range — and "analyse" it.
The groups are wired with MPI inter-communicators (`Comm_split` carves
the world, `Create_intercomm` bridges the halves), the way real coupled
codes are.

We run the same workload under two coupling disciplines:

* ``barrier``    — write-barrier-read: each side waits the other out;
* ``overlapped`` — simulate-while-checkpoint: producers commit step ``s``
  with the split-collective API while computing step ``s+1``, and run up
  to ``overlap_depth`` steps ahead of the consumers' acknowledgements;
  consumers overlap their nonblocking ``Iread_all`` with analysis.

The overlapped discipline must finish strictly earlier, every consumer
must receive exactly the bytes the producers wrote for its slice, and the
cross-group stream verifier must find each per-step stream serialisable.

Run with:  python examples/insitu_pipeline.py
"""

from __future__ import annotations

from repro import CoupledPipeline, PipelineSpec, StageSpec, expected_consumer_streams
from repro.bench.machines import IBM_SP

M, N, STEPS = 32, 512, 4
PRODUCERS, CONSUMERS = 4, 2
COMPUTE_SECONDS = 0.002  # per-step simulation *and* analysis compute


def run(coordination: str):
    spec = PipelineSpec(
        stages=(
            StageSpec("producer", PRODUCERS, compute_seconds=COMPUTE_SECONDS),
            StageSpec("consumer", CONSUMERS, compute_seconds=COMPUTE_SECONDS),
        ),
        M=M,
        N=N,
        steps=STEPS,
        strategy="two-phase",
        coordination=coordination,
        overlap_depth=2,
        filename=f"/insitu/{coordination}",
    )
    return CoupledPipeline(spec, fs_config=IBM_SP.make_fs_config()).run()


def main() -> None:
    print(
        f"Coupled pipeline: {PRODUCERS} producers -> {CONSUMERS} consumers, "
        f"{M}x{N} checkpoint, {STEPS} steps\n"
    )
    results = {}
    for coordination in ("barrier", "overlapped"):
        result = results[coordination] = run(coordination)

        report = result.verify()
        assert report.ok, f"stream atomicity violated: {report.violations}"
        for step in range(STEPS):
            expected = expected_consumer_streams(result.spec, step)
            for c in range(CONSUMERS):
                assert result.delivered[(step, c)] == expected[c], (
                    f"consumer {c} diverged at step {step}"
                )

        print(
            f"{coordination:10s}  makespan {result.makespan:.6f} s, "
            f"streamed {result.bytes_streamed} B, "
            f"streams serialisable: yes, bytes exact: yes"
        )

    won = results["barrier"].makespan - results["overlapped"].makespan
    assert won > 0, "overlap failed to beat the barrier baseline"
    print(
        f"\nSimulate-while-checkpoint saved {won:.6f} s of virtual time "
        f"({100 * won / results['barrier'].makespan:.1f}% of the baseline):"
        f" the commit and the analysis hid under compute, and the depth-2"
        f" ack window kept the producers from stalling on the slower"
        f" consumers."
    )


if __name__ == "__main__":
    main()
