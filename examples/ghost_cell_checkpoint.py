#!/usr/bin/env python3
"""Ghost-cell check-pointing — the Figure 1 workload end to end.

A 2-D stencil-style application partitions a global array block-block over a
3x3 process grid with a halo of ghost cells.  Every checkpoint writes each
rank's whole ghosted block to a shared file, so edges overlap between two
ranks and corners between four.  The example runs several checkpoint rounds
under the graph-coloring strategy (which needs more than two colours here),
verifies MPI atomicity after every round, and reports the coloring and the
overlap structure.

Run with:  python examples/ghost_cell_checkpoint.py
"""

from __future__ import annotations

import numpy as np

from repro import ParallelFileSystem, gpfs_config
from repro.core.coloring import greedy_coloring
from repro.core.executor import AtomicWriteExecutor
from repro.core.overlap import build_overlap_matrix, overlapped_bytes_total
from repro.core.regions import build_region_sets
from repro.core.strategies import GraphColoringStrategy, RankOrderingStrategy
from repro.patterns.ghost import GhostDecomposition
from repro.verify import check_coverage, check_mpi_atomicity

M, N = 384, 384            # global array
PR, PC = 3, 3              # process grid
GHOST = 4                  # overlapped cells between neighbouring blocks
ROUNDS = 3
KB = 1024


def main() -> None:
    nprocs = PR * PC
    decomps = [
        GhostDecomposition(M=M, N=N, Pr=PR, Pc=PC, rank=r, ghost_width=GHOST)
        for r in range(nprocs)
    ]
    views = [d.file_segments() for d in decomps]
    regions = build_region_sets(views)

    # --- describe the overlap structure (Figure 1) -------------------------
    overlap = build_overlap_matrix(regions)
    coloring = greedy_coloring(overlap)
    print(f"Ghost-cell checkpoint: {M}x{N} array on a {PR}x{PC} process grid, "
          f"ghost width {GHOST}")
    print(f"Overlapping neighbour pairs : {len(overlap.edges())}")
    print(f"Bytes written by >1 process : {overlapped_bytes_total(regions) / KB:.1f} KB")
    print(f"Greedy coloring             : {coloring.num_colors} I/O phases, "
          f"colors by rank = {list(coloring.colors)}")
    centre = decomps[4]
    print(f"Rank 4 (centre) neighbours  : {centre.neighbors()}\n")

    # --- run checkpoint rounds under two strategies -------------------------
    for strategy in (GraphColoringStrategy(), RankOrderingStrategy()):
        fs = ParallelFileSystem(gpfs_config())
        executor = AtomicWriteExecutor(fs, strategy, filename="ghost_ckpt.dat")

        def data_factory(rank: int, nbytes: int, _round=[0]) -> bytes:
            # A rank- and position-dependent payload, as a real stencil update
            # would produce.
            local = decomps[rank].make_local_array(dtype=np.uint8, fill_with_rank=True)
            return local.tobytes()[:nbytes]

        print(f"strategy: {strategy.name}")
        for round_no in range(ROUNDS):
            result = executor.run(nprocs, lambda rank, _P: views[rank], data_factory)
            atomic = check_mpi_atomicity(result.file.store, result.regions)
            complete = check_coverage(result.file.store, result.regions)
            print(
                f"  checkpoint {round_no}: atomic={'yes' if atomic.ok else 'NO'} "
                f"complete={'yes' if complete.ok else 'NO'} "
                f"written={result.total_bytes_written / KB:8.1f} KB "
                f"virtual time={result.makespan:.4f} s"
            )
        print()

    print("Corner ghost regions are accessed by four processes concurrently; "
          "both handshaking strategies keep every overlapped region single-owner.")


if __name__ == "__main__":
    main()
