#!/usr/bin/env python3
"""Nonblocking collective I/O: hiding the commit phase behind computation.

Sixteen simulated MPI processes run a checkpoint loop — write the whole
column-wise partitioned array atomically (two-phase aggregation), then
compute — three ways:

* **blocking**: ``Write_all`` then compute; each step pays
  ``exchange + commit + compute``;
* **split-collective**: ``Write_all_begin`` pins the exchange/shuffle on
  the caller, the commit runs on a detached progress task while the rank
  computes, and ``Write_all_end`` joins — each step pays
  ``exchange + max(commit, compute)``;
* **nonblocking**: ``Iwrite_all`` detaches the whole pipeline and the
  returned request is waited after the compute.

The virtual-time makespans make the overlap directly visible, and the
per-byte provenance proves every variant kept MPI atomicity.

Run with:  python examples/nonblocking_overlap.py
"""

from __future__ import annotations

from repro import Info, MPIFile, ParallelFileSystem, check_mpi_atomicity, gpfs_config, run_spmd
from repro.core.regions import build_region_sets
from repro.datatypes import CHAR, subarray
from repro.patterns import column_wise_spec, column_wise_views
from repro.patterns.workloads import rank_pattern_bytes

M, N, P, R = 64, 4096, 16, 8
STEPS = 3
COMPUTE_SECONDS = 0.004
MB = 1024 * 1024


def checkpoint_loop(api: str) -> float:
    fs = ParallelFileSystem(gpfs_config())

    def rank_main(comm):
        spec = column_wise_spec(M, N, comm.size, comm.rank, R)
        filetype = subarray(
            list(spec.sizes), list(spec.subsizes), list(spec.starts), CHAR
        ).commit()
        f = MPIFile.Open(
            comm, "ckpt.dat", fs, info=Info({"atomicity_strategy": "two-phase"})
        )
        f.Set_atomicity(True)
        f.Set_view(0, CHAR, filetype)
        payload = rank_pattern_bytes(comm.rank, spec.total_bytes)
        for _ in range(STEPS):
            f.Seek(0)
            if api == "blocking":
                f.Write_all(payload)
                comm.clock.advance(COMPUTE_SECONDS)
            elif api == "split":
                f.Write_all_begin(payload)
                comm.clock.advance(COMPUTE_SECONDS)  # overlapped with the commit
                f.Write_all_end()
            else:  # nonblocking
                request = f.Iwrite_all(payload)
                comm.clock.advance(COMPUTE_SECONDS)  # overlapped with everything
                request.Wait()
        f.Close()

    result = run_spmd(rank_main, P)
    atomic = check_mpi_atomicity(
        fs.lookup("ckpt.dat").store, build_region_sets(column_wise_views(M, N, P, R))
    )
    assert atomic.ok, f"{api} violated MPI atomicity"
    return result.makespan


def main() -> None:
    print(
        f"Workload: {M}x{N} array ({M * N / MB:.2f} MB), {P} processes, "
        f"{STEPS} checkpoint steps, {COMPUTE_SECONDS * 1000:.0f} ms compute/step\n"
    )
    makespans = {api: checkpoint_loop(api) for api in ("blocking", "split", "nonblocking")}
    base = makespans["blocking"]
    print(f"{'API':14s} {'makespan (s)':>13s} {'vs blocking':>12s}")
    for api, makespan in makespans.items():
        print(f"{api:14s} {makespan:>13.4f} {makespan / base - 1.0:>+11.1%}")
    hidden = base - makespans["split"]
    print(
        f"\nThe split-collective run hid {hidden * 1000:.1f} ms of compute under "
        "the commit phase (bounded by steps x min(commit, compute)); "
        "atomicity verified for every variant."
    )


if __name__ == "__main__":
    main()
