#!/usr/bin/env python3
"""A small Figure 8-style sweep: strategies x machines x process counts.

Runs the paper's column-wise checkpoint workload (row-scaled) on the three
machine personalities of Table 1 and prints one bandwidth table per machine,
mirroring the structure of the paper's Figure 8.  Useful as a template for
sweeping your own workload parameters through the benchmark harness.

Run with:  python examples/strategy_comparison_sweep.py
"""

from __future__ import annotations

from repro.bench.figures import figure8_report
from repro.bench.harness import run_figure8_grid
from repro.bench.machines import table1_rows
from repro.bench.results import format_table

# Keep the example quick: one array size, two process counts, rows scaled by 128.
ARRAY_LABELS = ["128MB"]
PROCESS_COUNTS = [4, 8]
ROW_SCALE = 128


def main() -> None:
    print("Table 1 — machine personalities used by the sweep\n")
    print(format_table(table1_rows()))

    print(f"Running the column-wise sweep (sizes {ARRAY_LABELS}, "
          f"P in {PROCESS_COUNTS}, rows scaled by 1/{ROW_SCALE}) ...\n")
    table = run_figure8_grid(
        array_labels=ARRAY_LABELS,
        process_counts=PROCESS_COUNTS,
        row_scale=ROW_SCALE,
        verify=True,
    )

    print(table.to_text(title="All measured points"))
    print()
    print("Figure 8-style series (bandwidth in MB/s):\n")
    print(figure8_report(table))

    locking_points = [r for r in table if r.strategy == "locking"]
    others = [r for r in table if r.strategy != "locking"]
    if locking_points and others:
        worst_other = min(r.bandwidth_mb_per_s for r in others)
        best_locking = max(r.bandwidth_mb_per_s for r in locking_points)
        print(f"Best locking bandwidth  : {best_locking:.1f} MB/s")
        print(f"Worst handshaking point : {worst_other:.1f} MB/s")
    print("Every point above was verified MPI-atomic:",
          all(r.atomic_ok for r in table))


if __name__ == "__main__":
    main()
