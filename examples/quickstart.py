#!/usr/bin/env python3
"""Quickstart: a concurrent overlapping write made MPI-atomic.

Four simulated MPI processes write a column-wise partitioned 2-D array to a
shared file on a GPFS-like parallel file system.  Neighbouring processes'
file views overlap by a few ghost columns, so without coordination the
overlapped columns could end up interleaved (the problem of Liao et al.,
ICPP 2003).  We run the write under each of the paper's three atomicity
strategies, verify the MPI atomic-mode guarantee from the per-byte
provenance the simulator records, and compare the virtual-time bandwidth.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AtomicWriteExecutor,
    ParallelFileSystem,
    check_coverage,
    check_mpi_atomicity,
    column_wise_views,
    gpfs_config,
    strategy_by_name,
)

# Workload: a 256 x 8192 byte array, partitioned column-wise over 4 processes
# with 8 overlapped (ghost) columns between neighbours.
M, N, P, R = 256, 8192, 4, 8
MB = 1024 * 1024


def main() -> None:
    views = column_wise_views(M, N, P, R)
    total_requested = sum(sum(length for _, length in v) for v in views)
    print(f"Workload: {M}x{N} array, {P} processes, {R} overlapped columns")
    print(f"File size {M * N / MB:.1f} MB, requested volume {total_requested / MB:.1f} MB\n")

    print(f"{'strategy':18s} {'atomic':>7s} {'complete':>9s} {'MB written':>11s} "
          f"{'time (s)':>9s} {'BW (MB/s)':>10s}")
    for name in ("locking", "graph-coloring", "rank-ordering"):
        fs = ParallelFileSystem(gpfs_config())
        executor = AtomicWriteExecutor(fs, strategy_by_name(name), filename="checkpoint.dat")
        result = executor.run(P, lambda rank, _P: views[rank])

        atomic = check_mpi_atomicity(result.file.store, result.regions)
        complete = check_coverage(result.file.store, result.regions)
        print(
            f"{name:18s} {'yes' if atomic.ok else 'NO':>7s} "
            f"{'yes' if complete.ok else 'NO':>9s} "
            f"{result.total_bytes_written / MB:>11.1f} "
            f"{result.makespan:>9.4f} "
            f"{result.bandwidth() / MB:>10.1f}"
        )

    print(
        "\nAll three strategies produce an MPI-atomic file; byte-range locking "
        "serialises the writes and is the slowest, process-rank ordering writes "
        "the least data fully in parallel and is the fastest."
    )


if __name__ == "__main__":
    main()
