"""Examples smoke test: every script in ``examples/`` must run clean.

The quickstart and the sweep examples are the project's front door; this
test executes each one in a subprocess (as a user would) so they cannot
silently rot when the library underneath them changes.  A script fails the
test if it exits non-zero or prints a traceback.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

#: Generous wall-clock ceiling per script (they take seconds in practice;
#: the ceiling only bounds pathological regressions).
TIMEOUT_SECONDS = 240


def test_examples_directory_is_populated():
    assert EXAMPLE_SCRIPTS, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[s.stem for s in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_SECONDS,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited with {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert "Traceback" not in proc.stderr, (
        f"{script.name} printed a traceback:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"
