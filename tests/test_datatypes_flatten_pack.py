"""Tests for datatype flattening and pack/unpack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datatypes import (
    CHAR,
    INT,
    contiguous,
    flatten,
    flatten_prefix,
    hindexed,
    pack,
    packed_size,
    segments_for_bytes,
    subarray,
    unpack,
    vector,
)
from repro.datatypes.datatype import Datatype, DatatypeError


class TestFlatten:
    def test_single_copy(self):
        dt = vector(2, 1, 2, INT)  # (0,4), (8,4)
        assert flatten(dt) == [(0, 4), (8, 4)]

    def test_count_tiles_at_extent(self):
        dt = vector(2, 1, 2, INT)  # extent 12: blocks at 0 and 8
        segs = flatten(dt, count=2)
        # Second tile starts at byte 12; its first block abuts the previous
        # tile's last block and the two coalesce into (8, 8).
        assert segs == [(0, 4), (8, 8), (20, 4)]
        assert sum(length for _, length in segs) == dt.size * 2

    def test_offset_shifts_everything(self):
        dt = contiguous(2, INT)
        assert flatten(dt, count=1, offset=100) == [(100, 8)]

    def test_adjacent_tiles_coalesce(self):
        dt = contiguous(4, CHAR)
        assert flatten(dt, count=3) == [(0, 12)]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            flatten(contiguous(1, INT), count=-1)


class TestFlattenPrefix:
    def test_partial_tile(self):
        dt = vector(2, 1, 2, INT)  # size 8 per tile
        segs = flatten_prefix(dt, 6)
        assert segs == [(0, 4), (8, 2)]

    def test_multiple_tiles_partial_last(self):
        dt = vector(2, 1, 2, INT)  # size 8, extent 12
        segs = flatten_prefix(dt, 20)
        # Adjacent runs across tile boundaries coalesce.
        assert segs == [(0, 4), (8, 8), (20, 8)]
        assert sum(length for _, length in segs) == 20

    def test_zero_bytes(self):
        assert flatten_prefix(contiguous(1, INT), 0) == []

    def test_zero_size_type_rejected(self):
        with pytest.raises(ValueError):
            flatten_prefix(contiguous(0, INT), 4)

    def test_exactly_covers_requested_bytes(self):
        dt = subarray([4, 8], [4, 2], [0, 3], CHAR)
        for nbytes in (1, 3, 8, 10):
            segs = flatten_prefix(dt, nbytes)
            assert sum(length for _, length in segs) == nbytes


class TestSegmentsForBytes:
    def test_skip_within_first_segment(self):
        dt = contiguous(10, CHAR)
        assert segments_for_bytes(dt, 4, skip_bytes=3) == [(3, 4)]

    def test_skip_across_segments(self):
        dt = vector(3, 2, 4, CHAR)  # (0,2),(4,2),(8,2)
        segs = segments_for_bytes(dt, 3, skip_bytes=3)
        assert segs == [(5, 1), (8, 2)]

    def test_skip_into_next_tile(self):
        dt = vector(1, 2, 2, CHAR)  # size 2, extent 2... contiguous
        dt = vector(2, 1, 2, CHAR)  # (0,1),(2,1), size 2, extent 3
        segs = segments_for_bytes(dt, 2, skip_bytes=2)
        # data stream: bytes 0->off0, 1->off2, 2->off3(tile1), 3->off5
        assert segs == [(3, 1), (5, 1)]

    def test_negative_skip_rejected(self):
        with pytest.raises(ValueError):
            segments_for_bytes(contiguous(1, INT), 4, skip_bytes=-1)


class TestPackUnpack:
    def test_pack_strided(self):
        buf = np.arange(12, dtype=np.uint8)
        dt = vector(3, 2, 4, CHAR)  # picks bytes 0,1, 4,5, 8,9
        assert pack(buf, dt) == bytes([0, 1, 4, 5, 8, 9])

    def test_pack_with_count(self):
        buf = np.arange(8, dtype=np.uint8)
        dt = contiguous(2, CHAR)
        assert pack(buf, dt, count=3) == bytes(range(6))

    def test_pack_overrun_rejected(self):
        buf = np.zeros(4, dtype=np.uint8)
        dt = contiguous(8, CHAR)
        with pytest.raises(DatatypeError):
            pack(buf, dt)

    def test_unpack_roundtrip(self):
        dt = vector(3, 2, 4, CHAR)
        src = np.arange(12, dtype=np.uint8)
        stream = pack(src, dt)
        dst = np.zeros(12, dtype=np.uint8)
        unpack(stream, dt, dst)
        # Packed positions restored, holes remain zero.
        assert list(dst) == [0, 1, 0, 0, 4, 5, 0, 0, 8, 9, 0, 0]

    def test_unpack_short_stream_rejected(self):
        dt = contiguous(8, CHAR)
        with pytest.raises(DatatypeError):
            unpack(b"ab", dt, bytearray(8))

    def test_unpack_into_bytearray(self):
        dt = hindexed([2, 2], [0, 6], CHAR)
        out = bytearray(8)
        unpack(b"ABCD", dt, out)
        assert bytes(out) == b"AB\x00\x00\x00\x00CD"

    def test_packed_size(self):
        dt = vector(3, 2, 4, INT)
        assert packed_size(dt, 2) == 48

    def test_pack_2d_subarray_matches_numpy_slicing(self):
        M, N = 6, 10
        arr = np.arange(M * N, dtype=np.uint8).reshape(M, N)
        dt = subarray([M, N], [3, 4], [2, 5], CHAR)
        assert pack(arr, dt) == arr[2:5, 5:9].tobytes()


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


@st.composite
def random_datatype(draw):
    """Random hindexed datatype with non-overlapping blocks."""
    nblocks = draw(st.integers(1, 5))
    lengths = draw(st.lists(st.integers(0, 8), min_size=nblocks, max_size=nblocks))
    disps = []
    pos = 0
    for length in lengths:
        pos += draw(st.integers(0, 5))
        disps.append(pos)
        pos += length
    return hindexed(lengths, disps, CHAR)


class TestFlattenPackProperties:
    @given(random_datatype(), st.integers(0, 4))
    def test_flatten_total_equals_size_times_count(self, dt, count):
        segs = flatten(dt, count)
        assert sum(length for _, length in segs) == dt.size * count

    @given(random_datatype(), st.integers(0, 60))
    def test_flatten_prefix_exact_bytes(self, dt, nbytes):
        if dt.size == 0:
            return
        segs = flatten_prefix(dt, nbytes)
        assert sum(length for _, length in segs) == nbytes

    @given(random_datatype(), st.integers(1, 3))
    def test_pack_unpack_identity_on_selected_bytes(self, dt, count):
        total_extent = dt.lb + dt.extent * count + 8
        rng = np.random.default_rng(0)
        src = rng.integers(1, 255, size=total_extent, dtype=np.uint8)
        stream = pack(src, dt, count)
        assert len(stream) == dt.size * count
        dst = np.zeros_like(src)
        unpack(stream, dt, dst, count)
        # Every byte selected by the datatype made the round trip.
        for off, length in flatten(dt, count):
            assert np.array_equal(dst[off : off + length], src[off : off + length])

    @given(random_datatype(), st.integers(0, 40), st.integers(0, 20))
    def test_skip_consistency(self, dt, nbytes, skip):
        if dt.size == 0:
            return
        full = flatten_prefix(dt, skip + nbytes)
        skipped = segments_for_bytes(dt, nbytes, skip_bytes=skip)
        assert sum(length for _, length in skipped) == nbytes
        # The skipped variant must be a suffix of the full expansion.
        def explode(segs):
            out = []
            for off, length in segs:
                out.extend(range(off, off + length))
            return out
        assert explode(skipped) == explode(full)[skip:]
