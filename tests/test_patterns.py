"""Tests for partitioning patterns, ghost decompositions and workloads."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import IntervalSet, merge_interval_sets
from repro.core.overlap import build_overlap_matrix, overlapped_bytes_total
from repro.core.regions import build_region_sets
from repro.patterns.ghost import GhostDecomposition
from repro.patterns.partition import (
    block_block_spec,
    block_block_views,
    column_wise_spec,
    column_wise_views,
    row_wise_spec,
    row_wise_views,
)
from repro.patterns.workloads import (
    PAPER_ARRAY_SIZES,
    PAPER_PROCESS_COUNTS,
    ColumnWiseWorkload,
    rank_fill_bytes,
    rank_pattern_bytes,
)


class TestColumnWise:
    def test_interior_rank_width(self):
        spec = column_wise_spec(M=8, N=64, P=4, rank=1, R=4)
        assert spec.subsizes == (8, 64 // 4 + 4)
        assert spec.sizes == (8, 64)

    def test_edge_ranks_narrower(self):
        first = column_wise_spec(M=8, N=64, P=4, rank=0, R=4)
        last = column_wise_spec(M=8, N=64, P=4, rank=3, R=4)
        assert first.subsizes[1] == 64 // 4 + 2
        assert last.subsizes[1] == 64 // 4 + 2

    def test_neighbours_overlap_by_R(self):
        M, N, P, R = 8, 64, 4, 4
        regions = build_region_sets(column_wise_views(M, N, P, R))
        for i in range(P - 1):
            assert regions[i].overlap_bytes(regions[i + 1]) == R * M

    def test_non_neighbours_disjoint(self):
        regions = build_region_sets(column_wise_views(8, 64, 4, 4))
        assert not regions[0].overlaps(regions[2])
        assert not regions[0].overlaps(regions[3])

    def test_segments_per_rank_equals_rows(self):
        views = column_wise_views(M=16, N=64, P=4, R=4)
        assert all(len(v) == 16 for v in views)

    def test_no_overlap_when_R_zero(self):
        regions = build_region_sets(column_wise_views(8, 64, 4, 0))
        assert overlapped_bytes_total(regions) == 0
        assert merge_interval_sets([r.coverage for r in regions]) == IntervalSet.single(0, 8 * 64)

    def test_single_process_owns_everything(self):
        views = column_wise_views(8, 64, 1, 4)
        assert views[0] == [(0, 8 * 64)]

    def test_itemsize_scaling(self):
        spec = column_wise_spec(M=4, N=16, P=4, rank=1, R=0, itemsize=8)
        assert spec.total_bytes == 4 * 4 * 8
        segs = spec.segments()
        assert segs[0][1] == 4 * 8

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            column_wise_spec(8, 64, 4, rank=5, R=0)
        with pytest.raises(ValueError):
            column_wise_spec(8, 64, 4, rank=0, R=-1)
        with pytest.raises(ValueError):
            column_wise_spec(8, 64, 16, rank=0, R=8)  # R > N/P


class TestRowWise:
    def test_views_are_contiguous(self):
        regions = build_region_sets(row_wise_views(M=64, N=32, P=4, R=4))
        assert all(r.is_contiguous() for r in regions)

    def test_neighbours_overlap_by_R_rows(self):
        M, N, P, R = 64, 32, 4, 4
        regions = build_region_sets(row_wise_views(M, N, P, R))
        for i in range(P - 1):
            assert regions[i].overlap_bytes(regions[i + 1]) == R * N

    def test_interior_rank_height(self):
        spec = row_wise_spec(M=64, N=32, P=4, rank=2, R=4)
        assert spec.subsizes == (64 // 4 + 4, 32)

    def test_coverage_is_whole_file(self):
        regions = build_region_sets(row_wise_views(64, 32, 4, 4))
        union = merge_interval_sets([r.coverage for r in regions])
        assert union == IntervalSet.single(0, 64 * 32)


class TestBlockBlock:
    def test_grid_positions(self):
        spec = block_block_spec(M=32, N=32, Pr=2, Pc=2, rank=3, R=0)
        assert spec.starts == (16, 16)
        assert spec.subsizes == (16, 16)

    def test_ghost_overlap_with_eight_neighbours(self):
        views = block_block_views(M=30, N=30, Pr=3, Pc=3, R=2)
        regions = build_region_sets(views)
        w = build_overlap_matrix(regions)
        # The centre rank (4) overlaps all 8 neighbours.
        assert w.degree(4) == 8
        # A corner rank overlaps its 3 neighbours.
        assert w.degree(0) == 3

    def test_coverage_is_whole_array(self):
        views = block_block_views(M=30, N=30, Pr=3, Pc=3, R=2)
        regions = build_region_sets(views)
        union = merge_interval_sets([r.coverage for r in regions])
        assert union == IntervalSet.single(0, 30 * 30)

    def test_corner_bytes_shared_by_four(self):
        from repro.bench.figures import figure1_ghost_overlap_counts

        hist = figure1_ghost_overlap_counts(M=30, N=30, Pr=3, Pc=3, R=2)
        assert 4 in hist          # corner ghost regions
        assert 2 in hist          # edge ghost regions
        assert hist[1] > hist[2] > hist[4]

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            block_block_spec(16, 16, 2, 2, rank=4, R=0)
        with pytest.raises(ValueError):
            block_block_spec(16, 16, 0, 2, rank=0, R=0)


class TestGhostDecomposition:
    def test_neighbours_interior(self):
        d = GhostDecomposition(M=30, N=30, Pr=3, Pc=3, rank=4, ghost_width=2)
        nbrs = d.neighbors()
        assert len(nbrs) == 8
        assert nbrs["north"] == 1 and nbrs["southeast"] == 8

    def test_neighbours_corner(self):
        d = GhostDecomposition(M=30, N=30, Pr=3, Pc=3, rank=0, ghost_width=2)
        assert set(d.neighbors()) == {"east", "south", "southeast"}

    def test_local_shape_matches_spec(self):
        d = GhostDecomposition(M=30, N=30, Pr=3, Pc=3, rank=4, ghost_width=2)
        assert d.local_shape() == d.ghosted_spec().subsizes
        arr = d.make_local_array()
        assert arr.shape == d.local_shape()
        assert (arr == 4).all()

    def test_owned_smaller_than_ghosted(self):
        d = GhostDecomposition(M=30, N=30, Pr=3, Pc=3, rank=4, ghost_width=2)
        owned = d.owned_spec()
        ghosted = d.ghosted_spec()
        assert owned.total_bytes < ghosted.total_bytes

    def test_overlapping_ranks_match_overlap_matrix(self):
        views = block_block_views(M=30, N=30, Pr=3, Pc=3, R=2)
        w = build_overlap_matrix(build_region_sets(views))
        for rank in range(9):
            d = GhostDecomposition(M=30, N=30, Pr=3, Pc=3, rank=rank, ghost_width=2)
            assert sorted(d.overlapping_ranks()) == w.neighbors(rank)

    def test_grid_coords(self):
        d = GhostDecomposition(M=8, N=8, Pr=2, Pc=4, rank=5, ghost_width=0)
        assert d.grid_coords == (1, 1)
        assert d.nprocs == 8


class TestWorkloads:
    def test_paper_sizes(self):
        assert PAPER_ARRAY_SIZES["32MB"] == (4096, 8192)
        assert PAPER_ARRAY_SIZES["128MB"] == (4096, 32768)
        assert PAPER_ARRAY_SIZES["1GB"] == (4096, 262144)
        assert PAPER_PROCESS_COUNTS == (4, 8, 16)
        for label, (m, n) in PAPER_ARRAY_SIZES.items():
            mb = m * n / (1024 * 1024)
            assert label.rstrip("MBG").isdigit()
        assert 4096 * 262144 == 1024 ** 3

    def test_workload_from_label(self):
        w = ColumnWiseWorkload.from_label("128MB", P=8, row_scale=32)
        assert w.effective_M == 4096 // 32
        assert w.file_bytes == w.effective_M * 32768
        assert w.nominal_bytes == 4096 * 32768

    def test_invalid_row_scale(self):
        with pytest.raises(ValueError):
            ColumnWiseWorkload("x", M=4096, N=8192, P=4, row_scale=0)
        with pytest.raises(ValueError):
            ColumnWiseWorkload("x", M=10, N=8192, P=4, row_scale=3)

    def test_rank_fill_bytes(self):
        assert rank_fill_bytes(0, 3) == b"AAA"
        assert rank_fill_bytes(1, 2) == b"BB"

    def test_rank_pattern_bytes_distinct_across_ranks(self):
        a = rank_pattern_bytes(0, 100)
        b = rank_pattern_bytes(1, 100)
        assert len(a) == len(b) == 100
        assert a != b


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


class TestPartitionProperties:
    @given(st.integers(1, 16), st.integers(1, 8), st.integers(0, 3))
    def test_column_wise_always_covers_file(self, m, p, r_half):
        n = p * 8
        R = 2 * r_half
        regions = build_region_sets(column_wise_views(m, n, p, R))
        union = merge_interval_sets([reg.coverage for reg in regions])
        assert union == IntervalSet.single(0, m * n)

    @given(st.integers(1, 8), st.integers(1, 6), st.integers(0, 2))
    def test_column_wise_only_neighbours_overlap(self, m, p, r_half):
        n = p * 10
        R = 2 * r_half
        regions = build_region_sets(column_wise_views(m, n, p, R))
        w = build_overlap_matrix(regions)
        for i in range(p):
            for j in range(p):
                if abs(i - j) > 1:
                    assert not w.matrix[i, j]

    @given(st.integers(2, 4), st.integers(2, 4), st.integers(0, 2))
    def test_block_block_covers_file(self, pr, pc, r_half):
        M = pr * 8
        N = pc * 8
        R = 2 * r_half
        regions = build_region_sets(block_block_views(M, N, pr, pc, R))
        union = merge_interval_sets([reg.coverage for reg in regions])
        assert union == IntervalSet.single(0, M * N)
