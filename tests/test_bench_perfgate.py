"""Unit tests for the perf-regression gate's comparison logic.

These pin the two gate correctness fixes: duplicate ``(P, strategy)``
entries must be a hard error rather than silently shadowing each other,
and a baseline entry with no measured counterpart must FAIL the gate
rather than letting a renamed/dropped workload slip through.  The wall
clock gates (relative factor and absolute per-op budget) are covered
alongside.
"""

from __future__ import annotations

import pytest

import repro.bench.perfgate as perfgate
from repro.bench.perfgate import (
    ADAPTIVE_PREFIX,
    DEFAULT_WALL_BUDGET_PER_OP,
    DEFAULT_WALL_FACTOR,
    _index,
    _wall_per_op,
    check_adaptive,
    check_wall,
    compare,
)


def entry(P, strategy, makespan, bytes_=1024, wall_seconds=None, ops=None):
    out = {"P": P, "strategy": strategy, "makespan": makespan, "bytes": bytes_}
    if wall_seconds is not None:
        out["wall_seconds"] = wall_seconds
    if ops is not None:
        out["ops"] = ops
    return out


def baseline_of(**experiments):
    return {"tolerance": 0.15, "experiments": dict(experiments)}


class TestIndex:
    def test_indexes_by_p_and_strategy(self):
        entries = [entry(4, "two-phase", 1.0), entry(4, "locking", 2.0)]
        assert set(_index(entries)) == {(4, "two-phase"), (4, "locking")}

    def test_duplicate_key_raises(self):
        # Regression: duplicates used to silently overwrite, so whichever
        # entry the dict kept could mask a regression in the other.
        entries = [entry(4, "two-phase", 1.0), entry(4, "two-phase", 9.0)]
        with pytest.raises(ValueError, match="duplicate perf entry"):
            _index(entries)

    def test_same_p_or_same_strategy_alone_is_fine(self):
        entries = [
            entry(4, "two-phase", 1.0),
            entry(16, "two-phase", 1.0),
            entry(16, "locking", 1.0),
        ]
        assert len(_index(entries)) == 3


class TestCompare:
    def test_identical_passes(self):
        entries = [entry(4, "two-phase", 1.0)]
        assert compare({"e": entries}, baseline_of(e=entries)) == []

    def test_regression_over_tolerance_fails(self):
        measured = {"e": [entry(4, "two-phase", 1.2)]}
        problems = compare(measured, baseline_of(e=[entry(4, "two-phase", 1.0)]))
        assert len(problems) == 1
        assert "exceeds baseline" in problems[0]

    def test_growth_within_tolerance_passes(self):
        measured = {"e": [entry(4, "two-phase", 1.1)]}
        assert compare(measured, baseline_of(e=[entry(4, "two-phase", 1.0)])) == []

    def test_missing_baseline_entry_fails(self):
        problems = compare({"e": [entry(4, "two-phase", 1.0)]}, baseline_of(e=[]))
        assert len(problems) == 1
        assert "no baseline" in problems[0]

    def test_baseline_entry_without_measured_counterpart_fails(self):
        # Regression: the gate used to only walk measured entries, so
        # dropping or renaming a gated workload silently passed.
        baseline = baseline_of(
            e=[entry(4, "two-phase", 1.0), entry(16, "two-phase", 2.0)]
        )
        problems = compare({"e": [entry(4, "two-phase", 1.0)]}, baseline)
        assert len(problems) == 1
        assert "no measured counterpart" in problems[0]
        assert "P=16" in problems[0]

    def test_whole_baseline_experiment_dropped_fails(self):
        baseline = baseline_of(gone=[entry(4, "two-phase", 1.0)])
        problems = compare({}, baseline)
        assert len(problems) == 1
        assert "gone" in problems[0]
        assert "no measured counterpart" in problems[0]

    def test_wall_clock_blowup_fails(self):
        base = [entry(4, "two-phase", 1.0, wall_seconds=0.004, ops=4)]
        slow = [
            entry(
                4,
                "two-phase",
                1.0,
                wall_seconds=0.004 * (DEFAULT_WALL_FACTOR + 1),
                ops=4,
            )
        ]
        problems = compare({"e": slow}, baseline_of(e=base))
        assert len(problems) == 1
        assert "wall clock" in problems[0]

    def test_wall_clock_within_factor_passes(self):
        base = [entry(4, "two-phase", 1.0, wall_seconds=0.004, ops=4)]
        ok = [entry(4, "two-phase", 1.0, wall_seconds=0.008, ops=4)]
        assert compare({"e": ok}, baseline_of(e=base)) == []

    def test_entries_without_wall_fields_skip_wall_gate(self):
        base = [entry(4, "two-phase", 1.0, wall_seconds=0.004, ops=4)]
        bare = [entry(4, "two-phase", 1.0)]
        assert compare({"e": bare}, baseline_of(e=base)) == []


class TestCheckWall:
    def test_within_budget_passes(self):
        ops = 1000
        entries = [
            entry(
                1000,
                "two-phase-hier",
                1.0,
                wall_seconds=0.5 * DEFAULT_WALL_BUDGET_PER_OP * ops,
                ops=ops,
            )
        ]
        assert check_wall(entries) == []

    def test_over_budget_fails_with_label(self):
        entries = [entry(8, "two-phase", 1.0, wall_seconds=1.0, ops=8)]
        problems = check_wall(entries, budget_per_op=1e-3, experiment="sweep")
        assert len(problems) == 1
        assert problems[0].startswith("sweep: ")
        assert "exceeds" in problems[0]

    def test_entries_without_wall_fields_are_skipped(self):
        assert check_wall([entry(8, "two-phase", 1.0)]) == []

    def test_wall_per_op(self):
        assert _wall_per_op(entry(8, "s", 1.0, wall_seconds=0.016, ops=8)) == 0.002
        assert _wall_per_op(entry(8, "s", 1.0)) is None
        assert _wall_per_op(entry(8, "s", 1.0, wall_seconds=1.0, ops=0)) is None


EXP = ADAPTIVE_PREFIX + "testfs-column-wise"


def adaptive_point(auto, static, P=4):
    return [entry(P, "auto", auto), entry(P, "two-phase", static)]


class TestCheckAdaptive:
    """The absolute auto-vs-static gate (no baseline involved)."""

    def test_auto_beating_the_static_passes(self):
        assert check_adaptive({EXP: adaptive_point(auto=0.9, static=1.0)}) == []

    def test_auto_worse_than_factor_fails(self):
        problems = check_adaptive({EXP: adaptive_point(auto=1.2, static=1.0)})
        assert any("worse than the best static" in p for p in problems)

    def test_auto_within_factor_but_never_winning_fails(self):
        # Passes every per-point bound yet never strictly wins: the tuner is
        # a pass-through, which the gate must refuse to certify.
        problems = check_adaptive({EXP: adaptive_point(auto=1.0, static=1.0)})
        assert len(problems) == 1
        assert "never strictly beat" in problems[0]

    def test_best_static_is_the_reference(self):
        # auto loses to the best static by >10% even though it beats another.
        entries = adaptive_point(auto=1.2, static=1.0) + [entry(4, "locking", 2.0)]
        problems = check_adaptive({EXP: entries})
        assert any("two-phase" in p for p in problems)

    def test_missing_auto_measurement_fails(self):
        problems = check_adaptive({EXP: [entry(4, "two-phase", 1.0)]})
        assert any("lacks an auto or a static" in p for p in problems)

    def test_no_grid_points_fails(self):
        # Experiments outside the adaptive prefix are ignored entirely, so
        # nothing was measured and the gate says so.
        problems = check_adaptive({"perfgate/unrelated": adaptive_point(0.9, 1.0)})
        assert problems == [
            f"adaptive gate: no {ADAPTIVE_PREFIX}* grid points measured"
        ]

    def test_one_win_covers_many_points(self):
        measured = {
            EXP: adaptive_point(auto=0.9, static=1.0, P=4)
            + adaptive_point(auto=1.0, static=1.0, P=16)
        }
        assert check_adaptive(measured) == []


class TestUpdateBaselineRefusal:
    """``--update-baseline`` must not enshrine a failing working tree."""

    def _patch(self, monkeypatch, tmp_path, adaptive, plan_problems):
        baseline = tmp_path / "perf_baseline.json"
        monkeypatch.setattr(perfgate, "BASELINE_PATH", baseline)
        monkeypatch.setattr(perfgate, "record_results", lambda *a, **k: None)
        monkeypatch.setattr(
            perfgate, "measure", lambda: {"e": [entry(4, "two-phase", 1.0)]}
        )
        monkeypatch.setattr(perfgate, "measure_adaptive", lambda: dict(adaptive))
        monkeypatch.setattr(
            perfgate, "measure_plan_cache", lambda: ({}, list(plan_problems))
        )
        monkeypatch.setattr(
            perfgate, "measure_multitenant", lambda: ({}, [])
        )
        return baseline

    def test_passing_tree_updates_then_gates_green(self, monkeypatch, tmp_path):
        baseline = self._patch(
            monkeypatch, tmp_path, {EXP: adaptive_point(0.9, 1.0)}, []
        )
        assert perfgate.main(["--update-baseline"]) == 0
        assert baseline.exists()
        assert perfgate.main([]) == 0

    def test_adaptive_failure_refuses_to_write(self, monkeypatch, tmp_path):
        baseline = self._patch(
            monkeypatch, tmp_path, {EXP: adaptive_point(1.5, 1.0)}, []
        )
        assert perfgate.main(["--update-baseline"]) == 1
        assert not baseline.exists()

    def test_plan_cache_failure_refuses_to_write(self, monkeypatch, tmp_path):
        baseline = self._patch(
            monkeypatch,
            tmp_path,
            {EXP: adaptive_point(0.9, 1.0)},
            ["plan cache: synthetic failure"],
        )
        assert perfgate.main(["--update-baseline"]) == 1
        assert not baseline.exists()

    def test_absolute_problems_also_fail_the_normal_gate(self, monkeypatch, tmp_path):
        baseline = self._patch(
            monkeypatch, tmp_path, {EXP: adaptive_point(0.9, 1.0)}, []
        )
        assert perfgate.main(["--update-baseline"]) == 0
        monkeypatch.setattr(
            perfgate, "measure_plan_cache", lambda: ({}, ["plan cache: regressed"])
        )
        assert perfgate.main([]) == 1
        assert baseline.exists()  # the failure never rewrites the reference

    def test_multitenant_failure_refuses_to_write(self, monkeypatch, tmp_path):
        baseline = self._patch(
            monkeypatch, tmp_path, {EXP: adaptive_point(0.9, 1.0)}, []
        )
        monkeypatch.setattr(
            perfgate,
            "measure_multitenant",
            lambda: ({}, ["multitenant: fairness below floor"]),
        )
        assert perfgate.main(["--update-baseline"]) == 1
        assert not baseline.exists()


class TestMultitenantGate:
    """The multi-tenant smoke point's absolute gates (fairness, atomicity,
    wall budget) run without a baseline, like the plan-cache checks."""

    def test_smoke_point_passes_the_default_gates(self):
        experiments, problems = perfgate.measure_multitenant()
        assert problems == []
        entries = experiments["perfgate/multitenant"]
        # Exactly one summary entry — per-job rows would collide in the
        # gate's (P, strategy) index — carrying the cross-job fields.
        assert len(entries) == 1
        summary = entries[0]
        assert "job_id" not in summary
        assert 0.0 < summary["fairness"] <= 1.0
        assert summary["offered_load"] > 0
        assert summary["ops"] > 0 and summary["wall_seconds"] > 0
        # The summary indexes cleanly alongside the other gated entries.
        _index(entries)

    def test_fairness_floor_trips(self):
        # An impossible floor (> 1, the index's maximum) must always trip,
        # whatever the measured value.
        _, problems = perfgate.measure_multitenant(fairness_floor=1.5)
        assert any("fairness" in p for p in problems)

    def test_wall_budget_trips(self):
        _, problems = perfgate.measure_multitenant(budget_per_op=1e-12)
        assert any("wall clock" in p for p in problems)
