"""Tests for the multi-tenant scheduler and its arrival processes.

Covers the tenancy mechanics (independent worlds, arrival-offset clocks,
global rank bases, spec validation, failure isolation) and the determinism
property the benchmark relies on: a scheduler run is a pure function of
``(specs, arrival kind, seed)``, so the same seed reproduces identical
jsonlog entries and a different seed changes the arrival *order*.
"""

from __future__ import annotations

import pytest

from repro.bench.machines import CPLANT, IBM_SP
from repro.bench.multitenant import run_multitenant_point
from repro.fs.filesystem import ParallelFileSystem
from repro.jobs import (
    JobSpec,
    MultiTenantExecutionError,
    MultiTenantScheduler,
    make_arrivals,
)
from repro.jobs.arrivals import ARRIVAL_KINDS


def make_fs(machine=IBM_SP):
    return ParallelFileSystem(machine.make_fs_config())


def spec(job_id, filename, nprocs=4, **kwargs):
    return JobSpec(job_id, nprocs=nprocs, M=8, N=64, filename=filename, **kwargs)


class TestArrivals:
    def test_batch_is_all_zero(self):
        assert make_arrivals("batch", 3) == [0.0, 0.0, 0.0]

    def test_staggered_spacing(self):
        assert make_arrivals("staggered", 3, interval=0.5) == [0.0, 0.5, 1.0]

    def test_poisson_is_deterministic_per_seed(self):
        a = make_arrivals("poisson", 8, seed=7)
        b = make_arrivals("poisson", 8, seed=7)
        assert a == b
        assert all(t >= 0 for t in a)

    def test_poisson_seed_changes_the_order(self):
        a = make_arrivals("poisson", 8, seed=1)
        b = make_arrivals("poisson", 8, seed=2)
        # Different seeds must change which job arrives first, not just the
        # gap lengths: compare the rank order of the offsets.
        order_a = sorted(range(8), key=a.__getitem__)
        order_b = sorted(range(8), key=b.__getitem__)
        assert order_a != order_b

    def test_poisson_requires_a_seed(self):
        with pytest.raises(ValueError, match="seed"):
            make_arrivals("poisson", 4)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            make_arrivals("burst", 4)

    def test_all_registered_kinds_produce_n_offsets(self):
        for kind in ARRIVAL_KINDS:
            assert len(make_arrivals(kind, 5, seed=3)) == 5


class TestSpecValidation:
    def test_bad_mode_raises(self):
        with pytest.raises(ValueError, match="unknown mode"):
            JobSpec("j", 4, 8, 64, "/f", mode="append")

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError, match="shape"):
            JobSpec("j", 4, 0, 64, "/f")

    def test_empty_id_raises(self):
        with pytest.raises(ValueError, match="job_id"):
            JobSpec("", 4, 8, 64, "/f")


class TestScheduler:
    def test_private_files_both_complete(self):
        result = MultiTenantScheduler(make_fs()).run(
            [spec("a", "/a.dat"), spec("b", "/b.dat")]
        )
        assert [j.spec.job_id for j in result.jobs] == ["a", "b"]
        assert all(j.makespan > 0 for j in result.jobs)
        assert result.fairness > 0.9  # identical jobs, near-equal service

    def test_rank_bases_are_cumulative_and_provenance_is_global(self):
        fs = make_fs()
        result = MultiTenantScheduler(fs).run(
            [spec("a", "/a.dat", nprocs=3), spec("b", "/b.dat", nprocs=5)]
        )
        assert [j.rank_base for j in result.jobs] == [0, 3]
        # Job b's bytes must be attributed to global ids 3..7, never 0..2.
        store = fs.lookup("/b.dat").store
        writers = set(store.distinct_writers(0, store.size))
        assert writers <= set(range(3, 8))
        assert writers  # something was actually written

    def test_arrival_offsets_shift_job_timelines(self):
        result = MultiTenantScheduler(make_fs()).run(
            [spec("early", "/a.dat"), spec("late", "/b.dat")],
            arrivals=[0.0, 5.0],
        )
        early, late = result.jobs
        assert late.arrival == 5.0
        assert late.finish >= 5.0
        # Makespan is measured from the job's own arrival, so an idle
        # machine serves the late job as fast as the early one.
        assert late.makespan == pytest.approx(early.makespan, rel=0.2)
        assert result.window >= 5.0

    def test_duplicate_job_ids_raise(self):
        with pytest.raises(ValueError, match="duplicate job ids"):
            MultiTenantScheduler(make_fs()).run(
                [spec("x", "/a.dat"), spec("x", "/b.dat")]
            )

    def test_arrival_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="arrival offsets"):
            MultiTenantScheduler(make_fs()).run([spec("a", "/a.dat")], arrivals=[0.0, 1.0])

    def test_negative_arrival_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            MultiTenantScheduler(make_fs()).run([spec("a", "/a.dat")], arrivals=[-1.0])

    def test_empty_specs_raise(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiTenantScheduler(make_fs()).run([])

    def test_locking_strategy_rejected_on_lockless_machine(self):
        with pytest.raises(ValueError, match="byte-range locking"):
            MultiTenantScheduler(make_fs(CPLANT)).run(
                [spec("a", "/a.dat", strategy="locking")]
            )

    def test_failure_stays_inside_the_failing_job(self):
        # A job whose payload is the wrong length fails at rank level; the
        # error must name only that job's ranks — its neighbour ran to
        # completion on the same engine and file system.
        bad = spec("bad", "/bad.dat", data_factory=lambda r, n: b"x")
        good = spec("good", "/good.dat")
        with pytest.raises(MultiTenantExecutionError) as excinfo:
            MultiTenantScheduler(make_fs()).run([bad, good])
        assert {job for job, _ in excinfo.value.failures} == {"bad"}


class TestDeterminism:
    def test_same_seed_reproduces_identical_jsonlog_entries(self):
        # Two full runs of the same sweep point (fresh file system each, the
        # stochastic poisson arrival process) must produce byte-identical
        # jsonlog records apart from the host-dependent wall clock.
        points = [
            run_multitenant_point(
                IBM_SP, 4, 4, arrival_kind="poisson", seed=99, timeout=60.0
            )
            for _ in range(2)
        ]

        def stable(entries):
            return [
                {k: v for k, v in e.items() if k != "wall_seconds"}
                for e in entries
            ]

        assert stable(points[0].entries) == stable(points[1].entries)
        assert points[0].result.arrival_order == points[1].result.arrival_order

    def test_different_seed_changes_the_arrival_order(self):
        orders = [
            run_multitenant_point(
                IBM_SP, 8, 2, arrival_kind="poisson", seed=seed, timeout=60.0
            ).result.arrival_order
            for seed in (1, 2)
        ]
        assert orders[0] != orders[1]
