"""Unit tests for the scatter/assembly helpers of the aggregation layer.

Pins the :func:`repro.core.aggregation.assemble_stream` correctness fix:
overlapping delivered pieces used to double-count ``filled``, which could
make a short scatter (part of the request never delivered) look complete.
Overlaps now raise instead.
"""

from __future__ import annotations

import pytest

from repro.core.aggregation import assemble_stream, scatter_pieces
from repro.core.intervals import IntervalSet


class TestAssembleStream:
    def test_disjoint_pieces_fill_stream(self):
        # Request [0, 8) at buffer offset 0, delivered as two pieces.
        pieces = [(0, b"abcd"), (4, b"efgh")]
        stream, filled = assemble_stream(pieces, [(0, 0, 8)], 8)
        assert stream == b"abcdefgh"
        assert filled == 8

    def test_pieces_routed_through_buffer_map(self):
        # File bytes [10, 14) land at buffer offset 2.
        stream, filled = assemble_stream([(10, b"wxyz")], [(2, 10, 4)], 8)
        assert stream == b"\x00\x00wxyz\x00\x00"
        assert filled == 4

    def test_short_scatter_reports_partial_fill(self):
        stream, filled = assemble_stream([(0, b"ab")], [(0, 0, 8)], 8)
        assert stream == b"ab" + b"\x00" * 6
        assert filled == 2

    def test_overlapping_pieces_raise(self):
        # Regression: [0, 4) and [2, 6) share bytes [2, 4).  Accepting both
        # used to count the shared bytes twice in `filled`, so a delivery
        # of 6 distinct bytes reported 8 and masked the missing [6, 8).
        pieces = [(0, b"abcd"), (2, b"cdef")]
        with pytest.raises(ValueError, match="overlapping pieces"):
            assemble_stream(pieces, [(0, 0, 8)], 8)

    def test_duplicate_piece_raises(self):
        pieces = [(0, b"abcd"), (0, b"abcd")]
        with pytest.raises(ValueError, match="overlapping pieces"):
            assemble_stream(pieces, [(0, 0, 8)], 8)

    def test_adjacent_pieces_are_not_overlapping(self):
        pieces = [(4, b"efgh"), (0, b"abcd")]  # touching at 4, any order
        stream, filled = assemble_stream(pieces, [(0, 0, 8)], 8)
        assert stream == b"abcdefgh"
        assert filled == 8

    def test_empty_inputs(self):
        stream, filled = assemble_stream([], [(0, 0, 4)], 4)
        assert stream == b"\x00" * 4
        assert filled == 0


class TestScatterAssembleRoundtrip:
    def test_scatter_then_assemble_recovers_request(self):
        # An aggregator holds file bytes [0, 16) contiguously; two consumers
        # request interleaved halves.  The scattered pieces are disjoint per
        # consumer, so assembly accepts them and fills each request exactly.
        buffer = bytes(range(16))
        held = [(0, 16, 0)]
        coverages = [
            IntervalSet([(0, 4), (8, 12)]),
            IntervalSet([(4, 8), (12, 16)]),
        ]
        sends = scatter_pieces(held, buffer, coverages)
        for rank, coverage in enumerate(coverages):
            buffer_map = [
                (i * 4, off, 4) for i, (off, _) in enumerate(coverage.as_segments())
            ]
            stream, filled = assemble_stream(sends[rank], buffer_map, 8)
            assert filled == 8
            expected = b"".join(
                buffer[off : off + length]
                for off, length in coverage.as_segments()
            )
            assert stream == expected
