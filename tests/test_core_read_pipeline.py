"""Tests for the staged collective-read pipeline.

Covers the declarative plan structures (`ReadStep`/`ReadPhasePlan`/`ReadPlan`),
the shared `ReadRunner`, read support in every registered strategy
(round-trip correctness against a completed atomic write), the shared-mode
lock semantics of the locking read, the single-read-per-byte property of the
two-phase read, and determinism of the pipeline at P=256.
"""

from __future__ import annotations

import pytest

from repro.core.executor import AtomicWriteExecutor, CollectiveReadExecutor
from repro.core.pipeline import LockDirective, ReadPhasePlan, ReadPlan, ReadStep
from repro.core.regions import FileRegionSet
from repro.core.registry import default_registry
from repro.core.strategies import ReadOutcome
from repro.fs.filesystem import ParallelFileSystem
from repro.fs.lockmanager import LockMode
from repro.mpi.cost import CommCostModel
from repro.patterns.partition import column_wise_views
from repro.patterns.workloads import rank_pattern_bytes
from repro.verify.atomicity import ReadObservation, check_read_atomicity
from tests.conftest import fast_fs_config

M, N, P, R = 16, 512, 4, 16


def _checkpointed_fs(lock_protocol=None, write_strategy="two-phase"):
    """A file system holding a completed atomic column-wise write."""
    cfg = fast_fs_config() if lock_protocol is None else fast_fs_config(lock_protocol)
    fs = ParallelFileSystem(cfg)
    views = column_wise_views(M, N, P, R)
    executor = AtomicWriteExecutor(
        fs, default_registry.create(write_strategy), filename="ckpt.dat"
    )
    result = executor.run(
        P, view_factory=lambda r, _p: views[r], data_factory=rank_pattern_bytes
    )
    fs.reset_accounting()
    return fs, result


def _expected_stream(store, region: FileRegionSet) -> bytes:
    """What a serialised read of the final file state returns for a view."""
    out = bytearray()
    for _, off, length in region.buffer_map():
        out.extend(store.read(off, length))
    return bytes(out)


class TestReadPlanStructures:
    def test_sink_sizes_span_all_phases(self):
        plan = ReadPlan(
            strategy="x",
            rank=0,
            bytes_requested=64,
            phases=[
                ReadPhasePlan(index=0, steps=[ReadStep(0, 100, 16)]),
                ReadPhasePlan(
                    index=1,
                    steps=[ReadStep(16, 200, 48), ReadStep(0, 300, 8, sink="agg")],
                ),
            ],
        )
        assert plan.sink_sizes() == {"user": 64, "agg": 8}
        assert plan.bytes_scheduled == 72
        assert plan.num_phases == 2

    def test_reported_phases_override(self):
        plan = ReadPlan(strategy="x", rank=0, bytes_requested=0, reported_phases=2)
        assert plan.num_phases == 2

    def test_lock_directive_defaults_exclusive_but_reads_use_shared(self):
        d = LockDirective(0, 10, mode=LockMode.SHARED)
        assert d.mode == LockMode.SHARED
        assert d.length == 10


class TestStrategyReadRoundTrip:
    """Every registered strategy must deliver the committed file state."""

    @pytest.mark.parametrize("name", default_registry.read_capable_names())
    def test_read_returns_committed_state(self, name):
        fs, wres = _checkpointed_fs()
        reader = CollectiveReadExecutor(
            fs, default_registry.create(name), filename="ckpt.dat"
        )
        views = column_wise_views(M, N, P, R)
        rres = reader.run(P, view_factory=lambda r, _p: views[r])
        store = wres.file.store
        for rank in range(P):
            assert rres.data[rank] == _expected_stream(store, rres.regions[rank]), name
            out = rres.outcomes[rank]
            assert isinstance(out, ReadOutcome)
            assert out.strategy == name
            assert out.bytes_requested == rres.regions[rank].total_bytes
            assert out.bytes_returned == out.bytes_requested
            assert out.end_time >= out.start_time

    def test_all_registered_strategies_are_read_capable(self):
        assert set(default_registry.read_capable_names()) == set(
            default_registry.names()
        )

    @pytest.mark.parametrize("name", default_registry.read_capable_names())
    def test_read_atomicity_verifier_accepts_post_write_read(self, name):
        fs, wres = _checkpointed_fs()
        reader = CollectiveReadExecutor(
            fs, default_registry.create(name), filename="ckpt.dat"
        )
        views = column_wise_views(M, N, P, R)
        rres = reader.run(P, view_factory=lambda r, _p: views[r])
        observations = [
            ReadObservation(r, rres.regions[r], rres.data[r]) for r in range(P)
        ]
        write_data = [
            rank_pattern_bytes(r, wres.regions[r].total_bytes) for r in range(P)
        ]
        assert check_read_atomicity(observations, wres.regions, write_data).ok


class TestLockingRead:
    def test_shared_locks_do_not_serialise_readers(self):
        fs, _ = _checkpointed_fs()
        reader = CollectiveReadExecutor(
            fs, default_registry.create("locking"), filename="ckpt.dat"
        )
        views = column_wise_views(M, N, P, R)
        rres = reader.run(P, view_factory=lambda r, _p: views[r])
        lm = rres.file.lock_manager
        # Overlapping extents, but every lock is shared: nobody waited.
        assert lm.wait_count == 0
        assert lm.shared_grant_count == P
        assert all(o.locks_acquired == 1 for o in rres.outcomes)
        # lock_wait_seconds includes the manager round trip; without
        # conflicts it is exactly the request latency, never a queue wait.
        latency = rres.fs.config.lock_request_latency
        assert all(o.lock_wait_seconds == pytest.approx(latency) for o in rres.outcomes)

    def test_shared_read_locks_on_token_manager(self, token_fs):
        views = column_wise_views(M, N, P, R)
        executor = AtomicWriteExecutor(
            token_fs, default_registry.create("two-phase"), filename="t.dat"
        )
        executor.run(P, view_factory=lambda r, _p: views[r])
        token_fs.reset_accounting()
        reader = CollectiveReadExecutor(
            token_fs, default_registry.create("locking"), filename="t.dat"
        )
        rres = reader.run(P, view_factory=lambda r, _p: views[r])
        # Read tokens co-exist: no reader revoked another reader's token.
        lm = rres.file.lock_manager
        assert lm.revocation_count == 0


class TestTwoPhaseRead:
    def test_each_file_byte_read_once(self):
        fs, wres = _checkpointed_fs()
        reader = CollectiveReadExecutor(
            fs, default_registry.create("two-phase"), filename="ckpt.dat"
        )
        views = column_wise_views(M, N, P, R)
        rres = reader.run(P, view_factory=lambda r, _p: views[r])
        domain_bytes = M * N  # column-wise views cover the whole array
        assert rres.total_bytes_read == domain_bytes
        # Ghost overlaps make the requested volume strictly larger.
        assert rres.total_bytes_requested > domain_bytes
        assert all(o.phases == 2 for o in rres.outcomes)
        assert sum(o.bytes_shuffled for o in rres.outcomes) > 0

    def test_works_on_lockless_fs(self):
        from repro.fs.filesystem import LockProtocol

        fs, wres = _checkpointed_fs(
            lock_protocol=LockProtocol.NONE, write_strategy="rank-ordering"
        )
        reader = CollectiveReadExecutor(
            fs, default_registry.create("two-phase"), filename="ckpt.dat"
        )
        views = column_wise_views(M, N, P, R)
        rres = reader.run(P, view_factory=lambda r, _p: views[r])
        store = wres.file.store
        for rank in range(P):
            assert rres.data[rank] == _expected_stream(store, rres.regions[rank])

    def test_empty_view_rank_participates(self):
        fs, _ = _checkpointed_fs()
        views = column_wise_views(M, N, P, R)
        views[2] = []  # one rank reads nothing but still joins the collective
        reader = CollectiveReadExecutor(
            fs, default_registry.create("two-phase"), filename="ckpt.dat"
        )
        rres = reader.run(P, view_factory=lambda r, _p: views[r])
        assert rres.data[2] == b""
        assert rres.outcomes[2].bytes_returned == 0


class TestReadDeterminism:
    """The read pipeline is bit-for-bit reproducible at P=256."""

    def _run_once(self):
        P256 = 256
        fs = ParallelFileSystem(fast_fs_config())
        views = column_wise_views(16, 8192, P256, 8)
        writer = AtomicWriteExecutor(
            fs,
            default_registry.create("two-phase"),
            filename="big.dat",
            comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8),
        )
        writer.run(
            P256, view_factory=lambda r, _p: views[r], data_factory=rank_pattern_bytes
        )
        fs.reset_accounting()
        reader = CollectiveReadExecutor(
            fs,
            default_registry.create("two-phase"),
            filename="big.dat",
            comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8),
        )
        rres = reader.run(P256, view_factory=lambda r, _p: views[r])
        return (
            rres.makespan,
            [bytes(d) for d in rres.data],
            [o.bytes_read for o in rres.outcomes],
            [o.bytes_shuffled for o in rres.outcomes],
        )

    def test_two_runs_identical(self):
        assert self._run_once() == self._run_once()
