"""Tests for the atomicity verifier itself (it must catch real violations)."""

from __future__ import annotations

from repro.core.regions import build_region_sets
from repro.fs.storage import ByteStore
from repro.verify.atomicity import (
    check_coverage,
    check_mpi_atomicity,
    check_posix_call_atomicity,
)


def make_regions():
    # Two ranks overlapping on [5, 10).
    return build_region_sets([[(0, 10)], [(5, 10)]])


class TestMPIAtomicityChecker:
    def test_accepts_single_writer_overlap(self):
        store = ByteStore()
        store.write(0, b"A" * 10, writer=0)
        store.write(5, b"B" * 10, writer=1)   # rank 1 wholly overwrote the overlap
        report = check_mpi_atomicity(store, make_regions())
        assert report.ok
        assert report.overlapped_bytes == 5
        assert "OK" in report.summary()

    def test_detects_interleaving(self):
        store = ByteStore()
        store.write(0, b"A" * 10, writer=0)
        store.write(5, b"B" * 10, writer=1)
        # Rank 0 then rewrites part of the overlap: mixed provenance.
        store.write(7, b"A" * 2, writer=0)
        report = check_mpi_atomicity(store, make_regions())
        assert not report.ok
        assert report.violations[0].kind == "interleaved"
        assert "VIOLATED" in report.summary()

    def test_detects_foreign_writer(self):
        store = ByteStore()
        store.write(0, b"A" * 10, writer=0)
        store.write(5, b"C" * 5, writer=7)    # rank 7 has no view here
        report = check_mpi_atomicity(store, make_regions())
        assert not report.ok
        assert report.violations[0].kind == "foreign-writer"

    def test_third_covering_rank_accepted(self):
        # Rank 2 covers the whole overlap of ranks 0 and 1, so its data there
        # is a legal MPI-atomic outcome.
        regions = build_region_sets([[(0, 10)], [(5, 10)], [(0, 20)]])
        store = ByteStore()
        store.write(0, b"C" * 20, writer=2)
        assert check_mpi_atomicity(store, regions).ok

    def test_no_overlap_trivially_ok(self):
        regions = build_region_sets([[(0, 10)], [(10, 10)]])
        store = ByteStore()
        report = check_mpi_atomicity(store, regions)
        assert report.ok
        assert report.overlap_regions_checked == 0

    def test_split_ownership_across_runs_of_one_pair_is_a_violation(self):
        """MPI atomicity is defined over the whole (possibly non-contiguous)
        overlapped region of a pair of requests: one run from rank 1 and
        another run from rank 0 is the Figure 2 interleaving, even though
        each individual run has a single writer."""
        regions = build_region_sets([[(0, 4), (10, 4)], [(2, 4), (12, 4)]])
        store = ByteStore()
        store.write(0, b"A" * 14, writer=0)
        store.write(2, b"B" * 2, writer=1)     # first overlap run -> rank 1
        store.write(12, b"A" * 2, writer=0)    # second overlap run -> rank 0
        report = check_mpi_atomicity(store, regions)
        assert not report.ok
        assert report.overlap_regions_checked == 2
        assert report.violations[0].kind == "interleaved"

    def test_consistent_ownership_across_runs_of_one_pair_is_ok(self):
        regions = build_region_sets([[(0, 4), (10, 4)], [(2, 4), (12, 4)]])
        store = ByteStore()
        store.write(0, b"A" * 14, writer=0)
        store.write(2, b"B" * 2, writer=1)
        store.write(12, b"B" * 2, writer=1)    # both overlap runs -> rank 1
        assert check_mpi_atomicity(store, regions).ok


class TestPosixCallChecker:
    def test_intact_call_ok(self):
        store = ByteStore()
        store.write(0, b"xyz", writer=3)
        assert check_posix_call_atomicity(store, [(3, 0, 3)]).ok

    def test_torn_call_detected(self):
        store = ByteStore()
        store.write(0, b"xyz", writer=3)
        store.write(1, b"Q", writer=4)
        report = check_posix_call_atomicity(store, [(3, 0, 3)])
        assert not report.ok
        assert report.violations[0].kind == "torn-call"


class TestCoverageChecker:
    def test_complete_coverage_ok(self):
        regions = make_regions()
        store = ByteStore()
        store.write(0, b"A" * 10, writer=0)
        store.write(5, b"B" * 10, writer=1)
        assert check_coverage(store, regions).ok

    def test_unwritten_hole_detected(self):
        regions = make_regions()
        store = ByteStore()
        store.write(0, b"A" * 10, writer=0)   # rank 1's [10,15) never written
        report = check_coverage(store, regions)
        assert not report.ok
        assert any(v.kind == "unwritten" for v in report.violations)

    def test_foreign_writer_detected(self):
        regions = build_region_sets([[(0, 10)]])
        store = ByteStore()
        store.write(0, b"Z" * 10, writer=9)
        report = check_coverage(store, regions)
        assert not report.ok
        assert any(v.kind == "foreign-writer" for v in report.violations)

    def test_report_bool_protocol(self):
        store = ByteStore()
        store.write(0, b"A" * 15, writer=0)
        store.write(5, b"B" * 10, writer=1)
        assert bool(check_coverage(store, make_regions()))
