"""Tests for the MPIFile MPI-IO layer (Figure 4 call sequence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import RankOrderingStrategy
from repro.datatypes import CHAR, INT, contiguous, subarray
from repro.fs import ParallelFileSystem
from repro.fs.filesystem import LockProtocol
from repro.io import Info, MPIFile, MODE_CREATE, MODE_RDONLY, MODE_RDWR, MODE_WRONLY
from repro.mpi import run_spmd
from repro.patterns.partition import column_wise_spec, column_wise_views
from repro.core.regions import build_region_sets
from repro.verify.atomicity import check_coverage, check_mpi_atomicity
from tests.conftest import fast_fs_config


def spmd(fn, nprocs, fs):
    return run_spmd(fn, nprocs)


class TestBasicReadWrite:
    def test_independent_write_read_roundtrip(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "a.dat", fast_fs)
            if comm.rank == 0:
                f.Write_at(0, b"hello world")
            f.Sync()
            buf = bytearray(11)
            f.Read_at(0, buf)
            f.Close()
            return bytes(buf)

        result = run_spmd(fn, 2)
        assert all(r == b"hello world" for r in result.returns)

    def test_write_all_disjoint_offsets(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "b.dat", fast_fs)
            etype = CHAR
            filetype = contiguous(8, CHAR)
            f.Set_view(comm.rank * 8, etype, filetype)
            f.Write_all(bytes([65 + comm.rank]) * 8)
            f.Close()

        run_spmd(fn, 4)
        data = fast_fs.lookup("b.dat").store.read(0, 32)
        assert data == b"A" * 8 + b"B" * 8 + b"C" * 8 + b"D" * 8

    def test_numpy_buffer_roundtrip(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "np.dat", fast_fs)
            f.Set_view(comm.rank * 40, INT, contiguous(10, INT))
            data = np.arange(10, dtype=np.int32) + comm.rank * 100
            f.Write_all(data)
            f.Sync()
            f.Seek(0)  # rewind the individual file pointer before reading back
            out = np.zeros(10, dtype=np.int32)
            f.Read_all(out)
            f.Close()
            return out.tolist()

        result = run_spmd(fn, 3)
        for rank, values in enumerate(result.returns):
            assert values == [rank * 100 + i for i in range(10)]

    def test_individual_file_pointer(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "fp.dat", fast_fs)
            if comm.rank == 0:
                assert f.Tell() == 0
                f.Write(b"abc")
                assert f.Tell() == 3
                f.Write(b"def")
                f.Seek(1)
                buf = bytearray(4)
                f.Read(buf)
                assert bytes(buf) == b"bcde"
                assert f.Tell() == 5
            f.Close()

        run_spmd(fn, 1)

    def test_get_size(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "sz.dat", fast_fs)
            if comm.rank == 0:
                f.Write_at(0, b"x" * 100)
            f.Sync()
            size = f.Get_size()
            f.Close()
            return size

        result = run_spmd(fn, 2)
        assert all(s == 100 for s in result.returns)

    def test_access_mode_enforcement(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "ro.dat", fast_fs, amode=MODE_RDONLY)
            with pytest.raises(PermissionError):
                f.Write_at(0, b"x")
            f.Close()
            g = MPIFile.Open(comm, "wo.dat", fast_fs, amode=MODE_WRONLY | MODE_CREATE)
            with pytest.raises(PermissionError):
                g.Read_at(0, bytearray(1))
            g.Close()

        run_spmd(fn, 1)

    def test_closed_file_rejected(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "c.dat", fast_fs)
            f.Close()
            with pytest.raises(ValueError):
                f.Write_at(0, b"x")

        run_spmd(fn, 1)

    def test_non_native_datarep_rejected(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "d.dat", fast_fs)
            with pytest.raises(NotImplementedError):
                f.Set_view(0, CHAR, contiguous(1, CHAR), datarep="external32")
            f.Close()

        run_spmd(fn, 1)


class TestFigure4CallSequence:
    """The paper's Figure 4 code, transliterated to this library."""

    M, N, P, R = 16, 64, 4, 4

    def _run(self, fs, atomic=True, strategy=None, info=None):
        M, N, P, R = self.M, self.N, self.P, self.R

        def fn(comm):
            rank = comm.rank
            spec = column_wise_spec(M, N, P, rank, R)
            filetype = subarray(list(spec.sizes), list(spec.subsizes),
                                list(spec.starts), CHAR).commit()
            f = MPIFile.Open(comm, "fig4.dat", fs, amode=MODE_RDWR | MODE_CREATE, info=info)
            f.Set_atomicity(atomic)
            if strategy is not None:
                f.set_strategy(strategy)
            f.Set_view(0, CHAR, filetype)
            buf = bytes([ord("A") + rank]) * spec.total_bytes
            outcome = f.Write_all(buf)
            f.Close()
            return outcome

        return run_spmd(fn, P)

    def _verify(self, fs):
        regions = build_region_sets(column_wise_views(self.M, self.N, self.P, self.R))
        store = fs.lookup("fig4.dat").store
        return check_mpi_atomicity(store, regions), check_coverage(store, regions)

    def test_atomic_default_strategy(self):
        fs = ParallelFileSystem(fast_fs_config())
        result = self._run(fs, atomic=True)
        atomic, coverage = self._verify(fs)
        assert atomic.ok and coverage.ok
        # Default on a locking-capable FS is the ROMIO approach.
        assert all(o.strategy == "locking" for o in result.returns)

    def test_atomic_default_on_lockless_fs(self):
        fs = ParallelFileSystem(fast_fs_config(LockProtocol.NONE))
        result = self._run(fs, atomic=True)
        atomic, coverage = self._verify(fs)
        assert atomic.ok and coverage.ok
        assert all(o.strategy == "rank-ordering" for o in result.returns)

    def test_strategy_hint_via_info(self):
        fs = ParallelFileSystem(fast_fs_config())
        info = Info({"atomicity_strategy": "graph-coloring"})
        result = self._run(fs, atomic=True, info=info)
        atomic, _ = self._verify(fs)
        assert atomic.ok
        assert all(o.strategy == "graph-coloring" for o in result.returns)

    def test_explicit_strategy_object(self):
        fs = ParallelFileSystem(fast_fs_config())
        result = self._run(fs, atomic=True, strategy=RankOrderingStrategy())
        atomic, coverage = self._verify(fs)
        assert atomic.ok and coverage.ok
        assert all(o.strategy == "rank-ordering" for o in result.returns)

    def test_non_atomic_mode_writes_everything(self):
        fs = ParallelFileSystem(fast_fs_config())
        result = self._run(fs, atomic=False)
        _, coverage = self._verify(fs)
        assert coverage.ok
        assert all(o.strategy == "none" for o in result.returns)

    def test_get_atomicity_reflects_setting(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "at.dat", fast_fs)
            before = f.Get_atomicity()
            f.Set_atomicity(True)
            after = f.Get_atomicity()
            f.Close()
            return (before, after)

        result = run_spmd(fn, 2)
        assert all(r == (False, True) for r in result.returns)


class TestReadAllPipeline:
    """Collective reads run through the staged read pipeline."""

    def test_non_atomic_read_all_observes_peer_flushes(self, fast_fs):
        """Regression: a collective read must invalidate cached pages, or a
        rank keeps serving a page it cached before peers flushed overlapping
        writes (sync-then-invalidate, the `fs.cache` coherence contract)."""

        def fn(comm):
            f = MPIFile.Open(comm, "coh.dat", fast_fs)
            if comm.rank == 0:
                f.Write_at(0, b"1" * 64)
            f.Sync()
            buf = bytearray(64)
            f.Read_all(buf)  # every rank now holds the page in cache
            first = bytes(buf)
            if comm.rank == 0:
                f.Write_at(0, b"2" * 64)
            f.Sync()
            f.Seek(0)
            buf2 = bytearray(64)
            f.Read_all(buf2)  # must observe rank 0's second, flushed write
            f.Close()
            return first, bytes(buf2)

        result = run_spmd(fn, 2)
        for first, second in result.returns:
            assert first == b"1" * 64
            assert second == b"2" * 64

    def test_read_all_returns_read_outcome(self, fast_fs):
        from repro.core.strategies import ReadOutcome

        def fn(comm):
            f = MPIFile.Open(comm, "ro_out.dat", fast_fs)
            if comm.rank == 0:
                f.Write_at(0, b"x" * 32)
            f.Sync()
            f.Set_view(0, CHAR, contiguous(16, CHAR))
            buf = bytearray(16)
            outcome = f.Read_all(buf)
            f.Close()
            return outcome

        result = run_spmd(fn, 2)
        for outcome in result.returns:
            assert isinstance(outcome, ReadOutcome)
            assert outcome.strategy == "none"  # non-atomic baseline
            assert outcome.bytes_requested == 16
            assert outcome.bytes_returned == 16
            assert outcome.invalidations == 1  # the coherence invalidate

    def test_atomic_read_all_uses_shared_locks(self, fast_fs):
        """Atomic collective reads on a locking FS take shared-mode extent
        locks: concurrent readers coexist (no lock waits)."""

        def fn(comm):
            f = MPIFile.Open(comm, "shr.dat", fast_fs)
            if comm.rank == 0:
                f.Write_at(0, b"y" * 64)
            f.Sync()
            f.Set_atomicity(True)
            f.Set_view(0, CHAR, contiguous(64, CHAR))  # all ranks: same range
            buf = bytearray(64)
            outcome = f.Read_all(buf)
            f.Close()
            return outcome, bytes(buf)

        result = run_spmd(fn, 3)
        lm = fast_fs.lookup("shr.dat").lock_manager
        assert lm.shared_grant_count == 3
        assert lm.wait_count == 0
        for outcome, data in result.returns:
            assert outcome.strategy == "locking"
            assert outcome.locks_acquired == 1
            assert data == b"y" * 64

    def test_atomic_read_all_two_phase_hint(self, fast_fs):
        info = Info({"atomicity_strategy": "two-phase"})

        def fn(comm):
            f = MPIFile.Open(comm, "tp.dat", fast_fs, info=info)
            if comm.rank == 0:
                f.Write_at(0, bytes(range(64)))
            f.Sync()
            f.Set_atomicity(True)
            f.Set_view(0, CHAR, contiguous(64, CHAR))
            buf = bytearray(64)
            outcome = f.Read_all(buf)
            f.Close()
            return outcome, bytes(buf)

        result = run_spmd(fn, 4)
        total_read = sum(o.bytes_read for o, _ in result.returns)
        assert total_read == 64  # each overlapped byte fetched exactly once
        for outcome, data in result.returns:
            assert outcome.strategy == "two-phase"
            assert outcome.phases == 2
            assert data == bytes(range(64))

    @pytest.mark.parametrize("strategy", ["locking", "two-phase"])
    def test_atomic_read_all_sees_own_unsynced_writes(self, fast_fs, strategy):
        """Regression: direct-read schedules (shared-lock, two-phase) must
        flush the reader's own write-behind pages first, or the rank reads
        the servers' stale bytes for data it itself just wrote."""

        def fn(comm):
            f = MPIFile.Open(comm, f"ryow_{strategy}.dat", fast_fs)
            f.Write_at(0, b"A" * 32)
            f.Sync()
            if comm.rank == 0:
                # Write-behind, intentionally NOT synced before the read.
                f.Write_at(0, b"B" * 32)
            f.Set_atomicity(True)
            f.set_strategy(strategy)
            f.Set_view(0, CHAR, contiguous(32, CHAR))
            buf = bytearray(32)
            f.Read_all(buf)
            f.Close()
            return bytes(buf)

        result = run_spmd(fn, 2)
        assert result.returns[0] == b"B" * 32, "rank 0 must read its own write"

    def test_atomic_read_at_sees_own_unsynced_writes(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "ryow_at.dat", fast_fs)
            if comm.rank == 0:
                f.Write_at(0, b"A" * 32)
            f.Sync()
            if comm.rank == 0:
                f.Write_at(0, b"B" * 32)  # write-behind, not synced
            f.Set_atomicity(True)  # collective
            out = None
            if comm.rank == 0:
                buf = bytearray(32)
                f.Read_at(0, buf)
                out = bytes(buf)
            f.Close()
            return out

        result = run_spmd(fn, 2)
        assert result.returns[0] == b"B" * 32

    def test_atomic_read_at_takes_shared_lock(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "rat.dat", fast_fs)
            if comm.rank == 0:
                f.Write_at(0, b"z" * 16)
            f.Sync()
            f.Set_atomicity(True)
            buf = bytearray(16)
            outcome = f.Read_at(0, buf)
            f.Close()
            return outcome, bytes(buf)

        result = run_spmd(fn, 2)
        lm = fast_fs.lookup("rat.dat").lock_manager
        assert lm.shared_grant_count == 2
        for outcome, data in result.returns:
            assert outcome.strategy == "independent"
            assert outcome.locks_acquired == 1
            assert data == b"z" * 16


class TestAtomicIndependentWrites:
    def test_independent_atomic_write_uses_lock(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "ind.dat", fast_fs)
            f.Set_atomicity(True)
            f.Set_view(0, CHAR, contiguous(64, CHAR))
            # All ranks write the same overlapping range independently.
            f.Write_at(0, bytes([65 + comm.rank]) * 64)
            f.Close()

        run_spmd(fn, 3)
        store = fast_fs.lookup("ind.dat").store
        # The whole range must come from a single writer (no interleaving).
        assert len(store.distinct_writers(0, 64)) == 1

    def test_independent_atomic_write_without_locks_raises(self, lockless_fs):
        from repro.fs.errors import LockingUnsupported
        from repro.mpi import SPMDExecutionError

        def fn(comm):
            f = MPIFile.Open(comm, "ind2.dat", lockless_fs)
            f.Set_atomicity(True)
            f.Write_at(0, b"x" * 8)
            f.Close()

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 2)
        assert any(isinstance(e, LockingUnsupported) for e in excinfo.value.failures.values())
