"""Virtual-time parity with the retired thread-per-rank runtime.

Before the cooperative discrete-event engine replaced the threaded SPMD
runner (one OS thread per rank, blocking ``threading`` primitives), the
threaded runner was swept over the benchmark grid — three machine
personalities x five strategies x P in {2, 4, 8, 16} x the column-wise and
block-block patterns, M=64 x N=4096 — and the median virtual-time makespan
of five repetitions per point was recorded below.  This test replays every
point on the engine and checks the makespans still match, so the port of
the virtual-time accounting (collective synchronisation, lock grant times,
resource queueing) is pinned to the original implementation.

Tolerances reflect measured properties of the *threaded* baseline, not
slack in the engine (the engine itself is bit-for-bit deterministic — see
``test_determinism.py``):

* Most configurations agree to within 0.1%; the test allows 1%.
* On the "Origin 2000" personality the threaded makespans were up to ~7%
  *larger* than the engine's: its configuration leaves the shared resources
  unsaturated, so the makespan depends on the interleaving of reservations,
  and the engine's global virtual-time order packs transfers tighter than
  the bursty OS-thread order did.  On a saturated resource (the other
  personalities) the makespan is interleaving-invariant, which is why they
  agree tightly.  Allowance: 8%.
* Block-block + locking is dominated by the lock *grant order* over
  partially overlapping extents; the threaded baseline itself varied by ~6%
  run to run and sits up to ~29% above the engine's deterministic order.
  Allowance: 35% — still tight enough to catch broken grant-time
  accounting, which shifts makespans by integer factors.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_column_wise_experiment

M, N = 64, 4096

#: machine|pattern|strategy|nprocs -> median threaded-runner makespan (s).
THREADED_MAKESPANS = {
    "Cplant|block-block|graph-coloring|16": 0.2496323579999993,
    "Cplant|block-block|graph-coloring|2": 0.1078698399999999,
    "Cplant|block-block|graph-coloring|4": 0.11466573999999992,
    "Cplant|block-block|graph-coloring|8": 0.22340705599999938,
    "Cplant|block-block|none|16": 0.2494533939999992,
    "Cplant|block-block|none|2": 0.10771359999999978,
    "Cplant|block-block|none|4": 0.11441084999999974,
    "Cplant|block-block|none|8": 0.22320432199999954,
    "Cplant|block-block|rank-ordering|16": 0.21008127200000068,
    "Cplant|block-block|rank-ordering|2": 0.10773899199999977,
    "Cplant|block-block|rank-ordering|4": 0.10770806999999975,
    "Cplant|block-block|rank-ordering|8": 0.21009062800000125,
    "Cplant|block-block|two-phase|16": 0.21026724000000058,
    "Cplant|block-block|two-phase|2": 0.10835951999999978,
    "Cplant|block-block|two-phase|4": 0.10807221999999977,
    "Cplant|block-block|two-phase|8": 0.21036998000000062,
    "Cplant|column-wise|graph-coloring|16": 0.8246269599999833,
    "Cplant|column-wise|graph-coloring|2": 0.1078698399999999,
    "Cplant|column-wise|graph-coloring|4": 0.21021454399999923,
    "Cplant|column-wise|graph-coloring|8": 0.41500238399999695,
    "Cplant|column-wise|none|16": 0.8245279359999844,
    "Cplant|column-wise|none|2": 0.10771359999999978,
    "Cplant|column-wise|none|4": 0.21009107199999918,
    "Cplant|column-wise|none|8": 0.4148951679999971,
    "Cplant|column-wise|rank-ordering|16": 0.8244817119999954,
    "Cplant|column-wise|rank-ordering|2": 0.1077391199999998,
    "Cplant|column-wise|rank-ordering|4": 0.210106288000001,
    "Cplant|column-wise|rank-ordering|8": 0.41488990400000025,
    "Cplant|column-wise|two-phase|16": 0.824659519999995,
    "Cplant|column-wise|two-phase|2": 0.10835951999999978,
    "Cplant|column-wise|two-phase|4": 0.21059600000000064,
    "Cplant|column-wise|two-phase|8": 0.4151924800000012,
    "IBM SP|block-block|graph-coloring|16": 0.048287897999999864,
    "IBM SP|block-block|graph-coloring|2": 0.021521040000000036,
    "IBM SP|block-block|graph-coloring|4": 0.0229201400000001,
    "IBM SP|block-block|graph-coloring|8": 0.04325496199999991,
    "IBM SP|block-block|locking|16": 0.07209766399999998,
    "IBM SP|block-block|locking|2": 0.024299200000000045,
    "IBM SP|block-block|locking|4": 0.028630400000000056,
    "IBM SP|block-block|locking|8": 0.05503475199999986,
    "IBM SP|block-block|none|16": 0.048106897999999836,
    "IBM SP|block-block|none|2": 0.02136480000000004,
    "IBM SP|block-block|none|4": 0.022665250000000046,
    "IBM SP|block-block|none|8": 0.04305219399999985,
    "IBM SP|block-block|rank-ordering|16": 0.04053654800000017,
    "IBM SP|block-block|rank-ordering|2": 0.021393392000000008,
    "IBM SP|block-block|rank-ordering|4": 0.021362342000000017,
    "IBM SP|block-block|rank-ordering|8": 0.04054288200000016,
    "IBM SP|block-block|two-phase|16": 0.04070127200000013,
    "IBM SP|block-block|two-phase|2": 0.022013792000000025,
    "IBM SP|block-block|two-phase|4": 0.021726492000000024,
    "IBM SP|block-block|two-phase|8": 0.04082425200000013,
    "IBM SP|column-wise|graph-coloring|16": 0.1558351519999997,
    "IBM SP|column-wise|graph-coloring|2": 0.021521040000000036,
    "IBM SP|column-wise|graph-coloring|4": 0.0406595999999999,
    "IBM SP|column-wise|graph-coloring|8": 0.07903508800000095,
    "IBM SP|column-wise|locking|16": 0.17972787199999954,
    "IBM SP|column-wise|locking|2": 0.024299200000000045,
    "IBM SP|column-wise|locking|4": 0.04650329599999983,
    "IBM SP|column-wise|locking|8": 0.09091148800000078,
    "IBM SP|column-wise|none|16": 0.15573612799999956,
    "IBM SP|column-wise|none|2": 0.02136480000000004,
    "IBM SP|column-wise|none|4": 0.04053619199999991,
    "IBM SP|column-wise|none|8": 0.07892793600000067,
    "IBM SP|column-wise|rank-ordering|16": 0.15573598399999858,
    "IBM SP|column-wise|rank-ordering|2": 0.02139326400000004,
    "IBM SP|column-wise|rank-ordering|4": 0.040560560000000245,
    "IBM SP|column-wise|rank-ordering|8": 0.07894417600000049,
    "IBM SP|column-wise|two-phase|16": 0.15591379199999855,
    "IBM SP|column-wise|two-phase|2": 0.022013792000000025,
    "IBM SP|column-wise|two-phase|4": 0.04105027200000013,
    "IBM SP|column-wise|two-phase|8": 0.07924563200000034,
    "Origin 2000|block-block|graph-coloring|16": 0.016587731999999977,
    "Origin 2000|block-block|graph-coloring|2": 0.007671439999999973,
    "Origin 2000|block-block|graph-coloring|4": 0.00820493999999997,
    "Origin 2000|block-block|graph-coloring|8": 0.014914989999999987,
    "Origin 2000|block-block|locking|16": 0.029248831999999808,
    "Origin 2000|block-block|locking|2": 0.009049599999999968,
    "Origin 2000|block-block|locking|4": 0.01111519999999996,
    "Origin 2000|block-block|locking|8": 0.021117375999999896,
    "Origin 2000|block-block|none|16": 0.016375901999999984,
    "Origin 2000|block-block|none|2": 0.007506999999999974,
    "Origin 2000|block-block|none|4": 0.007925449999999971,
    "Origin 2000|block-block|none|8": 0.014695827999999977,
    "Origin 2000|block-block|rank-ordering|16": 0.013824488000000001,
    "Origin 2000|block-block|rank-ordering|2": 0.007536495999999979,
    "Origin 2000|block-block|rank-ordering|4": 0.007485097999999997,
    "Origin 2000|block-block|rank-ordering|8": 0.013855330000000006,
    "Origin 2000|block-block|two-phase|16": 0.014011496,
    "Origin 2000|block-block|two-phase|2": 0.00815702400000002,
    "Origin 2000|block-block|two-phase|4": 0.007853340000000023,
    "Origin 2000|block-block|two-phase|8": 0.014139332000000001,
    "Origin 2000|column-wise|graph-coloring|16": 0.052354008000000694,
    "Origin 2000|column-wise|graph-coloring|2": 0.007671439999999973,
    "Origin 2000|column-wise|graph-coloring|4": 0.01399562799999998,
    "Origin 2000|column-wise|graph-coloring|8": 0.02676285200000011,
    "Origin 2000|column-wise|locking|16": 0.06506393600000109,
    "Origin 2000|column-wise|locking|2": 0.009049599999999968,
    "Origin 2000|column-wise|locking|4": 0.017051647999999992,
    "Origin 2000|column-wise|locking|8": 0.0330557440000001,
    "Origin 2000|column-wise|none|16": 0.05225245600000032,
    "Origin 2000|column-wise|none|2": 0.007506999999999974,
    "Origin 2000|column-wise|none|4": 0.013865987999999985,
    "Origin 2000|column-wise|none|8": 0.026651564000000138,
    "Origin 2000|column-wise|rank-ordering|16": 0.05226335199999925,
    "Origin 2000|column-wise|rank-ordering|2": 0.007536624000000012,
    "Origin 2000|column-wise|rank-ordering|4": 0.013899692000000055,
    "Origin 2000|column-wise|rank-ordering|8": 0.02667410400000009,
    "Origin 2000|column-wise|two-phase|16": 0.05243961999999896,
    "Origin 2000|column-wise|two-phase|2": 0.00815702400000002,
    "Origin 2000|column-wise|two-phase|4": 0.014386272000000004,
    "Origin 2000|column-wise|two-phase|8": 0.026978719999999935,
}


def _tolerance(machine: str, pattern: str, strategy: str) -> float:
    if pattern == "block-block" and strategy == "locking":
        return 0.35
    if machine == "Origin 2000":
        return 0.08
    return 0.01


def _subset():
    """A representative, fast subset: every (machine, strategy) pair at the
    largest process count for both patterns, plus a small-P column-wise
    point per pair."""
    picked = []
    for key in sorted(THREADED_MAKESPANS):
        machine, pattern, strategy, nprocs = key.split("|")
        if pattern == "column-wise" and nprocs in ("4", "16"):
            picked.append(key)
        elif pattern == "block-block" and nprocs == "16":
            picked.append(key)
    return picked


@pytest.mark.parametrize("key", _subset())
def test_engine_reproduces_threaded_makespan(key):
    machine, pattern, strategy, nprocs = key.split("|")
    record = run_column_wise_experiment(
        machine, M, N, int(nprocs), strategy, verify=False, pattern=pattern
    )
    expected = THREADED_MAKESPANS[key]
    tolerance = _tolerance(machine, pattern, strategy)
    assert record.makespan_seconds == pytest.approx(expected, rel=tolerance), (
        f"{key}: engine makespan {record.makespan_seconds:.6f}s deviates more "
        f"than {tolerance:.0%} from the threaded runner's {expected:.6f}s"
    )
