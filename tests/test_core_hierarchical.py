"""Hierarchical (two-level) two-phase aggregation tests.

The load-bearing property: because the merge priority is a fixed total order
over origins, node-local pre-merging followed by a global merge produces
byte-identical file contents AND per-byte provenance to the flat single-level
shuffle.  These tests pin that equivalence on the atomicity verifier suite's
workloads, plus the topology helpers and Info-hint plumbing.
"""

from __future__ import annotations

import pytest

from repro.core.aggregation import (
    choose_aggregators,
    choose_node_aggregators,
    merge_origin_runs,
    merge_pieces,
    node_leaders,
)
from repro.core.executor import AtomicWriteExecutor, CollectiveReadExecutor
from repro.core.rank_ordering import LOWER_RANK_WINS
from repro.core.registry import default_registry
from repro.core.strategies import (
    HierarchicalTwoPhaseStrategy,
    TwoPhaseStrategy,
    strategy_by_name,
)
from repro.fs import ParallelFileSystem
from repro.io.info import Info
from repro.patterns.partition import block_block_views, column_wise_views
from repro.patterns.workloads import rank_pattern_bytes
from repro.verify.atomicity import check_coverage, check_mpi_atomicity
from tests.conftest import fast_fs_config


def run_views(strategy, views):
    fs = ParallelFileSystem(fast_fs_config())
    executor = AtomicWriteExecutor(fs, strategy, filename="hier.dat")
    return executor.run(len(views), lambda rank, P: views[rank], rank_pattern_bytes)


class TestTopologyHelpers:
    def test_node_leaders_block_mapping(self):
        assert node_leaders(8, 4) == [0, 4]
        assert node_leaders(10, 4) == [0, 4, 8]  # ragged last node
        assert node_leaders(3, 8) == [0]

    def test_node_leaders_validation(self):
        with pytest.raises(ValueError):
            node_leaders(0, 4)
        with pytest.raises(ValueError):
            node_leaders(8, 0)

    def test_aggregators_are_node_leaders(self):
        aggs = choose_node_aggregators(32, 4, 3)
        leaders = set(node_leaders(32, 4))
        assert set(aggs) <= leaders
        assert aggs[0] == 0  # rank 0's node always included
        assert len(aggs) == 3

    def test_want_clamped_to_node_count(self):
        # Asking for more aggregator nodes than exist falls back to all nodes.
        assert choose_node_aggregators(8, 4, 100) == [0, 4]


class TestMergeOriginRuns:
    def test_flat_equals_grouped(self):
        """Merging per-group then re-merging the results equals one flat
        merge — the associativity that makes two-level aggregation exact."""
        runs = [
            (0, 0, b"aaaaaaaa"),
            (1, 4, b"bbbbbbbb"),
            (2, 2, b"cccc"),
            (3, 10, b"dddddd"),
            (0, 14, b"ee"),
        ]
        flat = merge_origin_runs(runs)
        for split in (2, 3):
            tier1 = merge_origin_runs(runs[:split]) + merge_origin_runs(runs[split:])
            two_level = merge_origin_runs(
                [(r.origin, r.offset, r.data) for r in tier1]
            )
            assert [(r.origin, r.offset, r.data) for r in two_level] == [
                (r.origin, r.offset, r.data) for r in flat
            ]

    def test_matches_merge_pieces(self):
        pieces_by_sender = [
            (0, [(0, b"xxxx"), (8, b"xx")]),
            (2, [(2, b"yyyy")]),
        ]
        via_runs = merge_origin_runs(
            [(rank, off, d) for rank, sent in pieces_by_sender for off, d in sent]
        )
        via_pieces = merge_pieces(pieces_by_sender)
        assert [(r.origin, r.offset, r.data) for r in via_runs] == [
            (r.origin, r.offset, r.data) for r in via_pieces
        ]


WORKLOADS = {
    "column-wise": lambda: column_wise_views(M=8, N=256, P=8, R=4),
    "block-block": lambda: block_block_views(M=24, N=24, Pr=3, Pc=3, R=2),
    "full-file": lambda: [[(0, 1024)] for _ in range(6)],
}


class TestByteIdenticalToFlat:
    @pytest.mark.parametrize("workload", list(WORKLOADS))
    def test_contents_and_provenance_match_single_level(self, workload):
        views = WORKLOADS[workload]()
        flat = run_views(TwoPhaseStrategy(), views)
        hier = run_views(HierarchicalTwoPhaseStrategy(ranks_per_node=3), views)
        assert hier.file.store.snapshot() == flat.file.store.snapshot()
        size = flat.file.store.size
        assert (
            hier.file.store.writers(0, size).tolist()
            == flat.file.store.writers(0, size).tolist()
        )
        assert check_mpi_atomicity(hier.file.store, hier.regions).ok
        assert check_coverage(hier.file.store, hier.regions).ok

    def test_alternate_policy_still_matches(self):
        views = column_wise_views(M=4, N=128, P=8, R=4)
        flat = run_views(TwoPhaseStrategy(policy=LOWER_RANK_WINS), views)
        hier = run_views(
            HierarchicalTwoPhaseStrategy(policy=LOWER_RANK_WINS, ranks_per_node=4),
            views,
        )
        assert hier.file.store.snapshot() == flat.file.store.snapshot()

    @pytest.mark.parametrize("ppn", [1, 2, 8, 64])
    def test_any_node_shape(self, ppn):
        """ppn=1 (every rank a leader) and ppn >= P (one node) are the
        degenerate topologies; both must still match the flat result."""
        views = column_wise_views(M=8, N=256, P=8, R=4)
        flat = run_views(TwoPhaseStrategy(), views)
        hier = run_views(HierarchicalTwoPhaseStrategy(ranks_per_node=ppn), views)
        assert hier.file.store.snapshot() == flat.file.store.snapshot()


def run_read_views(strategy, views):
    """Seed one checkpoint, then read it back collectively under ``strategy``."""
    fs = ParallelFileSystem(fast_fs_config())
    seed = AtomicWriteExecutor(fs, TwoPhaseStrategy(), filename="hier.dat")
    seed.run(len(views), lambda rank, P: views[rank], rank_pattern_bytes)
    reader = CollectiveReadExecutor(fs, strategy, filename="hier.dat")
    return reader.run(len(views), lambda rank, P: views[rank])


class TestReadByteIdenticalToFlat:
    """The read-side twin of :class:`TestByteIdenticalToFlat`: the two-level
    scatter (aggregators -> node leaders -> consumers) must deliver every rank
    exactly the stream the flat single-level scatter delivers."""

    @pytest.mark.parametrize("workload", list(WORKLOADS))
    def test_delivered_streams_match_single_level(self, workload):
        views = WORKLOADS[workload]()
        flat = run_read_views(TwoPhaseStrategy(), views)
        hier = run_read_views(
            HierarchicalTwoPhaseStrategy(ranks_per_node=3), views
        )
        assert hier.data == flat.data
        for h, f in zip(hier.outcomes, flat.outcomes):
            assert h.bytes_returned == f.bytes_returned
            assert h.bytes_requested == f.bytes_requested

    def test_leader_role_populated(self):
        # One global aggregator + 4-rank nodes: ranks 4 (and every later
        # leader) relay without fetching, exercising the middle hop.
        views = column_wise_views(M=8, N=256, P=8, R=4)
        flat = run_read_views(TwoPhaseStrategy(), views)
        hier = run_read_views(
            HierarchicalTwoPhaseStrategy(num_aggregators=1, ranks_per_node=4),
            views,
        )
        assert hier.data == flat.data
        phases = {o.my_phase for o in hier.outcomes}
        assert phases == {0, 1, 2}  # aggregator, pure leader, plain consumer
        leaders = [o for o in hier.outcomes if o.my_phase == 1]
        assert leaders and all(o.bytes_read == 0 for o in leaders)

    @pytest.mark.parametrize("ppn", [1, 2, 8, 64])
    def test_any_node_shape(self, ppn):
        views = column_wise_views(M=8, N=256, P=8, R=4)
        flat = run_read_views(TwoPhaseStrategy(), views)
        hier = run_read_views(
            HierarchicalTwoPhaseStrategy(ranks_per_node=ppn), views
        )
        assert hier.data == flat.data


class TestHierarchicalPlumbing:
    def test_reports_three_phases(self):
        views = column_wise_views(M=8, N=256, P=8, R=4)
        # One aggregator node out of two, so rank 4 is a leader that is NOT
        # a global aggregator — all three phase roles are populated.
        result = run_views(
            HierarchicalTwoPhaseStrategy(num_aggregators=1, ranks_per_node=4), views
        )
        assert all(o.phases == 3 for o in result.outcomes)
        phases = {o.my_phase for o in result.outcomes}
        assert phases == {0, 1, 2}  # plain ranks, leaders, global aggregators
        assert result.outcomes[0].extra["node_leaders"] == 2.0

    def test_registered_and_constructible_by_name(self):
        strategy = strategy_by_name("two-phase-hier", ranks_per_node=16)
        assert isinstance(strategy, HierarchicalTwoPhaseStrategy)
        assert strategy.ranks_per_node == 16

    def test_from_info_reads_topology_hints(self):
        info = Info({"cb_nodes": "4", "cb_ppn": "32", "cb_buffer_size": "4096"})
        strategy = default_registry.create_from_info("two-phase-hier", info)
        assert isinstance(strategy, HierarchicalTwoPhaseStrategy)
        assert strategy.num_aggregators == 4
        assert strategy.ranks_per_node == 32
        assert strategy.cb_buffer_size == 4096

    def test_default_aggregator_count_is_node_count(self):
        strategy = HierarchicalTwoPhaseStrategy(ranks_per_node=8)
        assert strategy._aggregator_count(64, 1 << 20) == 8
        # Explicit hints still win, as in the flat strategy.
        hinted = HierarchicalTwoPhaseStrategy(num_aggregators=3, ranks_per_node=8)
        assert hinted._aggregator_count(64, 1 << 20) == 3

    def test_rejects_bad_ranks_per_node(self):
        with pytest.raises(ValueError):
            HierarchicalTwoPhaseStrategy(ranks_per_node=0)

    def test_flat_election_unchanged(self):
        # The base class election hook must stay the evenly spaced rank pick.
        assert TwoPhaseStrategy()._elect(8, 4) == choose_aggregators(8, 4)
