"""Unit tests for the atomicity strategies and the concurrent-write executor."""

from __future__ import annotations

import pytest

from repro.core.executor import AtomicWriteExecutor, default_data_factory
from repro.core.regions import FileRegionSet
from repro.core.strategies import (
    STRATEGY_NAMES,
    GraphColoringStrategy,
    LockingStrategy,
    NoAtomicityStrategy,
    RankOrderingStrategy,
    TwoPhaseStrategy,
    strategy_by_name,
)
from repro.core.rank_ordering import LOWER_RANK_WINS
from repro.fs import ParallelFileSystem
from repro.fs.errors import LockingUnsupported
from repro.mpi import SPMDExecutionError
from repro.patterns.partition import column_wise_views
from repro.verify.atomicity import check_coverage, check_mpi_atomicity
from tests.conftest import fast_fs_config
from repro.fs.filesystem import LockProtocol


VIEWS = column_wise_views(M=16, N=128, P=4, R=4)


def run(strategy, fs=None, nprocs=4, views=None, data_factory=default_data_factory):
    fs = fs or ParallelFileSystem(fast_fs_config())
    views = views or VIEWS
    executor = AtomicWriteExecutor(fs, strategy, filename="t.dat")
    return executor.run(nprocs, lambda rank, P: views[rank], data_factory)


class TestStrategyFactory:
    def test_names(self):
        assert set(STRATEGY_NAMES) == {
            "locking",
            "graph-coloring",
            "rank-ordering",
            "two-phase",
            "two-phase-hier",
            "none",
        }

    def test_lookup(self):
        assert isinstance(strategy_by_name("locking"), LockingStrategy)
        assert isinstance(strategy_by_name("graph-coloring"), GraphColoringStrategy)
        assert isinstance(strategy_by_name("rank-ordering"), RankOrderingStrategy)
        assert isinstance(strategy_by_name("none"), NoAtomicityStrategy)
        assert isinstance(strategy_by_name("two-phase"), TwoPhaseStrategy)
        with pytest.raises(KeyError):
            strategy_by_name("no-such-strategy")

    def test_kwargs_forwarded(self):
        s = strategy_by_name("rank-ordering", policy=LOWER_RANK_WINS)
        assert s.policy is LOWER_RANK_WINS


class TestDataValidation:
    def test_data_length_mismatch_rejected(self):
        fs = ParallelFileSystem(fast_fs_config())
        executor = AtomicWriteExecutor(fs, LockingStrategy(), "t.dat")
        with pytest.raises(SPMDExecutionError) as excinfo:
            executor.run(2, lambda rank, P: [(0, 10)], lambda rank, n: b"short")
        assert any(isinstance(e, ValueError) for e in excinfo.value.failures.values())

    def test_zero_procs_rejected(self):
        fs = ParallelFileSystem(fast_fs_config())
        executor = AtomicWriteExecutor(fs, LockingStrategy(), "t.dat")
        with pytest.raises(ValueError):
            executor.run(0, lambda rank, P: [])


class TestLockingStrategy:
    def test_atomic_and_complete(self):
        result = run(LockingStrategy())
        assert check_mpi_atomicity(result.file.store, result.regions).ok
        assert check_coverage(result.file.store, result.regions).ok

    def test_outcome_accounting(self):
        result = run(LockingStrategy())
        for rank, outcome in enumerate(result.outcomes):
            assert outcome.strategy == "locking"
            assert outcome.rank == rank
            assert outcome.locks_acquired == 1
            assert outcome.bytes_written == outcome.bytes_requested
            assert outcome.extra["locked_bytes"] >= outcome.bytes_requested

    def test_locks_whole_extent_not_just_view(self):
        """Section 3.2: for column-wise views the lock covers nearly the
        whole file, far more than the bytes actually written."""
        result = run(LockingStrategy())
        interior = result.outcomes[1]
        assert interior.extra["locked_bytes"] > 2 * interior.bytes_requested

    def test_requires_lock_support(self):
        fs = ParallelFileSystem(fast_fs_config(LockProtocol.NONE))
        with pytest.raises(SPMDExecutionError) as excinfo:
            run(LockingStrategy(), fs=fs)
        assert any(
            isinstance(e, LockingUnsupported) for e in excinfo.value.failures.values()
        )

    def test_empty_view_ok(self):
        views = [[(0, 16)], []]
        result = run(LockingStrategy(), nprocs=2, views=views)
        assert result.outcomes[1].bytes_written == 0
        assert result.outcomes[1].locks_acquired == 0

    def test_works_with_distributed_locks(self):
        fs = ParallelFileSystem(fast_fs_config(LockProtocol.DISTRIBUTED))
        result = run(LockingStrategy(), fs=fs)
        assert check_mpi_atomicity(result.file.store, result.regions).ok


class TestGraphColoringStrategy:
    def test_atomic_and_complete(self):
        result = run(GraphColoringStrategy())
        assert check_mpi_atomicity(result.file.store, result.regions).ok
        assert check_coverage(result.file.store, result.regions).ok

    def test_two_phases_for_column_wise(self):
        result = run(GraphColoringStrategy())
        for rank, outcome in enumerate(result.outcomes):
            assert outcome.phases == 2
            assert outcome.colors_used == 2
            assert outcome.my_phase == rank % 2

    def test_no_locks_used(self):
        fs = ParallelFileSystem(fast_fs_config(LockProtocol.NONE))
        result = run(GraphColoringStrategy(), fs=fs)
        assert check_mpi_atomicity(result.file.store, result.regions).ok
        assert all(o.locks_acquired == 0 for o in result.outcomes)

    def test_single_phase_when_no_overlap(self):
        views = [[(i * 100, 50)] for i in range(4)]
        result = run(GraphColoringStrategy(), views=views)
        assert all(o.phases == 1 for o in result.outcomes)

    def test_full_volume_written(self):
        result = run(GraphColoringStrategy())
        assert result.total_bytes_written == result.total_bytes_requested


class TestRankOrderingStrategy:
    def test_atomic_and_complete(self):
        result = run(RankOrderingStrategy())
        assert check_mpi_atomicity(result.file.store, result.regions).ok
        assert check_coverage(result.file.store, result.regions).ok

    def test_overlaps_written_by_highest_rank(self):
        result = run(RankOrderingStrategy())
        store = result.file.store
        regions = result.regions
        for i in range(3):
            overlap = regions[i].overlap_region(regions[i + 1])
            for iv in overlap:
                assert store.distinct_writers(iv.start, iv.length) == (i + 1,)

    def test_lower_rank_wins_variant(self):
        result = run(RankOrderingStrategy(policy=LOWER_RANK_WINS))
        store = result.file.store
        regions = result.regions
        assert check_mpi_atomicity(store, regions).ok
        for i in range(3):
            overlap = regions[i].overlap_region(regions[i + 1])
            for iv in overlap:
                assert store.distinct_writers(iv.start, iv.length) == (i,)

    def test_volume_reduction(self):
        result = run(RankOrderingStrategy())
        assert result.total_bytes_written < result.total_bytes_requested
        surrendered = sum(o.bytes_surrendered for o in result.outcomes)
        assert result.total_bytes_written + surrendered == result.total_bytes_requested

    def test_no_locks_used(self):
        fs = ParallelFileSystem(fast_fs_config(LockProtocol.NONE))
        result = run(RankOrderingStrategy(), fs=fs)
        assert check_mpi_atomicity(result.file.store, result.regions).ok

    def test_data_placement_correct(self):
        """Each byte that survives trimming carries the winning rank's data,
        taken from the right position of that rank's buffer."""
        def patterned(rank, nbytes):
            return bytes((rank * 37 + i) % 251 for i in range(nbytes))

        result = run(RankOrderingStrategy(), data_factory=patterned)
        store = result.file.store
        for region in result.regions:
            data = patterned(region.rank, region.total_bytes)
            for buf_off, file_off, length in region.buffer_map():
                written_by = store.distinct_writers(file_off, length)
                if written_by == (region.rank,):
                    assert store.read(file_off, length) == data[buf_off : buf_off + length]


class TestExecutorResult:
    def test_bandwidth_and_makespan(self):
        result = run(RankOrderingStrategy())
        assert result.makespan > 0
        assert result.bandwidth() > 0
        assert result.nprocs == 4

    def test_default_data_factory(self):
        assert default_data_factory(0, 4) == b"AAAA"
        assert default_data_factory(2, 2) == b"CC"
