"""Tests for the central and distributed (token) byte-range lock managers."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.intervals import IntervalSet
from repro.fs.errors import InvalidRequest, LockViolation
from repro.fs.lockmanager import CentralLockManager, LockMode
from repro.fs.tokens import DistributedLockManager


class TestCentralLockManagerBasics:
    def test_acquire_release(self):
        lm = CentralLockManager()
        lock, t = lm.acquire(owner=0, start=0, stop=100)
        assert t == pytest.approx(0.0)
        assert len(lm.held_locks()) == 1
        lm.release(lock)
        assert lm.held_locks() == []

    def test_request_latency_charged(self):
        lm = CentralLockManager(request_latency=0.01)
        _, t = lm.acquire(owner=0, start=0, stop=10, now=1.0)
        assert t == pytest.approx(1.01)

    def test_disjoint_ranges_concurrent(self):
        lm = CentralLockManager()
        a, _ = lm.acquire(owner=0, start=0, stop=10)
        b, _ = lm.acquire(owner=1, start=10, stop=20)
        assert len(lm.held_locks()) == 2
        lm.release(a)
        lm.release(b)

    def test_shared_read_locks_coexist(self):
        lm = CentralLockManager()
        a, _ = lm.acquire(owner=0, start=0, stop=10, mode=LockMode.SHARED)
        b, _ = lm.acquire(owner=1, start=0, stop=10, mode=LockMode.SHARED)
        assert len(lm.held_locks()) == 2
        lm.release(a)
        lm.release(b)

    def test_same_owner_reentrant_overlap(self):
        lm = CentralLockManager()
        a, _ = lm.acquire(owner=0, start=0, stop=10)
        b, _ = lm.acquire(owner=0, start=5, stop=15)  # own locks never conflict
        lm.release(a)
        lm.release(b)

    def test_double_release_rejected(self):
        lm = CentralLockManager()
        lock, _ = lm.acquire(owner=0, start=0, stop=10)
        lm.release(lock)
        with pytest.raises(LockViolation):
            lm.release(lock)

    def test_invalid_range_rejected(self):
        lm = CentralLockManager()
        with pytest.raises(InvalidRequest):
            lm.acquire(owner=0, start=10, stop=5)
        with pytest.raises(InvalidRequest):
            lm.acquire(owner=0, start=0, stop=5, mode="bogus")

    def test_release_all(self):
        lm = CentralLockManager()
        lm.acquire(owner=3, start=0, stop=10)
        lm.acquire(owner=3, start=20, stop=30)
        lm.acquire(owner=4, start=40, stop=50)
        assert lm.release_all(3) == 2
        assert len(lm.held_locks()) == 1


class TestCentralLockManagerBlocking:
    def test_conflicting_lock_blocks_until_release(self):
        lm = CentralLockManager()
        first, _ = lm.acquire(owner=0, start=0, stop=100)
        order = []

        def second_locker():
            order.append("requesting")
            lock, _ = lm.acquire(owner=1, start=50, stop=150, timeout=10)
            order.append("granted")
            lm.release(lock)

        t = threading.Thread(target=second_locker)
        t.start()
        time.sleep(0.05)
        assert order == ["requesting"]  # still blocked
        lm.release(first, now=0.5)
        t.join(timeout=5)
        assert order == ["requesting", "granted"]
        assert lm.wait_count == 1

    def test_virtual_release_time_propagates(self):
        """A later request is granted no earlier (in virtual time) than the
        conflicting lock's release, even if the real-time race is over."""
        lm = CentralLockManager()
        lock, _ = lm.acquire(owner=0, start=0, stop=100, now=0.0)
        lm.release(lock, now=7.5)
        _, grant = lm.acquire(owner=1, start=50, stop=60, now=1.0)
        assert grant >= 7.5

    def test_no_propagation_for_disjoint_history(self):
        lm = CentralLockManager()
        lock, _ = lm.acquire(owner=0, start=0, stop=10, now=0.0)
        lm.release(lock, now=9.0)
        _, grant = lm.acquire(owner=1, start=50, stop=60, now=1.0)
        assert grant == pytest.approx(1.0)

    def test_shared_locks_do_not_serialise(self):
        lm = CentralLockManager()
        a, _ = lm.acquire(owner=0, start=0, stop=10, mode=LockMode.SHARED, now=0.0)
        lm.release(a, now=5.0)
        _, grant = lm.acquire(owner=1, start=0, stop=10, mode=LockMode.SHARED, now=1.0)
        assert grant == pytest.approx(1.0)

    def test_reset_history(self):
        lm = CentralLockManager()
        lock, _ = lm.acquire(owner=0, start=0, stop=10)
        lm.release(lock, now=5.0)
        lm.reset_history()
        _, grant = lm.acquire(owner=1, start=0, stop=10, now=0.0)
        assert grant == pytest.approx(0.0)

    def test_timeout(self):
        lm = CentralLockManager()
        lm.acquire(owner=0, start=0, stop=10)
        with pytest.raises(TimeoutError):
            lm.acquire(owner=1, start=0, stop=10, timeout=0.05)


class TestEngineTaskBlocking:
    """Engine tasks park on the manager's waiter queue instead of a
    condition variable, and releases wake only eligible requests."""

    def test_conflicting_engine_tasks_serialise(self):
        from repro.core.engine import Engine, current_task, sequence_point

        lm = CentralLockManager()
        order = []

        def locker(owner):
            lock, grant = lm.acquire(owner=owner, start=0, stop=100, now=0.0)
            order.append(("granted", owner))
            # Yield while holding the lock, so the peers reach the manager
            # and park on its waiter queue instead of never contending.
            current_task().clock.advance(10.0)
            sequence_point()
            lm.release(lock, now=grant + 1.0)

        engine = Engine()
        for owner in range(4):
            engine.spawn(lambda owner=owner: locker(owner))
        engine.run()
        assert order == [("granted", o) for o in range(4)]
        assert lm.held_locks() == []
        assert lm.wait_count == 3

    def test_shared_engine_waiters_wake_together(self):
        from repro.core.engine import Engine

        lm = CentralLockManager()
        granted = []

        def writer():
            lock, _ = lm.acquire(owner=0, start=0, stop=10, now=0.0)
            lm.release(lock, now=1.0)

        def reader(owner):
            lock, _ = lm.acquire(owner=owner, start=0, stop=10,
                                 mode=LockMode.SHARED, now=0.0)
            granted.append(owner)
            lm.release(lock, now=2.0)

        engine = Engine()
        engine.spawn(writer)
        for owner in (1, 2, 3):
            engine.spawn(lambda owner=owner: reader(owner))
        engine.run()
        assert sorted(granted) == [1, 2, 3]

    def test_distributed_manager_engine_tasks_serialise(self):
        from repro.core.engine import Engine

        lm = DistributedLockManager(acquire_latency=0.01)
        grants = []

        def locker(owner):
            lock, grant = lm.acquire(owner=owner, start=0, stop=50, now=0.0)
            grants.append((owner, grant))
            lm.release(lock, now=grant + 0.5)

        engine = Engine()
        for owner in range(3):
            engine.spawn(lambda owner=owner: locker(owner))
        engine.run()
        assert [o for o, _ in grants] == [0, 1, 2]
        # Serialisation is visible in virtual time: each grant waits for the
        # previous virtual release.
        assert grants[1][1] >= grants[0][1] + 0.5
        assert grants[2][1] >= grants[1][1] + 0.5


class TestDistributedLockManager:
    def test_first_acquisition_costs_token_round_trip(self):
        lm = DistributedLockManager(acquire_latency=0.01, local_latency=0.0001)
        _, grant = lm.acquire(owner=0, start=0, stop=100, now=0.0)
        assert grant == pytest.approx(0.01)
        assert lm.token_acquisition_count == 1
        assert lm.local_grant_count == 0

    def test_cached_token_makes_relocking_cheap(self):
        lm = DistributedLockManager(acquire_latency=0.01, local_latency=0.0001)
        lock, _ = lm.acquire(owner=0, start=0, stop=100, now=0.0)
        lm.release(lock, now=0.02)
        _, grant = lm.acquire(owner=0, start=10, stop=50, now=0.02)
        assert grant == pytest.approx(0.02 + 0.0001)
        assert lm.local_grant_count == 1

    def test_revocation_counts_and_costs(self):
        lm = DistributedLockManager(acquire_latency=0.01, revoke_latency=0.005)
        a, _ = lm.acquire(owner=0, start=0, stop=100, now=0.0)
        lm.release(a, now=0.05)
        _, grant = lm.acquire(owner=1, start=50, stop=150, now=0.0)
        # Must wait for owner 0's virtual release (0.05), pay the token
        # acquisition plus one revocation.
        assert grant == pytest.approx(0.05 + 0.01 + 0.005)
        assert lm.revocation_count == 1
        # Owner 0's token no longer covers the revoked part.
        assert not lm.token_of(0).covers(IntervalSet.single(50, 100))
        assert lm.token_of(0).covers(IntervalSet.single(0, 50))

    def test_tokens_give_exclusive_ranges(self):
        lm = DistributedLockManager()
        a, _ = lm.acquire(owner=0, start=0, stop=50)
        lm.release(a)
        b, _ = lm.acquire(owner=1, start=50, stop=100)
        lm.release(b)
        assert lm.token_of(0).covers(IntervalSet.single(0, 50))
        assert lm.token_of(1).covers(IntervalSet.single(50, 100))
        assert not lm.token_of(0).overlaps(lm.token_of(1))

    def test_active_conflicting_lock_blocks(self):
        lm = DistributedLockManager()
        first, _ = lm.acquire(owner=0, start=0, stop=100)
        granted = []

        def second():
            lock, _ = lm.acquire(owner=1, start=0, stop=10, timeout=10)
            granted.append(lock)

        t = threading.Thread(target=second)
        t.start()
        time.sleep(0.05)
        assert granted == []
        lm.release(first, now=1.0)
        t.join(timeout=5)
        assert len(granted) == 1

    def test_relinquish_tokens(self):
        lm = DistributedLockManager()
        lock, _ = lm.acquire(owner=0, start=0, stop=10)
        lm.release(lock)
        lm.relinquish_tokens(0)
        assert lm.token_of(0).is_empty()

    def test_double_release_rejected(self):
        lm = DistributedLockManager()
        lock, _ = lm.acquire(owner=0, start=0, stop=10)
        lm.release(lock)
        with pytest.raises(LockViolation):
            lm.release(lock)

    def test_release_all(self):
        lm = DistributedLockManager()
        lm.acquire(owner=0, start=0, stop=10)
        lm.acquire(owner=0, start=20, stop=30)
        assert lm.release_all(0) == 2
        assert lm.held_locks() == []

    def test_invalid_inputs(self):
        lm = DistributedLockManager()
        with pytest.raises(InvalidRequest):
            lm.acquire(owner=0, start=5, stop=1)
        with pytest.raises(ValueError):
            DistributedLockManager(acquire_latency=-1)
