"""Tests for the file system facade, clients, handles and presets."""

from __future__ import annotations

import pytest

from repro.fs import (
    FSClient,
    FSConfig,
    LockProtocol,
    ParallelFileSystem,
    PRESET_NAMES,
    enfs_config,
    gpfs_config,
    preset,
    xfs_config,
)
from repro.fs.errors import FileExists, FileNotFound, InvalidRequest, LockingUnsupported
from repro.fs.lockmanager import CentralLockManager
from repro.fs.tokens import DistributedLockManager
from tests.conftest import fast_fs_config


class TestNamespace:
    def test_create_lookup_unlink(self, fast_fs):
        f = fast_fs.create("a.dat")
        assert fast_fs.lookup("a.dat") is f
        assert fast_fs.exists("a.dat")
        fast_fs.unlink("a.dat")
        assert not fast_fs.exists("a.dat")

    def test_create_idempotent(self, fast_fs):
        a = fast_fs.create("x")
        b = fast_fs.create("x")
        assert a is b

    def test_create_exclusive(self, fast_fs):
        fast_fs.create("x")
        with pytest.raises(FileExists):
            fast_fs.create("x", exist_ok=False)

    def test_lookup_missing(self, fast_fs):
        with pytest.raises(FileNotFound):
            fast_fs.lookup("missing")
        with pytest.raises(FileNotFound):
            fast_fs.unlink("missing")

    def test_list_files(self, fast_fs):
        fast_fs.create("b")
        fast_fs.create("a")
        assert fast_fs.list_files() == ["a", "b"]


class TestLockManagerSelection:
    def test_central(self):
        fs = ParallelFileSystem(fast_fs_config(LockProtocol.CENTRAL))
        assert isinstance(fs.create("f").lock_manager, CentralLockManager)

    def test_distributed(self):
        fs = ParallelFileSystem(fast_fs_config(LockProtocol.DISTRIBUTED))
        assert isinstance(fs.create("f").lock_manager, DistributedLockManager)

    def test_none(self):
        fs = ParallelFileSystem(fast_fs_config(LockProtocol.NONE))
        fobj = fs.create("f")
        assert fobj.lock_manager is None
        with pytest.raises(LockingUnsupported):
            fobj.require_lock_manager()

    def test_unknown_protocol_rejected(self):
        cfg = FSConfig(lock_protocol="bogus")
        with pytest.raises(ValueError):
            ParallelFileSystem(cfg).create("f")


class TestClientDataPath:
    def test_write_read_roundtrip_cached(self, fast_fs):
        client = FSClient(fast_fs, client_id=0)
        handle = client.open("data")
        handle.write(0, b"hello world")
        assert handle.read(0, 11) == b"hello world"
        handle.sync()
        assert fast_fs.lookup("data").store.read(0, 11) == b"hello world"

    def test_direct_write_bypasses_cache(self, fast_fs):
        client = FSClient(fast_fs, client_id=2)
        handle = client.open("data")
        handle.write(0, b"direct", direct=True)
        # Visible on the servers immediately, no sync needed.
        assert fast_fs.lookup("data").store.read(0, 6) == b"direct"
        assert fast_fs.lookup("data").store.distinct_writers(0, 6) == (2,)

    def test_write_behind_not_visible_until_sync(self, fast_fs):
        client = FSClient(fast_fs, client_id=0)
        handle = client.open("data")
        handle.write(0, b"pending")
        assert fast_fs.lookup("data").store.size == 0
        handle.sync()
        assert fast_fs.lookup("data").store.size == 7

    def test_close_flushes(self, fast_fs):
        client = FSClient(fast_fs, client_id=0)
        handle = client.open("data")
        handle.write(0, b"bye")
        handle.close()
        assert fast_fs.lookup("data").store.read(0, 3) == b"bye"

    def test_uncached_fs_writes_through(self):
        fs = ParallelFileSystem(fast_fs_config(client_caching=False))
        handle = FSClient(fs, 0).open("f")
        handle.write(0, b"now")
        assert fs.lookup("f").store.read(0, 3) == b"now"

    def test_closed_handle_rejected(self, fast_fs):
        handle = FSClient(fast_fs, 0).open("f")
        handle.close()
        with pytest.raises(InvalidRequest):
            handle.write(0, b"x")
        with pytest.raises(InvalidRequest):
            handle.read(0, 1)

    def test_invalid_args(self, fast_fs):
        handle = FSClient(fast_fs, 0).open("f")
        with pytest.raises(InvalidRequest):
            handle.write(-1, b"x")
        with pytest.raises(InvalidRequest):
            handle.read(0, -1)

    def test_handle_reuse_per_name(self, fast_fs):
        client = FSClient(fast_fs, 0)
        assert client.open("f") is client.open("f")

    def test_open_without_create(self, fast_fs):
        client = FSClient(fast_fs, 0)
        with pytest.raises(FileNotFound):
            client.open("nope", create=False)

    def test_size_property(self, fast_fs):
        handle = FSClient(fast_fs, 0).open("f")
        handle.write(100, b"abc", direct=True)
        assert handle.size == 103


class TestClientTiming:
    def test_write_advances_clock(self, fast_fs):
        client = FSClient(fast_fs, 0)
        handle = client.open("f")
        before = client.clock.now
        handle.write(0, b"x" * 4096, direct=True)
        assert client.clock.now > before

    def test_cached_write_cheaper_than_direct(self, fast_fs):
        c1 = FSClient(fast_fs, 0)
        h1 = c1.open("f1")
        h1.write(0, b"x" * 4096)
        cached_cost = c1.clock.now

        c2 = FSClient(fast_fs, 1)
        h2 = c2.open("f2")
        h2.write(0, b"x" * 4096, direct=True)
        direct_cost = c2.clock.now
        assert cached_cost < direct_cost

    def test_lock_wait_advances_clock(self, fast_fs):
        c1 = FSClient(fast_fs, 0)
        c2 = FSClient(fast_fs, 1)
        h1 = c1.open("shared")
        h2 = c2.open("shared")
        lock = h1.lock(0, 1000)
        c1.clock.advance(0.25)          # holder does work while locked
        h1.unlock(lock)
        lock2 = h2.lock(0, 1000)
        assert c2.clock.now >= 0.25     # waiter's virtual time reflects the wait
        h2.unlock(lock2)

    def test_unlock_all(self, fast_fs):
        handle = FSClient(fast_fs, 0).open("f")
        handle.lock(0, 10)
        handle.lock(20, 30)
        assert handle.unlock_all() == 2
        assert handle.unlock_all() == 0

    def test_locking_unsupported_raises(self, lockless_fs):
        handle = FSClient(lockless_fs, 0).open("f")
        with pytest.raises(LockingUnsupported):
            handle.lock(0, 10)


class TestPresets:
    def test_preset_lookup(self):
        for name in PRESET_NAMES:
            cfg = preset(name)
            assert cfg.name == name
        with pytest.raises(KeyError):
            preset("LUSTRE")

    def test_enfs_has_no_locking(self):
        cfg = enfs_config()
        assert not cfg.supports_locking()
        assert cfg.num_servers == 1

    def test_xfs_central_locking(self):
        cfg = xfs_config()
        assert cfg.lock_protocol == LockProtocol.CENTRAL
        assert cfg.supports_locking()

    def test_gpfs_distributed_locking(self):
        cfg = gpfs_config()
        assert cfg.lock_protocol == LockProtocol.DISTRIBUTED
        assert cfg.num_servers == 12

    def test_presets_build_working_filesystems(self):
        for name in PRESET_NAMES:
            fs = ParallelFileSystem(preset(name))
            handle = FSClient(fs, 0).open("t")
            handle.write(0, b"abc", direct=True)
            assert handle.read(0, 3, direct=True) == b"abc"

    def test_reset_accounting(self, fast_fs):
        handle = FSClient(fast_fs, 0).open("f")
        handle.write(0, b"x" * 100, direct=True)
        assert fast_fs.servers.total_requests() > 0
        fast_fs.reset_accounting()
        assert fast_fs.servers.total_requests() == 0
