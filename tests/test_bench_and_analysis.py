"""Tests for the analysis formulas, machine presets, results and figures helpers."""

from __future__ import annotations

import pytest

from repro.core.analysis import ColumnWiseCase, analyze_regions, estimate_column_wise
from repro.core.regions import build_region_sets
from repro.bench.figures import (
    figure1_ghost_overlap_counts,
    figure3_partition_summary,
    figure6_coloring_demo,
    figure7_rank_ordering_views,
    figure8_report,
)
from repro.bench.machines import ALL_MACHINES, machine_by_name, table1_rows
from repro.bench.harness import run_column_wise_experiment, strategies_for_machine
from repro.bench.results import ExperimentRecord, ResultTable, figure8_series, format_table
from repro.patterns.partition import column_wise_views


class TestColumnWiseCaseFormulas:
    def test_file_bytes(self):
        case = ColumnWiseCase(M=4096, N=8192, P=4, R=4)
        assert case.file_bytes == 32 * 1024 * 1024

    def test_overlapped_bytes(self):
        case = ColumnWiseCase(M=8, N=64, P=4, R=4)
        assert case.overlapped_bytes == 3 * 4 * 8
        regions = build_region_sets(column_wise_views(8, 64, 4, 4))
        measured = analyze_regions(regions)
        assert measured["overlapped_bytes"] == case.overlapped_bytes

    def test_total_requested_matches_views(self):
        case = ColumnWiseCase(M=8, N=64, P=4, R=4)
        regions = build_region_sets(column_wise_views(8, 64, 4, 4))
        assert sum(r.total_bytes for r in regions) == case.total_requested_bytes

    def test_locked_bytes_nearly_whole_file(self):
        case = ColumnWiseCase(M=4096, N=8192, P=16, R=4)
        assert case.locked_bytes_per_process > 0.99 * case.file_bytes

    def test_single_process_degenerate(self):
        case = ColumnWiseCase(M=8, N=64, P=1, R=4)
        assert case.overlapped_bytes == 0
        assert case.locked_bytes_per_process == case.file_bytes

    def test_invalid(self):
        with pytest.raises(ValueError):
            ColumnWiseCase(M=0, N=1, P=1, R=0)
        with pytest.raises(ValueError):
            ColumnWiseCase(M=4, N=16, P=8, R=4)


class TestStrategyEstimates:
    def test_ordering_of_relative_times(self):
        case = ColumnWiseCase(M=4096, N=32768, P=8, R=4)
        est = estimate_column_wise(case)
        assert est["locking"].relative_time() > est["graph-coloring"].relative_time()
        assert est["graph-coloring"].relative_time() > est["rank-ordering"].relative_time()

    def test_rank_ordering_transfers_least(self):
        case = ColumnWiseCase(M=128, N=8192, P=8, R=4)
        est = estimate_column_wise(case)
        assert est["rank-ordering"].bytes_transferred == case.file_bytes
        assert est["locking"].bytes_transferred == case.total_requested_bytes
        assert est["graph-coloring"].parallel_steps == 2

    def test_analyze_regions_rank_ordering_bytes(self):
        regions = build_region_sets(column_wise_views(8, 64, 4, 4))
        stats = analyze_regions(regions)
        assert stats["rank_ordering_bytes"] == 8 * 64
        assert stats["surrendered_bytes"] == stats["total_requested_bytes"] - 8 * 64
        assert 0 < stats["mean_extent_lock_fraction"] <= 1.0


class TestMachines:
    def test_table1_contains_three_machines(self):
        rows = table1_rows()
        assert len(rows) == 3
        assert {r["file_system"] for r in rows} == {"ENFS", "XFS", "GPFS"}
        cplant = next(r for r in rows if r["machine"] == "Cplant")
        assert cplant["io_servers"] == "12"
        assert cplant["peak_io_bandwidth"] == "50 MB/s"

    def test_machine_lookup(self):
        assert machine_by_name("cplant").file_system == "ENFS"
        assert machine_by_name("GPFS").name == "IBM SP"
        with pytest.raises(KeyError):
            machine_by_name("cray")

    def test_strategy_filtering_for_enfs(self):
        cplant = machine_by_name("Cplant")
        sp = machine_by_name("IBM SP")
        all_three = ("locking", "graph-coloring", "rank-ordering")
        assert strategies_for_machine(cplant, all_three) == ["graph-coloring", "rank-ordering"]
        assert strategies_for_machine(sp, all_three) == list(all_three)

    def test_configs_buildable(self):
        for m in ALL_MACHINES:
            cfg = m.make_fs_config()
            assert cfg.name == m.file_system
            assert cfg.supports_locking() == m.supports_locking


class TestResultsTable:
    def _record(self, **kw):
        base = dict(
            machine="IBM SP", file_system="GPFS", array_label="32MB", M=64, N=8192,
            nprocs=4, strategy="locking", bytes_requested=1 << 20, bytes_written=1 << 20,
            makespan_seconds=0.5, atomic_ok=True,
        )
        base.update(kw)
        return ExperimentRecord(**base)

    def test_bandwidth(self):
        r = self._record(bytes_requested=2 * 1024 * 1024, makespan_seconds=2.0)
        assert r.bandwidth_mb_per_s == pytest.approx(1.0)

    def test_filter_and_series(self):
        table = ResultTable([
            self._record(strategy="locking", nprocs=4),
            self._record(strategy="locking", nprocs=8, makespan_seconds=0.4),
            self._record(strategy="rank-ordering", nprocs=4, makespan_seconds=0.1),
        ])
        assert len(table.filter(strategy="locking")) == 2
        series = figure8_series(table, "IBM SP", "32MB")
        assert [p for p, _ in series["locking"]] == [4, 8]
        assert series["rank-ordering"][0][1] > series["locking"][0][1]

    def test_bandwidth_of_unique(self):
        table = ResultTable([self._record()])
        assert table.bandwidth_of(strategy="locking") == pytest.approx(2.0)
        assert table.bandwidth_of(strategy="rank-ordering") is None
        table.add(self._record())
        with pytest.raises(ValueError):
            table.bandwidth_of(strategy="locking")

    def test_format_table(self):
        table = ResultTable([self._record()])
        text = table.to_text(title="demo")
        assert "demo" in text and "locking" in text and "BW (MB/s)" in text
        assert format_table([], title="empty") == "empty\n(no data)\n"


class TestFiguresHelpers:
    def test_figure1_histogram(self):
        hist = figure1_ghost_overlap_counts(M=24, N=24, Pr=2, Pc=2, R=2)
        assert set(hist) == {1, 2, 4}
        assert sum(hist.values()) == 24 * 24

    def test_figure3_summary(self):
        rows = figure3_partition_summary(M=64, N=64, P=4, R=4)
        assert len(rows) == 8
        row_wise = [r for r in rows if r["pattern"] == "row-wise"]
        col_wise = [r for r in rows if r["pattern"] == "column-wise"]
        assert all(r["contiguous"] == "yes" for r in row_wise)
        assert all(r["contiguous"] == "no" for r in col_wise)

    def test_figure6_demo(self):
        demo = figure6_coloring_demo(M=8, N=64, P=4, R=4)
        assert demo["num_colors"] == 2
        assert demo["colors"] == [0, 1, 0, 1]
        assert demo["W"].tolist() == [
            [0, 1, 0, 0],
            [1, 0, 1, 0],
            [0, 1, 0, 1],
            [0, 0, 1, 0],
        ]

    def test_figure7_views(self):
        rows = figure7_rank_ordering_views(M=8, N=64, P=4, R=4)
        assert len(rows) == 4
        assert rows[3]["bytes surrendered"] == "0"
        assert int(rows[0]["columns after"]) < int(rows[0]["columns before"])

    def test_figure8_report_renders(self):
        record = ExperimentRecord(
            machine="Origin 2000", file_system="XFS", array_label="32MB", M=64, N=8192,
            nprocs=4, strategy="rank-ordering", bytes_requested=1 << 20,
            bytes_written=1 << 20, makespan_seconds=0.25, atomic_ok=True,
        )
        text = figure8_report(ResultTable([record]))
        assert "Origin 2000" in text and "rank-ordering" in text and "P=4" in text


class TestHarnessSmoke:
    def test_single_point_record(self):
        record = run_column_wise_experiment(
            "XFS", M=16, N=2048, nprocs=4, strategy="rank-ordering", array_label="tiny"
        )
        assert record.atomic_ok
        assert record.strategy == "rank-ordering"
        assert record.bandwidth_mb_per_s > 0
        assert record.bytes_written <= record.bytes_requested
        assert record.overlap_bytes > 0

    def test_locking_point_counts_lock_waits(self):
        record = run_column_wise_experiment(
            "XFS", M=16, N=2048, nprocs=4, strategy="locking", array_label="tiny"
        )
        assert record.atomic_ok
        assert record.lock_waits >= 0
        assert record.phases == 1

    def test_coloring_point_reports_phases(self):
        record = run_column_wise_experiment(
            "GPFS", M=16, N=2048, nprocs=4, strategy="graph-coloring", array_label="tiny"
        )
        assert record.atomic_ok
        assert record.phases == 2
