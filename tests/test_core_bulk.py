"""Engine-equivalence of the bulk-synchronous replay executor.

The whole value of :class:`~repro.core.bulk.BulkWriteExecutor` is that it is
NOT an approximation: virtual times, file bytes and per-byte provenance must
equal the engine path bit-for-bit.  These tests pin that equivalence.
"""

from __future__ import annotations

import pytest

from repro.core.autotune import AutoStrategy
from repro.core.bulk import BulkReadExecutor, BulkWriteExecutor
from repro.core.executor import AtomicWriteExecutor, CollectiveReadExecutor
from repro.core.strategies import (
    HierarchicalTwoPhaseStrategy,
    LockingStrategy,
    TwoPhaseStrategy,
)
from repro.fs import ParallelFileSystem
from repro.mpi.cost import CommCostModel
from repro.patterns.partition import block_block_views, column_wise_views
from repro.patterns.workloads import rank_pattern_bytes
from tests.conftest import fast_fs_config


def run_both(make_strategy, views, comm_cost=None):
    """Run the same workload through the engine and the bulk replay."""
    results = []
    for executor_cls in (AtomicWriteExecutor, BulkWriteExecutor):
        fs = ParallelFileSystem(fast_fs_config())
        executor = executor_cls(
            fs, make_strategy(), filename="bulk.dat", comm_cost=comm_cost
        )
        results.append(
            executor.run(len(views), lambda rank, P: views[rank], rank_pattern_bytes)
        )
    return results


def assert_equivalent(engine, bulk):
    assert bulk.makespan == engine.makespan  # exact float equality, no tolerance
    assert [c.now for c in bulk.spmd.clocks] == [c.now for c in engine.spmd.clocks]
    assert bulk.file.store.snapshot() == engine.file.store.snapshot()
    size = engine.file.store.size
    assert (
        bulk.file.store.writers(0, size).tolist()
        == engine.file.store.writers(0, size).tolist()
    )
    for b, e in zip(bulk.outcomes, engine.outcomes):
        assert (b.rank, b.strategy) == (e.rank, e.strategy)
        assert b.bytes_requested == e.bytes_requested
        assert b.bytes_written == e.bytes_written
        assert b.bytes_surrendered == e.bytes_surrendered
        assert b.segments_written == e.segments_written
        assert b.phases == e.phases
        assert b.my_phase == e.my_phase
        assert b.start_time == e.start_time
        assert b.end_time == e.end_time
        assert b.extra == e.extra


STRATEGIES = {
    "two-phase": lambda: TwoPhaseStrategy(),
    "two-phase-few-aggs": lambda: TwoPhaseStrategy(num_aggregators=3),
    "two-phase-hier": lambda: HierarchicalTwoPhaseStrategy(ranks_per_node=3),
    "two-phase-hier-1agg": lambda: HierarchicalTwoPhaseStrategy(
        num_aggregators=1, ranks_per_node=4
    ),
}


class TestEngineEquivalence:
    @pytest.mark.parametrize("strategy", list(STRATEGIES))
    def test_column_wise(self, strategy):
        views = column_wise_views(M=8, N=256, P=8, R=4)
        engine, bulk = run_both(STRATEGIES[strategy], views)
        assert_equivalent(engine, bulk)

    @pytest.mark.parametrize("strategy", ["two-phase", "two-phase-hier"])
    def test_block_block(self, strategy):
        views = block_block_views(M=24, N=24, Pr=3, Pc=3, R=2)
        engine, bulk = run_both(STRATEGIES[strategy], views)
        assert_equivalent(engine, bulk)

    def test_nonzero_comm_cost(self):
        views = column_wise_views(M=8, N=256, P=8, R=4)
        cost = CommCostModel(latency=30e-6, byte_cost=1e-8)
        engine, bulk = run_both(STRATEGIES["two-phase-hier"], views, comm_cost=cost)
        assert_equivalent(engine, bulk)

    def test_large_p(self):
        """The scale regime the replay exists for, still engine-checked."""
        views = column_wise_views(M=4, N=1024, P=256, R=2)
        engine, bulk = run_both(
            lambda: HierarchicalTwoPhaseStrategy(ranks_per_node=8), views
        )
        assert_equivalent(engine, bulk)


class TestGuardrails:
    def test_rejects_non_aggregation_strategy(self):
        fs = ParallelFileSystem(fast_fs_config())
        with pytest.raises(TypeError):
            BulkWriteExecutor(fs, LockingStrategy())

    def test_rejects_bad_nprocs(self):
        fs = ParallelFileSystem(fast_fs_config())
        executor = BulkWriteExecutor(fs, TwoPhaseStrategy())
        with pytest.raises(ValueError):
            executor.run(0, lambda rank, P: [(0, 4)])


# -- read replay ---------------------------------------------------------------

READ_STRATEGIES = {
    "two-phase": lambda: TwoPhaseStrategy(),
    "two-phase-few-aggs": lambda: TwoPhaseStrategy(num_aggregators=3),
    "two-phase-hier": lambda: HierarchicalTwoPhaseStrategy(ranks_per_node=3),
    "two-phase-hier-1agg": lambda: HierarchicalTwoPhaseStrategy(
        num_aggregators=1, ranks_per_node=4
    ),
    "auto": lambda: AutoStrategy(),
}

_READ_OUTCOME_FIELDS = (
    "strategy",
    "rank",
    "bytes_requested",
    "bytes_returned",
    "bytes_read",
    "bytes_shuffled",
    "segments_read",
    "phases",
    "my_phase",
    "colors_used",
    "start_time",
    "end_time",
    "cache_hits",
    "cache_misses",
    "extra",
)


def run_both_read(make_strategy, views):
    """Seed identical files, then read them back via engine and bulk replay."""
    results = []
    for reader_cls in (CollectiveReadExecutor, BulkReadExecutor):
        fs = ParallelFileSystem(fast_fs_config())
        seed = BulkWriteExecutor(fs, TwoPhaseStrategy(), filename="bulk.dat")
        seed.run(len(views), lambda rank, P: views[rank], rank_pattern_bytes)
        reader = reader_cls(fs, make_strategy(), filename="bulk.dat")
        results.append(reader.run(len(views), lambda rank, P: views[rank]))
    return results


def assert_read_equivalent(engine, bulk):
    assert bulk.spmd.makespan == engine.spmd.makespan  # exact, no tolerance
    assert [c.now for c in bulk.spmd.clocks] == [c.now for c in engine.spmd.clocks]
    assert bulk.data == engine.data
    for b, e in zip(bulk.outcomes, engine.outcomes):
        for field in _READ_OUTCOME_FIELDS:
            assert getattr(b, field) == getattr(e, field), field


class TestReadEngineEquivalence:
    @pytest.mark.parametrize("strategy", list(READ_STRATEGIES))
    def test_column_wise(self, strategy):
        views = column_wise_views(M=8, N=256, P=16, R=4)
        engine, bulk = run_both_read(READ_STRATEGIES[strategy], views)
        assert_read_equivalent(engine, bulk)

    @pytest.mark.parametrize("strategy", ["two-phase", "two-phase-hier", "auto"])
    def test_block_block(self, strategy):
        views = block_block_views(M=24, N=24, Pr=4, Pc=4, R=2)
        engine, bulk = run_both_read(READ_STRATEGIES[strategy], views)
        assert_read_equivalent(engine, bulk)

    @pytest.mark.parametrize("strategy", ["two-phase-hier", "auto"])
    def test_p256(self, strategy):
        views = column_wise_views(M=4, N=1024, P=256, R=2)
        engine, bulk = run_both_read(READ_STRATEGIES[strategy], views)
        assert_read_equivalent(engine, bulk)

    def test_p1024(self):
        """The differential ceiling of the acceptance criteria."""
        views = column_wise_views(M=2, N=2048, P=1024, R=2)
        engine, bulk = run_both_read(
            lambda: HierarchicalTwoPhaseStrategy(
                num_aggregators=8, ranks_per_node=8
            ),
            views,
        )
        assert_read_equivalent(engine, bulk)


class TestReadGuardrails:
    def test_rejects_non_aggregation_strategy(self):
        fs = ParallelFileSystem(fast_fs_config())
        with pytest.raises(TypeError):
            BulkReadExecutor(fs, LockingStrategy())

    def test_rejects_bad_nprocs(self):
        fs = ParallelFileSystem(fast_fs_config())
        fs.create("bulk.dat")
        executor = BulkReadExecutor(fs, TwoPhaseStrategy())
        with pytest.raises(ValueError):
            executor.run(0, lambda rank, P: [(0, 4)])
