"""Tests for collective operations on the communicator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import MAX, MIN, PROD, SUM, LAND, LOR, SPMDExecutionError, run_spmd
from repro.mpi.errors import CollectiveMismatchError, CommunicatorError


class TestBarrierAndBcast:
    def test_barrier_completes(self):
        result = run_spmd(lambda comm: comm.barrier() or comm.rank, 5)
        assert result.returns == list(range(5))

    def test_bcast_from_root0(self):
        def fn(comm):
            data = {"k": [1, 2, 3]} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        result = run_spmd(fn, 4)
        assert all(r == {"k": [1, 2, 3]} for r in result.returns)

    def test_bcast_from_nonzero_root(self):
        def fn(comm):
            data = "payload" if comm.rank == 2 else None
            return comm.bcast(data, root=2)

        result = run_spmd(fn, 4)
        assert all(r == "payload" for r in result.returns)

    def test_bcast_numpy_array(self):
        def fn(comm):
            data = np.arange(10) if comm.rank == 0 else None
            return comm.bcast(data, root=0).sum()

        result = run_spmd(fn, 3)
        assert all(r == 45 for r in result.returns)


class TestGatherScatter:
    def test_gather_at_root(self):
        def fn(comm):
            return comm.gather(comm.rank ** 2, root=0)

        result = run_spmd(fn, 4)
        assert result.returns[0] == [0, 1, 4, 9]
        assert all(r is None for r in result.returns[1:])

    def test_allgather(self):
        def fn(comm):
            return comm.allgather((comm.rank, comm.rank * 2))

        result = run_spmd(fn, 3)
        expected = [(0, 0), (1, 2), (2, 4)]
        assert all(r == expected for r in result.returns)

    def test_scatter(self):
        def fn(comm):
            data = [i * 100 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        result = run_spmd(fn, 4)
        assert result.returns == [0, 100, 200, 300]

    def test_scatter_wrong_length_rejected(self):
        def fn(comm):
            data = [1, 2] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 3)
        assert any(isinstance(e, CommunicatorError) for e in excinfo.value.failures.values())

    def test_alltoall(self):
        def fn(comm):
            sendbuf = [f"{comm.rank}->{j}" for j in range(comm.size)]
            return comm.alltoall(sendbuf)

        result = run_spmd(fn, 3)
        assert result.returns[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_length(self):
        def fn(comm):
            return comm.alltoall([1])

        with pytest.raises(SPMDExecutionError):
            run_spmd(fn, 3)

    def test_alltoallv_routes_variable_payloads(self):
        def fn(comm):
            # Rank r sends r pieces to each destination (non-uniform volume).
            sendbuf = [
                [(comm.rank, j)] * comm.rank for j in range(comm.size)
            ]
            return comm.alltoallv(sendbuf)

        result = run_spmd(fn, 3)
        assert result.returns[1] == [[], [(1, 1)], [(2, 1), (2, 1)]]

    def test_alltoallv_wrong_length(self):
        def fn(comm):
            return comm.alltoallv([b"x"])

        with pytest.raises(SPMDExecutionError):
            run_spmd(fn, 3)

    def test_alltoallv_charges_payload_bytes(self):
        from repro.mpi import CommCostModel

        def fn(comm):
            before = comm.clock.now
            payload = [
                [] if dest == comm.rank else [(0, b"x" * 1000)]
                for dest in range(comm.size)
            ]
            comm.alltoallv(payload)
            return comm.clock.now - before

        # byte_cost dominates: 1000 payload bytes -> 1e-5 s, far above the
        # per-operation latency of 1e-6 s an item-count charge would give.
        result = run_spmd(fn, 2, comm_cost=CommCostModel(latency=1e-6, byte_cost=1e-8))
        assert all(elapsed >= 1000 * 1e-8 for elapsed in result.returns)

    def test_alltoallv_self_data_is_free(self):
        from repro.mpi import CommCostModel

        def fn(comm):
            before = comm.clock.now
            payload = [
                [(0, b"x" * 100000)] if dest == comm.rank else []
                for dest in range(comm.size)
            ]
            got = comm.alltoallv(payload)
            assert got[comm.rank] == [(0, b"x" * 100000)]
            return comm.clock.now - before

        # Self-destined data moves by local copy: only latency is charged.
        result = run_spmd(fn, 2, comm_cost=CommCostModel(latency=1e-6, byte_cost=1e-8))
        assert all(elapsed < 100000 * 1e-8 for elapsed in result.returns)


class TestReductions:
    def test_allreduce_sum(self):
        result = run_spmd(lambda comm: comm.allreduce(comm.rank + 1, op=SUM), 4)
        assert all(r == 10 for r in result.returns)

    def test_allreduce_max_min(self):
        result = run_spmd(lambda comm: (comm.allreduce(comm.rank, op=MAX),
                                        comm.allreduce(comm.rank, op=MIN)), 5)
        assert all(r == (4, 0) for r in result.returns)

    def test_reduce_at_root(self):
        result = run_spmd(lambda comm: comm.reduce(2, op=PROD, root=1), 3)
        assert result.returns[1] == 8
        assert result.returns[0] is None

    def test_allreduce_elementwise_list(self):
        result = run_spmd(lambda comm: comm.allreduce([comm.rank, 1], op=SUM), 3)
        assert all(r == [3, 3] for r in result.returns)

    def test_allreduce_numpy(self):
        def fn(comm):
            return comm.allreduce(np.full(3, comm.rank), op=SUM).tolist()

        result = run_spmd(fn, 3)
        assert all(r == [3, 3, 3] for r in result.returns)

    def test_logical_ops(self):
        result = run_spmd(lambda comm: (comm.allreduce(comm.rank > 0, op=LAND),
                                        comm.allreduce(comm.rank > 0, op=LOR)), 3)
        assert all(r == (False, True) for r in result.returns)

    def test_scan_inclusive(self):
        result = run_spmd(lambda comm: comm.scan(comm.rank + 1, op=SUM), 4)
        assert result.returns == [1, 3, 6, 10]

    def test_exscan(self):
        result = run_spmd(lambda comm: comm.exscan(comm.rank + 1, op=SUM), 4)
        assert result.returns == [None, 1, 3, 6]


class TestSplitAndDup:
    def test_split_even_odd(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2)
            return (comm.rank, sub.rank, sub.size)

        result = run_spmd(fn, 6)
        for world_rank, sub_rank, sub_size in result.returns:
            assert sub_size == 3
            assert sub_rank == world_rank // 2

    def test_split_subcommunicator_collectives(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2)
            return sorted(sub.allgather(comm.rank))

        result = run_spmd(fn, 6)
        assert result.returns[0] == [0, 2, 4]
        assert result.returns[1] == [1, 3, 5]

    def test_split_with_key_reorders(self):
        def fn(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        result = run_spmd(fn, 4)
        assert result.returns == [3, 2, 1, 0]

    def test_dup_preserves_membership(self):
        def fn(comm):
            dup = comm.dup()
            return (dup.rank, dup.size, dup.allgather(dup.rank))

        result = run_spmd(fn, 3)
        for rank, (dup_rank, dup_size, gathered) in enumerate(result.returns):
            assert dup_rank == rank
            assert dup_size == 3
            assert gathered == [0, 1, 2]


class TestCollectiveSafety:
    def test_mismatched_collectives_detected(self):
        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.allgather(1)

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 2)
        assert any(
            isinstance(e, CollectiveMismatchError) for e in excinfo.value.failures.values()
        )

    def test_collective_clock_synchronisation(self):
        def fn(comm):
            comm.clock.advance(0.1 * comm.rank)
            comm.barrier()
            return comm.clock.now

        result = run_spmd(fn, 4)
        slowest = 0.1 * 3
        assert all(t >= slowest for t in result.returns)
