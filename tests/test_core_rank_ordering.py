"""Tests for the process-rank ordering resolution (Figure 7)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import IntervalSet, merge_interval_sets
from repro.core.rank_ordering import (
    HIGHER_RANK_WINS,
    LOWER_RANK_WINS,
    resolve_by_rank,
    verify_coverage_preserved,
    verify_disjoint,
)
from repro.core.regions import FileRegionSet, build_region_sets
from repro.patterns.partition import column_wise_views


class TestResolveByRank:
    def test_two_ranks_higher_wins(self):
        regions = build_region_sets([[(0, 10)], [(5, 10)]])
        result = resolve_by_rank(regions)
        # rank 1 keeps everything, rank 0 surrenders the overlap [5,10)
        assert result.view_of(1).segments == ((5, 10),)
        assert result.view_of(0).segments == ((0, 5),)
        assert result.surrendered_bytes == (5, 0)

    def test_lower_rank_wins_policy(self):
        regions = build_region_sets([[(0, 10)], [(5, 10)]])
        result = resolve_by_rank(regions, policy=LOWER_RANK_WINS)
        assert result.view_of(0).segments == ((0, 10),)
        assert result.view_of(1).segments == ((10, 5),)
        assert result.surrendered_bytes == (0, 5)

    def test_three_way_overlap(self):
        regions = build_region_sets([[(0, 30)], [(10, 30)], [(20, 30)]])
        result = resolve_by_rank(regions)
        assert result.view_of(2).coverage == IntervalSet([(20, 50)])
        assert result.view_of(1).coverage == IntervalSet([(10, 20)])
        assert result.view_of(0).coverage == IntervalSet([(0, 10)])
        assert verify_disjoint(result)
        assert verify_coverage_preserved(regions, result)

    def test_no_overlap_is_identity(self):
        regions = build_region_sets([[(0, 10)], [(10, 10)], [(20, 10)]])
        result = resolve_by_rank(regions)
        assert result.total_surrendered == 0
        for rank in range(3):
            assert result.view_of(rank).segments == regions[rank].segments

    def test_identical_views_only_highest_writes(self):
        regions = build_region_sets([[(0, 100)], [(0, 100)], [(0, 100)]])
        result = resolve_by_rank(regions)
        assert result.view_of(2).total_bytes == 100
        assert result.view_of(1).is_empty()
        assert result.view_of(0).is_empty()

    def test_wrong_rank_order_rejected(self):
        regions = build_region_sets([[(0, 10)], [(5, 10)]])
        with pytest.raises(ValueError):
            resolve_by_rank(list(reversed(regions)))

    def test_total_accounting(self):
        regions = build_region_sets([[(0, 10)], [(5, 10)]])
        result = resolve_by_rank(regions)
        assert result.total_remaining + result.total_surrendered == sum(
            r.total_bytes for r in regions
        )


class TestPaperColumnWiseCase:
    def test_figure7_shapes(self):
        """Figure 7: after trimming, interior ranks own N/P columns, the
        highest rank keeps its full ghosted width and rank 0 loses R/2."""
        M, N, P, R = 8, 64, 4, 4
        regions = build_region_sets(column_wise_views(M, N, P, R))
        result = resolve_by_rank(regions)
        cols = [result.view_of(r).total_bytes // M for r in range(P)]
        # highest rank keeps its whole view: N/P + R/2 columns (edge rank)
        assert cols[P - 1] == N // P + R // 2
        # interior ranks keep N/P columns each (surrender the right overlap)
        assert cols[1] == N // P
        assert cols[2] == N // P
        # rank 0 surrenders its only (right-side) ghost zone of R columns,
        # keeping N/P - R/2 columns
        assert cols[0] == N // P - R // 2
        # every column of the file is still written exactly once
        assert sum(cols) == N
        assert verify_disjoint(result)
        assert verify_coverage_preserved(regions, result)

    def test_surrendered_matches_overlap(self):
        M, N, P, R = 8, 64, 4, 4
        regions = build_region_sets(column_wise_views(M, N, P, R))
        result = resolve_by_rank(regions)
        assert result.total_surrendered == (P - 1) * R * M


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

raw_views = st.lists(
    st.lists(st.tuples(st.integers(0, 300), st.integers(1, 40)), max_size=5),
    min_size=1,
    max_size=6,
)


def _regions(raw):
    views = [IntervalSet.from_segments(v).as_segments() for v in raw]
    return build_region_sets(views)


class TestRankOrderingProperties:
    @given(raw_views)
    def test_trimmed_views_disjoint(self, raw):
        regions = _regions(raw)
        assert verify_disjoint(resolve_by_rank(regions))

    @given(raw_views)
    def test_coverage_preserved(self, raw):
        regions = _regions(raw)
        assert verify_coverage_preserved(regions, resolve_by_rank(regions))

    @given(raw_views)
    def test_each_trimmed_view_subset_of_original(self, raw):
        regions = _regions(raw)
        result = resolve_by_rank(regions)
        for rank, region in enumerate(regions):
            assert region.coverage.covers(result.view_of(rank).coverage)

    @given(raw_views)
    def test_highest_priority_rank_never_trimmed(self, raw):
        regions = _regions(raw)
        result = resolve_by_rank(regions)
        top = len(regions) - 1
        assert result.view_of(top).coverage == regions[top].coverage

    @given(raw_views)
    def test_byte_conservation(self, raw):
        regions = _regions(raw)
        result = resolve_by_rank(regions)
        union_bytes = merge_interval_sets([r.coverage for r in regions]).total_bytes
        assert result.total_remaining == union_bytes

    @given(raw_views)
    def test_policies_cover_same_bytes(self, raw):
        regions = _regions(raw)
        high = resolve_by_rank(regions, policy=HIGHER_RANK_WINS)
        low = resolve_by_rank(regions, policy=LOWER_RANK_WINS)
        high_union = merge_interval_sets([v.coverage for v in high.trimmed])
        low_union = merge_interval_sets([v.coverage for v in low.trimmed])
        assert high_union == low_union
