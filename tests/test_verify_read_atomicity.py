"""Tests for the read-atomicity verifier (`check_read_atomicity`).

The verifier must accept every observation explainable by a sequential
ordering of the write requests — the pre-write baseline, or any single
covering writer's data per elementary overlap segment — and reject torn
reads (a mixture of writers, or of a writer and the baseline, within one
segment) and stale reads (bytes outside every writer's view that differ from
the baseline).
"""

from __future__ import annotations

from repro.core.regions import FileRegionSet
from repro.verify.atomicity import ReadObservation, check_read_atomicity


def _regions_two_writers():
    """Two writers overlapping on bytes [10, 20)."""
    w0 = FileRegionSet(0, [(0, 20)])
    w1 = FileRegionSet(1, [(10, 20)])
    return [w0, w1], [b"A" * 20, b"B" * 10]


class TestAcceptedObservations:
    def test_winner_state_accepted(self):
        regions, data = _regions_two_writers()
        # Reader saw w0's prefix and w1's data on the overlap — the state
        # after the serialisation (w0 then w1).
        obs = ReadObservation(7, FileRegionSet(7, [(0, 20)]), b"A" * 10 + b"B" * 10)
        assert check_read_atomicity([obs], regions, data).ok

    def test_other_serialisation_accepted(self):
        regions, data = _regions_two_writers()
        # The w1-then-w0 ordering is just as legal.
        obs = ReadObservation(7, FileRegionSet(7, [(0, 20)]), b"A" * 20)
        assert check_read_atomicity([obs], regions, data).ok

    def test_baseline_state_accepted(self):
        regions, data = _regions_two_writers()
        # Read serialised before both writes: all zeros (fresh file).
        obs = ReadObservation(7, FileRegionSet(7, [(0, 20)]), bytes(20))
        assert check_read_atomicity([obs], regions, data).ok

    def test_explicit_baseline_accepted(self):
        regions, data = _regions_two_writers()
        baseline = bytes(range(30))
        obs = ReadObservation(7, FileRegionSet(7, [(0, 20)]), baseline[:20])
        assert check_read_atomicity([obs], regions, data, baseline=baseline).ok

    def test_observation_outside_writers_matches_baseline(self):
        regions, data = _regions_two_writers()
        obs = ReadObservation(7, FileRegionSet(7, [(40, 8)]), bytes(8))
        assert check_read_atomicity([obs], regions, data).ok

    def test_strided_observation_view(self):
        regions, data = _regions_two_writers()
        # An observation with a multi-segment view: [0, 5) and [15, 20).
        obs = ReadObservation(
            7, FileRegionSet(7, [(0, 5), (15, 5)]), b"A" * 5 + b"B" * 5
        )
        assert check_read_atomicity([obs], regions, data).ok


class TestRejectedObservations:
    def test_torn_read_mixture_of_writers(self):
        regions, data = _regions_two_writers()
        # Half of w0's data and half of w1's inside the one overlap segment:
        # no sequential ordering produces this state.
        torn = b"A" * 10 + b"A" * 5 + b"B" * 5
        obs = ReadObservation(7, FileRegionSet(7, [(0, 20)]), torn)
        report = check_read_atomicity([obs], regions, data)
        assert not report.ok
        assert report.violations[0].kind == "torn-read"
        assert "rank 7" in report.violations[0].detail

    def test_torn_read_mixture_with_baseline(self):
        regions, data = _regions_two_writers()
        # Baseline zeros mixed with w1's bytes within the overlap segment.
        torn = b"A" * 10 + bytes(5) + b"B" * 5
        obs = ReadObservation(7, FileRegionSet(7, [(0, 20)]), torn)
        assert not check_read_atomicity([obs], regions, data).ok

    def test_stale_read_outside_writers(self):
        regions, data = _regions_two_writers()
        obs = ReadObservation(7, FileRegionSet(7, [(40, 8)]), b"\x99" * 8)
        report = check_read_atomicity([obs], regions, data)
        assert not report.ok
        assert report.violations[0].kind == "stale-read"

    def test_foreign_bytes_in_single_writer_region(self):
        regions, data = _regions_two_writers()
        # Bytes [0, 10) are covered by w0 alone; observing something that is
        # neither baseline nor w0's data is a violation.
        obs = ReadObservation(7, FileRegionSet(7, [(0, 10)]), b"Z" * 10)
        assert not check_read_atomicity([obs], regions, data).ok


class TestReportAccounting:
    def test_overlap_statistics(self):
        regions, data = _regions_two_writers()
        obs = ReadObservation(7, FileRegionSet(7, [(0, 20)]), b"A" * 20)
        report = check_read_atomicity([obs], regions, data)
        assert report.ok
        assert report.overlap_regions_checked >= 2  # [0,10) and [10,20)
        assert report.overlapped_bytes == 10  # only [10,20) is multi-writer

    def test_no_observations_trivially_ok(self):
        regions, data = _regions_two_writers()
        assert check_read_atomicity([], regions, data).ok
