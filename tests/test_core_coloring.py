"""Tests for the greedy graph-coloring algorithm (Figure 5 / Figure 6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.coloring import (
    chromatic_lower_bound,
    color_groups,
    greedy_coloring,
    validate_coloring,
)
from repro.core.overlap import OverlapMatrix, build_overlap_matrix
from repro.core.regions import build_region_sets
from repro.patterns.partition import block_block_views, column_wise_views


def matrix_from_edges(n, edges):
    m = np.zeros((n, n), dtype=bool)
    for i, j in edges:
        m[i, j] = m[j, i] = True
    return OverlapMatrix(m)


class TestGreedyColoring:
    def test_empty_graph_one_color(self):
        w = matrix_from_edges(4, [])
        result = greedy_coloring(w)
        assert result.num_colors == 1
        assert set(result.colors) == {0}

    def test_zero_vertices(self):
        w = matrix_from_edges(0, [])
        result = greedy_coloring(w)
        assert result.num_colors == 0
        assert result.colors == ()

    def test_chain_uses_two_colors(self):
        w = matrix_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        result = greedy_coloring(w)
        assert result.num_colors == 2
        assert validate_coloring(w, result)
        # Figure 6: even ranks first, odd ranks second.
        assert list(result.colors) == [0, 1, 0, 1, 0]

    def test_complete_graph_needs_n_colors(self):
        n = 5
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        w = matrix_from_edges(n, edges)
        result = greedy_coloring(w)
        assert result.num_colors == n
        assert validate_coloring(w, result)

    def test_triangle_three_colors(self):
        w = matrix_from_edges(3, [(0, 1), (1, 2), (0, 2)])
        result = greedy_coloring(w)
        assert result.num_colors == 3

    def test_custom_order(self):
        w = matrix_from_edges(3, [(0, 1), (1, 2)])
        result = greedy_coloring(w, order=[2, 1, 0])
        assert validate_coloring(w, result)

    def test_bad_order_rejected(self):
        w = matrix_from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            greedy_coloring(w, order=[0, 0, 1])

    def test_groups_partition_ranks(self):
        w = matrix_from_edges(6, [(0, 1), (2, 3), (4, 5)])
        result = greedy_coloring(w)
        groups = result.groups()
        flattened = sorted(r for g in groups for r in g)
        assert flattened == list(range(6))

    def test_step_of_equals_color(self):
        w = matrix_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        result = greedy_coloring(w)
        for rank in range(4):
            assert result.step_of(rank) == result.color_of(rank)


class TestValidateColoring:
    def test_detects_adjacent_same_color(self):
        from repro.core.coloring import ColoringResult

        w = matrix_from_edges(2, [(0, 1)])
        bad = ColoringResult(colors=(0, 0), num_colors=1)
        assert not validate_coloring(w, bad)

    def test_detects_wrong_length(self):
        from repro.core.coloring import ColoringResult

        w = matrix_from_edges(3, [])
        assert not validate_coloring(w, ColoringResult(colors=(0, 0), num_colors=1))


class TestPaperCases:
    def test_column_wise_is_two_colorable(self):
        """Figure 6: the column-wise pattern needs exactly 2 colours, with
        even ranks in the first group and odd ranks in the second."""
        views = column_wise_views(M=8, N=128, P=8, R=4)
        w = build_overlap_matrix(build_region_sets(views))
        result = greedy_coloring(w)
        assert result.num_colors == 2
        assert [c for c in result.colors] == [r % 2 for r in range(8)]
        groups = color_groups(w)
        assert groups[0] == [0, 2, 4, 6]
        assert groups[1] == [1, 3, 5, 7]

    def test_block_block_ghost_needs_at_most_four_colors(self):
        """Figure 1 pattern: 2-D ghost partitioning colours with <= 4 colours."""
        views = block_block_views(M=32, N=32, Pr=3, Pc=3, R=2)
        w = build_overlap_matrix(build_region_sets(views))
        result = greedy_coloring(w)
        assert validate_coloring(w, result)
        assert 2 <= result.num_colors <= 4

    def test_chromatic_lower_bound_matches_column_wise(self):
        views = column_wise_views(M=4, N=64, P=4, R=2)
        w = build_overlap_matrix(build_region_sets(views))
        assert chromatic_lower_bound(w) == 2


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


@st.composite
def random_overlap_matrix(draw):
    n = draw(st.integers(1, 10))
    m = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                m[i, j] = m[j, i] = True
    return OverlapMatrix(m)


class TestColoringProperties:
    @given(random_overlap_matrix())
    def test_always_valid(self, w):
        result = greedy_coloring(w)
        assert validate_coloring(w, result)

    @given(random_overlap_matrix())
    def test_color_count_bounded_by_max_degree_plus_one(self, w):
        result = greedy_coloring(w)
        assert result.num_colors <= w.max_degree() + 1

    @given(random_overlap_matrix())
    def test_deterministic(self, w):
        assert greedy_coloring(w) == greedy_coloring(w)

    @given(random_overlap_matrix())
    def test_groups_are_independent_sets(self, w):
        result = greedy_coloring(w)
        for group in result.groups():
            for idx_a in range(len(group)):
                for idx_b in range(idx_a + 1, len(group)):
                    assert not w.matrix[group[idx_a], group[idx_b]]
