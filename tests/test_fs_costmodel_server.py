"""Tests for the virtual-time cost model, resources and I/O servers."""

from __future__ import annotations

import threading

import pytest

from repro.fs.costmodel import CostModel, Resource
from repro.fs.server import IOServer, ServerPool


class TestCostModel:
    def test_service_time(self):
        cm = CostModel(latency=0.001, bandwidth=1000.0)
        assert cm.service_time(0) == pytest.approx(0.001)
        assert cm.service_time(500) == pytest.approx(0.501)

    def test_infinite_bandwidth(self):
        cm = CostModel(latency=0.5)
        assert cm.service_time(10**9) == pytest.approx(0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CostModel(latency=-1)
        with pytest.raises(ValueError):
            CostModel(bandwidth=0)
        with pytest.raises(ValueError):
            CostModel(latency=0.0, bandwidth=-5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CostModel().service_time(-1)


class TestResource:
    def test_sequential_requests_queue(self):
        r = Resource("r", CostModel(latency=1.0, bandwidth=float("inf")))
        assert r.reserve(0.0, 0) == pytest.approx(1.0)
        assert r.reserve(0.0, 0) == pytest.approx(2.0)   # queued behind the first
        assert r.reserve(5.0, 0) == pytest.approx(6.0)   # idle gap respected

    def test_busy_time_accounting(self):
        r = Resource("r", CostModel(latency=0.0, bandwidth=100.0))
        r.reserve(0.0, 50)
        r.reserve(0.0, 50)
        assert r.busy_time == pytest.approx(1.0)
        assert r.request_count == 2

    def test_reserve_duration(self):
        r = Resource("r", CostModel())
        end = r.reserve_duration(2.0, 0.5)
        assert end == pytest.approx(2.5)
        with pytest.raises(ValueError):
            r.reserve_duration(0.0, -1.0)

    def test_reset(self):
        r = Resource("r", CostModel(latency=1.0))
        r.reserve(0.0, 0)
        r.reset()
        assert r.next_free == 0.0
        assert r.busy_time == 0.0
        assert r.request_count == 0

    def test_thread_safety_of_accounting(self):
        r = Resource("r", CostModel(latency=0.001))
        n_threads, per_thread = 8, 50

        def worker():
            for _ in range(per_thread):
                r.reserve(0.0, 0)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.request_count == n_threads * per_thread
        # All requests were serialised in virtual time.
        assert r.next_free == pytest.approx(n_threads * per_thread * 0.001)


class TestIOServer:
    def test_transfer_charges_time(self):
        server = IOServer(0, CostModel(latency=0.01, bandwidth=100.0))
        end = server.transfer(0.0, 100)
        assert end == pytest.approx(1.01)
        assert server.busy_time == pytest.approx(1.01)
        assert server.request_count == 1

    def test_concurrent_clients_share_bandwidth(self):
        """Two equal transfers arriving together finish at 1x and 2x the
        single-transfer time — the server serialises them."""
        server = IOServer(0, CostModel(latency=0.0, bandwidth=100.0))
        first = server.transfer(0.0, 100)
        second = server.transfer(0.0, 100)
        assert sorted([first, second]) == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_reset(self):
        server = IOServer(1, CostModel(latency=0.5))
        server.transfer(0.0, 0)
        server.reset()
        assert server.busy_time == 0.0


class TestServerPool:
    def test_pool_indexing(self):
        pool = ServerPool(3, CostModel())
        assert len(pool) == 3
        assert pool[2].index == 2

    def test_aggregate_accounting(self):
        pool = ServerPool(2, CostModel(latency=0.0, bandwidth=10.0))
        pool[0].transfer(0.0, 10)
        pool[1].transfer(0.0, 20)
        assert pool.aggregate_busy_time() == pytest.approx(3.0)
        assert pool.total_requests() == 2
        pool.reset()
        assert pool.aggregate_busy_time() == 0.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ServerPool(0, CostModel())
