"""ClientCache read-ahead/write-behind interplay under the event engine.

The collective read pipeline relies on two cache properties when multiple
clients share a file:

* **dirty-byte-precise flush**: a flush writes back exactly the bytes this
  client dirtied — never the stale surrounding page bytes — so a concurrent
  peer's committed data survives a later flush of an overlapping page;
* **explicit invalidation**: pages pulled in by read-ahead go stale the
  moment a peer flushes; they stay stale until `invalidate()` (the
  invalidate-before-read directive the read schedules carry).

Both are exercised here with real concurrent clients scheduled by the
cooperative engine, not with mocked fetch/store callables.
"""

from __future__ import annotations

from repro.fs.client import FSClient
from repro.mpi import run_spmd


class TestDirtyBytePreciseFlush:
    def test_flush_does_not_clobber_peer_bytes(self, fast_fs):
        """A's flush of a dirty page must not write back B's bytes staled in
        A's cached copy of the same page."""

        def fn(comm):
            client = FSClient(fast_fs, client_id=comm.rank, clock=comm.clock)
            h = client.open("precise.dat")
            if comm.rank == 0:
                h.read(0, 256)  # cache the whole page (all zeros right now)
                h.write(100, b"A" * 10)  # write-behind: dirty only [100,110)
                comm.barrier()  # B's direct write lands while A holds the page
                comm.barrier()
                h.sync()  # must flush ONLY the dirty run
            else:
                comm.barrier()
                h.write(0, b"B" * 10, direct=True)
                comm.barrier()
            h.close()

        run_spmd(fn, 2)
        store = fast_fs.lookup("precise.dat").store
        assert store.read(0, 10) == b"B" * 10, "flush clobbered a peer's bytes"
        assert store.read(100, 10) == b"A" * 10
        # Provenance: B's bytes still attributed to B, A's to A.
        assert store.distinct_writers(0, 10) == (1,)
        assert store.distinct_writers(100, 10) == (0,)


class TestReadAheadCoherence:
    def test_read_ahead_pages_stale_until_invalidated(self, fast_fs):
        """Pages prefetched by read-ahead serve stale data after a peer's
        flush until the cache is invalidated — the exact reason the read
        pipeline schedules invalidate-before-read."""

        def fn(comm):
            client = FSClient(fast_fs, client_id=comm.rank, clock=comm.clock)
            h = client.open("ahead.dat")
            if comm.rank == 0:  # the writer
                comm.barrier()  # wait for the reader to prefetch
                h.write(256, b"X" * 16)  # write-behind on page 1
                h.sync()  # now committed on the servers
                comm.barrier()
                h.close()
                return None
            # The reader: page 0 read pulls page 1 in via read-ahead
            # (fast_fs: page_size=256, read_ahead_pages=1).
            h.read(0, 16)
            comm.barrier()
            comm.barrier()
            stale = h.read(256, 16)  # served from the prefetched copy
            h.invalidate()
            fresh = h.read(256, 16)
            h.close()
            return stale, fresh

        result = run_spmd(fn, 2)
        stale, fresh = result.returns[1]
        assert stale == bytes(16), "expected the stale prefetched copy"
        assert fresh == b"X" * 16, "invalidate must expose the peer's flush"

    def test_invalidate_flushes_own_dirty_bytes_first(self, fast_fs):
        """Sync-then-invalidate: dropping the cache must not lose this
        client's own write-behind data."""

        def fn(comm):
            client = FSClient(fast_fs, client_id=comm.rank, clock=comm.clock)
            h = client.open("sti.dat")
            if comm.rank == 0:
                h.write(10, b"D" * 4)  # write-behind, never explicitly synced
                h.invalidate()  # must flush before dropping
            comm.barrier()
            got = h.read(10, 4, direct=True)
            h.close()
            return got

        result = run_spmd(fn, 2)
        assert all(r == b"D" * 4 for r in result.returns)
