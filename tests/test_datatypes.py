"""Tests for basic types, the Datatype object and the type constructors."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    Datatype,
    DatatypeError,
    ORDER_C,
    ORDER_FORTRAN,
    as_datatype,
    contiguous,
    from_basic,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)
from repro.datatypes.typemap import basic_type_by_name


class TestBasicTypes:
    def test_sizes(self):
        assert BYTE.size == 1
        assert CHAR.size == 1
        assert INT.size == 4
        assert FLOAT.size == 4
        assert DOUBLE.size == 8

    def test_lookup_by_name(self):
        assert basic_type_by_name("MPI_INT") is INT
        with pytest.raises(KeyError):
            basic_type_by_name("MPI_BOGUS")

    def test_from_basic_committed(self):
        dt = from_basic(INT)
        assert dt.committed
        assert dt.size == 4
        assert dt.extent == 4
        assert dt.is_contiguous()


class TestDatatypeObject:
    def test_build_merges_adjacent(self):
        dt = Datatype.build([(0, 4), (4, 4), (12, 4)])
        assert dt.segments == ((0, 8), (12, 4))
        assert dt.size == 12
        assert dt.extent == 16

    def test_explicit_bounds(self):
        dt = Datatype.build([(0, 4)], lb=0, extent=16)
        assert dt.extent == 16

    def test_negative_length_rejected(self):
        with pytest.raises(DatatypeError):
            Datatype.build([(0, -1)])

    def test_negative_extent_rejected(self):
        with pytest.raises(DatatypeError):
            Datatype.build([(0, 4)], extent=-2)

    def test_commit_required(self):
        dt = contiguous(3, INT)
        with pytest.raises(DatatypeError):
            dt.require_committed()
        dt.commit().require_committed()

    def test_not_contiguous_with_hole(self):
        dt = Datatype.build([(0, 4), (8, 4)])
        assert not dt.is_contiguous()

    def test_as_datatype_rejects_garbage(self):
        with pytest.raises(DatatypeError):
            as_datatype("not a type")


class TestContiguous:
    def test_simple(self):
        dt = contiguous(4, INT)
        assert dt.size == 16
        assert dt.extent == 16
        assert dt.segments == ((0, 16),)

    def test_zero_count(self):
        dt = contiguous(0, INT)
        assert dt.size == 0
        assert dt.extent == 0

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            contiguous(-1, INT)

    def test_of_derived_type(self):
        inner = vector(2, 1, 2, INT)          # 2 ints, stride 2 ints
        dt = contiguous(2, inner)
        assert dt.size == 2 * inner.size


class TestVector:
    def test_layout(self):
        # 3 blocks of 2 ints, stride 4 ints: offsets 0, 16, 32 (bytes), each 8 bytes.
        dt = vector(3, 2, 4, INT)
        assert dt.segments == ((0, 8), (16, 8), (32, 8))
        assert dt.size == 24

    def test_unit_stride_collapses(self):
        dt = vector(3, 2, 2, INT)
        assert dt.segments == ((0, 24),)

    def test_hvector_byte_stride(self):
        dt = hvector(2, 1, 10, INT)
        assert dt.segments == ((0, 4), (10, 4))


class TestIndexed:
    def test_indexed(self):
        dt = indexed([2, 1], [0, 4], INT)
        assert dt.segments == ((0, 8), (16, 4))
        assert dt.size == 12

    def test_hindexed(self):
        dt = hindexed([1, 1], [0, 100], INT)
        assert dt.segments == ((0, 4), (100, 4))

    def test_indexed_block(self):
        dt = indexed_block(2, [0, 10], INT)
        assert dt.segments == ((0, 8), (40, 8))

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatatypeError):
            indexed([1, 2], [0], INT)

    def test_negative_blocklength_rejected(self):
        with pytest.raises(DatatypeError):
            hindexed([-1], [0], INT)


class TestStruct:
    def test_heterogeneous(self):
        dt = struct([1, 2], [0, 8], [INT, DOUBLE])
        assert dt.segments == ((0, 4), (8, 16))
        assert dt.size == 20

    def test_length_mismatch(self):
        with pytest.raises(DatatypeError):
            struct([1], [0, 8], [INT, DOUBLE])


class TestSubarray:
    def test_figure4_column_block(self):
        """The paper's Figure 4: a column block of a 2-D char array."""
        M, N = 8, 32
        dt = subarray([M, N], [M, 8], [0, 4], CHAR)
        # M segments of 8 bytes, one per row, N bytes apart.
        assert dt.num_segments == M
        assert dt.size == M * 8
        assert dt.extent == M * N
        assert dt.segments[0] == (4, 8)
        assert dt.segments[1] == (N + 4, 8)

    def test_full_width_collapses_rows(self):
        dt = subarray([4, 10], [2, 10], [1, 0], CHAR)
        assert dt.segments == ((10, 20),)

    def test_fortran_order(self):
        # Column-major: a row block becomes strided segments.
        dt = subarray([4, 10], [2, 10], [1, 0], CHAR, order=ORDER_FORTRAN)
        assert dt.size == 20
        assert dt.extent == 40
        assert dt.num_segments == 10  # one per column in column-major storage

    def test_3d(self):
        dt = subarray([4, 4, 4], [2, 2, 2], [1, 1, 1], CHAR)
        assert dt.size == 8
        assert dt.num_segments == 4
        assert dt.extent == 64

    def test_element_type_scaling(self):
        dt = subarray([4, 8], [4, 2], [0, 0], INT)
        assert dt.size == 4 * 2 * 4
        assert dt.extent == 4 * 8 * 4

    def test_invalid_bounds_rejected(self):
        with pytest.raises(DatatypeError):
            subarray([4, 4], [2, 5], [0, 0], CHAR)
        with pytest.raises(DatatypeError):
            subarray([4, 4], [2, 2], [3, 0], CHAR)
        with pytest.raises(DatatypeError):
            subarray([4, 4], [2, 2], [0, 0], CHAR, order="X")

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DatatypeError):
            subarray([4, 4], [2], [0, 0], CHAR)

    def test_zero_subsize_is_empty(self):
        dt = subarray([4, 4], [0, 2], [0, 0], CHAR)
        assert dt.size == 0

    def test_order_c_vs_fortran_same_size(self):
        c = subarray([6, 5], [3, 2], [1, 1], CHAR, order=ORDER_C)
        f = subarray([6, 5], [3, 2], [1, 1], CHAR, order=ORDER_FORTRAN)
        assert c.size == f.size == 6


class TestResized:
    def test_resized_changes_extent_only(self):
        dt = resized(contiguous(2, INT), lb=0, extent=32)
        assert dt.size == 8
        assert dt.extent == 32

    def test_resized_affects_replication(self):
        base = resized(contiguous(1, INT), lb=0, extent=12)
        rep = contiguous(3, base)
        assert rep.segments == ((0, 4), (12, 4), (24, 4))


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


class TestConstructorProperties:
    @given(st.integers(0, 20), st.integers(1, 8))
    def test_contiguous_size(self, count, elems):
        inner = contiguous(elems, CHAR)
        dt = contiguous(count, inner)
        assert dt.size == count * elems
        assert dt.extent == count * inner.extent

    @given(st.integers(0, 10), st.integers(0, 6), st.integers(1, 12))
    def test_vector_size(self, count, blocklength, stride_extra):
        stride = blocklength + stride_extra
        dt = vector(count, blocklength, stride, INT)
        assert dt.size == count * blocklength * 4

    @given(
        st.integers(1, 10), st.integers(1, 10),
        st.integers(1, 6), st.integers(1, 6),
    )
    def test_subarray_size_and_extent(self, rows, cols, sub_rows, sub_cols):
        sub_rows = min(sub_rows, rows)
        sub_cols = min(sub_cols, cols)
        dt = subarray([rows, cols], [sub_rows, sub_cols], [0, 0], CHAR)
        assert dt.size == sub_rows * sub_cols
        assert dt.extent == rows * cols

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 200)), max_size=8))
    def test_hindexed_size(self, blocks):
        lengths = [b for b, _ in blocks]
        disps = sorted({d for _, d in blocks})
        # Use distinct displacements spaced widely enough to avoid self-overlap.
        disps = [i * 1000 for i in range(len(blocks))]
        dt = hindexed(lengths, disps, INT)
        assert dt.size == sum(lengths) * 4
