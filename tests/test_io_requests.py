"""Tests for the request-based nonblocking & split-collective I/O API.

Covers the :class:`repro.io.requests.IORequest` lifecycle (Wait/Test,
misuse, exception propagation), the split-collective begin/end pairs, the
module-level Waitall/Testall/Waitany over mixed request families, the
collective Close semantics, the Info-hint threading, and the atomicity
verifier under racing nonblocking collectives.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.regions import FileRegionSet
from repro.core.strategies import ReadOutcome, TwoPhaseStrategy, WriteOutcome
from repro.datatypes import CHAR, contiguous
from repro.fs import ParallelFileSystem
from repro.io import Info, IORequest, MPIFile, Testall, Waitall, Waitany
from repro.mpi import CollectiveAbortedError, run_spmd
from repro.patterns.workloads import rank_pattern_bytes
from repro.verify.atomicity import (
    ReadObservation,
    check_mpi_atomicity,
    check_read_atomicity,
)
from tests.conftest import fast_fs_config


def _set_strategy_quietly(f: MPIFile, strategy) -> None:
    """Pin a strategy instance without tripping the deprecation warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        f.set_strategy(strategy)


class TestNonblockingCollectives:
    def test_iwrite_all_roundtrip(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "nb.dat", fast_fs)
            f.Set_view(comm.rank * 8, CHAR, contiguous(8, CHAR))
            request = f.Iwrite_all(bytes([65 + comm.rank]) * 8)
            assert isinstance(request, IORequest)
            outcome = request.Wait()
            assert isinstance(outcome, WriteOutcome)
            assert outcome.bytes_requested == 8
            f.Close()

        run_spmd(fn, 4)
        assert fast_fs.lookup("nb.dat").store.read(0, 32) == b"A" * 8 + b"B" * 8 + b"C" * 8 + b"D" * 8

    def test_iread_all_fills_buffer_at_wait(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "nbr.dat", fast_fs)
            if comm.rank == 0:
                f.Write_at(0, b"payload-" * 8)
            f.Sync()
            f.Set_view(0, CHAR, contiguous(64, CHAR))
            buf = bytearray(64)
            request = f.Iread_all(buf)
            outcome = request.Wait()
            assert isinstance(outcome, ReadOutcome)
            f.Close()
            return bytes(buf)

        result = run_spmd(fn, 2)
        assert all(r == b"payload-" * 8 for r in result.returns)

    def test_overlap_shrinks_makespan(self):
        """Compute issued between begin and end hides under the commit."""

        def workload(api):
            fs = ParallelFileSystem(fast_fs_config())

            def fn(comm):
                f = MPIFile.Open(comm, "ov.dat", fs, info=Info({"atomicity_strategy": "two-phase"}))
                f.Set_atomicity(True)
                f.Set_view(0, CHAR, contiguous(4096, CHAR))
                payload = rank_pattern_bytes(comm.rank, 4096)
                if api == "blocking":
                    f.Write_all(payload)
                    comm.clock.advance(0.01)
                else:
                    f.Write_all_begin(payload)
                    comm.clock.advance(0.01)
                    f.Write_all_end()
                f.Close()

            return run_spmd(fn, 2).makespan

        assert workload("split") < workload("blocking")

    def test_nonblocking_atomic_write_passes_verifier(self, fast_fs):
        nbytes = 256

        def fn(comm):
            f = MPIFile.Open(comm, "nbat.dat", fast_fs, info=Info({"atomicity_strategy": "two-phase"}))
            f.Set_atomicity(True)
            f.Set_view(0, CHAR, contiguous(nbytes, CHAR))  # fully overlapping
            request = f.Iwrite_all(rank_pattern_bytes(comm.rank, nbytes))
            comm.clock.advance(0.002)  # overlapped compute
            request.Wait()
            f.Close()

        run_spmd(fn, 4)
        regions = [FileRegionSet(r, [(0, nbytes)]) for r in range(4)]
        assert check_mpi_atomicity(fast_fs.lookup("nbat.dat").store, regions).ok


class TestSplitCollectives:
    def test_write_then_read_begin_end_roundtrip(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "sp.dat", fast_fs)
            f.Set_view(comm.rank * 16, CHAR, contiguous(16, CHAR))
            f.Write_all_begin(bytes([97 + comm.rank]) * 16)
            comm.clock.advance(0.001)
            outcome = f.Write_all_end()
            assert isinstance(outcome, WriteOutcome)
            f.Seek(0)
            buf = bytearray(16)
            f.Read_all_begin(buf)
            comm.clock.advance(0.001)
            read_outcome = f.Read_all_end()
            assert isinstance(read_outcome, ReadOutcome)
            f.Close()
            return bytes(buf)

        result = run_spmd(fn, 3)
        for rank, data in enumerate(result.returns):
            assert data == bytes([97 + rank]) * 16

    def test_second_begin_while_active_rejected(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "sp2.dat", fast_fs)
            f.Set_view(comm.rank * 8, CHAR, contiguous(8, CHAR))
            f.Write_all_begin(b"x" * 8)
            with pytest.raises(RuntimeError, match="split collective is already active"):
                f.Write_all_begin(b"y" * 8)
            f.Write_all_end()
            f.Close()

        run_spmd(fn, 2)

    def test_end_without_begin_rejected(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "sp3.dat", fast_fs)
            with pytest.raises(RuntimeError, match="no split collective write"):
                f.Write_all_end()
            with pytest.raises(RuntimeError, match="no split collective read"):
                f.Read_all_end()
            f.Close()

        run_spmd(fn, 1)


class TestRequestMisuse:
    def test_double_wait_is_idempotent(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "dw.dat", fast_fs)
            f.Set_view(comm.rank * 8, CHAR, contiguous(8, CHAR))
            request = f.Iwrite_all(b"d" * 8)
            first = request.Wait()
            second = request.Wait()
            assert first is second
            assert request.retired
            f.Close()

        run_spmd(fn, 2)

    def test_test_then_wait(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "tw.dat", fast_fs)
            f.Set_view(comm.rank * 8, CHAR, contiguous(8, CHAR))
            request = f.Iwrite_all(b"t" * 8)
            # Freshly issued: the progress task has not run yet.
            flag = request.Test()
            outcome = request.Wait()
            assert isinstance(outcome, WriteOutcome)
            assert request.Test() is True  # completed requests keep testing true
            assert request.Wait() is outcome
            f.Close()
            return flag

        run_spmd(fn, 2)

    def test_polling_loop_completes(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "poll.dat", fast_fs)
            f.Set_view(comm.rank * 64, CHAR, contiguous(64, CHAR))
            request = f.Iwrite_all(b"p" * 64)
            spins = 0
            while not request.Test():
                comm.clock.advance(1e-4)  # compute between polls
                spins += 1
                assert spins < 10_000, "Test() loop starved the progress task"
            f.Close()
            return spins

        run_spmd(fn, 2)

    def test_dropped_request_blocks_close_then_completes(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "drop.dat", fast_fs)
            f.Set_view(comm.rank * 8, CHAR, contiguous(8, CHAR))
            request = f.Iwrite_all(bytes([48 + comm.rank]) * 8)
            with pytest.raises(RuntimeError, match="outstanding I/O request"):
                f.Close()
            # The operation itself was never lost — completing it unblocks
            # the close, and the data is on the servers.
            Waitall([request])
            f.Close()

        run_spmd(fn, 2)
        assert fast_fs.lookup("drop.dat").store.read(0, 16) == b"0" * 8 + b"1" * 8

    def test_failing_collective_aborts_all_ranks(self, fast_fs):
        fail_rank = 1

        class ExplodingTwoPhase(TwoPhaseStrategy):
            def schedule(self, comm, region, data, report):
                if region.rank == fail_rank:
                    raise ValueError("injected mid-shuffle failure")
                return super().schedule(comm, region, data, report)

        def fn(comm):
            f = MPIFile.Open(comm, "boom.dat", fast_fs)
            f.Set_atomicity(True)
            _set_strategy_quietly(f, ExplodingTwoPhase())
            f.Set_view(0, CHAR, contiguous(64, CHAR))
            request = f.Iwrite_all(b"b" * 64)
            try:
                Waitall([request])
            except CollectiveAbortedError as exc:
                f.Close()
                return type(exc).__name__, type(exc.__cause__).__name__ if exc.__cause__ else None
            raise AssertionError("Waitall should have raised")

        result = run_spmd(fn, 3)
        for rank, (kind, cause) in enumerate(result.returns):
            assert kind == "CollectiveAbortedError"
            if rank == fail_rank:
                assert cause == "ValueError"  # the injected failure is chained

    def test_waitany_order_is_deterministic(self):
        def run_once():
            fs = ParallelFileSystem(fast_fs_config())

            def fn(comm):
                big = MPIFile.Open(comm, "big.dat", fs)
                small = MPIFile.Open(comm, "small.dat", fs)
                big.Set_view(comm.rank * 65536, CHAR, contiguous(65536, CHAR))
                small.Set_view(comm.rank * 16, CHAR, contiguous(16, CHAR))
                requests = [big.Iwrite_all(b"B" * 65536), small.Iwrite_all(b"s" * 16)]
                order = []
                while True:
                    index = Waitany(requests)
                    if index is None:
                        break
                    order.append(index)
                big.Close()
                small.Close()
                return order

            return run_spmd(fn, 2).returns

        first = run_once()
        second = run_once()
        # Identical runs retire requests in the identical order …
        assert first == second
        assert all(order == first[0] for order in first)
        # … which is virtual-time completion order: the small write first.
        assert first[0] == [1, 0]

    def test_waitall_mixed_with_p2p_requests(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "mix.dat", fast_fs)
            f.Set_view(comm.rank * 8, CHAR, contiguous(8, CHAR))
            if comm.rank == 0:
                requests = [comm.isend({"hello": 1}, dest=1), f.Iwrite_all(b"m" * 8)]
                results = Waitall(requests)
                f.Close()
                return results[1].bytes_written
            requests = [comm.irecv(source=0), f.Iwrite_all(b"m" * 8)]
            results = Waitall(requests)
            f.Close()
            return results[0]

        result = run_spmd(fn, 2)
        assert result.returns[0] == 8
        assert result.returns[1] == {"hello": 1}

    def test_testall_completes_only_when_all_done(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "ta.dat", fast_fs)
            f.Set_view(comm.rank * 32, CHAR, contiguous(32, CHAR))
            requests = [f.Iwrite_all(b"1" * 32)]
            spins = 0
            while not Testall(requests):
                comm.clock.advance(1e-4)
                spins += 1
                assert spins < 10_000
            assert all(r.retired for r in requests)
            f.Close()

        run_spmd(fn, 2)


class TestRetirementCoherence:
    """Review-pinned regressions: waited requests are readable-after."""

    def test_iwrite_at_visible_to_own_rank_after_wait(self, fast_fs):
        """Non-atomic Iwrite_at buffers in the progress handle's cache; the
        retirement flush must make it visible to the rank's own blocking
        reads (read-your-own-writes across handles)."""

        def fn(comm):
            f = MPIFile.Open(comm, "ryow_nb.dat", fast_fs)
            out = None
            if comm.rank == 0:
                written = f.Iwrite_at(0, b"A" * 64).Wait()
                buf = bytearray(64)
                f.Read_at(0, buf)
                out = written, bytes(buf)
            f.Close()
            return out

        result = run_spmd(fn, 2)
        written, data = result.returns[0]
        assert written == 64
        assert data == b"A" * 64

    def test_sync_with_outstanding_request_rejected(self, fast_fs):
        """MPI requires all requests complete before Sync; a silent partial
        flush would break the visibility contract, so Sync refuses."""

        def fn(comm):
            f = MPIFile.Open(comm, "sync_nb.dat", fast_fs)
            f.Set_view(comm.rank * 8, CHAR, contiguous(8, CHAR))
            request = f.Iwrite_all(b"s" * 8)
            with pytest.raises(RuntimeError, match="outstanding I/O request"):
                f.Sync()
            request.Wait()
            f.Sync()  # fine once the request is retired
            f.Close()

        run_spmd(fn, 2)

    def test_waited_write_visible_to_peer_after_sync(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "peer_nb.dat", fast_fs)
            if comm.rank == 0:
                f.Iwrite_at(0, b"E" * 64).Wait()
            f.Sync()  # collective: rank 1 reads after the barrier
            buf = bytearray(64)
            f.Read_at(0, buf)
            f.Close()
            return bytes(buf)

        result = run_spmd(fn, 2)
        assert result.returns[1] == b"E" * 64

    def test_failed_begin_does_not_move_file_pointer(self, fast_fs):
        from repro.core.strategies import AtomicityStrategy

        class OpaqueStrategy(AtomicityStrategy):
            name = "opaque"

            def execute_write(self, comm, handle, region, data):
                raise AssertionError("never reached")

        def fn(comm):
            f = MPIFile.Open(comm, "ptr.dat", fast_fs)
            f.Set_atomicity(True)
            _set_strategy_quietly(f, OpaqueStrategy())
            f.Set_view(0, CHAR, contiguous(8, CHAR))
            with pytest.raises(NotImplementedError):
                f.Write_all_begin(b"x" * 8)  # not a staged-pipeline strategy
            position = f.Tell()
            f.Close()
            return position

        result = run_spmd(fn, 1)
        assert result.returns == [0], "a failed begin must not move the pointer"

    def test_waited_write_visible_while_later_request_outstanding(self, fast_fs):
        """Retiring a write must flush it even when a later request is still
        in flight — a waited-on write is readable-after unconditionally."""

        def fn(comm):
            out = None
            f = MPIFile.Open(comm, "early_retire.dat", fast_fs)
            if comm.rank == 0:
                first = f.Iwrite_at(0, b"X" * 64)
                second = f.Iread_at(128, bytearray(16))
                first.Wait()  # `second` is still outstanding here
                buf = bytearray(64)
                f.Read_at(0, buf)
                second.Wait()
                out = bytes(buf)
            f.Close()
            return out

        result = run_spmd(fn, 2)
        assert result.returns[0] == b"X" * 64

    def test_iread_at_sees_main_handle_write(self, fast_fs):
        """A nonblocking independent read must not serve pages the progress
        handle cached before the rank's own (main-handle) write."""

        def fn(comm):
            out = None
            f = MPIFile.Open(comm, "stale_nb.dat", fast_fs)
            if comm.rank == 0:
                buf0 = bytearray(16)
                f.Iread_at(0, buf0).Wait()  # caches the (zero) page
                f.Write_at(0, b"B" * 16)    # main handle, write-behind
                buf1 = bytearray(16)
                f.Iread_at(0, buf1).Wait()
                out = bytes(buf1)
            f.Close()
            return out

        result = run_spmd(fn, 2)
        assert result.returns[0] == b"B" * 16

    def test_peer_failure_aborts_inflight_collectives(self, fast_fs):
        """A dying rank must surface CollectiveAbortedError (not a deadlock
        report) on peers whose nonblocking collectives it will never join."""
        from repro.mpi import SPMDExecutionError

        def fn(comm):
            f = MPIFile.Open(comm, "die.dat", fast_fs, info=Info({"atomicity_strategy": "two-phase"}))
            f.Set_atomicity(True)
            if comm.rank == 0:
                raise ValueError("rank 0 dies before joining the collective")
            f.Set_view(0, CHAR, contiguous(32, CHAR))
            f.Iwrite_all(b"d" * 32).Wait()
            f.Close()

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 2)
        failures = excinfo.value.failures
        assert isinstance(failures[0], ValueError)
        assert isinstance(failures[1], CollectiveAbortedError)

    def test_waitall_and_testall_accept_none_placeholders(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "null.dat", fast_fs)
            f.Set_view(comm.rank * 8, CHAR, contiguous(8, CHAR))
            requests = [None, f.Iwrite_all(b"n" * 8), None]
            spins = 0
            while not Testall(requests):
                comm.clock.advance(1e-4)
                spins += 1
                assert spins < 10_000
            results = Waitall(requests)
            f.Close()
            return results[0] is None and results[2] is None and results[1].bytes_written == 8

        result = run_spmd(fn, 2)
        assert all(result.returns)

    def test_waitany_drains_mixed_p2p_list(self, fast_fs):
        def fn(comm):
            if comm.rank == 0:
                comm.send("one", dest=1, tag=1)
                comm.send("two", dest=1, tag=2)
                return None
            requests = [comm.irecv(source=0, tag=1), comm.irecv(source=0, tag=2)]
            order = []
            while True:
                index = Waitany(requests)
                if index is None:
                    break
                order.append(index)
            return order

        result = run_spmd(fn, 2)
        assert sorted(result.returns[1]) == [0, 1], "each p2p request retires once"


class TestCloseSemantics:
    def test_close_flushes_write_behind_pages(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "flush.dat", fast_fs)
            cache = f._handle.cache
            if comm.rank == 0:
                f.Write_at(0, b"q" * 512)  # write-behind: dirty pages only
            dirty_before = cache.dirty_bytes()
            f.Close()
            return dirty_before, cache.dirty_bytes()

        result = run_spmd(fn, 2)
        dirty_before, dirty_after = result.returns[0]
        assert dirty_before == 512, "the write should have been buffered"
        assert dirty_after == 0, "dirty pages must not survive a close"
        assert fast_fs.lookup("flush.dat").store.read(0, 512) == b"q" * 512

    def test_close_is_collective(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "coll.dat", fast_fs)
            if comm.rank == 0:
                comm.clock.advance(0.5)
            f.Close()
            return comm.clock.now

        result = run_spmd(fn, 3)
        # The close barrier synchronises every rank past rank 0's compute.
        assert all(now >= 0.5 for now in result.returns)


class TestInfoHints:
    def test_cb_nodes_bounds_aggregators(self, fast_fs):
        info = Info({"atomicity_strategy": "two-phase", "cb_nodes": "2"})

        def fn(comm):
            f = MPIFile.Open(comm, "cbn.dat", fast_fs, info=info)
            f.Set_atomicity(True)
            f.Set_view(0, CHAR, contiguous(256, CHAR))
            outcome = f.Write_all(rank_pattern_bytes(comm.rank, 256))
            f.Close()
            return outcome

        result = run_spmd(fn, 4)
        assert all(o.extra["aggregators"] == 2.0 for o in result.returns)

    def test_cb_buffer_size_sizes_the_election(self, fast_fs):
        # 256-byte domain with 64-byte aggregator buffers -> 4 aggregators.
        info = Info({"atomicity_strategy": "two-phase", "cb_buffer_size": "64"})

        def fn(comm):
            f = MPIFile.Open(comm, "cbb.dat", fast_fs, info=info)
            f.Set_atomicity(True)
            f.Set_view(0, CHAR, contiguous(256, CHAR))
            outcome = f.Write_all(rank_pattern_bytes(comm.rank, 256))
            f.Close()
            return outcome

        result = run_spmd(fn, 8)
        assert all(o.extra["aggregators"] == 4.0 for o in result.returns)

    def test_striping_unit_applied_at_open(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "su.dat", fast_fs, info=Info({"striping_unit": "4096"}))
            stripe = f._handle.file.layout.stripe_size
            f.Close()
            return stripe

        result = run_spmd(fn, 2)
        assert all(s == 4096 for s in result.returns)

    def test_read_ahead_toggle(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "ra.dat", fast_fs, info=Info({"read_ahead": "false"}))
            if comm.rank == 0:
                f.Write_at(0, b"r" * 2048)
            f.Sync()
            buf = bytearray(256)
            f.Read_at(0, buf)  # cached read; would normally read ahead
            stats = f._handle.cache.stats
            f.Close()
            return stats.read_ahead_pages

        result = run_spmd(fn, 1)
        assert result.returns[0] == 0

    def test_set_strategy_shim_warns_and_routes_to_info(self, fast_fs):
        def fn(comm):
            f = MPIFile.Open(comm, "shim.dat", fast_fs)
            f.Set_atomicity(True)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                f.set_strategy("two-phase")
            assert any(issubclass(w.category, DeprecationWarning) for w in caught)
            assert f.info.get("atomicity_strategy") == "two-phase"
            strategy_name = f.effective_strategy().name
            f.Close()
            return strategy_name

        result = run_spmd(fn, 1)
        assert result.returns == ["two-phase"]


class TestMixedRaceNonblocking:
    """Acceptance: nonblocking + split collectives under a read/write race."""

    NBYTES = 128

    def test_race_passes_atomicity_verifier(self, fast_fs):
        nbytes = self.NBYTES

        def fn(comm):
            is_writer = comm.rank % 2 == 0
            sub = comm.split(color=0 if is_writer else 1)
            f = MPIFile.Open(sub, "race.dat", fast_fs)
            f.Set_atomicity(True)  # locking on this FS: serialises the race
            f.Set_view(0, CHAR, contiguous(nbytes, CHAR))
            if is_writer:
                payload = rank_pattern_bytes(comm.rank, nbytes)
                # Step 1: nonblocking collective with overlapped compute.
                request = f.Iwrite_all(payload)
                comm.clock.advance(0.0005)
                request.Wait()
                # Step 2: the same data through the split-collective form.
                f.Seek(0)
                f.Write_all_begin(payload)
                comm.clock.advance(0.0005)
                f.Write_all_end()
                f.Close()
                return ("write", comm.rank, None)
            buf1, buf2 = bytearray(nbytes), bytearray(nbytes)
            request = f.Iread_all(buf1)
            comm.clock.advance(0.0005)
            request.Wait()
            f.Seek(0)
            f.Read_all_begin(buf2)
            comm.clock.advance(0.0005)
            f.Read_all_end()
            f.Close()
            return ("read", comm.rank, (bytes(buf1), bytes(buf2)))

        result = run_spmd(fn, 6)
        writers = [r for r in result.returns if r[0] == "write"]
        readers = [r for r in result.returns if r[0] == "read"]
        write_regions = [
            FileRegionSet(world_rank, [(0, nbytes)]) for _, world_rank, _ in writers
        ]
        writer_data = [
            rank_pattern_bytes(world_rank, nbytes) for _, world_rank, _ in writers
        ]
        # Every byte of the fully-overlapped region carries one writer's data.
        assert check_mpi_atomicity(fast_fs.lookup("race.dat").store, write_regions).ok
        # No reader observed a torn state, in either API form.
        observations = [
            ReadObservation(world_rank, FileRegionSet(world_rank, [(0, nbytes)]), data)
            for _, world_rank, streams in readers
            for data in streams
        ]
        assert check_read_atomicity(observations, write_regions, writer_data).ok


class TestVerifierInFlightRequests:
    """A request is only readable-after via Wait (verifier extension)."""

    def test_baseline_admissible_only_while_in_flight(self):
        region = FileRegionSet(0, [(0, 8)])
        data = b"W" * 8
        stale = ReadObservation(1, FileRegionSet(1, [(0, 8)]), bytes(8))
        fresh = ReadObservation(1, FileRegionSet(1, [(0, 8)]), data)
        # While the write may still be in flight, the pre-write state is fine.
        assert check_read_atomicity([stale], [region], [data]).ok
        # Once rank 0's request was waited on, its data must be visible.
        report = check_read_atomicity([stale], [region], [data], committed={0})
        assert not report.ok
        assert report.violations[0].kind == "torn-read"
        assert check_read_atomicity([fresh], [region], [data], committed={0}).ok

    def test_waited_request_readable_after_end_to_end(self, fast_fs):
        nbytes = 64

        def fn(comm):
            f = MPIFile.Open(comm, "raw.dat", fast_fs)
            f.Set_atomicity(True)
            f.Set_view(0, CHAR, contiguous(nbytes, CHAR))
            request = f.Iwrite_all(rank_pattern_bytes(comm.rank, nbytes))
            request.Wait()  # commit point: readable-after from here
            f.Sync()
            f.Seek(0)
            buf = bytearray(nbytes)
            f.Read_all(buf)
            f.Close()
            return bytes(buf)

        result = run_spmd(fn, 2)
        regions = [FileRegionSet(r, [(0, nbytes)]) for r in range(2)]
        data = [rank_pattern_bytes(r, nbytes) for r in range(2)]
        observations = [
            ReadObservation(rank, regions[rank], stream)
            for rank, stream in enumerate(result.returns)
        ]
        # Both writes were waited on before any read: the baseline is no
        # longer admissible, and the reads must (and do) still verify.
        assert check_read_atomicity(observations, regions, data, committed={0, 1}).ok
