"""Tests for the byte store (provenance) and the striping layout."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fs.storage import NO_WRITER, ByteStore
from repro.fs.striping import StripingLayout


class TestByteStore:
    def test_write_read_roundtrip(self):
        store = ByteStore()
        store.write(10, b"hello", writer=3)
        assert store.read(10, 5) == b"hello"
        assert store.size == 15

    def test_unwritten_bytes_read_zero(self):
        store = ByteStore()
        store.write(4, b"xy", writer=0)
        assert store.read(0, 8) == b"\x00\x00\x00\x00xy\x00\x00"

    def test_read_past_eof_zero_filled(self):
        store = ByteStore()
        store.write(0, b"ab", writer=0)
        assert store.read(0, 6) == b"ab\x00\x00\x00\x00"

    def test_growth_preserves_data(self):
        store = ByteStore(initial_capacity=16)
        store.write(0, b"A" * 10, writer=1)
        store.write(1000, b"B" * 10, writer=2)
        assert store.read(0, 10) == b"A" * 10
        assert store.read(1000, 10) == b"B" * 10
        assert store.size == 1010

    def test_provenance_tracking(self):
        store = ByteStore()
        store.write(0, b"AAAA", writer=0)
        store.write(2, b"BB", writer=1)
        assert list(store.writers(0, 4)) == [0, 0, 1, 1]
        assert store.distinct_writers(0, 4) == (0, 1)
        assert store.distinct_writers(0, 2) == (0,)

    def test_unwritten_provenance(self):
        store = ByteStore()
        assert list(store.writers(0, 3)) == [NO_WRITER] * 3
        assert store.distinct_writers(0, 3) == ()

    def test_numpy_input(self):
        store = ByteStore()
        store.write(0, np.arange(5, dtype=np.uint8), writer=0)
        assert store.read(0, 5) == bytes(range(5))

    def test_empty_write_is_noop(self):
        store = ByteStore()
        assert store.write(100, b"", writer=0) == 0
        assert store.size == 0

    def test_negative_offset_rejected(self):
        store = ByteStore()
        with pytest.raises(ValueError):
            store.write(-1, b"a")
        with pytest.raises(ValueError):
            store.read(-1, 4)

    def test_truncate_shrinks_and_clears(self):
        store = ByteStore()
        store.write(0, b"ABCDEF", writer=2)
        store.truncate(3)
        assert store.size == 3
        store.write(0, b"", writer=0)
        assert store.read(0, 6) == b"ABC\x00\x00\x00"
        assert store.distinct_writers(3, 3) == ()

    def test_snapshot(self):
        store = ByteStore()
        store.write(0, b"xyz", writer=0)
        assert store.snapshot() == b"xyz"

    def test_overwrite_updates_provenance(self):
        store = ByteStore()
        store.write(0, b"AAAA", writer=0)
        store.write(0, b"BBBB", writer=5)
        assert store.distinct_writers(0, 4) == (5,)

    @given(st.lists(st.tuples(st.integers(0, 200), st.binary(min_size=0, max_size=30),
                              st.integers(0, 7)), max_size=15))
    def test_matches_reference_model(self, ops):
        """The store behaves like a plain big bytearray with writer tags."""
        store = ByteStore(initial_capacity=4)
        reference = bytearray(400)
        writers = [NO_WRITER] * 400
        size = 0
        for offset, data, writer in ops:
            store.write(offset, data, writer=writer)
            reference[offset : offset + len(data)] = data
            for i in range(len(data)):
                writers[offset + i] = writer
            if data:
                size = max(size, offset + len(data))
        assert store.size == size
        assert store.read(0, size) == bytes(reference[:size])
        assert list(store.writers(0, size)) == writers[:size]


class TestStripingLayout:
    def test_server_of(self):
        layout = StripingLayout(num_servers=4, stripe_size=10)
        assert layout.server_of(0) == 0
        assert layout.server_of(9) == 0
        assert layout.server_of(10) == 1
        assert layout.server_of(39) == 3
        assert layout.server_of(40) == 0

    def test_chunks_split_on_boundaries(self):
        layout = StripingLayout(num_servers=2, stripe_size=10)
        chunks = list(layout.chunks(5, 20))
        assert [(c.server, c.offset, c.length) for c in chunks] == [
            (0, 5, 5),
            (1, 10, 10),
            (0, 20, 5),
        ]

    def test_chunks_cover_request(self):
        layout = StripingLayout(num_servers=3, stripe_size=7)
        chunks = list(layout.chunks(4, 50))
        assert sum(c.length for c in chunks) == 50
        assert chunks[0].offset == 4
        assert chunks[-1].offset + chunks[-1].length == 54

    def test_bytes_per_server_balanced(self):
        layout = StripingLayout(num_servers=4, stripe_size=10)
        per_server = layout.bytes_per_server(0, 400)
        assert per_server == {0: 100, 1: 100, 2: 100, 3: 100}

    def test_single_server_everything(self):
        layout = StripingLayout(num_servers=1, stripe_size=64)
        assert layout.bytes_per_server(123, 1000) == {0: 1000}

    def test_servers_touched(self):
        layout = StripingLayout(num_servers=8, stripe_size=10)
        assert layout.servers_touched(0, 25) == [0, 1, 2]

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            StripingLayout(num_servers=0, stripe_size=10)
        with pytest.raises(ValueError):
            StripingLayout(num_servers=2, stripe_size=0)

    def test_zero_length_request(self):
        layout = StripingLayout(num_servers=2, stripe_size=10)
        assert list(layout.chunks(5, 0)) == []

    @given(st.integers(1, 8), st.integers(1, 64), st.integers(0, 500), st.integers(0, 300))
    def test_chunk_partition_property(self, servers, stripe, offset, nbytes):
        layout = StripingLayout(num_servers=servers, stripe_size=stripe)
        chunks = list(layout.chunks(offset, nbytes))
        # Chunks tile the byte range exactly, in order, without gaps.
        pos = offset
        for c in chunks:
            assert c.offset == pos
            assert c.length > 0
            assert c.server == layout.server_of(c.offset)
            # A chunk never crosses a stripe boundary.
            assert (c.offset // stripe) == ((c.offset + c.length - 1) // stripe)
            pos += c.length
        assert pos == offset + nbytes
