"""Unit and property-based tests for the interval algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import (
    Interval,
    IntervalSet,
    _intersect_arrays,
    _normalise_arrays,
    _subtract_arrays,
    clip_many,
    clip_sorted_runs,
    merge_interval_sets,
    py_intersection,
    py_normalise,
    py_subtract,
    py_union,
)


# ---------------------------------------------------------------------------
# Interval basics
# ---------------------------------------------------------------------------


class TestInterval:
    def test_length(self):
        assert Interval(2, 10).length == 8

    def test_empty(self):
        assert Interval(5, 5).is_empty()
        assert not Interval(5, 6).is_empty()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Interval(-1, 5)

    def test_reversed_rejected(self):
        with pytest.raises(ValueError):
            Interval(10, 5)

    def test_overlap_true(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))

    def test_overlap_false_adjacent(self):
        # Half-open ranges: [0,10) and [10,20) share no byte.
        assert not Interval(0, 10).overlaps(Interval(10, 20))

    def test_touches_adjacent(self):
        assert Interval(0, 10).touches(Interval(10, 20))

    def test_contains_offset(self):
        iv = Interval(3, 7)
        assert iv.contains_offset(3)
        assert iv.contains_offset(6)
        assert not iv.contains_offset(7)

    def test_contains_interval(self):
        assert Interval(0, 100).contains(Interval(10, 20))
        assert not Interval(0, 100).contains(Interval(90, 120))

    def test_intersection(self):
        assert Interval(0, 10).intersection(Interval(5, 20)) == Interval(5, 10)

    def test_intersection_disjoint_is_empty(self):
        assert Interval(0, 5).intersection(Interval(10, 20)).is_empty()

    def test_subtract_middle_splits(self):
        pieces = Interval(0, 10).subtract(Interval(3, 6))
        assert pieces == (Interval(0, 3), Interval(6, 10))

    def test_subtract_disjoint_unchanged(self):
        assert Interval(0, 10).subtract(Interval(20, 30)) == (Interval(0, 10),)

    def test_subtract_full_cover_empty(self):
        assert Interval(3, 6).subtract(Interval(0, 10)) == ()

    def test_shift(self):
        assert Interval(2, 5).shifted(10) == Interval(12, 15)


# ---------------------------------------------------------------------------
# IntervalSet construction and normalisation
# ---------------------------------------------------------------------------


class TestIntervalSetConstruction:
    def test_empty_set(self):
        s = IntervalSet()
        assert s.is_empty()
        assert s.total_bytes == 0
        assert s.extent() is None

    def test_coalesces_adjacent(self):
        s = IntervalSet([(0, 5), (5, 10)])
        assert s.intervals == (Interval(0, 10),)

    def test_coalesces_overlapping(self):
        s = IntervalSet([(0, 6), (4, 10)])
        assert s.intervals == (Interval(0, 10),)

    def test_drops_empty(self):
        s = IntervalSet([(3, 3), (5, 8)])
        assert s.intervals == (Interval(5, 8),)

    def test_sorted_output(self):
        s = IntervalSet([(20, 30), (0, 5)])
        assert [iv.start for iv in s] == [0, 20]

    def test_from_segments(self):
        s = IntervalSet.from_segments([(0, 5), (10, 5)])
        assert s.as_segments() == [(0, 5), (10, 5)]

    def test_single(self):
        assert IntervalSet.single(3, 9).total_bytes == 6

    def test_equality_and_hash(self):
        a = IntervalSet([(0, 5), (5, 10)])
        b = IntervalSet([(0, 10)])
        assert a == b
        assert hash(a) == hash(b)


class TestIntervalSetQueries:
    def test_total_bytes(self):
        assert IntervalSet([(0, 5), (10, 20)]).total_bytes == 15

    def test_extent(self):
        assert IntervalSet([(5, 10), (50, 60)]).extent() == Interval(5, 60)

    def test_min_max_offsets(self):
        s = IntervalSet([(5, 10), (50, 60)])
        assert s.min_offset == 5
        assert s.max_offset == 60

    def test_contains_offset(self):
        s = IntervalSet([(0, 5), (10, 15)])
        assert s.contains_offset(3)
        assert not s.contains_offset(7)
        assert s.contains_offset(10)
        assert not s.contains_offset(15)

    def test_covers(self):
        outer = IntervalSet([(0, 100)])
        inner = IntervalSet([(10, 20), (40, 60)])
        assert outer.covers(inner)
        assert not inner.covers(outer)


class TestIntervalSetAlgebra:
    def test_union_disjoint(self):
        a = IntervalSet([(0, 5)])
        b = IntervalSet([(10, 15)])
        assert a.union(b).as_segments() == [(0, 5), (10, 5)]

    def test_union_merging(self):
        a = IntervalSet([(0, 8)])
        b = IntervalSet([(5, 12)])
        assert a.union(b) == IntervalSet([(0, 12)])

    def test_intersection(self):
        a = IntervalSet([(0, 10), (20, 30)])
        b = IntervalSet([(5, 25)])
        assert a.intersection(b) == IntervalSet([(5, 10), (20, 25)])

    def test_intersection_empty(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(10, 20)])
        assert a.intersection(b).is_empty()

    def test_subtract(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(3, 6)])
        assert a.subtract(b) == IntervalSet([(0, 3), (6, 10)])

    def test_subtract_multiple_holes(self):
        a = IntervalSet([(0, 20)])
        b = IntervalSet([(2, 4), (6, 8), (15, 25)])
        assert a.subtract(b) == IntervalSet([(0, 2), (4, 6), (8, 15)])

    def test_subtract_everything(self):
        a = IntervalSet([(5, 15)])
        b = IntervalSet([(0, 100)])
        assert a.subtract(b).is_empty()

    def test_overlaps(self):
        a = IntervalSet([(0, 5), (10, 15)])
        assert a.overlaps(IntervalSet([(4, 6)]))
        assert not a.overlaps(IntervalSet([(5, 10)]))

    def test_shifted(self):
        assert IntervalSet([(0, 5)]).shifted(100) == IntervalSet([(100, 105)])

    def test_clipped(self):
        s = IntervalSet([(0, 10), (20, 30)])
        assert s.clipped(5, 25) == IntervalSet([(5, 10), (20, 25)])

    def test_merge_many(self):
        merged = merge_interval_sets([IntervalSet([(0, 5)]), IntervalSet([(3, 9)]), IntervalSet([(20, 21)])])
        assert merged == IntervalSet([(0, 9), (20, 21)])


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

segments_strategy = st.lists(
    st.tuples(st.integers(0, 500), st.integers(0, 50)), max_size=12
).map(lambda pairs: [(a, a + b) for a, b in pairs])


def _as_set(pairs):
    return IntervalSet(pairs)


@st.composite
def interval_sets(draw):
    return _as_set(draw(segments_strategy))


class TestIntervalSetProperties:
    @given(interval_sets())
    def test_normalised_disjoint_and_sorted(self, s):
        ivs = s.intervals
        for i in range(len(ivs) - 1):
            # strictly increasing with a gap (otherwise they would have merged)
            assert ivs[i].stop < ivs[i + 1].start

    @given(interval_sets(), interval_sets())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(interval_sets(), interval_sets())
    def test_intersection_commutative(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(interval_sets(), interval_sets())
    def test_union_byte_count(self, a, b):
        union = a.union(b)
        inter = a.intersection(b)
        assert union.total_bytes == a.total_bytes + b.total_bytes - inter.total_bytes

    @given(interval_sets(), interval_sets())
    def test_subtract_then_intersect_empty(self, a, b):
        assert a.subtract(b).intersection(b).is_empty()

    @given(interval_sets(), interval_sets())
    def test_subtract_partitions_a(self, a, b):
        kept = a.subtract(b)
        removed = a.intersection(b)
        assert kept.union(removed) == a
        assert kept.total_bytes + removed.total_bytes == a.total_bytes

    @given(interval_sets(), interval_sets())
    def test_overlaps_consistent_with_intersection(self, a, b):
        assert a.overlaps(b) == (not a.intersection(b).is_empty())

    @given(interval_sets())
    def test_roundtrip_segments(self, s):
        assert IntervalSet.from_segments(s.as_segments()) == s

    @given(interval_sets(), st.integers(0, 1000))
    def test_contains_offset_matches_linear_scan(self, s, offset):
        expected = any(iv.start <= offset < iv.stop for iv in s)
        assert s.contains_offset(offset) == expected


# ---------------------------------------------------------------------------
# Differential tests: vectorized kernels vs the pure-Python references
# ---------------------------------------------------------------------------
#
# The IntervalSet algebra dispatches to numpy batch kernels above _SMALL_N
# inputs and to the py_* reference loops below it.  The two implementations
# must agree bit for bit on every input, or the answer would depend on the
# size of the workload that produced it.

pairs_strategy = st.lists(
    st.tuples(st.integers(0, 2000), st.integers(0, 40)),
    min_size=0,
    max_size=64,
).map(lambda raw: [(a, a + b) for a, b in raw])


def as_pairs(starts, stops):
    return list(zip(np.asarray(starts).tolist(), np.asarray(stops).tolist()))


def as_arrays(pairs):
    return (
        np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs)),
        np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs)),
    )


class TestVectorizedKernelsMatchReference:
    @given(pairs_strategy)
    def test_normalise(self, pairs):
        assert as_pairs(*_normalise_arrays(*as_arrays(pairs))) == py_normalise(pairs)

    @given(pairs_strategy, pairs_strategy)
    def test_intersection(self, a, b):
        na, nb = py_normalise(a), py_normalise(b)
        got = as_pairs(*_intersect_arrays(*as_arrays(na), *as_arrays(nb)))
        assert got == py_intersection(na, nb)

    @given(pairs_strategy, pairs_strategy)
    def test_subtract(self, a, b):
        na, nb = py_normalise(a), py_normalise(b)
        got = as_pairs(*_subtract_arrays(*as_arrays(na), *as_arrays(nb)))
        # _subtract_arrays may emit un-coalesced-but-disjoint runs only when
        # inputs are empty (it returns `a` untouched); both sides are
        # normalised pair lists here, so equality is exact.
        assert got == py_subtract(na, nb)

    @given(pairs_strategy, pairs_strategy)
    def test_clip_many_matches_clip_sorted_runs(self, queries, runs):
        b = py_normalise(runs)
        b_starts = [s for s, _ in b]
        b_stops = [e for _, e in b]
        a_starts, a_stops = as_arrays(queries)
        a_idx, b_idx, lo, hi = clip_many(a_starts, a_stops, *as_arrays(b))
        got = list(
            zip(a_idx.tolist(), b_idx.tolist(), lo.tolist(), hi.tolist())
        )
        expected = [
            (qi, idx, qlo, qhi)
            for qi, (qstart, qstop) in enumerate(queries)
            for qlo, qhi, idx in clip_sorted_runs(b_starts, b_stops, qstart, qstop)
        ]
        assert got == expected

    def test_public_api_large_inputs_match_reference(self):
        """Seeded fuzz well above _SMALL_N: the numpy-only code paths."""
        rng = np.random.RandomState(20260807)
        for _ in range(25):
            n = int(rng.randint(100, 2000))
            raw_a = [
                (int(s), int(s + l))
                for s, l in zip(rng.randint(0, 10 * n, n), rng.randint(0, 12, n))
            ]
            raw_b = [
                (int(s), int(s + l))
                for s, l in zip(rng.randint(0, 10 * n, n), rng.randint(0, 12, n))
            ]
            a, b = IntervalSet(raw_a), IntervalSet(raw_b)
            na, nb = py_normalise(raw_a), py_normalise(raw_b)
            assert a._pairs() == na
            assert b._pairs() == nb
            assert a.union(b)._pairs() == py_union(na, nb)
            assert a.intersection(b)._pairs() == py_intersection(na, nb)
            assert a.subtract(b)._pairs() == py_subtract(na, nb)
            assert b.subtract(a)._pairs() == py_subtract(nb, na)
            assert a.overlaps(b) == bool(py_intersection(na, nb))
