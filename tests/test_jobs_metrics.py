"""Unit tests for the multi-tenant fairness/latency metrics.

These pin the edge-case conventions *before* the metrics are wired into the
benchmark harness: Jain's index on degenerate samples (empty, single job,
all-zero, one straggler), percentile behaviour on tiny samples (a single
job is a legitimate sweep point), and the bandwidth conventions for a
zero-length window.
"""

from __future__ import annotations

import pytest

from repro.jobs import aggregate_bandwidth, jains_index, percentile
from repro.jobs.metrics import summarize_makespans


class TestJainsIndex:
    def test_single_job_is_perfectly_fair(self):
        assert jains_index([3.7]) == 1.0

    def test_equal_makespans_are_perfectly_fair(self):
        assert jains_index([2.0, 2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_one_straggler_lowers_the_index(self):
        # Three quick jobs and one 10x straggler: fairness drops well below
        # 1.0 but stays above the 1/n floor.
        value = jains_index([1.0, 1.0, 1.0, 10.0])
        assert 0.25 < value < 0.5
        assert value == pytest.approx(169.0 / (4 * 103.0))

    def test_total_starvation_approaches_one_over_n(self):
        assert jains_index([0.0, 0.0, 0.0, 8.0]) == pytest.approx(0.25)

    def test_empty_sample_is_fair(self):
        assert jains_index([]) == 1.0

    def test_all_zero_sample_is_fair(self):
        # Nobody waited, nobody was starved.
        assert jains_index([0.0, 0.0]) == 1.0

    def test_negative_values_raise(self):
        with pytest.raises(ValueError, match="non-negative"):
            jains_index([1.0, -0.1])

    def test_scale_invariance(self):
        sample = [1.0, 2.0, 3.0]
        assert jains_index(sample) == pytest.approx(
            jains_index([1000 * v for v in sample])
        )


class TestPercentile:
    def test_single_value_is_every_percentile(self):
        for q in (0.0, 50.0, 99.0, 100.0):
            assert percentile([4.2], q) == 4.2

    def test_p50_of_two_values_is_the_midpoint(self):
        assert percentile([1.0, 3.0], 50.0) == pytest.approx(2.0)

    def test_p99_of_two_values_sits_just_under_the_larger(self):
        assert percentile([1.0, 3.0], 99.0) == pytest.approx(1.0 + 2.0 * 0.99)

    def test_matches_numpy_linear_definition(self):
        numpy = pytest.importorskip("numpy")
        sample = [0.3, 1.7, 2.2, 9.0, 4.4]
        for q in (0, 10, 50, 90, 99, 100):
            assert percentile(sample, q) == pytest.approx(
                float(numpy.percentile(sample, q))
            )

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    def test_q_outside_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestSummarizeMakespans:
    def test_single_job_summary(self):
        summary = summarize_makespans([2.5])
        assert summary == {
            "p50_makespan": 2.5,
            "p99_makespan": 2.5,
            "max_makespan": 2.5,
            "fairness": 1.0,
        }

    def test_straggler_shows_in_p99_and_fairness(self):
        summary = summarize_makespans([1.0, 1.0, 1.0, 10.0])
        assert summary["p50_makespan"] == 1.0
        assert summary["p99_makespan"] > 9.0
        assert summary["max_makespan"] == 10.0
        assert summary["fairness"] < 0.5


class TestAggregateBandwidth:
    def test_simple_ratio(self):
        assert aggregate_bandwidth(1000, 2.0) == 500.0

    def test_zero_window_with_traffic_is_infinite(self):
        assert aggregate_bandwidth(10, 0.0) == float("inf")

    def test_zero_window_without_traffic_is_zero(self):
        assert aggregate_bandwidth(0, 0.0) == 0.0
