"""Tests for the deterministic cooperative discrete-event scheduler."""

from __future__ import annotations

import time

import pytest

from repro.core.engine import (
    Engine,
    EngineError,
    Task,
    TaskCancelled,
    current_task,
    sequence_point,
)
from repro.mpi.clock import VirtualClock


class TestBasicExecution:
    def test_results_collected(self):
        engine = Engine()
        tasks = [engine.spawn(lambda i=i: i * 10) for i in range(4)]
        engine.run()
        assert [t.result for t in tasks] == [0, 10, 20, 30]
        assert all(t.state == Task.DONE for t in tasks)

    def test_tasks_run_in_spawn_order_at_equal_time(self):
        engine = Engine()
        order = []
        for i in range(5):
            engine.spawn(lambda i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_current_task_visible_inside_and_absent_outside(self):
        engine = Engine()
        seen = []
        engine.spawn(lambda: seen.append(current_task().tid))
        engine.run()
        assert seen == [0]
        assert current_task() is None

    def test_failure_recorded_with_traceback(self):
        engine = Engine()

        def boom():
            raise ValueError("broken")

        task = engine.spawn(boom)
        engine.run()
        assert task.state == Task.FAILED
        assert isinstance(task.error, ValueError)
        assert "ValueError: broken" in task.traceback_text
        assert "in boom" in task.traceback_text

    def test_failure_hook_called_in_scheduler_context(self):
        engine = Engine()
        failed = []
        engine.on_task_failed = lambda task: failed.append(task.tid)
        engine.spawn(lambda: (_ for _ in ()).throw(RuntimeError("x")))
        engine.spawn(lambda: None)
        engine.run()
        assert failed == [0]

    def test_engine_is_single_shot(self):
        engine = Engine()
        engine.spawn(lambda: None)
        engine.run()
        with pytest.raises(EngineError):
            engine.run()


class TestWaitWake:
    def test_wake_delivers_value(self):
        engine = Engine()
        got = []

        def waiter():
            got.append(engine.wait("for-value"))

        w = engine.spawn(waiter)

        def waker():
            engine.wake(w, value=42)

        engine.spawn(waker)
        engine.run()
        assert got == [42]

    def test_throw_raises_in_waiter(self):
        engine = Engine()
        caught = []

        def waiter():
            try:
                engine.wait("doomed")
            except RuntimeError as exc:
                caught.append(str(exc))

        w = engine.spawn(waiter)
        engine.spawn(lambda: engine.throw(w, RuntimeError("delivered")))
        engine.run()
        assert caught == ["delivered"]

    def test_wake_orders_by_virtual_time_then_id(self):
        engine = Engine()
        resumed = []
        waiters = []

        def make(i, t):
            clock = VirtualClock(now=t)

            def fn():
                engine.wait("parked")
                resumed.append(i)

            waiters.append(engine.spawn(fn, clock=clock))

        # Spawn in an order that differs from the virtual-time order.
        make(0, 5.0)
        make(1, 1.0)
        make(2, 5.0)

        def waker():
            for w in waiters:
                engine.wake(w)

        engine.spawn(waker, clock=VirtualClock(now=10.0))
        engine.run()
        # Time 1.0 first, then the two at 5.0 in task-id order.
        assert resumed == [1, 0, 2]

    def test_waking_a_ready_task_is_an_error(self):
        engine = Engine()

        def fn():
            with pytest.raises(EngineError):
                engine.wake(other)

        other = engine.spawn(lambda: None)
        engine.spawn(fn)
        engine.run()


class TestSequencePoints:
    def test_sequence_yields_to_earlier_task(self):
        engine = Engine()
        log = []

        def slow():
            # Starts first but immediately advances its clock far ahead;
            # the sequence point must let the earlier task run first.
            current_task().clock.advance(10.0)
            sequence_point()
            log.append("slow")

        def fast():
            log.append("fast")

        engine.spawn(slow)
        engine.spawn(fast)
        engine.run()
        assert log == ["fast", "slow"]

    def test_sequence_noop_when_already_earliest(self):
        engine = Engine()
        log = []

        def first():
            sequence_point()
            log.append("first")

        def second():
            current_task().clock.advance(1.0)
            log.append("second")

        engine.spawn(first)
        engine.spawn(second)
        engine.run()
        assert log == ["first", "second"]

    def test_sequence_point_outside_engine_is_noop(self):
        sequence_point()  # must not raise


class TestDeadlockAndTimeout:
    def test_blocked_tasks_cancelled_on_deadlock(self):
        engine = Engine()

        def stuck():
            engine.wait("never-woken")

        task = engine.spawn(stuck)
        engine.run()
        assert task.state == Task.CANCELLED
        assert task.deadlocked
        assert isinstance(task.error, TaskCancelled)
        assert "never-woken" in str(task.error)

    def test_deadlock_unwind_runs_finally_blocks(self):
        engine = Engine()
        cleaned = []

        def stuck():
            try:
                engine.wait("never")
            finally:
                cleaned.append(True)

        engine.spawn(stuck)
        engine.run()
        assert cleaned == [True]

    def test_timeout_snapshots_unfinished(self):
        engine = Engine()
        engine.spawn(lambda: None)
        engine.spawn(lambda: time.sleep(5.0))
        engine.spawn(lambda: None)  # never gets to run
        engine.run(timeout=0.1, grace=0.05)
        assert engine.timed_out
        assert sorted(t.tid for t in engine.unfinished) == [1, 2]

    def test_no_timeout_when_tasks_finish(self):
        engine = Engine()
        engine.spawn(lambda: None)
        engine.run(timeout=30.0)
        assert not engine.timed_out
        assert engine.unfinished == []

    def test_run_inside_task_rejected(self):
        engine = Engine()
        caught = []

        def nested():
            try:
                engine.run()
            except EngineError:
                caught.append(True)

        engine.spawn(nested)
        engine.run()
        assert caught == [True]


class TestDeterminism:
    def test_identical_schedules_across_runs(self):
        def run_once():
            engine = Engine()
            log = []

            def worker(i):
                clock = current_task().clock
                clock.advance(0.1 * ((i * 7) % 5))
                sequence_point()
                log.append((i, round(clock.now, 6)))

            for i in range(20):
                engine.spawn(lambda i=i: worker(i))
            engine.run()
            return log

        assert run_once() == run_once()
