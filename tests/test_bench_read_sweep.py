"""Tests for the read and mixed read/write benchmark sweeps.

Pins the headline property of the staged read pipeline — the two-phase
collective read beats the naive per-rank `Read_all` baseline on virtual-time
makespan — and the acceptance workload: read atomicity holds on an
overlapping mixed read/write race at P ∈ {16, 256}.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    run_mixed_experiment,
    run_read_experiment,
    run_read_sweep,
)
from repro.core.registry import default_registry


class TestReadSweep:
    def test_sweep_covers_strategies_and_verifies(self):
        table = run_read_sweep(
            machines=["Origin 2000"],
            array_labels=["32MB"],
            process_counts=[4],
            row_scale=256,
        )
        measured = {r.strategy for r in table}
        assert measured == set(default_registry.read_capable_names())
        assert all(r.atomic_ok for r in table)
        assert all(r.mode == "read" for r in table)

    def test_lockless_machine_skips_locking_but_keeps_baseline(self):
        table = run_read_sweep(
            machines=["Cplant"],
            array_labels=["32MB"],
            process_counts=[4],
            row_scale=256,
        )
        measured = {r.strategy for r in table}
        assert "locking" not in measured
        assert "none" in measured and "two-phase" in measured

    def test_two_phase_beats_naive_baseline(self):
        """The staged two-phase read wins on makespan against the naive
        per-rank read it replaces (overlapping column-wise views, P=16)."""
        naive = run_read_experiment("Origin 2000", 16, 8192, 16, "none")
        two_phase = run_read_experiment("Origin 2000", 16, 8192, 16, "two-phase")
        assert naive.atomic_ok and two_phase.atomic_ok
        assert two_phase.makespan_seconds < naive.makespan_seconds
        # The win comes from de-duplicated server reads.
        assert two_phase.bytes_written <= naive.bytes_written

    def test_read_experiment_accounts_cache_and_shuffle(self):
        record = run_read_experiment("Origin 2000", 16, 4096, 8, "two-phase")
        assert record.extra["shuffled_bytes"] > 0
        naive = run_read_experiment("Origin 2000", 16, 4096, 8, "none")
        assert naive.extra["cache_misses"] > 0


class TestMixedReadWrite:
    @pytest.mark.parametrize("nprocs", [16, 256])
    def test_mixed_race_is_read_and_write_atomic(self, nprocs):
        """Writers and readers race on one file under byte-range locking;
        both MPI write atomicity and read atomicity must hold."""
        record = run_mixed_experiment("Origin 2000", 16, 4096, nprocs)
        assert record.atomic_ok
        assert record.mode == "mixed"
        # The race is real: conflicting locks were actually waited on.
        assert record.lock_waits > 0

    def test_mixed_rejects_lockless_machine(self):
        with pytest.raises(ValueError):
            run_mixed_experiment("Cplant", 16, 1024, 4)
