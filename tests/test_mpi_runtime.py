"""Tests for the SPMD runtime, point-to-point messaging and virtual clocks."""

from __future__ import annotations

import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    CommCostModel,
    SPMDExecutionError,
    VirtualClock,
    run_spmd,
    synchronize_clocks,
)
from repro.mpi.errors import DeadlockError, RankError, TagError


class TestRunSPMD:
    def test_returns_per_rank_values(self):
        result = run_spmd(lambda comm: comm.rank * 10, 4)
        assert result.returns == [0, 10, 20, 30]
        assert result.nprocs == 4

    def test_size_and_rank_visible(self):
        result = run_spmd(lambda comm: (comm.rank, comm.size), 3)
        assert result.returns == [(0, 3), (1, 3), (2, 3)]

    def test_extra_args_passed(self):
        result = run_spmd(lambda comm, a, b=0: a + b + comm.rank, 2, 5, b=7)
        assert result.returns == [12, 13]

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            run_spmd(lambda comm: None, 0)

    def test_exception_propagates_with_rank(self):
        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            return comm.rank

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 3)
        assert 1 in excinfo.value.failures
        assert "boom" in str(excinfo.value)

    def test_failure_does_not_deadlock_collectives(self):
        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("dead")
            comm.barrier()  # would hang forever without barrier abort

        with pytest.raises(SPMDExecutionError):
            run_spmd(fn, 3, timeout=10)

    def test_mpi_style_getters(self):
        result = run_spmd(lambda comm: (comm.Get_rank(), comm.Get_size()), 2)
        assert result.returns == [(0, 2), (1, 2)]

    def test_timeout_reports_unfinished_ranks_by_number(self):
        import time

        def fn(comm):
            if comm.rank in (1, 2):
                time.sleep(8.0)
            return comm.rank

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 3, timeout=0.2)
        failures = excinfo.value.failures
        # Every unfinished rank is reported by number; no generic -1 entry.
        assert set(failures) == {1, 2}
        assert all(isinstance(e, TimeoutError) for e in failures.values())
        assert "rank 1" in str(failures[1])

    def test_timeout_not_swallowed_by_grace_period(self):
        """A rank that exceeds the deadline but finishes during the grace
        join must still be reported: the timeout is a hard budget."""
        import time

        def fn(comm):
            if comm.rank == 1:
                time.sleep(0.5)  # beyond the 0.1s deadline, well within grace
            return comm.rank

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 2, timeout=0.1)
        failures = excinfo.value.failures
        assert set(failures) == {1}
        assert isinstance(failures[1], TimeoutError)

    def test_timeout_releases_ranks_stuck_in_collective(self):
        import time

        def fn(comm):
            if comm.rank == 0:
                time.sleep(8.0)
            comm.barrier()  # ranks 1..2 block here waiting for rank 0
            return comm.rank

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 3, timeout=0.2)
        failures = excinfo.value.failures
        # All three ranks missed the deadline (rank 0 in sleep, ranks 1-2
        # blocked in the barrier) and every one is reported as a timeout —
        # the BrokenBarrierError provoked by the abort must not mask the
        # root cause.
        assert set(failures) == {0, 1, 2}
        assert all(isinstance(e, TimeoutError) for e in failures.values())


class TestFailureReporting:
    """SPMDExecutionError carries rank numbers and rank-local tracebacks."""

    @staticmethod
    def _failing_program(comm):
        def deep_helper():
            raise KeyError("lost-key")

        if comm.rank == 2:
            deep_helper()
        return comm.rank

    def test_rank_local_traceback_attached(self):
        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(self._failing_program, 4)
        err = excinfo.value
        assert set(err.failures) == {2}
        tb = err.traceback_of(2)
        assert tb is not None
        # The traceback is the rank's own call stack, not the scheduler's.
        assert "deep_helper" in tb
        assert "_failing_program" in tb
        assert "KeyError" in tb

    def test_message_names_rank_and_includes_traceback(self):
        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(self._failing_program, 4)
        message = str(excinfo.value)
        assert "rank 2" in message
        assert "rank 2 traceback" in message
        assert "deep_helper" in message

    def test_traceback_of_unknown_rank_is_none(self):
        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(self._failing_program, 4)
        assert excinfo.value.traceback_of(0) is None

    def test_peers_blocked_in_collective_reported_separately(self):
        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("dead")
            comm.barrier()

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 3)
        err = excinfo.value
        assert isinstance(err.failures[0], RuntimeError)
        # Rank 0's traceback is present; peers aborted out of the collective
        # carry their own (different) failure entries, not rank 0's.
        assert "dead" in err.traceback_of(0)

    def test_long_rank_lists_truncated_in_message(self):
        def fn(comm):
            raise ValueError(f"r{comm.rank}")

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 40)
        message = str(excinfo.value)
        assert "more)" in message
        assert len(excinfo.value.failures) == 40


class TestDeadlockDetection:
    def test_recv_without_sender_reported_as_deadlock(self):
        def fn(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=5)  # never sent
            return comm.rank

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 2)
        failures = excinfo.value.failures
        assert set(failures) == {0}
        assert isinstance(failures[0], DeadlockError)
        assert "recv" in str(failures[0])

    def test_deadlocked_rank_releases_its_locks_during_unwind(self):
        """A deadlock-cancelled rank must unwind through its finally blocks
        (so e.g. held file locks are returned) before the run is reported."""
        released = []

        def fn(comm):
            if comm.rank == 0:
                try:
                    comm.recv(source=1)  # never sent
                finally:
                    released.append(comm.rank)
            return comm.rank

        with pytest.raises(SPMDExecutionError):
            run_spmd(fn, 2)
        assert released == [0]


class TestPointToPoint:
    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"x": 42}, dest=1, tag=7)
                return None
            return comm.recv(source=0, tag=7)

        result = run_spmd(fn, 2)
        assert result.returns[1] == {"x": 42}

    def test_any_source_any_tag(self):
        def fn(comm):
            if comm.rank != 0:
                comm.send(comm.rank, dest=0, tag=comm.rank)
                return None
            got = sorted(comm.recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(comm.size - 1))
            return got

        result = run_spmd(fn, 4)
        assert result.returns[0] == [1, 2, 3]

    def test_tag_matching_out_of_order(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        result = run_spmd(fn, 2)
        assert result.returns[1] == ("first", "second")

    def test_isend_irecv(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2, 3], dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()

        result = run_spmd(fn, 2)
        assert result.returns[1] == [1, 2, 3]

    def test_sendrecv_exchange(self):
        def fn(comm):
            peer = (comm.rank + 1) % comm.size
            src = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=peer, source=src)

        result = run_spmd(fn, 4)
        assert result.returns == [3, 0, 1, 2]

    def test_status_filled(self):
        from repro.mpi import Status

        def fn(comm):
            if comm.rank == 0:
                comm.send("hi", dest=1, tag=9)
                return None
            status = Status()
            comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
            return (status.source, status.tag)

        result = run_spmd(fn, 2)
        assert result.returns[1] == (0, 9)

    def test_bad_destination_rank(self):
        def fn(comm):
            comm.send(1, dest=10)

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 2)
        assert any(isinstance(e, RankError) for e in excinfo.value.failures.values())

    def test_bad_tag(self):
        def fn(comm):
            comm.send(1, dest=0, tag=-5)

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 1)
        assert any(isinstance(e, TagError) for e in excinfo.value.failures.values())


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_advance_to_only_forward(self):
        clock = VirtualClock(now=5.0)
        clock.advance_to(3.0)
        assert clock.now == 5.0
        clock.advance_to(8.0, waiting=True)
        assert clock.now == 8.0
        assert clock.waited == pytest.approx(3.0)

    def test_reset(self):
        clock = VirtualClock(now=5.0, waited=1.0)
        clock.reset()
        assert clock.now == 0.0 and clock.waited == 0.0

    def test_synchronize_clocks(self):
        clocks = [VirtualClock(now=t) for t in (1.0, 5.0, 3.0)]
        latest = synchronize_clocks(clocks)
        assert latest == 5.0
        assert all(c.now == 5.0 for c in clocks)

    def test_comm_cost_charged(self):
        cost = CommCostModel(latency=0.01, byte_cost=0.0)

        def fn(comm):
            comm.barrier()
            return comm.clock.now

        result = run_spmd(fn, 2, comm_cost=cost)
        assert all(t >= 0.01 for t in result.returns)

    def test_makespan(self):
        def fn(comm):
            comm.clock.advance(0.1 * (comm.rank + 1))
            return None

        result = run_spmd(fn, 3)
        assert result.makespan == pytest.approx(0.3)
