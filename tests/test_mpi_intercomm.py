"""Tests for groups, Comm_split degenerate cases and inter-communicators."""

from __future__ import annotations

import pytest

from repro.io import Waitall, Waitany
from repro.mpi import (
    PROC_NULL,
    ROOT,
    Group,
    SPMDExecutionError,
    run_spmd,
)
from repro.mpi.errors import (
    CollectiveMismatchError,
    CommunicatorError,
    RankError,
    TagError,
)


def _failures(excinfo):
    return list(excinfo.value.failures.values())


class TestGroup:
    def test_incl_orders_and_translates(self):
        g = Group(range(8)).Incl([5, 1, 6])
        assert g.size == 3
        assert g.ranks == (5, 1, 6)
        assert g.translate(0) == 5
        assert g.rank_of(6) == 2
        assert g.rank_of(3) is None
        assert 1 in g and 2 not in g

    def test_excl_keeps_original_order(self):
        g = Group(range(6)).Excl([0, 3])
        assert g.ranks == (1, 2, 4, 5)

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(CommunicatorError):
            Group([1, 2, 1])

    def test_translate_out_of_range(self):
        with pytest.raises(RankError):
            Group([4, 2]).translate(2)


class TestCommSplitDegenerates:
    def test_every_rank_its_own_color(self):
        # P singleton communicators: each is a fully working world of one.
        def fn(comm):
            sub = comm.Comm_split(color=comm.rank)
            return (sub.size, sub.rank, sub.allgather(comm.rank))

        result = run_spmd(fn, 6)
        assert result.returns == [(1, 0, [r]) for r in range(6)]

    def test_single_color_is_identity_with_parent(self):
        # One colour, default key: same size, same rank order as the parent,
        # and the split communicator works for both p2p and collectives.
        def fn(comm):
            sub = comm.Comm_split(color=0)
            assert (sub.size, sub.rank) == (comm.size, comm.rank)
            if sub.rank == 0:
                sub.send("hello", dest=sub.size - 1, tag=7)
                got = None
            elif sub.rank == sub.size - 1:
                got = sub.recv(source=0, tag=7)
            else:
                got = None
            return (sub.allgather(sub.rank), got)

        result = run_spmd(fn, 5)
        assert all(r[0] == list(range(5)) for r in result.returns)
        assert result.returns[-1][1] == "hello"

    def test_key_reverses_rank_order(self):
        def fn(comm):
            sub = comm.Comm_split(color=0, key=-comm.rank)
            return sub.rank

        result = run_spmd(fn, 4)
        assert result.returns == [3, 2, 1, 0]

    def test_split_of_split(self):
        # World -> halves -> quarters; ranks renumber consistently each time.
        def fn(comm):
            half = comm.Comm_split(color=comm.rank // 4)
            quarter = half.Comm_split(color=half.rank // 2)
            return (half.size, half.rank, quarter.size, quarter.rank,
                    quarter.allgather(comm.rank))

        result = run_spmd(fn, 8)
        for world, (hsize, hrank, qsize, qrank, peers) in enumerate(result.returns):
            assert (hsize, qsize) == (4, 2)
            assert hrank == world % 4
            assert qrank == world % 2
            base = (world // 2) * 2
            assert peers == [base, base + 1]

    def test_color_none_returns_none(self):
        def fn(comm):
            sub = comm.Comm_split(color=None if comm.rank % 2 else 0)
            return None if sub is None else sub.allgather(comm.rank)

        result = run_spmd(fn, 6)
        assert result.returns[1] is result.returns[3] is result.returns[5] is None
        assert result.returns[0] == [0, 2, 4]

    def test_waitall_mixes_parent_and_split_requests(self):
        # One Waitall draining receives posted on the parent world AND on a
        # split half, with the same tag in flight on both: the fresh split
        # mailboxes must keep the two namespaces apart.
        def fn(comm):
            half = comm.Comm_split(color=comm.rank // 2)
            peer_world = comm.rank ^ 2
            peer_half = half.rank ^ 1
            comm.send(("world", comm.rank), dest=peer_world, tag=3)
            half.send(("half", comm.rank), dest=peer_half, tag=3)
            reqs = [comm.irecv(source=peer_world, tag=3),
                    half.irecv(source=peer_half, tag=3)]
            world_msg, half_msg = Waitall(reqs)
            return (world_msg, half_msg)

        result = run_spmd(fn, 4)
        for rank, (world_msg, half_msg) in enumerate(result.returns):
            assert world_msg == ("world", rank ^ 2)
            assert half_msg == ("half", rank ^ 1)

    def test_waitany_mixes_parent_and_split_requests(self):
        def fn(comm):
            half = comm.Comm_split(color=comm.rank // 2)
            comm.send("w", dest=comm.rank ^ 2, tag=1)
            half.send("h", dest=half.rank ^ 1, tag=1)
            reqs = [comm.irecv(source=comm.rank ^ 2, tag=1),
                    half.irecv(source=half.rank ^ 1, tag=1)]
            seen = []
            while any(reqs):
                idx = Waitany(reqs)
                seen.append(reqs[idx].wait())
                reqs[idx] = None
            return sorted(seen)

        result = run_spmd(fn, 4)
        assert all(r == ["h", "w"] for r in result.returns)


def _bridge(comm, tag=5):
    """Split the world in halves and bridge them; returns (half, intercomm)."""
    side = comm.rank // (comm.size // 2)
    half = comm.Comm_split(color=side)
    remote_leader = 0 if side else comm.size // 2
    return half, half.Create_intercomm(0, comm, remote_leader, tag=tag)

class TestIntercomm:
    def test_sizes_and_groups(self):
        def fn(comm):
            half, inter = _bridge(comm)
            return (inter.rank, inter.size, inter.Get_remote_size(),
                    inter.Get_group().ranks, inter.Get_remote_group().ranks)

        result = run_spmd(fn, 6)
        for world, (rank, size, remote, local_g, remote_g) in enumerate(result.returns):
            assert rank == world % 3
            assert size == 3 and remote == 3
            assert local_g == (0, 1, 2) and remote_g == (0, 1, 2)

    def test_p2p_uses_remote_rank_namespace(self):
        def fn(comm):
            half, inter = _bridge(comm)
            # Each rank sends to its mirror in the other group.
            inter.send(("from", comm.rank), dest=inter.rank, tag=2)
            return inter.recv(source=inter.rank, tag=2)

        result = run_spmd(fn, 8)
        for world, got in enumerate(result.returns):
            mirror = (world + 4) % 8
            assert got == ("from", mirror)

    def test_p2p_is_causal_in_virtual_time(self):
        # The receiver's clock must never show a delivery before the sender
        # issued it, even if the receiver did no other work.
        def fn(comm):
            half, inter = _bridge(comm)
            if comm.rank == 0:
                comm.clock.advance(1.0)  # sender runs far ahead
                inter.send("late", dest=0, tag=9)
                return None
            if comm.rank == comm.size // 2:
                inter.recv(source=0, tag=9)
                return comm.clock.now
            return None

        result = run_spmd(fn, 4)
        assert result.returns[2] >= 1.0

    def test_bcast_root_and_proc_null(self):
        def fn(comm):
            half, inter = _bridge(comm)
            side = comm.rank // (comm.size // 2)
            if side == 0:
                root = ROOT if inter.rank == 1 else PROC_NULL
                return inter.bcast("payload" if root == ROOT else None, root=root)
            return inter.bcast(None, root=1)

        result = run_spmd(fn, 6)
        # Origin root returns its own object, its peers None, receivers all get it.
        assert result.returns[0] is None and result.returns[2] is None
        assert result.returns[1] == "payload"
        assert result.returns[3:] == ["payload"] * 3

    def test_bcast_root_disagreement_detected(self):
        def fn(comm):
            half, inter = _bridge(comm)
            side = comm.rank // (comm.size // 2)
            if side == 0:
                root = ROOT if inter.rank == 0 else PROC_NULL
                return inter.bcast("x" if root == ROOT else None, root=root)
            # The receiving group names the wrong origin rank.
            return inter.bcast(None, root=1)

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 4)
        assert any(isinstance(e, CollectiveMismatchError) for e in _failures(excinfo))

    def test_allgather_returns_remote_contributions(self):
        def fn(comm):
            half, inter = _bridge(comm)
            return inter.allgather(("w", comm.rank))

        result = run_spmd(fn, 6)
        assert result.returns[0] == [("w", 3), ("w", 4), ("w", 5)]
        assert result.returns[5] == [("w", 0), ("w", 1), ("w", 2)]

    def test_merge_low_then_high(self):
        def fn(comm):
            half, inter = _bridge(comm)
            side = comm.rank // (comm.size // 2)
            merged = inter.Merge(high=(side == 1))
            return merged.allgather(comm.rank)[merged.rank] == comm.rank and merged.rank

        result = run_spmd(fn, 6)
        # Low group (world 0-2) keeps ranks 0-2, high group gets 3-5.
        assert [r for r in result.returns] == [0, 1, 2, 3, 4, 5]

    def test_merge_high_first_side_flipped(self):
        def fn(comm):
            half, inter = _bridge(comm)
            side = comm.rank // (comm.size // 2)
            merged = inter.Merge(high=(side == 0))
            return merged.rank

        result = run_spmd(fn, 6)
        assert result.returns == [3, 4, 5, 0, 1, 2]

    def test_same_tag_does_not_cross_match_parent_traffic(self):
        # Regression: a message in flight on the parent world with the same
        # tag as a bridge message must never satisfy a bridge receive (and
        # vice versa).  Leave the parent message unreceived until after the
        # bridge receive resolves, so a broken implementation would match it.
        TAG = 13
        def fn(comm):
            half, inter = _bridge(comm, tag=0)
            if comm.rank == 0:
                comm.send("parent-traffic", dest=comm.size // 2, tag=TAG)
                inter.send("bridge-traffic", dest=0, tag=TAG)
                return None
            if comm.rank == comm.size // 2:
                over_bridge = inter.recv(source=0, tag=TAG)
                on_parent = comm.recv(source=0, tag=TAG)
                return (over_bridge, on_parent)
            return None

        result = run_spmd(fn, 4)
        assert result.returns[2] == ("bridge-traffic", "parent-traffic")

    def test_split_comm_same_tag_isolation(self):
        # Same regression one level down: parent vs split-communicator
        # mailboxes with an identical (source, tag) signature in flight.
        def fn(comm):
            sub = comm.Comm_split(color=0)  # identity membership, new mailboxes
            if comm.rank == 0:
                comm.send("on-parent", dest=1, tag=4)
                sub.send("on-split", dest=1, tag=4)
                return None
            if comm.rank == 1:
                got_split = sub.recv(source=0, tag=4)
                got_parent = comm.recv(source=0, tag=4)
                return (got_split, got_parent)
            return None

        result = run_spmd(fn, 2)
        assert result.returns[1] == ("on-split", "on-parent")

    def test_negative_tag_rejected(self):
        def fn(comm):
            half = comm.Comm_split(color=comm.rank // 2)
            remote_leader = 0 if comm.rank >= 2 else 2
            return half.Create_intercomm(0, comm, remote_leader, tag=-1)

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 4)
        assert any(isinstance(e, TagError) for e in _failures(excinfo))

    def test_same_process_leaders_rejected(self):
        def fn(comm):
            half = comm.Comm_split(color=0)
            # Both "groups" name world rank 0 as leader: not disjoint.
            return half.Create_intercomm(0, comm, 0, tag=1)

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 2)
        assert any(isinstance(e, CommunicatorError) for e in _failures(excinfo))

    def test_send_to_out_of_range_remote_rank(self):
        def fn(comm):
            half, inter = _bridge(comm)
            if comm.rank == 0:
                inter.send("x", dest=inter.remote_size, tag=0)
            inter.barrier()

        with pytest.raises(SPMDExecutionError) as excinfo:
            run_spmd(fn, 4)
        assert any(isinstance(e, RankError) for e in _failures(excinfo))
