"""Tests for MPI file views and the Info/mode helpers."""

from __future__ import annotations

import pytest

from repro.datatypes import CHAR, INT, contiguous, subarray, vector
from repro.datatypes.datatype import DatatypeError
from repro.io import Info, MODE_CREATE, MODE_RDONLY, MODE_RDWR, describe_mode
from repro.io.fileview import FileView


class TestFileView:
    def test_default_view_is_whole_file(self):
        view = FileView.default()
        assert view.segments_for(10) == [(0, 10)]
        assert view.etype_size == 1

    def test_displacement_shifts(self):
        view = FileView.create(100, CHAR, contiguous(10, CHAR))
        assert view.segments_for(10) == [(100, 10)]

    def test_noncontiguous_filetype(self):
        # filetype: 2 blocks of 2 chars, stride 5 chars -> segments (0,2), (5,2),
        # MPI extent 7 (first to last byte touched).
        view = FileView.create(0, CHAR, vector(2, 2, 5, CHAR))
        assert view.segments_for(4) == [(0, 2), (5, 2)]
        # A request beyond one tile continues with the next tiling at byte 7;
        # the new run abuts (5,2) and coalesces.
        assert view.segments_for(6) == [(0, 2), (5, 4)]

    def test_stream_position_skips_visible_bytes(self):
        view = FileView.create(0, CHAR, vector(2, 2, 5, CHAR))
        # Stream bytes 3 and 4 land at file offsets 6 and 7 (next tile).
        assert view.segments_for(2, stream_position=3) == [(6, 2)]

    def test_segments_for_etypes(self):
        view = FileView.create(0, INT, contiguous(4, INT))
        assert view.segments_for_etypes(2) == [(0, 8)]
        assert view.segments_for_etypes(2, etype_position=1) == [(4, 8)]

    def test_column_wise_view_matches_partition_helper(self):
        """The subarray file view of Figure 4 flattens to the same segments
        the partitioning helper computes directly."""
        from repro.patterns.partition import column_wise_spec

        M, N, P, R, rank = 8, 64, 4, 4, 1
        spec = column_wise_spec(M, N, P, rank, R)
        filetype = subarray(list(spec.sizes), list(spec.subsizes), list(spec.starts), CHAR)
        view = FileView.create(0, CHAR, filetype)
        assert view.segments_for(spec.total_bytes) == spec.segments()

    def test_filetype_must_hold_etype_multiple(self):
        with pytest.raises(DatatypeError):
            FileView.create(0, INT, contiguous(3, CHAR))

    def test_negative_displacement_rejected(self):
        with pytest.raises(DatatypeError):
            FileView.create(-1, CHAR, contiguous(1, CHAR))

    def test_empty_filetype_rejected(self):
        with pytest.raises(DatatypeError):
            FileView.create(0, CHAR, contiguous(0, CHAR))

    def test_invalid_request_args(self):
        view = FileView.default()
        with pytest.raises(ValueError):
            view.segments_for(-1)
        with pytest.raises(ValueError):
            view.segments_for(1, stream_position=-1)


class TestInfo:
    def test_set_get(self):
        info = Info()
        info.set("atomicity_strategy", "rank-ordering")
        assert info.get("atomicity_strategy") == "rank-ordering"
        assert info.get("missing") is None
        assert info.get("missing", "dflt") == "dflt"

    def test_values_coerced_to_str(self):
        info = Info({"cb_buffer_size": 4096})
        assert info.get("cb_buffer_size") == "4096"
        assert info.get_int("cb_buffer_size") == 4096

    def test_get_int_garbage(self):
        info = Info({"k": "not-a-number"})
        assert info.get_int("k", default=7) == 7

    def test_delete_and_contains(self):
        info = Info({"a": "1"})
        assert "a" in info
        info.delete("a")
        assert "a" not in info
        info.delete("a")  # idempotent

    def test_copy_independent(self):
        info = Info({"a": "1"})
        other = info.copy()
        other.set("a", "2")
        assert info.get("a") == "1"

    def test_keys_sorted(self):
        info = Info({"b": "1", "a": "2"})
        assert list(info.keys()) == ["a", "b"]
        assert len(info) == 2


class TestModes:
    def test_describe_mode(self):
        text = describe_mode(MODE_RDWR | MODE_CREATE)
        assert "MPI_MODE_RDWR" in text and "MPI_MODE_CREATE" in text

    def test_describe_zero(self):
        assert describe_mode(0) == "0"

    def test_flags_distinct(self):
        from repro.io import modes

        flags = [modes.MODE_RDONLY, modes.MODE_WRONLY, modes.MODE_RDWR,
                 modes.MODE_CREATE, modes.MODE_EXCL, modes.MODE_DELETE_ON_CLOSE,
                 modes.MODE_APPEND]
        assert len({f for f in flags}) == len(flags)
        combined = 0
        for f in flags:
            assert not (combined & f)
            combined |= f
