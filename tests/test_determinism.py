"""Determinism regression: the event-driven runtime is bit-for-bit
reproducible.

Two runs of the same column-wise concurrent overlapping write must produce
byte-identical file contents (data *and* per-byte writer provenance) and
identical virtual-time makespans, for every registered strategy.  The old
thread-per-rank runtime interleaved ranks at the mercy of the OS scheduler;
the cooperative engine resumes ranks in ``(virtual time, rank)`` order, so
any nondeterminism here is a regression in the scheduler or in a shared
service (lock manager, resource queue, collective rendezvous).
"""

from __future__ import annotations

import pytest

from repro.bench.machines import machine_by_name
from repro.core.executor import AtomicWriteExecutor
from repro.core.registry import default_registry
from repro.fs.filesystem import ParallelFileSystem
from repro.mpi.cost import CommCostModel
from repro.patterns.partition import column_wise_views
from repro.patterns.workloads import rank_fill_bytes

M, N, P, R = 32, 4096, 8, 4


def _run_once(strategy_name: str):
    machine = machine_by_name("IBM SP")
    fs = ParallelFileSystem(machine.make_fs_config())
    executor = AtomicWriteExecutor(
        fs,
        default_registry.create(strategy_name),
        filename="determinism.dat",
        comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8),
    )
    views = column_wise_views(M, N, P, R)
    result = executor.run(
        P, view_factory=lambda rank, _p: views[rank], data_factory=rank_fill_bytes
    )
    store = result.file.store
    return (
        store.snapshot(),
        store.writers(0, store.size).tobytes(),
        result.makespan,
        [o.bytes_written for o in result.outcomes],
        [c.waited for c in result.spmd.clocks],
    )


@pytest.mark.parametrize("strategy", sorted(default_registry.names()))
def test_two_runs_are_bit_identical(strategy):
    first = _run_once(strategy)
    second = _run_once(strategy)
    assert first[0] == second[0], "file contents differ between runs"
    assert first[1] == second[1], "per-byte writer provenance differs between runs"
    assert first[2] == second[2], "virtual-time makespan differs between runs"
    assert first[3] == second[3], "per-rank byte accounting differs between runs"
    assert first[4] == second[4], "per-rank wait accounting differs between runs"


def test_locking_strategy_deterministic_on_distributed_locks():
    """The GPFS-style token manager must also grant deterministically."""
    machine = machine_by_name("IBM SP")  # GPFS personality: token-based locks
    runs = set()
    for _ in range(2):
        fs = ParallelFileSystem(machine.make_fs_config())
        executor = AtomicWriteExecutor(
            fs, default_registry.create("locking"), filename="locks.dat"
        )
        views = column_wise_views(M, N, P, R)
        result = executor.run(P, view_factory=lambda rank, _p: views[rank])
        runs.add((result.file.store.snapshot(), result.makespan))
    assert len(runs) == 1
