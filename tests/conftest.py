"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.fs.cache import CachePolicy
from repro.fs.costmodel import CostModel
from repro.fs.filesystem import FSConfig, LockProtocol, ParallelFileSystem


def fast_fs_config(
    lock_protocol: str = LockProtocol.CENTRAL,
    num_servers: int = 4,
    client_caching: bool = True,
    write_behind: bool = True,
) -> FSConfig:
    """A tiny, low-latency file system configuration for functional tests."""
    return FSConfig(
        name="testfs",
        num_servers=num_servers,
        stripe_size=1024,
        server_cost=CostModel(latency=1e-6, bandwidth=1e9),
        client_link_cost=CostModel(latency=1e-6, bandwidth=1e9),
        lock_protocol=lock_protocol,
        lock_request_latency=1e-6,
        token_acquire_latency=2e-6,
        token_revoke_latency=1e-6,
        token_local_latency=1e-7,
        cache_policy=CachePolicy(
            page_size=256, max_pages=64, read_ahead_pages=1, write_behind=write_behind
        ),
        client_caching=client_caching,
    )


@pytest.fixture
def fast_fs() -> ParallelFileSystem:
    """A fresh low-latency file system with central locking."""
    return ParallelFileSystem(fast_fs_config())


@pytest.fixture
def lockless_fs() -> ParallelFileSystem:
    """A file system without byte-range locking (ENFS-like)."""
    return ParallelFileSystem(fast_fs_config(lock_protocol=LockProtocol.NONE))


@pytest.fixture
def token_fs() -> ParallelFileSystem:
    """A file system with GPFS-style distributed locking."""
    return ParallelFileSystem(fast_fs_config(lock_protocol=LockProtocol.DISTRIBUTED))
