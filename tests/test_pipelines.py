"""Tests for the coupled-pipeline subsystem (spec, runner, verification)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.machines import IBM_SP
from repro.fs.cache import CachePolicy
from repro.fs.filesystem import ParallelFileSystem
from repro.pipelines import (
    CoupledPipeline,
    PipelineSpec,
    StageSpec,
    expected_consumer_streams,
)


def make_spec(producers=4, consumers=4, **kwargs):
    defaults = dict(M=16, N=256, steps=2, strategy="two-phase")
    defaults.update(kwargs)
    compute = defaults.pop("compute_seconds", 0.002)
    consumer_compute = defaults.pop("consumer_compute_seconds", compute)
    return PipelineSpec(
        stages=(
            StageSpec("producer", producers, compute_seconds=compute),
            StageSpec("consumer", consumers, compute_seconds=consumer_compute),
        ),
        **defaults,
    )


def run_pipeline(spec, fs_config=None):
    return CoupledPipeline(spec, fs_config=fs_config, timeout=120.0).run()


class TestSpecValidation:
    def test_role_order_enforced(self):
        with pytest.raises(ValueError):
            PipelineSpec(
                stages=(StageSpec("consumer", 2), StageSpec("producer", 2))
            )

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            StageSpec("observer", 2)

    def test_racing_needs_exactly_two_stages(self):
        with pytest.raises(ValueError):
            PipelineSpec(
                stages=(
                    StageSpec("producer", 2),
                    StageSpec("transformer", 1),
                    StageSpec("consumer", 2),
                ),
                coordination="racing",
            )

    def test_nonpositive_knobs_rejected(self):
        with pytest.raises(ValueError):
            make_spec(steps=0)
        with pytest.raises(ValueError):
            make_spec(overlap_depth=0)
        with pytest.raises(ValueError):
            StageSpec("producer", 0)

    def test_layout_helpers(self):
        spec = PipelineSpec(
            stages=(
                StageSpec("producer", 3),
                StageSpec("transformer", 2),
                StageSpec("consumer", 4),
            )
        )
        assert spec.total_ranks == 9
        assert spec.stage_offsets == (0, 3, 5)
        assert [spec.stage_of(r) for r in range(9)] == [0, 0, 0, 1, 1, 2, 2, 2, 2]
        assert spec.step_filename(3) == "/pipeline/ckpt.s3.dat"
        with pytest.raises(ValueError):
            spec.stage_of(9)


class TestStreaming:
    @pytest.mark.parametrize("coordination", ["barrier", "overlapped"])
    def test_consumers_deliver_expected_bytes(self, coordination):
        spec = make_spec(producers=4, consumers=2, coordination=coordination)
        result = run_pipeline(spec)
        assert result.verify().ok, result.verify().violations
        for step in range(spec.steps):
            expected = expected_consumer_streams(spec, step)
            for c in range(spec.consumer.nprocs):
                assert result.delivered[(step, c)] == expected[c]

    def test_overlapped_beats_barrier(self):
        base = dict(producers=4, consumers=4, steps=4)
        barrier = run_pipeline(make_spec(coordination="barrier", **base))
        overlapped = run_pipeline(make_spec(coordination="overlapped", **base))
        assert overlapped.makespan < barrier.makespan

    def test_depth_throttles_producers(self):
        # With analysis slower than simulation, a depth-1 producer stalls on
        # every ack; depth 2 lets it keep a step in flight, so the deeper
        # window must finish strictly earlier.
        base = dict(
            producers=4, consumers=4, steps=6, coordination="overlapped",
            compute_seconds=0.002, consumer_compute_seconds=0.03,
        )
        d1 = run_pipeline(make_spec(overlap_depth=1, **base))
        d2 = run_pipeline(make_spec(overlap_depth=2, **base))
        assert d2.makespan < d1.makespan

    def test_three_stage_pipeline_streams(self):
        spec = PipelineSpec(
            stages=(
                StageSpec("producer", 4, compute_seconds=0.002),
                StageSpec("transformer", 2, compute_seconds=0.002),
                StageSpec("consumer", 4, compute_seconds=0.002),
            ),
            M=16,
            N=256,
            steps=3,
            strategy="two-phase",
            coordination="overlapped",
        )
        result = run_pipeline(spec)
        assert result.verify().ok
        for step in range(spec.steps):
            expected = expected_consumer_streams(spec, step)
            for c in range(spec.consumer.nprocs):
                assert result.delivered[(step, c)] == expected[c]

    def test_runs_are_deterministic(self):
        spec = make_spec(coordination="overlapped", steps=3)
        first = run_pipeline(spec)
        second = run_pipeline(spec)
        assert first.makespan == second.makespan
        assert first.delivered == second.delivered

    def test_bytes_streamed_accounting(self):
        spec = make_spec(producers=2, consumers=2, steps=2)
        result = run_pipeline(spec)
        assert result.bytes_streamed == spec.M * spec.N * spec.steps


def racing_spec(nprocs, strategy):
    # Geometry tuned so every producer's per-row run (128 B) spans multiple
    # 64 B cache pages: a consumer assembles one elementary segment from
    # page fetches issued at different virtual times, which is the window a
    # non-atomic strategy tears in and a locked strategy must close.
    return PipelineSpec(
        stages=(StageSpec("producer", nprocs), StageSpec("consumer", nprocs)),
        M=8,
        N=nprocs * 128,
        steps=1,
        strategy=strategy,
        atomic=strategy != "none",
        coordination="racing",
        filename=f"/race/{strategy}",
    )


def racing_fs_config():
    return replace(
        IBM_SP.make_fs_config(), cache_policy=CachePolicy(page_size=64)
    )


class TestCrossGroupRace:
    @pytest.mark.parametrize("nprocs", [8, 32])
    def test_locking_keeps_racing_streams_serialisable(self, nprocs):
        result = run_pipeline(
            racing_spec(nprocs, "locking"), fs_config=racing_fs_config()
        )
        report = result.verify()
        assert report.ok, report.violations

    @pytest.mark.parametrize("nprocs", [8, 32])
    def test_unlocked_race_tears_and_is_detected(self, nprocs):
        result = run_pipeline(
            racing_spec(nprocs, "none"), fs_config=racing_fs_config()
        )
        report = result.verify()
        assert not report.ok
        assert any(v.kind == "torn-read" for v in report.violations)
        # Every violation is attributed to the racing step's stream.
        assert all("[stream step0:" in v.detail for v in report.violations)
