"""Cross-job atomicity: independent jobs racing on one shared file.

The multi-tenant counterpart of ``test_integration_atomicity.py``: two
complete SPMD jobs — separate communicator worlds, separate strategy
instances, globally distinct client ids — issue collective writes (and
reads) against the *same* file on one shared file system, under every
registered atomicity strategy and both per-job rank counts of the issue's
acceptance grid (P in {4, 16}).

Three race configurations are pinned:

* **write vs write** (batch arrivals): with both tenants running the same
  atomic strategy, each overlapped region must end up wholly from one
  writer, on both the lock-based (GPFS) and lock-free (ENFS) personalities
  each strategy supports.  Tenants running *different* strategies have no
  cross-job serialisation (neither takes file-system locks), and the
  companion negative test pins that the verifier detects the resulting
  tear.
* **write vs read, racing** (batch arrivals): only byte-range locking
  serialises a reader *against* a concurrent writer (the paper's Section 2
  rationale), so the racing read test runs under ``locking``.
* **write then read** (the reader arrives after the writer completed):
  every strategy must deliver a serialisable — here fully committed — view
  to a later tenant.
"""

from __future__ import annotations

import pytest

from repro.bench.machines import CPLANT, IBM_SP
from repro.fs.filesystem import ParallelFileSystem
from repro.core.registry import default_registry
from repro.jobs import JobSpec, MultiTenantScheduler

M, N = 8, 128
SHARED = "/contended.dat"
RANK_COUNTS = (4, 16)

ATOMIC_ON_GPFS = [
    name
    for name in default_registry.atomic_names()
    if default_registry.supported_on(name, supports_locking=True)
]
ATOMIC_ON_ENFS = [
    name
    for name in default_registry.atomic_names()
    if default_registry.supported_on(name, supports_locking=False)
]


def run_jobs(machine, specs, arrivals=None):
    fs = ParallelFileSystem(machine.make_fs_config())
    return MultiTenantScheduler(fs, timeout=120.0).run(specs, arrivals=arrivals)


def job(job_id, nprocs, strategy, mode="write"):
    return JobSpec(
        job_id, nprocs=nprocs, M=M, N=N, filename=SHARED,
        mode=mode, strategy=strategy,
    )


class TestWriteWriteRace:
    @pytest.mark.parametrize("strategy", ATOMIC_ON_GPFS)
    @pytest.mark.parametrize("nprocs", RANK_COUNTS)
    def test_two_racing_write_jobs_stay_atomic_on_gpfs(self, strategy, nprocs):
        result = run_jobs(
            IBM_SP,
            [job("alpha", nprocs, strategy), job("beta", nprocs, strategy)],
        )
        report = result.verify_write_atomicity(SHARED)
        assert report.ok, report.violations

    @pytest.mark.parametrize("strategy", ATOMIC_ON_ENFS)
    @pytest.mark.parametrize("nprocs", RANK_COUNTS)
    def test_two_racing_write_jobs_stay_atomic_without_locks(self, strategy, nprocs):
        result = run_jobs(
            CPLANT,
            [job("alpha", nprocs, strategy), job("beta", nprocs, strategy)],
        )
        report = result.verify_write_atomicity(SHARED)
        assert report.ok, report.violations

    def test_mixed_strategy_tenants_can_tear_and_are_detected(self):
        # The limits of negotiation-based atomicity, cross-tenant: when the
        # two jobs run *different* strategies (here two-phase vs
        # graph-coloring), neither takes file-system locks and their phase
        # timings interleave asymmetrically, so no serial order of the
        # write requests explains the outcome — exactly the paper's point
        # that atomicity across independent jobs needs file-system
        # enforcement, not per-communicator negotiation.  The verifier must
        # report the tear, deterministically.
        result = run_jobs(
            IBM_SP,
            [job("tp", 4, "two-phase"), job("gc", 4, "graph-coloring")],
        )
        report = result.verify_write_atomicity(SHARED)
        assert not report.ok
        assert any(v.kind == "interleaved" for v in report.violations)


class TestWriteReadRace:
    @pytest.mark.parametrize("nprocs", RANK_COUNTS)
    def test_racing_reader_is_serialised_by_locking(self, nprocs):
        result = run_jobs(
            IBM_SP,
            [
                job("writer", nprocs, "locking", mode="write"),
                job("reader", nprocs, "locking", mode="read"),
            ],
        )
        assert result.verify_write_atomicity(SHARED).ok
        report = result.verify_read_atomicity(SHARED, baseline=bytes(M * N))
        assert report.ok, report.violations

    @pytest.mark.parametrize("strategy", ATOMIC_ON_GPFS)
    @pytest.mark.parametrize("nprocs", RANK_COUNTS)
    def test_later_reader_sees_committed_writes(self, strategy, nprocs):
        # The reader arrives long after the writer's makespan, so every
        # strategy — locking or not — must deliver the committed bytes.
        result = run_jobs(
            IBM_SP,
            [
                job("writer", nprocs, strategy, mode="write"),
                job("reader", nprocs, strategy, mode="read"),
            ],
            arrivals=[0.0, 30.0],
        )
        writer, reader = result.jobs
        assert writer.finish < reader.arrival, (
            "test premise broken: the writer must complete before the "
            "reader arrives"
        )
        report = result.verify_read_atomicity(SHARED, baseline=bytes(M * N))
        assert report.ok, report.violations


class TestManyTenants:
    def test_four_jobs_racing_on_one_file(self):
        result = run_jobs(
            IBM_SP,
            [job(f"job{i}", 4, "two-phase") for i in range(4)],
        )
        report = result.verify_write_atomicity(SHARED)
        assert report.ok, report.violations
        # All four tenants' provenance ranges are disjoint and all present.
        store = result.fs.lookup(SHARED).store
        writers = set(store.distinct_writers(0, store.size))
        assert writers <= set(range(16))
