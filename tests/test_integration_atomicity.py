"""Integration tests: full concurrent overlapping writes on every FS
personality, the Figure 2 semantics demonstration, and failure injection."""

from __future__ import annotations

import pytest

from repro.core.executor import AtomicWriteExecutor
from repro.core.regions import FileRegionSet, build_region_sets
from repro.core.strategies import (
    GraphColoringStrategy,
    LockingStrategy,
    NoAtomicityStrategy,
    RankOrderingStrategy,
    TwoPhaseStrategy,
)
from repro.fs import ParallelFileSystem, enfs_config, gpfs_config, xfs_config
from repro.fs.client import FSClient
from repro.patterns.partition import block_block_views, column_wise_views, row_wise_views
from repro.patterns.workloads import rank_pattern_bytes
from repro.verify.atomicity import check_coverage, check_mpi_atomicity
from tests.conftest import fast_fs_config


STRATEGIES = {
    "locking": LockingStrategy,
    "graph-coloring": GraphColoringStrategy,
    "rank-ordering": RankOrderingStrategy,
    "two-phase": TwoPhaseStrategy,
}

PRESETS = {"ENFS": enfs_config, "XFS": xfs_config, "GPFS": gpfs_config}


def run_views(fs, strategy, views, data_factory=rank_pattern_bytes):
    executor = AtomicWriteExecutor(fs, strategy, filename="integration.dat")
    return executor.run(len(views), lambda rank, P: views[rank], data_factory)


@pytest.mark.parametrize("preset_name", list(PRESETS))
@pytest.mark.parametrize("strategy_name", list(STRATEGIES))
def test_column_wise_atomic_on_every_fs(preset_name, strategy_name):
    """Every strategy × every file-system personality produces an MPI-atomic,
    complete file for the paper's column-wise workload (the locking strategy
    is not applicable on ENFS, as in the paper)."""
    if strategy_name == "locking" and preset_name == "ENFS":
        pytest.skip("ENFS provides no byte-range locking (paper, Section 4)")
    fs = ParallelFileSystem(PRESETS[preset_name]())
    views = column_wise_views(M=8, N=256, P=4, R=4)
    result = run_views(fs, STRATEGIES[strategy_name](), views)
    store = result.file.store
    assert check_mpi_atomicity(store, result.regions).ok
    assert check_coverage(store, result.regions).ok


@pytest.mark.parametrize("strategy_name", list(STRATEGIES))
def test_block_block_ghost_checkpoint_atomic(strategy_name):
    """The Figure 1 workload (2-D ghost cells, corners shared by 4 ranks)."""
    fs = ParallelFileSystem(fast_fs_config())
    views = block_block_views(M=24, N=24, Pr=3, Pc=3, R=2)
    result = run_views(fs, STRATEGIES[strategy_name](), views)
    assert check_mpi_atomicity(result.file.store, result.regions).ok
    assert check_coverage(result.file.store, result.regions).ok


@pytest.mark.parametrize("strategy_name", list(STRATEGIES))
def test_row_wise_contiguous_views_atomic(strategy_name):
    """Row-wise views are contiguous, the easy case of Section 3.2."""
    fs = ParallelFileSystem(fast_fs_config())
    views = row_wise_views(M=64, N=32, P=4, R=4)
    result = run_views(fs, STRATEGIES[strategy_name](), views)
    assert check_mpi_atomicity(result.file.store, result.regions).ok
    assert check_coverage(result.file.store, result.regions).ok


@pytest.mark.parametrize("strategy_name", list(STRATEGIES))
def test_identical_full_file_views(strategy_name):
    """Degenerate workload: every rank writes the whole file."""
    fs = ParallelFileSystem(fast_fs_config())
    views = [[(0, 2048)] for _ in range(4)]
    result = run_views(fs, STRATEGIES[strategy_name](), views)
    store = result.file.store
    assert check_mpi_atomicity(store, result.regions).ok
    # The file must equal exactly one rank's data.
    data = store.read(0, 2048)
    assert data in {rank_pattern_bytes(rank, 2048) for rank in range(4)}


@pytest.mark.parametrize("strategy_name", list(STRATEGIES))
def test_repeated_checkpoints_stay_atomic(strategy_name):
    """Several checkpoint rounds to the same file stay atomic (locks,
    tokens and caches are reused across rounds)."""
    fs = ParallelFileSystem(fast_fs_config())
    views = column_wise_views(M=8, N=128, P=4, R=4)
    for _round in range(3):
        result = run_views(fs, STRATEGIES[strategy_name](), views)
        assert check_mpi_atomicity(result.file.store, result.regions).ok


class TestFigure2Semantics:
    """The motivating example: two processes writing overlapping columns."""

    M, N, P, R = 8, 16, 2, 4

    def _views(self):
        return column_wise_views(self.M, self.N, self.P, self.R)

    def test_posix_calls_alone_can_interleave(self):
        """Deterministic transliteration of Figure 2's non-atomic outcome: if
        the two processes' per-row write() calls are interleaved row by row,
        the overlapped columns contain data from both processes even though
        every individual POSIX call was atomic."""
        fs = ParallelFileSystem(fast_fs_config())
        fobj = fs.create("fig2.dat")
        regions = build_region_sets(self._views())
        clients = [FSClient(fs, client_id=r) for r in range(2)]
        handles = [c.open("fig2.dat") for c in clients]
        data = [rank_pattern_bytes(r, regions[r].total_bytes) for r in range(2)]
        maps = [regions[r].buffer_map() for r in range(2)]
        # Interleave the per-row calls: row i of rank 0, then row i of rank 1,
        # then row i+1 of rank 0 written again after rank 1 ... emulating an
        # arbitrary service order at the file system.
        for row in range(self.M):
            order = (0, 1) if row % 2 == 0 else (1, 0)
            for rank in order:
                buf_off, file_off, length = maps[rank][row]
                handles[rank].write(file_off, data[rank][buf_off:buf_off + length], direct=True)
        report = check_mpi_atomicity(fobj.store, regions)
        assert not report.ok
        assert any(v.kind == "interleaved" for v in report.violations)

    @pytest.mark.parametrize("strategy_name", list(STRATEGIES))
    def test_atomic_mode_prevents_interleaving(self, strategy_name):
        """With any of the three strategies the same workload is atomic: the
        overlapped columns contain one process's data only."""
        fs = ParallelFileSystem(fast_fs_config())
        result = run_views(fs, STRATEGIES[strategy_name](), self._views())
        store = result.file.store
        report = check_mpi_atomicity(store, result.regions)
        assert report.ok
        overlap = result.regions[0].overlap_region(result.regions[1])
        writers = set()
        for iv in overlap:
            writers.update(store.distinct_writers(iv.start, iv.length))
        assert len(writers) == 1


class TestIncorrectImplementations:
    """Failure injection: plausible-but-wrong implementations must be caught
    by the verifier, demonstrating it has real discriminating power."""

    def test_per_segment_locking_is_not_sufficient(self):
        """Section 3.2: locking each contiguous segment individually (instead
        of the whole extent) does NOT provide MPI atomicity.  We emulate the
        resulting service order and show the checker flags it."""
        fs = ParallelFileSystem(fast_fs_config())
        fobj = fs.create("wrong.dat")
        views = column_wise_views(M=6, N=16, P=2, R=4)
        regions = build_region_sets(views)
        clients = [FSClient(fs, client_id=r) for r in range(2)]
        handles = [c.open("wrong.dat") for c in clients]
        data = [rank_pattern_bytes(r, regions[r].total_bytes) for r in range(2)]
        maps = [regions[r].buffer_map() for r in range(2)]
        for row in range(6):
            order = (0, 1) if row % 2 == 0 else (1, 0)
            for rank in order:
                buf_off, file_off, length = maps[rank][row]
                # lock exactly the segment, write it, unlock: still interleaves
                lock = handles[rank].lock(file_off, file_off + length)
                handles[rank].write(file_off, data[rank][buf_off:buf_off + length], direct=True)
                handles[rank].unlock(lock)
        assert not check_mpi_atomicity(fobj.store, regions).ok

    def test_rank_ordering_without_trim_would_violate(self):
        """If rank ordering skipped the trimming (all ranks write their full
        views concurrently with no coordination), interleaving can occur; the
        uncoordinated baseline on an interleaved schedule shows the checker
        catching it.  (The real strategy trims, so this is the counterfactual.)"""
        fs = ParallelFileSystem(fast_fs_config())
        fobj = fs.create("baseline.dat")
        views = column_wise_views(M=6, N=16, P=2, R=4)
        regions = build_region_sets(views)
        clients = [FSClient(fs, client_id=r) for r in range(2)]
        handles = [c.open("baseline.dat") for c in clients]
        data = [rank_pattern_bytes(r, regions[r].total_bytes) for r in range(2)]
        maps = [regions[r].buffer_map() for r in range(2)]
        for row in range(6):
            for rank in ((0, 1) if row % 2 else (1, 0)):
                buf_off, file_off, length = maps[rank][row]
                handles[rank].write(file_off, data[rank][buf_off:buf_off + length], direct=True)
        assert not check_mpi_atomicity(fobj.store, regions).ok

    def test_coverage_checker_catches_overtrimming(self):
        """An implementation that trims too much (both sides surrender the
        overlap) leaves unwritten holes; check_coverage reports them."""
        fs = ParallelFileSystem(fast_fs_config())
        fobj = fs.create("holes.dat")
        views = column_wise_views(M=4, N=16, P=2, R=4)
        regions = build_region_sets(views)
        overlap = regions[0].overlap_region(regions[1])
        clients = [FSClient(fs, client_id=r) for r in range(2)]
        handles = [c.open("holes.dat") for c in clients]
        for rank in range(2):
            # BUG under test: both ranks trim the overlap away.
            wrong_view = regions[rank].trimmed(overlap)
            data = rank_pattern_bytes(rank, regions[rank].total_bytes)
            for buf_off, file_off, length in regions[rank].buffer_map_restricted(wrong_view.coverage):
                handles[rank].write(file_off, data[buf_off:buf_off + length], direct=True)
        report = check_coverage(fobj.store, regions)
        assert not report.ok
        assert any(v.kind == "unwritten" for v in report.violations)
