"""Schema tests for the JSON results log.

Pins the backward compatibility contract of the multi-tenant extension:
records written before the job layer existed (no ``job_id`` /
``offered_load`` / ``fairness``) must still parse, the new fields must
round-trip through ``record_results`` with coerced types, and absent
optional fields must stay absent rather than appearing as nulls.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.jsonlog import (
    SCHEMA_VERSION,
    _coerce,
    load_results,
    record_results,
)

MINIMAL = {"P": 4, "strategy": "two-phase", "makespan": 0.5, "bytes": 1024}


class TestCoerce:
    def test_minimal_pre_job_layer_record_parses(self):
        out = _coerce(dict(MINIMAL))
        assert out == {
            "P": 4,
            "strategy": "two-phase",
            "makespan": 0.5,
            "bytes": 1024,
        }

    def test_absent_optional_fields_stay_absent(self):
        out = _coerce(dict(MINIMAL))
        for key in ("job_id", "offered_load", "fairness", "wall_seconds"):
            assert key not in out

    def test_multitenant_fields_coerce_types(self):
        entry = dict(
            MINIMAL, job_id=7, offered_load="73216", fairness="0.95"
        )
        out = _coerce(entry)
        assert out["job_id"] == "7"
        assert out["offered_load"] == 73216.0
        assert out["fairness"] == 0.95

    def test_summary_row_without_job_id(self):
        entry = dict(MINIMAL, offered_load=1e6, fairness=1.0, wall_seconds=0.25, ops=64)
        out = _coerce(entry)
        assert "job_id" not in out
        assert out["fairness"] == 1.0
        assert out["ops"] == 64

    def test_required_fields_still_required(self):
        with pytest.raises(KeyError):
            _coerce({"strategy": "two-phase", "makespan": 0.5, "bytes": 1})

    def test_pipeline_fields_coerce_types(self):
        entry = dict(MINIMAL, stage="producer", stream_id=7)
        out = _coerce(entry)
        assert out["stage"] == "producer"
        assert out["stream_id"] == "7"

    def test_pre_pipeline_records_stay_free_of_pipeline_fields(self):
        # Back-compat: entries written before the pipeline subsystem existed
        # carry neither field, and coercion must not invent them.
        out = _coerce(dict(MINIMAL))
        assert "stage" not in out and "stream_id" not in out
        out = _coerce(dict(MINIMAL, stage=None, stream_id=None))
        assert "stage" not in out and "stream_id" not in out


class TestRoundTrip:
    def test_old_file_gains_new_experiment_without_breaking(self, tmp_path):
        # A latest.json written before the job layer existed...
        path = tmp_path / "latest.json"
        path.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "experiments": {"perfgate/two-phase-write": [dict(MINIMAL)]},
                }
            ),
            encoding="utf-8",
        )
        # ...accepts a multi-tenant experiment alongside the old one.
        record_results(
            "multitenant/gpfs/j4xp16",
            [
                dict(MINIMAL, job_id="job0", offered_load=73216.0),
                dict(MINIMAL, P=64, offered_load=73216.0, fairness=0.99),
            ],
            path=path,
        )
        doc = load_results(path)
        assert set(doc["experiments"]) == {
            "perfgate/two-phase-write",
            "multitenant/gpfs/j4xp16",
        }
        old = doc["experiments"]["perfgate/two-phase-write"][0]
        assert "job_id" not in old and "offered_load" not in old
        per_job, summary = doc["experiments"]["multitenant/gpfs/j4xp16"]
        assert per_job["job_id"] == "job0"
        assert summary["fairness"] == 0.99

    def test_recorded_multitenant_entries_survive_json_round_trip(self, tmp_path):
        path = tmp_path / "latest.json"
        entries = [dict(MINIMAL, job_id="a", offered_load=10.0, fairness=1.0)]
        record_results("multitenant/x", entries, path=path)
        loaded = load_results(path)["experiments"]["multitenant/x"]
        assert loaded == [_coerce(e) for e in entries]

    def test_pipeline_entries_round_trip_alongside_old_records(self, tmp_path):
        path = tmp_path / "latest.json"
        path.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "experiments": {"perfgate/two-phase-write": [dict(MINIMAL)]},
                }
            ),
            encoding="utf-8",
        )
        record_results(
            "pipeline/gpfs/p4c4d2",
            [
                dict(MINIMAL, strategy="two-phase+overlapped", wall_seconds=0.1, ops=32),
                dict(MINIMAL, strategy="two-phase+overlapped", stage="consumer"),
                dict(MINIMAL, strategy="two-phase+overlapped",
                     stream_id="step0:/pipeline/ckpt.s0.dat"),
            ],
            path=path,
        )
        doc = load_results(path)
        old = doc["experiments"]["perfgate/two-phase-write"][0]
        assert "stage" not in old and "stream_id" not in old
        summary, per_stage, per_stream = doc["experiments"]["pipeline/gpfs/p4c4d2"]
        assert "stage" not in summary
        assert per_stage["stage"] == "consumer"
        assert per_stream["stream_id"] == "step0:/pipeline/ckpt.s0.dat"
