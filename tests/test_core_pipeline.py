"""Tests for the staged collective-write pipeline, the strategy registry and
the two-phase aggregation strategy.

The equivalence tests pin the per-rank ``WriteOutcome`` accounting (phases,
locks_acquired, bytes written/surrendered) of the three legacy strategies to
the exact values the pre-refactor monolithic implementations produced, so the
pipeline decomposition is behaviour-preserving by construction.
"""

from __future__ import annotations

import pytest

from repro.core.aggregation import choose_aggregators, merge_pieces, partition_domain
from repro.core.coloring import greedy_coloring
from repro.core.executor import AtomicWriteExecutor
from repro.core.intervals import IntervalSet
from repro.core.overlap import build_overlap_matrix
from repro.core.pipeline import (
    ConflictAnalysis,
    LockDirective,
    PhasePlan,
    PhaseRunner,
    ViewExchange,
    WritePlan,
    WriteStep,
)
from repro.core.rank_ordering import LOWER_RANK_WINS, resolve_by_rank
from repro.core.regions import FileRegionSet, build_region_sets
from repro.core.registry import StrategyRegistry, default_registry
from repro.core.strategies import (
    GraphColoringStrategy,
    LockingStrategy,
    NoAtomicityStrategy,
    PipelineStrategy,
    RankOrderingStrategy,
    TwoPhaseStrategy,
    WriteOutcome,
)
from repro.fs import ParallelFileSystem
from repro.fs.client import FSClient
from repro.mpi import run_spmd
from repro.patterns.partition import block_block_views, column_wise_views
from repro.patterns.workloads import rank_pattern_bytes
from repro.verify.atomicity import check_coverage, check_mpi_atomicity
from tests.conftest import fast_fs_config


VIEWS = column_wise_views(M=16, N=128, P=4, R=4)
REGIONS = build_region_sets(VIEWS)


def run(strategy, fs=None, nprocs=4, views=None, data_factory=rank_pattern_bytes):
    fs = fs or ParallelFileSystem(fast_fs_config())
    views = views or VIEWS
    executor = AtomicWriteExecutor(fs, strategy, filename="p.dat")
    return executor.run(nprocs, lambda rank, P: views[rank], data_factory)


class TestViewExchange:
    def test_allgathers_every_view(self):
        def fn(comm):
            region = REGIONS[comm.rank]
            regions = ViewExchange(enabled=True).run(comm, region)
            return [r.segments for r in regions]

        result = run_spmd(fn, 4)
        expected = [REGIONS[r].segments for r in range(4)]
        for per_rank in result.returns:
            assert per_rank == expected

    def test_disabled_is_noop(self):
        # No communicator interaction at all: comm=None must not be touched.
        assert ViewExchange(enabled=False).run(None, REGIONS[0]) is None


class TestConflictAnalysis:
    def test_mode_none(self):
        report = ConflictAnalysis(mode="none").run(REGIONS)
        assert report.regions == REGIONS
        assert report.overlap is None and report.coloring is None and report.ordering is None

    def test_coloring_matches_direct_computation(self):
        report = ConflictAnalysis(mode="coloring").run(REGIONS)
        direct = greedy_coloring(build_overlap_matrix(REGIONS))
        assert report.coloring.colors == direct.colors
        assert report.coloring.num_colors == direct.num_colors == 2

    def test_rank_order_matches_direct_computation(self):
        report = ConflictAnalysis(mode="rank-order").run(REGIONS)
        direct = resolve_by_rank(REGIONS)
        assert report.ordering.surrendered_bytes == direct.surrendered_bytes

    def test_rank_order_policy_forwarded(self):
        report = ConflictAnalysis(mode="rank-order", policy=LOWER_RANK_WINS).run(REGIONS)
        direct = resolve_by_rank(REGIONS, policy=LOWER_RANK_WINS)
        assert report.ordering.surrendered_bytes == direct.surrendered_bytes

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ConflictAnalysis(mode="quantum")


class TestPhaseRunner:
    """Direct plan execution against a single-rank world."""

    def _execute(self, plan, payloads, fs=None):
        fs = fs or ParallelFileSystem(fast_fs_config())

        def fn(comm):
            client = FSClient(fs, client_id=comm.rank, clock=comm.clock)
            handle = client.open("runner.dat")
            try:
                return PhaseRunner().execute(comm, handle, plan, payloads)
            finally:
                handle.close()

        outcome = run_spmd(fn, 1).returns[0]
        return outcome, fs.lookup("runner.dat")

    def test_steps_locks_and_accounting(self):
        plan = WritePlan(
            strategy="manual",
            rank=0,
            bytes_requested=8,
            locks=[LockDirective(0, 8)],
            phases=[
                PhasePlan(index=0, steps=[WriteStep(0, 0, 4)], direct=True),
                PhasePlan(index=1, steps=[WriteStep(4, 4, 4)], direct=True),
            ],
        )
        outcome, fobj = self._execute(plan, {"user": b"abcdWXYZ"})
        assert isinstance(outcome, WriteOutcome)
        assert outcome.bytes_written == 8
        assert outcome.segments_written == 2
        assert outcome.locks_acquired == 1
        assert outcome.phases == 2
        assert fobj.store.read(0, 8) == b"abcdWXYZ"

    def test_empty_plan_reports_one_phase(self):
        plan = WritePlan(strategy="manual", rank=0, bytes_requested=0)
        outcome, _ = self._execute(plan, {"user": b""})
        assert outcome.phases == 1
        assert outcome.bytes_written == 0

    def test_writer_override_recorded_as_provenance(self):
        plan = WritePlan(
            strategy="manual",
            rank=0,
            bytes_requested=4,
            phases=[PhasePlan(index=0, steps=[WriteStep(0, 0, 4, writer=7)], direct=True)],
        )
        _, fobj = self._execute(plan, {"user": b"data"})
        assert fobj.store.distinct_writers(0, 4) == (7,)

    def test_reported_phases_override(self):
        plan = WritePlan(
            strategy="manual",
            rank=0,
            bytes_requested=0,
            phases=[PhasePlan(index=0)],
            reported_phases=2,
        )
        outcome, _ = self._execute(plan, {"user": b""})
        assert outcome.phases == 2


class TestLegacyEquivalence:
    """The stage compositions reproduce the pre-refactor accounting exactly."""

    def test_locking_accounting(self):
        result = run(LockingStrategy())
        for rank, outcome in enumerate(result.outcomes):
            region = result.regions[rank]
            assert outcome.strategy == "locking"
            assert outcome.locks_acquired == 1
            assert outcome.phases == 1
            assert outcome.bytes_written == outcome.bytes_requested == region.total_bytes
            assert outcome.segments_written == region.num_segments
            assert outcome.extra["locked_bytes"] == float(region.extent_bytes())

    def test_graph_coloring_accounting(self):
        result = run(GraphColoringStrategy())
        coloring = greedy_coloring(build_overlap_matrix(result.regions))
        for rank, outcome in enumerate(result.outcomes):
            assert outcome.phases == coloring.num_colors == 2
            assert outcome.colors_used == coloring.num_colors
            assert outcome.my_phase == coloring.color_of(rank)
            assert outcome.bytes_written == outcome.bytes_requested
            assert outcome.locks_acquired == 0

    def test_rank_ordering_accounting(self):
        result = run(RankOrderingStrategy())
        resolution = resolve_by_rank(result.regions)
        for rank, outcome in enumerate(result.outcomes):
            assert outcome.bytes_surrendered == resolution.surrendered_bytes[rank]
            assert (
                outcome.bytes_written
                == outcome.bytes_requested - outcome.bytes_surrendered
            )
            assert outcome.phases == 1
            assert outcome.locks_acquired == 0

    def test_baseline_accounting(self):
        result = run(NoAtomicityStrategy())
        for rank, outcome in enumerate(result.outcomes):
            region = result.regions[rank]
            assert outcome.bytes_written == region.total_bytes
            assert outcome.segments_written == region.num_segments
            assert outcome.phases == 1


class TestAggregationHelpers:
    def test_choose_aggregators_even_spacing(self):
        assert choose_aggregators(8, 8) == list(range(8))
        assert choose_aggregators(8, 2) == [0, 4]
        assert choose_aggregators(8, 3) == [0, 2, 5]
        assert choose_aggregators(4, 99) == [0, 1, 2, 3]

    def test_partition_domain_balanced_and_disjoint(self):
        domain = IntervalSet.from_segments([(0, 10), (20, 10), (40, 5)])
        chunks = partition_domain(domain, 3)
        assert len(chunks) == 3
        sizes = [c.total_bytes for c in chunks]
        assert sum(sizes) == 25
        assert max(sizes) - min(sizes) <= 1
        # Chunks are pairwise disjoint and cover the domain in file order.
        union = chunks[0]
        for c in chunks[1:]:
            assert not union.overlaps(c)
            union = union.union(c)
        assert union == domain

    def test_partition_domain_more_chunks_than_bytes(self):
        domain = IntervalSet.from_segments([(0, 2)])
        chunks = partition_domain(domain, 4)
        assert sum(c.total_bytes for c in chunks) == 2
        assert sum(1 for c in chunks if c.is_empty()) == 2

    def test_merge_pieces_highest_priority_wins(self):
        pieces = [
            (0, [(0, b"aaaa")]),
            (1, [(2, b"bbbb")]),
        ]
        runs = merge_pieces(pieces)
        assert [(r.offset, r.data, r.origin) for r in runs] == [
            (0, b"aa", 0),
            (2, b"bbbb", 1),
        ]

    def test_merge_pieces_policy_reversed(self):
        pieces = [
            (0, [(0, b"aaaa")]),
            (1, [(2, b"bbbb")]),
        ]
        runs = merge_pieces(pieces, policy=LOWER_RANK_WINS)
        assert [(r.offset, r.data, r.origin) for r in runs] == [
            (0, b"aaaa", 0),
            (4, b"bb", 1),
        ]

    def test_merge_pieces_keeps_gaps(self):
        runs = merge_pieces([(3, [(0, b"xx"), (10, b"yy")])])
        assert [(r.offset, r.origin) for r in runs] == [(0, 3), (10, 3)]

    def test_merge_pieces_sparse_span_stays_cheap(self):
        """Memory scales with covered bytes, not the offset span: pieces a
        terabyte apart must merge instantly."""
        far = 10**12
        runs = merge_pieces([(0, [(0, b"aa")]), (1, [(far, b"bb")])])
        assert [(r.offset, r.data, r.origin) for r in runs] == [
            (0, b"aa", 0),
            (far, b"bb", 1),
        ]

    def test_merge_pieces_empty(self):
        assert merge_pieces([(0, []), (1, [])]) == []

    def test_merge_pieces_priority_tie_breaks_toward_lower_rank(self):
        """A non-injective policy ties like resolve_by_rank: lower rank wins."""
        constant = lambda rank: 0  # noqa: E731
        runs = merge_pieces([(0, [(0, b"aaaa")]), (1, [(0, b"bbbb")])], policy=constant)
        assert [(r.offset, r.data, r.origin) for r in runs] == [(0, b"aaaa", 0)]


class TestTwoPhaseStrategy:
    def test_atomic_and_complete_column_wise(self):
        result = run(TwoPhaseStrategy())
        assert check_mpi_atomicity(result.file.store, result.regions).ok
        assert check_coverage(result.file.store, result.regions).ok

    def test_atomic_and_complete_block_block(self):
        views = block_block_views(M=24, N=24, Pr=3, Pc=3, R=2)
        result = run(TwoPhaseStrategy(), nprocs=9, views=views)
        assert check_mpi_atomicity(result.file.store, result.regions).ok
        assert check_coverage(result.file.store, result.regions).ok

    @pytest.mark.parametrize("naggr", [1, 2, 3])
    def test_aggregator_count_sweep(self, naggr):
        result = run(TwoPhaseStrategy(num_aggregators=naggr))
        assert check_mpi_atomicity(result.file.store, result.regions).ok
        assert check_coverage(result.file.store, result.regions).ok
        writers = sum(1 for o in result.outcomes if o.bytes_written > 0)
        assert writers <= naggr

    def test_overlaps_resolved_like_rank_ordering(self):
        """Per-byte winners match the rank-ordering priority rule."""
        result = run(TwoPhaseStrategy())
        store = result.file.store
        regions = result.regions
        for i in range(3):
            overlap = regions[i].overlap_region(regions[i + 1])
            for iv in overlap:
                assert store.distinct_writers(iv.start, iv.length) == (i + 1,)

    def test_total_written_equals_domain(self):
        """Aggregators write every domain byte exactly once."""
        result = run(TwoPhaseStrategy(num_aggregators=2))
        from repro.core.intervals import merge_interval_sets

        domain = merge_interval_sets([r.coverage for r in result.regions])
        assert result.total_bytes_written == domain.total_bytes

    def test_surrendered_accounting_matches_rank_ordering(self):
        result = run(TwoPhaseStrategy())
        resolution = resolve_by_rank(result.regions)
        for rank, outcome in enumerate(result.outcomes):
            assert outcome.bytes_surrendered == resolution.surrendered_bytes[rank]
            assert outcome.phases == 2

    def test_constant_policy_ties_match_rank_ordering(self):
        """With a non-injective policy both the merge and the surrendered
        accounting still agree with resolve_by_rank's tie-breaking."""
        constant = lambda rank: 0  # noqa: E731
        result = run(TwoPhaseStrategy(policy=constant))
        assert check_mpi_atomicity(result.file.store, result.regions).ok
        assert check_coverage(result.file.store, result.regions).ok
        resolution = resolve_by_rank(result.regions, policy=constant)
        for rank, outcome in enumerate(result.outcomes):
            assert outcome.bytes_surrendered == resolution.surrendered_bytes[rank]

    def test_data_placement_correct(self):
        """Winning bytes carry the winning rank's data from the right buffer
        position, even though an aggregator physically wrote them."""
        result = run(TwoPhaseStrategy(num_aggregators=2))
        store = result.file.store
        for region in result.regions:
            data = rank_pattern_bytes(region.rank, region.total_bytes)
            for buf_off, file_off, length in region.buffer_map():
                if store.distinct_writers(file_off, length) == (region.rank,):
                    assert store.read(file_off, length) == data[buf_off : buf_off + length]

    def test_lockless_fs_supported(self):
        from repro.fs.filesystem import LockProtocol

        fs = ParallelFileSystem(fast_fs_config(LockProtocol.NONE))
        result = run(TwoPhaseStrategy(), fs=fs)
        assert check_mpi_atomicity(result.file.store, result.regions).ok
        assert all(o.locks_acquired == 0 for o in result.outcomes)

    def test_invalid_aggregator_count_rejected(self):
        with pytest.raises(ValueError):
            TwoPhaseStrategy(num_aggregators=0)


class TestStrategyRegistry:
    def test_default_registry_contents(self):
        assert set(default_registry.names()) == {
            "none",
            "locking",
            "graph-coloring",
            "rank-ordering",
            "two-phase",
            "two-phase-hier",
            "auto",
        }
        assert "two-phase" in default_registry.atomic_names()
        assert "auto" in default_registry.atomic_names()
        assert "none" not in default_registry.atomic_names()

    def test_machine_filtering_uses_capabilities(self):
        with_locks = default_registry.names_for_machine(supports_locking=True)
        without = default_registry.names_for_machine(supports_locking=False)
        assert "locking" in with_locks
        assert "locking" not in without
        assert "two-phase" in without

    def test_register_and_create_custom_strategy(self):
        registry = StrategyRegistry()

        class EchoStrategy(PipelineStrategy):
            name = "echo"

            def schedule(self, comm, region, data, report):
                return self._plan(region), {"user": data}

        registry.register(EchoStrategy)
        assert "echo" in registry
        assert isinstance(registry.create("echo"), EchoStrategy)

    def test_duplicate_name_rejected(self):
        registry = StrategyRegistry()

        class A(PipelineStrategy):
            name = "dup"

            def schedule(self, comm, region, data, report):  # pragma: no cover
                raise NotImplementedError

        class B(PipelineStrategy):
            name = "dup"

            def schedule(self, comm, region, data, report):  # pragma: no cover
                raise NotImplementedError

        registry.register(A)
        with pytest.raises(ValueError):
            registry.register(B)

    def test_nameless_class_rejected(self):
        registry = StrategyRegistry()
        with pytest.raises(ValueError):
            registry.register(object)

    def test_unknown_lookup_lists_known(self):
        with pytest.raises(KeyError, match="two-phase"):
            default_registry.get("missing-strategy")
