"""Tests for the documentation consistency checker (`repro.bench.doccheck`)."""

from __future__ import annotations

from pathlib import Path

from repro.bench.doccheck import check_document, check_required_section, main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCheckDocument:
    def test_real_docs_are_consistent(self):
        for doc in ("README.md", "EXPERIMENTS.md", "ARCHITECTURE.md"):
            assert check_document(REPO_ROOT / doc, root=REPO_ROOT) == [], doc

    def test_missing_path_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("See `no/such/file.py` for details.\n", encoding="utf-8")
        problems = check_document(doc, root=REPO_ROOT)
        assert len(problems) == 1
        assert "no/such/file.py" in problems[0][1]

    def test_missing_module_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("Run `python -m repro.bench.nonexistent` now.\n", encoding="utf-8")
        problems = check_document(doc, root=REPO_ROOT)
        assert any("not importable" in p for _, p in problems)

    def test_existing_module_and_script_pass(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "Run `PYTHONPATH=src python -m repro.bench.smoke` and\n"
            "`python examples/quickstart.py` and read `src/repro/io/file.py`.\n",
            encoding="utf-8",
        )
        assert check_document(doc, root=REPO_ROOT) == []

    def test_placeholders_and_prose_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "Use `<your-file>.py` or `*.py` or `{name}.md`; plain `code` too.\n",
            encoding="utf-8",
        )
        assert check_document(doc, root=REPO_ROOT) == []

    def test_missing_document_reported(self, tmp_path):
        problems = check_document(tmp_path / "absent.md", root=REPO_ROOT)
        assert problems and "does not exist" in problems[0][1]


class TestRequiredSections:
    def test_heading_found_case_insensitive_substring(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Title\n\n## Coupled-pipeline streaming sweep\n\nbody\n",
            encoding="utf-8",
        )
        assert check_required_section("doc.md#coupled-pipeline", root=tmp_path) == []
        assert check_required_section("doc.md#Streaming Sweep", root=tmp_path) == []

    def test_missing_heading_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Title\n\nCoupled-pipeline prose, not a heading.\n",
                       encoding="utf-8")
        problems = check_required_section("doc.md#Coupled-pipeline", root=tmp_path)
        assert problems and "no heading" in problems[0]

    def test_missing_file_and_malformed_requirement(self, tmp_path):
        assert any(
            "does not exist" in p
            for p in check_required_section("absent.md#X", root=tmp_path)
        )
        assert any(
            "malformed" in p
            for p in check_required_section("no-heading-part.md", root=tmp_path)
        )

    def test_repo_experiments_sections_present(self):
        # The sections CI requires must actually exist in this repo's docs.
        for requirement in ("EXPERIMENTS.md#Coupled-pipeline",
                            "EXPERIMENTS.md#Multi-tenant"):
            assert check_required_section(requirement, root=REPO_ROOT) == []


class TestCli:
    def test_exit_codes(self, tmp_path, monkeypatch, capsys):
        good = tmp_path / "good.md"
        good.write_text("nothing to check\n", encoding="utf-8")
        bad = tmp_path / "bad.md"
        bad.write_text("`missing/thing.py`\n", encoding="utf-8")
        monkeypatch.chdir(REPO_ROOT)
        assert main([str(good)]) == 0
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "missing/thing.py" in out

    def test_require_flag(self, tmp_path, monkeypatch, capsys):
        doc = tmp_path / "doc.md"
        doc.write_text("## Known Section\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["--require", "doc.md#Known Section"]) == 0
        assert main(["--require=doc.md#Known Section"]) == 0
        assert main(["--require", "doc.md#Absent Section"]) == 1
        assert main(["--require"]) == 1
        out = capsys.readouterr().out
        assert "no heading" in out
