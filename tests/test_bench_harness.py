"""Tests for the registry-driven benchmark harness: pattern selection,
machine capability filtering and the CI smoke target."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    run_column_wise_experiment,
    run_figure8_grid,
    strategies_for_machine,
)
from repro.bench.machines import CPLANT, ORIGIN2000
from repro.bench.smoke import main as smoke_main, run_smoke
from repro.core.registry import default_registry
from repro.patterns.partition import (
    PATTERN_NAMES,
    process_grid,
    views_for_pattern,
)


class TestPatternSelection:
    def test_process_grid_near_square(self):
        assert process_grid(4) == (2, 2)
        assert process_grid(8) == (2, 4)
        assert process_grid(16) == (4, 4)
        assert process_grid(7) == (1, 7)

    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    def test_views_cover_p_ranks(self, pattern):
        views = views_for_pattern(pattern, M=16, N=64, P=4, R=2)
        assert len(views) == 4
        assert all(views)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            views_for_pattern("diagonal", M=16, N=64, P=4)

    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    @pytest.mark.parametrize("strategy", ["rank-ordering", "two-phase"])
    def test_experiment_sweeps_patterns(self, pattern, strategy):
        record = run_column_wise_experiment(
            ORIGIN2000, M=16, N=256, nprocs=4, strategy=strategy,
            overlap_columns=2, pattern=pattern,
        )
        assert record.pattern == pattern
        assert record.atomic_ok
        assert record.bytes_written > 0


class TestRegistryDrivenGrid:
    def test_default_strategies_come_from_registry(self):
        table = run_figure8_grid(
            machines=[ORIGIN2000],
            array_labels=["32MB"],
            process_counts=[4],
            row_scale=256,
            verify=True,
        )
        assert {r.strategy for r in table} == set(default_registry.atomic_names())
        assert all(r.atomic_ok for r in table)

    def test_two_phase_in_grid_passes_atomicity(self):
        table = run_figure8_grid(
            machines=[ORIGIN2000],
            array_labels=["32MB"],
            process_counts=[4],
            strategies=["two-phase"],
            row_scale=256,
            verify=True,
        )
        assert len(table) == 1
        record = table.records[0]
        assert record.strategy == "two-phase"
        assert record.atomic_ok
        assert record.phases == 2

    def test_capability_filter_drops_lock_strategies(self):
        names = list(default_registry.atomic_names())
        kept = strategies_for_machine(CPLANT, names)
        assert "locking" not in kept
        assert set(kept) == set(names) - {"locking"}
        assert strategies_for_machine(ORIGIN2000, names) == names


class TestSmokeTarget:
    def test_run_smoke_covers_every_atomic_strategy(self):
        table = run_smoke()
        assert {r.strategy for r in table} == set(default_registry.atomic_names())
        assert all(r.atomic_ok for r in table)

    def test_main_exit_code_ok(self, capsys):
        assert smoke_main([]) == 0
        out = capsys.readouterr().out
        assert "two-phase" in out
        assert "smoke ok" in out
