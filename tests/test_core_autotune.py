"""Tests for the pattern-aware adaptive collective I/O layer (``auto``).

Covers the three layers of :mod:`repro.core.autotune` — the pattern
classifier, the self-tuning hint engine, and the cross-collective plan
cache — plus the ``Info.get_bool`` accessor the adaptive hints parse with.
The plan-cache tests pin the safety contract: cached replays must produce
byte- and provenance-identical files, and any ``Set_view``/hint change must
invalidate the cached plan.
"""

from __future__ import annotations

import pytest

from repro.core import autotune
from repro.core.autotune import (
    AutoStrategy,
    HintEngine,
    MachineModel,
    PatternSignature,
    classify_pattern,
    peek_record,
    record_for,
)
from repro.core.regions import build_region_sets
from repro.core.strategies import TwoPhaseStrategy
from repro.datatypes import CHAR, subarray
from repro.fs import ParallelFileSystem
from repro.fs.filesystem import LockProtocol
from repro.io import Info, MPIFile
from repro.mpi import run_spmd
from repro.patterns.partition import (
    block_block_spec,
    column_wise_spec,
    process_grid,
    row_wise_spec,
    views_for_pattern,
)
from repro.verify.atomicity import check_coverage, check_mpi_atomicity
from tests.conftest import fast_fs_config

M, N, P = 16, 64, 4


def regions_for(pattern: str, R: int = 0):
    return build_region_sets(views_for_pattern(pattern, M, N, P, R))


# -- layer 1: the pattern classifier ------------------------------------------


class TestClassifier:
    def test_column_wise_is_strided(self):
        # Every rank owns a column block, all P ranks interleave per row.
        sig = classify_pattern(regions_for("column-wise"))
        assert sig.kind == "strided"
        assert sig.nprocs == P

    def test_row_wise_is_contiguous(self):
        # A row block is one contiguous byte run per rank.
        sig = classify_pattern(regions_for("row-wise"))
        assert sig.kind == "contiguous"

    def test_block_block_is_block_block(self):
        # On the 2x2 grid only Pc=2 of the 4 ranks interleave per row.
        assert process_grid(P) == (2, 2)
        sig = classify_pattern(regions_for("block-block"))
        assert sig.kind == "block-block"

    def test_irregular_views_are_irregular(self):
        views = [
            [(0, 10), (50, 7), (90, 3)],
            [(200, 3), (220, 11), (400, 5)],
        ]
        sig = classify_pattern(build_region_sets(views))
        assert sig.kind == "irregular"

    def test_overlap_is_seen(self):
        # Ghost columns overlap neighbouring ranks; the disjoint split doesn't.
        disjoint = classify_pattern(regions_for("column-wise", R=0))
        ghosted = classify_pattern(regions_for("column-wise", R=4))
        assert disjoint.overlap_bucket == 0
        assert ghosted.overlap_bucket > 0

    def test_signature_is_hashable_and_position_independent(self):
        base = [[(0, 8), (64, 8)], [(16, 8), (80, 8)]]
        shifted = [[(1024 + o, n) for (o, n) in view] for view in base]
        a = classify_pattern(build_region_sets(base))
        b = classify_pattern(build_region_sets(shifted))
        assert a == b
        assert len({a, b}) == 1  # usable as a hint-cache key


# -- layer 2: the hint engine -------------------------------------------------


def signature(kind: str, nprocs: int = P) -> PatternSignature:
    return PatternSignature(
        kind=kind,
        nprocs=nprocs,
        segments_bucket=5,
        segment_bucket=5,
        domain_bucket=20,
        overlap_bucket=0,
        interleave_bucket=2,
    )


class TestHintEngine:
    machine = MachineModel(supports_locking=True, num_servers=8, stripe_size=64 * 1024)

    def test_contiguous_gets_rank_ordering(self):
        decision = HintEngine().decide(signature("contiguous"), self.machine)
        assert decision.strategy == "rank-ordering"
        assert decision.hints() == {}

    def test_interleaved_gets_two_phase_with_derived_hints(self):
        decision = HintEngine().decide(signature("strided"), self.machine)
        assert decision.strategy == "two-phase"
        # Half the server count, capped by P.
        assert decision.cb_nodes == self.machine.num_servers // 2
        assert decision.cb_buffer_size % self.machine.stripe_size == 0

    def test_cb_nodes_capped_by_nprocs(self):
        decision = HintEngine().decide(signature("strided", nprocs=2), self.machine)
        assert decision.cb_nodes == 2

    def test_large_p_goes_hierarchical(self):
        decision = HintEngine().decide(signature("strided", nprocs=128), self.machine)
        assert decision.strategy == "two-phase-hier"
        assert decision.cb_ppn == HintEngine.default_ppn
        assert decision.cb_nodes >= 1

    def test_locking_is_never_proposed(self):
        engine = HintEngine()
        for kind in ("contiguous", "strided", "block-block", "irregular"):
            for nprocs in (2, P, 128):
                decision = engine.decide(signature(kind, nprocs), self.machine)
                assert decision.strategy != "locking"

    def test_delegate_is_shared(self):
        decision = HintEngine().decide(signature("strided"), self.machine)
        assert decision.delegate() is decision.delegate()


class TestHintEngineRead:
    machine = MachineModel(supports_locking=True, num_servers=8, stripe_size=64 * 1024)

    def test_contiguous_read_keeps_read_ahead(self):
        decision = HintEngine().decide_read(signature("contiguous"), self.machine)
        assert decision.strategy == "rank-ordering"
        assert decision.read_ahead is True
        assert decision.hints() == {"read_ahead": 1.0}

    def test_interleaved_read_is_fetch_parallel(self):
        # Reads have no commit side: two aggregators per I/O server, not the
        # write rule's half-the-servers.
        decision = HintEngine().decide_read(signature("strided", nprocs=32), self.machine)
        assert decision.strategy == "two-phase"
        assert decision.cb_nodes == 2 * self.machine.num_servers
        assert decision.cb_buffer_size % self.machine.stripe_size == 0
        assert decision.read_ahead is False
        assert decision.hints()["read_ahead"] == 0.0

    def test_read_cb_nodes_capped_by_nprocs(self):
        decision = HintEngine().decide_read(signature("strided", nprocs=2), self.machine)
        assert decision.cb_nodes == 2

    def test_single_server_read_stays_narrow(self):
        # An ENFS-like single-server machine: fan-out past 2 aggregators only
        # adds shuffle latency the lone server cannot amortise.
        enfs = MachineModel(supports_locking=False, num_servers=1, stripe_size=64 * 1024)
        decision = HintEngine().decide_read(signature("strided", nprocs=16), enfs)
        assert decision.cb_nodes == 2

    def test_large_p_read_goes_hierarchical(self):
        decision = HintEngine().decide_read(signature("strided", nprocs=128), self.machine)
        assert decision.strategy == "two-phase-hier"
        assert decision.cb_ppn == HintEngine.default_ppn
        assert decision.read_ahead is False

    def test_read_and_write_decisions_are_separate(self):
        engine = HintEngine()
        sig = signature("strided", nprocs=32)
        write = engine.decide(sig, self.machine)
        read = engine.decide_read(sig, self.machine)
        assert write.read_ahead is None
        assert "read_ahead" not in write.hints()
        assert write.cb_nodes != read.cb_nodes


# -- the Info.get_bool accessor (what `auto`'s toggles parse with) ------------


class TestInfoGetBool:
    def test_true_spellings(self):
        for word in ("true", "1", "YES", " on ", "Enabled"):
            assert Info({"k": word}).get_bool("k") is True

    def test_false_spellings(self):
        for word in ("false", "0", "No", "off", "disabled"):
            assert Info({"k": word}).get_bool("k", True) is False

    def test_garbage_falls_back_to_default(self):
        assert Info({"k": "banana"}).get_bool("k") is False
        assert Info({"k": "banana"}).get_bool("k", True) is True

    def test_absent_falls_back_to_default(self):
        assert Info().get_bool("k") is False
        assert Info().get_bool("k", True) is True

    def test_none_default_is_tri_state(self):
        assert Info().get_bool("k", None) is None
        assert Info({"k": "banana"}).get_bool("k", None) is None
        assert Info({"k": "on"}).get_bool("k", None) is True


# -- layer 3: the adaptive strategy end to end --------------------------------


def filetype_for(pattern: str, rank: int, R: int = 0):
    if pattern == "column-wise":
        spec = column_wise_spec(M, N, P, rank, R)
    elif pattern == "row-wise":
        spec = row_wise_spec(M, N, P, rank, R)
    else:
        Pr, Pc = process_grid(P)
        spec = block_block_spec(M, N, Pr, Pc, rank, R)
    ft = subarray(list(spec.sizes), list(spec.subsizes), list(spec.starts), CHAR)
    return ft.commit(), spec.total_bytes


def write_steps(fs, filename, steps=1, pattern="column-wise", info=None, reopen=False):
    """Run ``steps`` atomic collective writes under the ``auto`` strategy."""
    info = info if info is not None else Info({"atomicity_strategy": "auto"})

    def fn(comm):
        outcomes = []
        f = None
        for step in range(steps):
            if f is None:
                f = MPIFile.Open(comm, filename, fs, info=info)
                f.Set_atomicity(True)
                ft, nbytes = filetype_for(pattern, comm.rank)
                f.Set_view(0, CHAR, ft)
            data = bytes([ord("A") + (comm.rank + step) % 26]) * nbytes
            f.Seek(0)  # rewind: every step rewrites the same view
            outcomes.append(f.Write_all(data))
            if reopen:
                f.Close()
                f = None
        if f is not None:
            f.Close()
        return outcomes

    return run_spmd(fn, P)


class TestAutoEndToEnd:
    def test_auto_roundtrip_is_atomic(self):
        fs = ParallelFileSystem(fast_fs_config())
        result = write_steps(fs, "auto.dat")
        regions = regions_for("column-wise")
        store = fs.lookup("auto.dat").store
        assert check_mpi_atomicity(store, regions).ok
        assert check_coverage(store, regions).ok
        for outcomes in result.returns:
            assert all(o.strategy == "auto" for o in outcomes)

    def test_auto_runs_on_lockless_fs(self):
        fs = ParallelFileSystem(fast_fs_config(LockProtocol.NONE))
        write_steps(fs, "auto.dat")
        assert check_mpi_atomicity(
            fs.lookup("auto.dat").store, regions_for("column-wise")
        ).ok

    def test_repeated_collectives_hit_the_plan_cache(self):
        fs = ParallelFileSystem(fast_fs_config())
        write_steps(fs, "steps.dat", steps=4)
        record = peek_record(fs, "steps.dat")
        assert record is not None
        assert record.misses == 1
        assert record.hits == 3

    def test_plan_cache_toggle_via_info(self):
        fs = ParallelFileSystem(fast_fs_config())
        info = Info({"atomicity_strategy": "auto", "plan_cache": "false"})
        write_steps(fs, "nocache.dat", steps=3, info=info)
        record = peek_record(fs, "nocache.dat")
        assert record.hits == 0
        assert record.misses == 3

    def test_hint_cache_survives_close_open(self):
        fs = ParallelFileSystem(fast_fs_config())
        write_steps(fs, "persist.dat", steps=2, reopen=True)
        record = peek_record(fs, "persist.dat")
        assert record is record_for(fs, "persist.dat")
        # Both collectives were cold (the reopen's Set_view drops the plan),
        # but the second reused the persisted tuning decision object.
        assert record.misses == 2
        assert len(record.decisions) == 1
        (decision,) = record.decisions.values()
        assert decision.strategy == "two-phase"

    def test_records_are_per_filesystem(self):
        fs_a = ParallelFileSystem(fast_fs_config())
        fs_b = ParallelFileSystem(fast_fs_config())
        write_steps(fs_a, "same.dat")
        write_steps(fs_b, "same.dat")
        assert peek_record(fs_a, "same.dat") is not peek_record(fs_b, "same.dat")

    def test_set_view_invalidates_the_plan(self):
        fs = ParallelFileSystem(fast_fs_config())

        def fn(comm):
            f = MPIFile.Open(comm, "inval.dat", fs, info=Info({"atomicity_strategy": "auto"}))
            f.Set_atomicity(True)
            ft, nbytes = filetype_for("column-wise", comm.rank)
            data = bytes([ord("A") + comm.rank]) * nbytes
            f.Set_view(0, CHAR, ft)
            f.Write_all(data)
            f.Set_view(0, CHAR, ft)  # same view, but the plan must still drop
            f.Write_all(data)
            f.Close()

        run_spmd(fn, P)
        record = peek_record(fs, "inval.dat")
        assert record.hits == 0
        assert record.misses == 2

    def test_notify_invalidation_semantics(self):
        fs = ParallelFileSystem(fast_fs_config())
        write_steps(fs, "notify.dat")
        record = peek_record(fs, "notify.dat")
        assert record.entry is not None and record.decisions
        autotune.notify_view_change(fs, "notify.dat")
        assert record.entry is None  # plan dropped...
        assert record.decisions  # ...but the hint cache survives a view change
        write_steps(fs, "notify2.dat")
        record2 = peek_record(fs, "notify2.dat")
        autotune.notify_hint_change(fs, "notify2.dat")
        assert record2.entry is None
        assert record2.decisions == {}  # a hint change clears both layers

    def test_cached_replay_is_byte_and_provenance_identical(self):
        files = {}
        for label, plan_cache in (("on", "true"), ("off", "false")):
            fs = ParallelFileSystem(fast_fs_config())
            info = Info({"atomicity_strategy": "auto", "plan_cache": plan_cache})
            write_steps(fs, "ident.dat", steps=3, info=info)
            store = fs.lookup("ident.dat").store
            files[label] = (store.read(0, store.size), list(store.writers(0, store.size)))
        assert files["on"][0] == files["off"][0]
        assert files["on"][1] == files["off"][1]


def read_steps(fs, filename, steps=1, pattern="column-wise", info=None, reset_view=False):
    """Seed ``filename`` with one ``auto`` write, then ``steps`` Read_alls."""
    info = info if info is not None else Info({"atomicity_strategy": "auto"})

    def fn(comm):
        f = MPIFile.Open(comm, filename, fs, info=info)
        f.Set_atomicity(True)
        ft, nbytes = filetype_for(pattern, comm.rank)
        f.Set_view(0, CHAR, ft)
        f.Write_all(bytes([ord("A") + comm.rank % 26]) * nbytes)
        streams = []
        for _ in range(steps):
            if reset_view:
                f.Set_view(0, CHAR, ft)
            f.Seek(0)
            buffer = bytearray(nbytes)
            f.Read_all(buffer)
            streams.append(bytes(buffer))
        # Collective reads run on the progress handle (`Iread_all` body),
        # so that is where the tuner's read_ahead coupling lands.
        pages = f._async_handle.cache.policy.read_ahead_pages
        f.Close()
        return streams, pages

    return run_spmd(fn, P)


class TestAutoReadEndToEnd:
    def test_read_returns_the_written_bytes(self):
        fs = ParallelFileSystem(fast_fs_config())
        result = read_steps(fs, "rw.dat")
        for rank, (streams, _) in enumerate(result.returns):
            assert streams[0] == bytes([ord("A") + rank % 26]) * len(streams[0])

    def test_write_seeded_plan_replays_for_reads(self):
        # The plan entry is mode-agnostic: the write's exchanged views and
        # signature replay for the reads, only the decision table splits.
        fs = ParallelFileSystem(fast_fs_config())
        read_steps(fs, "replay.dat", steps=3)
        record = peek_record(fs, "replay.dat")
        assert record.misses == 1  # the seeding write
        assert record.hits == 3  # every read replayed the cached plan
        assert len(record.decisions) == 1
        assert len(record.read_decisions) == 1

    def test_read_decision_disables_read_ahead(self):
        fs = ParallelFileSystem(fast_fs_config())
        result = read_steps(fs, "ra.dat")
        (decision,) = peek_record(fs, "ra.dat").read_decisions.values()
        assert decision.read_ahead is False
        for _, pages in result.returns:
            assert pages == 0  # the handle's cache policy was switched off

    def test_set_view_invalidates_the_read_plan(self):
        fs = ParallelFileSystem(fast_fs_config())
        read_steps(fs, "rinval.dat", steps=2, reset_view=True)
        record = peek_record(fs, "rinval.dat")
        assert record.hits == 0
        assert record.misses == 3  # write + both reads re-resolved
        # The hint caches survive the view changes...
        assert record.decisions and record.read_decisions
        # ...but a hint change clears both decision tables too.
        autotune.notify_hint_change(fs, "rinval.dat")
        assert record.entry is None
        assert record.decisions == {}
        assert record.read_decisions == {}


class TestBulkResolveStatic:
    def test_interleaved_pattern_yields_two_phase(self):
        strat = AutoStrategy()
        delegate = strat.resolve_static(P, regions_for("column-wise"))
        assert isinstance(delegate, TwoPhaseStrategy)
        assert strat.last_decision is not None
        assert strat.last_decision.strategy == "two-phase"

    def test_read_mode_resolves_the_read_decision(self):
        strat = AutoStrategy()
        write_delegate = strat.resolve_static(P, regions_for("column-wise"))
        read_delegate = strat.resolve_static(P, regions_for("column-wise"), mode="read")
        assert isinstance(read_delegate, TwoPhaseStrategy)
        assert strat.last_decision.read_ahead is False
        assert read_delegate is not write_delegate

    def test_contiguous_pattern_refuses_bulk_replay(self):
        strat = AutoStrategy()
        with pytest.raises(TypeError, match="rank-ordering"):
            strat.resolve_static(P, regions_for("row-wise"))
