"""Tests for overlap-matrix construction and pairwise overlap analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import IntervalSet
from repro.core.overlap import (
    OverlapMatrix,
    build_overlap_matrix,
    conflict_free_groups_are_disjoint,
    overlapped_bytes_total,
    pairwise_overlap_regions,
)
from repro.core.regions import build_region_sets
from repro.patterns.partition import column_wise_views


def regions_from(views):
    return build_region_sets(views)


class TestOverlapMatrixValidation:
    def test_requires_square(self):
        with pytest.raises(ValueError):
            OverlapMatrix(np.zeros((2, 3), dtype=bool))

    def test_requires_bool(self):
        with pytest.raises(ValueError):
            OverlapMatrix(np.zeros((2, 2), dtype=int))

    def test_requires_false_diagonal(self):
        m = np.zeros((2, 2), dtype=bool)
        m[0, 0] = True
        with pytest.raises(ValueError):
            OverlapMatrix(m)

    def test_requires_symmetry(self):
        m = np.zeros((2, 2), dtype=bool)
        m[0, 1] = True
        with pytest.raises(ValueError):
            OverlapMatrix(m)


class TestBuildOverlapMatrix:
    def test_chain_overlap(self):
        # rank i overlaps rank i+1 only (column-wise neighbours).
        views = [[(0, 10)], [(8, 10)], [(16, 10)]]
        w = build_overlap_matrix(regions_from(views))
        assert w.neighbors(0) == [1]
        assert w.neighbors(1) == [0, 2]
        assert w.neighbors(2) == [1]
        assert w.edges() == [(0, 1), (1, 2)]

    def test_no_overlap(self):
        views = [[(0, 10)], [(10, 10)], [(20, 10)]]
        w = build_overlap_matrix(regions_from(views))
        assert not w.has_any_overlap()
        assert w.max_degree() == 0

    def test_all_overlap(self):
        views = [[(0, 100)], [(0, 100)], [(0, 100)]]
        w = build_overlap_matrix(regions_from(views))
        assert w.max_degree() == 2
        assert len(w.edges()) == 3

    def test_wrong_rank_order_rejected(self):
        regions = regions_from([[(0, 10)], [(20, 10)]])
        with pytest.raises(ValueError):
            build_overlap_matrix(list(reversed(regions)))

    def test_column_wise_neighbours_only(self):
        views = column_wise_views(M=8, N=64, P=4, R=4)
        w = build_overlap_matrix(regions_from(views))
        for i in range(4):
            expected = sorted(j for j in (i - 1, i + 1) if 0 <= j < 4)
            assert w.neighbors(i) == expected

    def test_as_int_matrix(self):
        views = [[(0, 10)], [(5, 10)]]
        w = build_overlap_matrix(regions_from(views))
        assert w.as_int_matrix().tolist() == [[0, 1], [1, 0]]


class TestPairwiseOverlapRegions:
    def test_exact_ranges(self):
        views = [[(0, 10)], [(6, 10)]]
        overlaps = pairwise_overlap_regions(regions_from(views))
        assert overlaps == {(0, 1): IntervalSet([(6, 10)])}

    def test_non_contiguous_overlap(self):
        views = [[(0, 4), (10, 4)], [(2, 10)]]
        overlaps = pairwise_overlap_regions(regions_from(views))
        assert overlaps[(0, 1)] == IntervalSet([(2, 4), (10, 12)])

    def test_empty_when_disjoint(self):
        views = [[(0, 4)], [(4, 4)]]
        assert pairwise_overlap_regions(regions_from(views)) == {}


class TestOverlappedBytes:
    def test_simple(self):
        views = [[(0, 10)], [(5, 10)]]
        assert overlapped_bytes_total(regions_from(views)) == 5

    def test_triple_overlap_counted_once(self):
        views = [[(0, 10)], [(0, 10)], [(0, 10)]]
        assert overlapped_bytes_total(regions_from(views)) == 10

    def test_column_wise_formula(self):
        M, N, P, R = 8, 64, 4, 4
        views = column_wise_views(M, N, P, R)
        # (P-1) overlap zones of R columns, each column appearing in M rows.
        assert overlapped_bytes_total(regions_from(views)) == (P - 1) * R * M


class TestGroupValidation:
    def test_disjoint_groups_accepted(self):
        views = [[(0, 10)], [(8, 10)], [(16, 10)]]
        regions = regions_from(views)
        assert conflict_free_groups_are_disjoint(regions, [[0, 2], [1]])

    def test_conflicting_group_rejected(self):
        views = [[(0, 10)], [(8, 10)], [(16, 10)]]
        regions = regions_from(views)
        assert not conflict_free_groups_are_disjoint(regions, [[0, 1], [2]])


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

view_lists = st.lists(
    st.lists(st.tuples(st.integers(0, 200), st.integers(1, 30)), max_size=4),
    min_size=1,
    max_size=6,
)


def _dedup_self_overlap(view):
    """Make a raw segment list valid (no self-overlap) by unioning."""
    return IntervalSet.from_segments(view).as_segments()


class TestOverlapProperties:
    @given(view_lists)
    def test_matrix_symmetric_and_consistent(self, raw_views):
        views = [_dedup_self_overlap(v) for v in raw_views]
        regions = regions_from(views)
        w = build_overlap_matrix(regions)
        m = w.matrix
        assert np.array_equal(m, m.T)
        for i in range(len(regions)):
            for j in range(len(regions)):
                if i != j:
                    assert m[i, j] == regions[i].overlaps(regions[j])

    @given(view_lists)
    def test_pairwise_regions_match_matrix(self, raw_views):
        views = [_dedup_self_overlap(v) for v in raw_views]
        regions = regions_from(views)
        w = build_overlap_matrix(regions)
        overlaps = pairwise_overlap_regions(regions)
        assert set(overlaps) == set(w.edges())


class TestLargeScaleEquivalence:
    """The vectorized sweep vs a naive per-pair reference at P=1024.

    The bisection-sweep overlap analysis is what makes the extended rank
    sweeps feasible; this pins it, at a scale where the sweep's bulk code
    paths (global sort, contiguous-run enumeration, grouped clipping) all
    run on thousands of intervals, against the obvious O(P^2) reference.
    """

    P = 1024

    @pytest.fixture(scope="class")
    def regions(self):
        return regions_from(column_wise_views(M=4, N=2 * self.P, P=self.P, R=2))

    def test_matrix_matches_naive_pairwise(self, regions):
        w = build_overlap_matrix(regions).matrix
        coverage = [r.coverage for r in regions]
        expected = np.zeros((self.P, self.P), dtype=np.bool_)
        for i in range(self.P):
            for j in range(i + 1, self.P):
                if coverage[i].overlaps(coverage[j]):
                    expected[i, j] = expected[j, i] = True
        assert np.array_equal(w, expected)
        # Ghost columns of width 2 on 2-wide columns: each interior rank
        # overlaps exactly its two neighbours.
        degrees = w.sum(axis=1)
        assert degrees[0] == degrees[-1] == 1
        assert (degrees[1:-1] == 2).all()

    def test_pairwise_regions_match_naive_intersections(self, regions):
        coverage = [r.coverage for r in regions]
        overlaps = pairwise_overlap_regions(regions)
        w = build_overlap_matrix(regions)
        assert set(overlaps) == set(w.edges())
        for (i, j), got in overlaps.items():
            assert got == coverage[i].intersection(coverage[j])

    def test_overlapped_bytes_match_naive_union(self, regions):
        coverage = [r.coverage for r in regions]
        claimed = IntervalSet.empty()
        seen_twice = IntervalSet.empty()
        for cov in coverage:
            seen_twice = seen_twice.union(claimed.intersection(cov))
            claimed = claimed.union(cov)
        assert overlapped_bytes_total(regions) == seen_twice.total_bytes
