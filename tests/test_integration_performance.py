"""Integration tests on the virtual-time performance model.

These encode the paper's qualitative findings (Section 3.4 and Figure 8):
byte-range locking serialises the column-wise concurrent write and is the
slowest strategy, while the handshaking strategies retain I/O parallelism.
The assertions use generous margins because thread scheduling makes the
virtual-time results mildly nondeterministic, exactly as repeated runs on a
real machine vary.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_column_wise_experiment
from repro.core.executor import AtomicWriteExecutor
from repro.core.strategies import GraphColoringStrategy, LockingStrategy, RankOrderingStrategy
from repro.fs import ParallelFileSystem, xfs_config
from repro.patterns.partition import column_wise_views


# A mid-size workload: 64 rows x 32768 columns, large enough that transfer
# time dominates the fixed per-request latencies.
M, N, P, R = 64, 32768, 8, 4


def bandwidth(machine: str, strategy: str, nprocs: int = P) -> float:
    record = run_column_wise_experiment(
        machine, M, N, nprocs, strategy, array_label="perf", verify=True
    )
    assert record.atomic_ok, f"{strategy} on {machine} lost atomicity"
    return record.bandwidth_mb_per_s


class TestStrategyOrdering:
    @pytest.mark.parametrize("machine", ["XFS", "GPFS"])
    def test_locking_is_slowest(self, machine):
        """Figure 8: file locking gives the worst bandwidth of the three."""
        lock_bw = bandwidth(machine, "locking")
        color_bw = bandwidth(machine, "graph-coloring")
        rank_bw = bandwidth(machine, "rank-ordering")
        assert lock_bw < color_bw
        assert lock_bw < rank_bw

    @pytest.mark.parametrize("machine", ["XFS", "GPFS", "Cplant"])
    def test_rank_ordering_at_least_matches_coloring(self, machine):
        """Figure 8: in most cases rank ordering out-performs graph coloring;
        we assert it is never significantly worse."""
        color_bw = bandwidth(machine, "graph-coloring")
        rank_bw = bandwidth(machine, "rank-ordering")
        assert rank_bw >= 0.85 * color_bw

    def test_locking_does_not_scale_with_processes(self):
        """Section 3.4: once the file-extent locks serialise the writes,
        adding processes does not increase the locking strategy's bandwidth."""
        bw4 = bandwidth("XFS", "locking", nprocs=4)
        bw16 = bandwidth("XFS", "locking", nprocs=16)
        assert bw16 <= bw4 * 1.5

    def test_rank_ordering_benefits_from_more_processes(self):
        """The handshaking strategies keep I/O parallelism: for the large
        (transfer-bound) array, rank ordering's bandwidth holds up or improves
        as processes are added, while locking's collapses."""
        big_N = 262144  # the paper's 1 GB case (row-scaled)
        def bw(strategy, nprocs):
            record = run_column_wise_experiment(
                "XFS", M, big_N, nprocs, strategy, array_label="1GB", verify=False
            )
            return record.bandwidth_mb_per_s

        rank4 = bw("rank-ordering", 4)
        rank16 = bw("rank-ordering", 16)
        lock16 = bw("locking", 16)
        assert rank16 > 2.0 * lock16
        assert rank16 >= 0.8 * rank4


class TestMechanismDiagnostics:
    def test_locking_serialises_in_virtual_time(self):
        """Under locking the makespan approaches the *sum* of per-rank write
        times; under rank ordering it approaches the *maximum*."""
        views = column_wise_views(M, N, 4, R)

        def run(strategy):
            fs = ParallelFileSystem(xfs_config())
            executor = AtomicWriteExecutor(fs, strategy, "perf.dat")
            return executor.run(4, lambda rank, _P: views[rank])

        locking = run(LockingStrategy())
        ordering = run(RankOrderingStrategy())
        assert locking.makespan > 2.0 * ordering.makespan

    def test_lock_waits_recorded(self):
        record = run_column_wise_experiment(
            "XFS", M, N, 4, "locking", array_label="perf", verify=False
        )
        assert record.lock_waits >= 1

    def test_coloring_pays_two_phases(self):
        views = column_wise_views(M, N, 4, R)
        fs = ParallelFileSystem(xfs_config())
        executor = AtomicWriteExecutor(fs, GraphColoringStrategy(), "phases.dat")
        result = executor.run(4, lambda rank, _P: views[rank])
        assert all(o.phases == 2 for o in result.outcomes)

    def test_rank_ordering_reduces_io_volume(self):
        record = run_column_wise_experiment(
            "GPFS", M, N, 8, "rank-ordering", array_label="perf", verify=False
        )
        assert record.bytes_written < record.bytes_requested
        assert record.bytes_requested - record.bytes_written == record.overlap_bytes

    def test_enfs_skips_locking(self):
        from repro.bench.harness import run_figure8_grid

        table = run_figure8_grid(
            machines=["Cplant"],
            array_labels=["32MB"],
            process_counts=[4],
            row_scale=256,
            verify=False,
        )
        strategies = {r.strategy for r in table}
        assert "locking" not in strategies
        assert strategies == {
            "graph-coloring",
            "rank-ordering",
            "two-phase",
            "two-phase-hier",
            "auto",
        }
