"""Tests for FileRegionSet (flattened per-process file views)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalSet
from repro.core.regions import FileRegionSet, build_region_sets


class TestConstruction:
    def test_basic(self):
        r = FileRegionSet(0, [(0, 10), (20, 10)])
        assert r.total_bytes == 20
        assert r.num_segments == 2

    def test_zero_length_segments_dropped(self):
        r = FileRegionSet(1, [(0, 10), (15, 0), (20, 5)])
        assert r.segments == ((0, 10), (20, 5))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FileRegionSet(0, [(-1, 5)])
        with pytest.raises(ValueError):
            FileRegionSet(0, [(0, -5)])

    def test_self_overlap_rejected(self):
        # A single MPI request may not write the same byte twice.
        with pytest.raises(ValueError):
            FileRegionSet(0, [(0, 10), (5, 10)])

    def test_empty_region(self):
        r = FileRegionSet(0, [])
        assert r.is_empty()
        assert r.extent() is None
        assert r.extent_bytes() == 0

    def test_build_region_sets_assigns_ranks(self):
        regions = build_region_sets([[(0, 5)], [(5, 5)], [(10, 5)]])
        assert [r.rank for r in regions] == [0, 1, 2]


class TestQueries:
    def test_contiguous_detection(self):
        assert FileRegionSet(0, [(0, 10)]).is_contiguous()
        assert FileRegionSet(0, [(0, 10), (10, 5)]).is_contiguous()
        assert not FileRegionSet(0, [(0, 10), (20, 5)]).is_contiguous()

    def test_extent(self):
        r = FileRegionSet(0, [(10, 5), (100, 10)])
        assert r.extent() == Interval(10, 110)
        assert r.extent_bytes() == 100

    def test_overlaps(self):
        a = FileRegionSet(0, [(0, 10), (20, 10)])
        b = FileRegionSet(1, [(25, 10)])
        c = FileRegionSet(2, [(10, 10)])
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_overlap_bytes(self):
        a = FileRegionSet(0, [(0, 10), (20, 10)])
        b = FileRegionSet(1, [(5, 20)])
        assert a.overlap_bytes(b) == 10  # [5,10) and [20,25)

    def test_overlap_region(self):
        a = FileRegionSet(0, [(0, 10)])
        b = FileRegionSet(1, [(5, 10)])
        assert a.overlap_region(b) == IntervalSet([(5, 10)])


class TestTrimming:
    def test_trimmed_removes_range(self):
        r = FileRegionSet(0, [(0, 10), (20, 10)])
        trimmed = r.trimmed(IntervalSet([(5, 25)]))
        assert trimmed.segments == ((0, 5), (25, 5))
        assert trimmed.rank == 0

    def test_trimmed_noop_for_disjoint(self):
        r = FileRegionSet(0, [(0, 10)])
        assert r.trimmed(IntervalSet([(50, 60)])).segments == r.segments

    def test_trimmed_everything(self):
        r = FileRegionSet(0, [(0, 10)])
        assert r.trimmed(IntervalSet([(0, 100)])).is_empty()

    def test_restricted_to(self):
        r = FileRegionSet(0, [(0, 10), (20, 10)])
        kept = r.restricted_to(IntervalSet([(5, 25)]))
        assert kept.segments == ((5, 5), (20, 5))

    def test_trim_preserves_segment_order(self):
        # Segments stay in data-stream order even when split.
        r = FileRegionSet(0, [(100, 10), (0, 10)])
        trimmed = r.trimmed(IntervalSet([(105, 106)]))
        assert trimmed.segments == ((100, 5), (106, 4), (0, 10))


class TestBufferMapping:
    def test_buffer_map(self):
        r = FileRegionSet(0, [(100, 4), (200, 6)])
        assert r.buffer_map() == [(0, 100, 4), (4, 200, 6)]

    def test_buffer_map_restricted(self):
        r = FileRegionSet(0, [(100, 4), (200, 6)])
        keep = IntervalSet([(102, 203)])
        # keeps [102,104) from segment 1 (buffer offset 2) and [200,203) from
        # segment 2 (buffer offset 4).
        assert r.buffer_map_restricted(keep) == [(2, 102, 2), (4, 200, 3)]

    def test_buffer_map_restricted_full(self):
        r = FileRegionSet(0, [(0, 5), (10, 5)])
        assert r.buffer_map_restricted(r.coverage) == r.buffer_map()

    def test_buffer_map_restricted_empty(self):
        r = FileRegionSet(0, [(0, 5)])
        assert r.buffer_map_restricted(IntervalSet.empty()) == []


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


@st.composite
def disjoint_views(draw):
    """Random non-self-overlapping segment lists."""
    n = draw(st.integers(0, 8))
    offsets = sorted(draw(st.lists(st.integers(0, 400), min_size=n, max_size=n, unique=True)))
    segments = []
    prev_end = -1
    for off in offsets:
        start = max(off, prev_end + 1)
        length = draw(st.integers(1, 20))
        segments.append((start, length))
        prev_end = start + length
    return segments


class TestRegionProperties:
    @given(disjoint_views())
    def test_total_bytes_matches_coverage(self, segments):
        r = FileRegionSet(0, segments)
        assert r.total_bytes == r.coverage.total_bytes

    @given(disjoint_views(), disjoint_views())
    def test_trim_removes_all_overlap(self, a_segs, b_segs):
        a = FileRegionSet(0, a_segs)
        b = FileRegionSet(1, b_segs)
        trimmed = a.trimmed(b.coverage)
        assert not trimmed.overlaps(b)
        # Trimmed view is a subset of the original.
        assert a.coverage.covers(trimmed.coverage)

    @given(disjoint_views())
    def test_buffer_map_contiguous_stream(self, segments):
        r = FileRegionSet(0, segments)
        expected_buf = 0
        for buf_off, _file_off, length in r.buffer_map():
            assert buf_off == expected_buf
            expected_buf += length
        assert expected_buf == r.total_bytes
