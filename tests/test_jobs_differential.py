"""Differential test: one job through the scheduler == the direct path.

A single-job :class:`~repro.jobs.MultiTenantScheduler` run must be
*indistinguishable* from the same workload driven directly by
:class:`~repro.core.executor.AtomicWriteExecutor`: identical final bytes,
identical per-byte writer provenance, identical virtual makespan and
identical per-rank outcome accounting.  This pins the tenancy layer as a
pure re-packaging of the existing engine path — rank offsets, per-job
clocks and the provenance base must all collapse to the identity for one
job arriving at time zero.
"""

from __future__ import annotations

import pytest

from repro.bench.adaptive import fingerprint_of
from repro.bench.machines import IBM_SP
from repro.core.executor import AtomicWriteExecutor
from repro.core.registry import default_registry
from repro.fs.filesystem import ParallelFileSystem
from repro.jobs import JobSpec, MultiTenantScheduler
from repro.patterns.partition import views_for_pattern
from repro.patterns.workloads import rank_pattern_bytes

M, N = 16, 256
OVERLAP = 4
FILENAME = "/diff.dat"

#: Every registered atomicity strategy runnable on GPFS, plus the
#: non-atomic baseline — the identity must hold regardless of strategy.
STRATEGIES = [
    name
    for name in default_registry.names()
    if default_registry.supported_on(name, supports_locking=True)
]


def direct_run(strategy_name: str, nprocs: int, pattern: str):
    fs = ParallelFileSystem(IBM_SP.make_fs_config())
    executor = AtomicWriteExecutor(
        fs, default_registry.create(strategy_name), filename=FILENAME
    )
    result = executor.run(
        nprocs,
        lambda rank, n: views_for_pattern(pattern, M, N, n, OVERLAP)[rank],
        rank_pattern_bytes,
    )
    return fs, result


def scheduler_run(strategy_name: str, nprocs: int, pattern: str):
    fs = ParallelFileSystem(IBM_SP.make_fs_config())
    result = MultiTenantScheduler(fs).run(
        [
            JobSpec(
                "solo",
                nprocs=nprocs,
                M=M,
                N=N,
                filename=FILENAME,
                strategy=strategy_name,
                pattern=pattern,
                overlap_columns=OVERLAP,
            )
        ]
    )
    return fs, result


@pytest.mark.parametrize("strategy_name", STRATEGIES)
@pytest.mark.parametrize("nprocs", [4, 8])
def test_single_job_is_identical_to_direct_path(strategy_name, nprocs):
    fs_direct, direct = direct_run(strategy_name, nprocs, "column-wise")
    fs_sched, sched = scheduler_run(strategy_name, nprocs, "column-wise")

    # Byte- and provenance-identity: same final contents, same per-byte
    # winning writer (global ids collapse to local ranks for one job).
    assert fingerprint_of(fs_sched, FILENAME) == fingerprint_of(fs_direct, FILENAME)

    # Same virtual timeline: the scheduler adds no modelled cost of its own.
    job = sched.jobs[0]
    assert job.arrival == 0.0
    assert job.makespan == pytest.approx(direct.makespan, abs=0.0)

    # Same per-rank accounting.
    assert [o.bytes_requested for o in job.outcomes] == [
        o.bytes_requested for o in direct.outcomes
    ]
    assert [o.bytes_written for o in job.outcomes] == [
        o.bytes_written for o in direct.outcomes
    ]


def test_single_job_identity_holds_for_row_wise_pattern():
    fs_direct, direct = direct_run("two-phase", 4, "row-wise")
    fs_sched, sched = scheduler_run("two-phase", 4, "row-wise")
    assert fingerprint_of(fs_sched, FILENAME) == fingerprint_of(fs_direct, FILENAME)
    assert sched.jobs[0].makespan == pytest.approx(direct.makespan, abs=0.0)
