"""Tests for the client cache (read-ahead, write-behind, invalidation)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fs.cache import CachePolicy, ClientCache
from repro.fs.storage import ByteStore


class Backend:
    """A tiny fetch/store backend with operation counters."""

    def __init__(self) -> None:
        self.store_obj = ByteStore()
        self.fetches = 0
        self.stores = 0

    def fetch(self, offset: int, nbytes: int) -> bytes:
        self.fetches += 1
        return self.store_obj.read(offset, nbytes)

    def store(self, offset: int, data: bytes) -> None:
        self.stores += 1
        self.store_obj.write(offset, data, writer=0)


def make_cache(**policy_kwargs):
    backend = Backend()
    policy = CachePolicy(**{"page_size": 16, "max_pages": 8, "read_ahead_pages": 0,
                            "write_behind": True, **policy_kwargs})
    return backend, ClientCache(backend.fetch, backend.store, policy)


class TestPolicyValidation:
    def test_invalid_policies(self):
        with pytest.raises(ValueError):
            CachePolicy(page_size=0)
        with pytest.raises(ValueError):
            CachePolicy(max_pages=0)
        with pytest.raises(ValueError):
            CachePolicy(read_ahead_pages=-1)


class TestReadCaching:
    def test_read_hits_after_miss(self):
        backend, cache = make_cache()
        backend.store_obj.write(0, b"A" * 64, writer=9)
        assert cache.read(0, 8) == b"A" * 8
        misses_after_first = cache.stats.misses
        assert cache.read(4, 8) == b"A" * 8
        assert cache.stats.misses == misses_after_first  # second read is a hit
        assert cache.stats.hits >= 1

    def test_read_spanning_pages(self):
        backend, cache = make_cache()
        backend.store_obj.write(0, bytes(range(64)), writer=0)
        assert cache.read(10, 20) == bytes(range(10, 30))

    def test_read_ahead_prefetches(self):
        backend, cache = make_cache(read_ahead_pages=2)
        backend.store_obj.write(0, b"Z" * 256, writer=0)
        cache.read(0, 4)
        # Page 0 fetched on demand plus 2 read-ahead pages.
        assert backend.fetches == 3
        assert cache.stats.read_ahead_pages == 2
        # Reading inside the prefetched pages costs no further fetches.
        cache.read(20, 8)
        assert backend.fetches == 3

    def test_stale_read_without_invalidation(self):
        """Cached data hides server updates — the problem the paper's
        handshaking protocol must solve with explicit invalidation."""
        backend, cache = make_cache()
        backend.store_obj.write(0, b"old!", writer=0)
        assert cache.read(0, 4) == b"old!"
        backend.store_obj.write(0, b"new!", writer=1)
        assert cache.read(0, 4) == b"old!"       # stale
        cache.invalidate()
        assert cache.read(0, 4) == b"new!"        # fresh after invalidation

    def test_zero_length_read(self):
        _, cache = make_cache()
        assert cache.read(5, 0) == b""

    def test_negative_rejected(self):
        _, cache = make_cache()
        with pytest.raises(ValueError):
            cache.read(-1, 4)
        with pytest.raises(ValueError):
            cache.write(-1, b"x")


class TestWriteBehind:
    def test_write_deferred_until_flush(self):
        backend, cache = make_cache()
        cache.write(0, b"hello")
        assert backend.stores == 0
        assert cache.dirty_bytes() == 5
        flushed = cache.flush()
        assert flushed == 1
        assert backend.stores == 1
        assert backend.store_obj.read(0, 5) == b"hello"
        assert cache.dirty_bytes() == 0

    def test_write_through_mode(self):
        backend, cache = make_cache(write_behind=False)
        cache.write(0, b"hello")
        assert backend.stores == 1
        assert backend.store_obj.read(0, 5) == b"hello"

    def test_flush_only_dirty_bytes(self):
        """Write-back must not write stale neighbouring bytes — that would
        itself clobber another process's data."""
        backend, cache = make_cache()
        backend.store_obj.write(0, b"X" * 16, writer=5)
        cache.write(4, b"ab")          # dirty only bytes 4..6 of page 0
        backend.store_obj.write(0, b"Y" * 16, writer=6)  # peer update meanwhile
        cache.flush()
        data = backend.store_obj.read(0, 16)
        assert data == b"YYYYabYYYYYYYYYY"

    def test_read_sees_own_pending_writes(self):
        backend, cache = make_cache()
        backend.store_obj.write(0, b"......", writer=0)
        cache.write(2, b"XY")
        assert cache.read(0, 6) == b"..XY.."

    def test_write_spanning_pages(self):
        backend, cache = make_cache()
        cache.write(12, b"A" * 10)     # spans pages 0 and 1
        cache.flush()
        assert backend.store_obj.read(12, 10) == b"A" * 10

    def test_empty_write_noop(self):
        backend, cache = make_cache()
        cache.write(0, b"")
        assert cache.dirty_bytes() == 0


class TestEviction:
    def test_lru_eviction_writes_back_dirty(self):
        backend, cache = make_cache(max_pages=2)
        cache.write(0, b"aaaa")         # page 0
        cache.write(16, b"bbbb")        # page 1
        cache.write(32, b"cccc")        # page 2 -> evicts page 0 (dirty)
        assert cache.cached_pages <= 2
        assert cache.stats.evictions >= 1
        assert backend.store_obj.read(0, 4) == b"aaaa"

    def test_invalidate_flushes_first(self):
        backend, cache = make_cache()
        cache.write(0, b"data")
        cache.invalidate()
        assert backend.store_obj.read(0, 4) == b"data"
        assert cache.cached_pages == 0
        assert cache.stats.invalidations == 1


class TestCacheProperty:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 120), st.binary(min_size=1, max_size=20)),
                    max_size=25))
    def test_cache_consistent_with_flat_model(self, ops):
        """Interleaved reads and writes through the cache always observe the
        same bytes as a reference flat buffer, provided reads of data written
        by *this* client (the only writer) need no invalidation."""
        backend, cache = make_cache(page_size=16, max_pages=4, read_ahead_pages=1)
        reference = bytearray(256)
        for is_write, offset, data in ops:
            if is_write:
                cache.write(offset, data)
                reference[offset : offset + len(data)] = data
            else:
                nbytes = len(data)
                assert cache.read(offset, nbytes) == bytes(reference[offset : offset + nbytes])
        cache.flush()
        size = backend.store_obj.size
        assert backend.store_obj.read(0, size) == bytes(reference[:size])
