"""Post-hoc verification of atomicity guarantees."""

from .atomicity import (
    AtomicityReport,
    Violation,
    check_coverage,
    check_mpi_atomicity,
    check_posix_call_atomicity,
)

__all__ = [
    "AtomicityReport",
    "Violation",
    "check_mpi_atomicity",
    "check_posix_call_atomicity",
    "check_coverage",
]
