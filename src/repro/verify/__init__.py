"""Post-hoc verification of atomicity guarantees."""

from .atomicity import (
    AtomicityReport,
    ReadObservation,
    Violation,
    check_coverage,
    check_mpi_atomicity,
    check_posix_call_atomicity,
    check_read_atomicity,
)

__all__ = [
    "AtomicityReport",
    "ReadObservation",
    "Violation",
    "check_mpi_atomicity",
    "check_posix_call_atomicity",
    "check_coverage",
    "check_read_atomicity",
]
