"""Post-hoc verification of atomicity guarantees."""

from .atomicity import (
    AtomicityReport,
    ReadObservation,
    StreamTrace,
    Violation,
    check_coverage,
    check_mpi_atomicity,
    check_posix_call_atomicity,
    check_read_atomicity,
    check_stream_atomicity,
    rekey_regions,
)

__all__ = [
    "AtomicityReport",
    "ReadObservation",
    "StreamTrace",
    "Violation",
    "check_mpi_atomicity",
    "check_posix_call_atomicity",
    "check_coverage",
    "check_read_atomicity",
    "check_stream_atomicity",
    "rekey_regions",
]
