"""Post-hoc verification of MPI and POSIX atomicity.

After a concurrent overlapping write the library can *prove* whether the MPI
atomic-mode guarantee held, thanks to the per-byte writer provenance kept by
:class:`repro.fs.storage.ByteStore`:

* **MPI atomicity** (Section 2.2): for every region where two processes'
  file views overlap, all bytes of that overlapped region must have been
  produced by a single process.  :func:`check_mpi_atomicity` walks every
  pairwise overlap and reports any region whose bytes mix writers — the
  "interleaved" outcome of Figure 2's non-atomic mode.

* **POSIX per-call atomicity** (Section 2.1): each individual contiguous
  write call must appear entirely or not at all.  The substrate enforces this
  by construction; :func:`check_posix_call_atomicity` verifies it anyway by
  checking that every *contiguous written run* within a single-writer segment
  has a single provenance (useful as a sanity check on the substrate itself
  and in the failure-injection tests).

* **Coverage**: every byte some process intended to write was written, and
  was written by one of the processes whose view covers it
  (:func:`check_coverage`).

* **Read atomicity**: every collective read must observe, within each
  elementary overlap segment, a value that some *single* committed write
  produced — never a mixture of two writers' data, and never a mixture of a
  writer's data and the pre-write state (:func:`check_read_atomicity`).  A
  violation is a *torn read*: the reader saw a file state that no sequential
  ordering of the write calls could have produced.  Readers record what they
  observed as :class:`ReadObservation` records (the data stream a collective
  read returned, plus the view it was read through).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Collection, List, Optional, Sequence, Tuple

import numpy as np

from ..core.intervals import Interval, IntervalSet, clip_sorted_runs
from ..core.regions import FileRegionSet
from ..fs.storage import NO_WRITER, ByteStore

__all__ = [
    "Violation",
    "AtomicityReport",
    "ReadObservation",
    "StreamTrace",
    "check_mpi_atomicity",
    "check_posix_call_atomicity",
    "check_coverage",
    "check_read_atomicity",
    "check_stream_atomicity",
    "rekey_regions",
]


@dataclass(frozen=True)
class Violation:
    """One detected violation."""

    kind: str
    interval: Interval
    detail: str


@dataclass
class AtomicityReport:
    """Result of a verification pass."""

    ok: bool
    violations: List[Violation] = field(default_factory=list)
    overlap_regions_checked: int = 0
    overlapped_bytes: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.ok:
            return (
                f"atomic: OK ({self.overlap_regions_checked} overlap regions, "
                f"{self.overlapped_bytes} overlapped bytes)"
            )
        return (
            f"atomic: VIOLATED in {len(self.violations)} region(s); first: "
            f"{self.violations[0].detail}"
        )


def _pairwise_overlaps(regions: Sequence[FileRegionSet]) -> List[Tuple[int, int, IntervalSet]]:
    out: List[Tuple[int, int, IntervalSet]] = []
    n = len(regions)
    for i in range(n):
        for j in range(i + 1, n):
            inter = regions[i].overlap_region(regions[j])
            if not inter.is_empty():
                out.append((i, j, inter))
    return out


def _elementary_segments(
    regions: Sequence[FileRegionSet],
) -> List[Tuple[Interval, Tuple[int, ...]]]:
    """Split the file into maximal runs with a constant set of covering ranks.

    Returns ``(interval, covering_ranks)`` pairs, only for runs covered by at
    least one rank.  Within such a run every byte is written (if at all) under
    identical overlap conditions, which is the granularity at which the MPI
    atomicity condition must be evaluated.

    Computed with one sweep over the file-ordered interval boundaries while
    maintaining the active covering-rank set, so the cost is
    ``O(E log E + R)`` for ``E`` intervals and ``R`` emitted run entries —
    independent of the process count per boundary, which keeps verification
    of thousand-rank writes in the noise.
    """
    events: List[Tuple[int, int, int]] = []
    for region in regions:
        for iv in region.coverage:
            events.append((iv.start, 1, region.rank))
            events.append((iv.stop, 0, region.rank))
    events.sort()
    out: List[Tuple[Interval, Tuple[int, ...]]] = []
    active: set = set()
    prev: int | None = None
    i = 0
    while i < len(events):
        pos = events[i][0]
        if prev is not None and active and pos > prev:
            out.append((Interval(prev, pos), tuple(sorted(active))))
        while i < len(events) and events[i][0] == pos:
            _, is_start, rank = events[i]
            if is_start:
                active.add(rank)
            else:
                active.discard(rank)
            i += 1
        prev = pos
    return out


def _has_cycle(edges: set, nodes: set) -> bool:
    """Cycle detection (Kahn's algorithm) on a small precedence digraph."""
    succ: dict = {n: set() for n in nodes}
    indeg: dict = {n: 0 for n in nodes}
    for a, b in edges:
        if b not in succ[a]:
            succ[a].add(b)
            indeg[b] += 1
    queue = [n for n in nodes if indeg[n] == 0]
    visited = 0
    while queue:
        n = queue.pop()
        visited += 1
        for m in succ[n]:
            indeg[m] -= 1
            if indeg[m] == 0:
                queue.append(m)
    return visited != len(nodes)


def check_mpi_atomicity(store: ByteStore, regions: Sequence[FileRegionSet]) -> AtomicityReport:
    """Verify the MPI atomic-mode guarantee for a completed concurrent write.

    MPI atomic mode requires the outcome of concurrent overlapping writes to
    be *as if* the requests executed in some sequential order.  The checker
    verifies exactly that:

    1. split the file into elementary runs with a constant covering-rank set;
    2. within any run covered by two or more ranks, all bytes must carry one
       writer, and that writer must be one of the covering ranks;
    3. across runs, "writer *w* beat rank *x* here" induces the ordering
       constraint *x before w*; the constraints of all runs together must be
       satisfiable by a single total order (no cycles).  Alternating
       ownership of the rows of one overlapped region — Figure 2's
       "interleaved" outcome — produces a cycle and is reported.
    """
    report = AtomicityReport(ok=True)
    order_edges: set = set()
    participants: set = set()
    for interval, covering in _elementary_segments(regions):
        if len(covering) < 2:
            continue
        report.overlap_regions_checked += 1
        report.overlapped_bytes += interval.length
        participants.update(covering)
        writers = store.distinct_writers(interval.start, interval.length)
        if not writers:
            continue  # unwritten overlap: reported by check_coverage
        foreign = [w for w in writers if w not in covering]
        for w in foreign:
            report.ok = False
            report.violations.append(
                Violation(
                    kind="foreign-writer",
                    interval=interval,
                    detail=(
                        f"bytes [{interval.start},{interval.stop}) overlapped by ranks "
                        f"{list(covering)} were written by rank {w} whose view does not "
                        f"cover them"
                    ),
                )
            )
        own_writers = [w for w in writers if w in covering]
        if len(own_writers) > 1:
            report.ok = False
            report.violations.append(
                Violation(
                    kind="interleaved",
                    interval=interval,
                    detail=(
                        f"bytes [{interval.start},{interval.stop}) overlapped by ranks "
                        f"{list(covering)} contain data from writers {sorted(own_writers)}"
                    ),
                )
            )
        elif len(own_writers) == 1:
            winner = own_writers[0]
            for other in covering:
                if other != winner:
                    order_edges.add((other, winner))
    if participants and _has_cycle(order_edges, participants):
        report.ok = False
        report.violations.append(
            Violation(
                kind="interleaved",
                interval=Interval(0, 0),
                detail=(
                    "no sequential ordering of the write requests explains the file "
                    "contents: different parts of the overlapped regions were won by "
                    "conflicting writers (interleaving across an overlapped region)"
                ),
            )
        )
    return report


def check_posix_call_atomicity(
    store: ByteStore, written_calls: Sequence[Tuple[int, int, int]]
) -> AtomicityReport:
    """Verify that no *individual* write call was torn.

    ``written_calls`` is a sequence of ``(writer, offset, length)`` records of
    calls whose target range was written by no other process; each such range
    must carry a single provenance equal to the writer.  (Ranges also written
    by others are covered by :func:`check_mpi_atomicity` instead.)
    """
    report = AtomicityReport(ok=True)
    for writer, offset, length in written_calls:
        writers = store.distinct_writers(offset, length)
        if list(writers) != [writer]:
            report.ok = False
            report.violations.append(
                Violation(
                    kind="torn-call",
                    interval=Interval(offset, offset + length),
                    detail=(
                        f"write call by {writer} at [{offset},{offset + length}) "
                        f"shows provenance {list(writers)}"
                    ),
                )
            )
    return report


@dataclass(frozen=True)
class ReadObservation:
    """What one rank's collective read returned.

    ``data`` is the contiguous data stream the read delivered, in the view's
    data-stream order (``region.total_bytes`` bytes).
    """

    rank: int
    region: FileRegionSet
    data: bytes


class _StreamImage:
    """Random access into a (region, stream) pair by *file* offset.

    Both a writer's request and a reader's observation are a flattened view
    plus a contiguous data stream; this index answers "which bytes does this
    stream hold for file range [start, stop)?" in O(log S + pieces touched).
    """

    def __init__(self, region: FileRegionSet, data: bytes) -> None:
        self.pieces = sorted(
            (file_off, buf_off, length)
            for buf_off, file_off, length in region.buffer_map()
        )
        self.starts = [p[0] for p in self.pieces]
        self.stops = [off + length for off, _, length in self.pieces]
        self.data = data

    def bytes_for(self, start: int, stop: int) -> Optional[bytes]:
        """The stream's bytes for file range ``[start, stop)``; ``None``
        unless the view covers the range completely."""
        out = bytearray(stop - start)
        filled = 0
        for lo, hi, idx in clip_sorted_runs(self.starts, self.stops, start, stop):
            off, buf, _ = self.pieces[idx]
            out[lo - start : hi - start] = self.data[buf + lo - off : buf + hi - off]
            filled += hi - lo
        return bytes(out) if filled == stop - start else None


def check_read_atomicity(
    observations: Sequence[ReadObservation],
    write_regions: Sequence[FileRegionSet],
    writer_data: Sequence[bytes],
    baseline: Optional[bytes] = None,
    committed: Optional[Collection[int]] = None,
) -> AtomicityReport:
    """Verify that no collective read was *torn* by concurrent writes.

    MPI atomic mode requires every read to be serialisable against the
    concurrent write requests: within each elementary file segment with a
    constant set of covering writers, the bytes a reader observed must be
    exactly what a *single* committed state provides — one covering writer's
    data for that segment, or the pre-write ``baseline`` (zeros for a fresh
    file).  A mixture of two writers — or of a writer and the baseline —
    within one segment means the reader saw a state no sequential ordering
    of the write calls could produce (a torn read); an observation outside
    every writer's view that differs from the baseline means the reader was
    served stale or corrupt data (e.g. by an unflushed peer cache).

    Parameters
    ----------
    observations:
        One record per collective read performed.
    write_regions:
        The concurrent writers' (untrimmed) file views.
    writer_data:
        ``writer_data[i]`` is the contiguous stream ``write_regions[i]``
        wrote, in view order.
    baseline:
        Snapshot of the file before the writes (defaults to all-zero bytes,
        the state of a freshly created file).
    committed:
        Ranks whose write *requests were completed* — ``Wait`` (or a true
        ``Test``) returned — before the reads began.  A nonblocking write is
        only readable-after via ``Wait``: while it is in flight a reader may
        legitimately observe the pre-write state, but once waited-on its
        data must be visible, so for any segment covered by a committed
        writer the baseline stops being an admissible observation (a reader
        returning it was served stale data).  Default: no write is known
        committed, i.e. every write is treated as potentially in flight.
    """
    report = AtomicityReport(ok=True)
    committed_set = frozenset(committed) if committed is not None else frozenset()
    writers = {
        region.rank: _StreamImage(region, data)
        for region, data in zip(write_regions, writer_data)
    }
    segments = _elementary_segments(write_regions)
    seg_starts = [iv.start for iv, _ in segments]

    def baseline_for(start: int, stop: int) -> bytes:
        if baseline is None:
            return bytes(stop - start)
        chunk = baseline[start:stop]
        return chunk + bytes(stop - start - len(chunk))

    for obs in observations:
        image = _StreamImage(obs.region, obs.data)
        for piece in obs.region.coverage:
            # Split the observed range at every boundary where the covering
            # writer set changes; check each sub-range independently.
            cuts: List[Tuple[Interval, Tuple[int, ...]]] = []
            idx = max(bisect_right(seg_starts, piece.start) - 1, 0) if segments else 0
            pos = piece.start
            while idx < len(segments):
                seg, covering = segments[idx]
                if seg.start >= piece.stop:
                    break
                lo = max(piece.start, seg.start)
                hi = min(piece.stop, seg.stop)
                if lo < hi:
                    if pos < lo:
                        cuts.append((Interval(pos, lo), ()))
                    cuts.append((Interval(lo, hi), covering))
                    pos = hi
                idx += 1
            if pos < piece.stop:
                cuts.append((Interval(pos, piece.stop), ()))
            for interval, covering in cuts:
                observed = image.bytes_for(interval.start, interval.stop)
                if observed is None:  # pragma: no cover - coverage is exact
                    continue
                report.overlap_regions_checked += 1
                if len(covering) >= 2:
                    report.overlapped_bytes += interval.length
                # The baseline is admissible only while every covering write
                # may still be in flight; a committed (waited-on) writer's
                # data must have replaced it.
                if committed_set and committed_set.intersection(covering):
                    candidates = []
                else:
                    candidates = [baseline_for(interval.start, interval.stop)]
                for w in covering:
                    expected = writers[w].bytes_for(interval.start, interval.stop)
                    if expected is not None:
                        candidates.append(expected)
                if any(observed == c for c in candidates):
                    continue
                report.ok = False
                kind = "torn-read" if covering else "stale-read"
                who = (
                    f"writers {list(covering)}" if covering else "no covering writer"
                )
                report.violations.append(
                    Violation(
                        kind=kind,
                        interval=interval,
                        detail=(
                            f"rank {obs.rank} read [{interval.start},{interval.stop}) "
                            f"({who}) and observed bytes matching no single "
                            f"committed write"
                        ),
                    )
                )
    return report


def rekey_regions(regions: Sequence[FileRegionSet], base: int) -> List[FileRegionSet]:
    """Rebase region ranks into a global keyspace: rank ``r`` becomes
    ``base + r``.

    Coupled pipeline groups and multi-tenant jobs each number their ranks
    from zero; before their views meet in one cross-group verification the
    ranks must be disjoint, using the same per-group base their I/O carried
    as provenance (the ``provenance_base`` Info hint /
    ``FSClient.provenance_base``).
    """
    return [FileRegionSet(base + region.rank, region.segments) for region in regions]


@dataclass(frozen=True)
class StreamTrace:
    """One cross-group data stream: concurrent writers plus the readers
    racing them on a single file.

    All ranks — in ``write_regions``, ``committed`` and the observations'
    ``rank`` fields — must already live in one *global* keyspace (see
    :func:`rekey_regions`): a producer group and a consumer group each
    number their ranks from zero, so their traces must be rebased with the
    same ``provenance_base`` their file clients carried before they can
    meet in one trace.
    """

    #: Which stream this trace belongs to (e.g. ``"step3:/ckpt.s3.dat"``);
    #: prefixed to every violation so a multi-stream report stays readable.
    stream_id: str
    #: The concurrent writers' (untrimmed) globally-rekeyed file views.
    write_regions: Sequence[FileRegionSet]
    #: ``writer_data[i]`` is the stream ``write_regions[i]`` wrote.
    writer_data: Sequence[bytes]
    #: What the racing readers returned.
    observations: Sequence[ReadObservation]
    #: Global writer ids whose writes completed before the reads began
    #: (stale-read detection); ``None`` treats every write as in flight.
    committed: Optional[Collection[int]] = None
    #: Pre-write file snapshot (defaults to zeros, a fresh file).
    baseline: Optional[bytes] = None


def check_stream_atomicity(streams: Sequence[StreamTrace]) -> AtomicityReport:
    """Verify read atomicity across cross-group / cross-job streams.

    Each :class:`StreamTrace` is an independent serialisability question —
    one file (or one per-step checkpoint) with its own writer set, reader
    set and commit front — so each goes through
    :func:`check_read_atomicity` on its own; the verdicts are merged into
    one report whose violations carry the originating stream's id.  This is
    the entry point the coupled-pipeline runner and the multi-tenant
    scheduler share: both reduce "did any consumer ever see a torn or stale
    byte?" to a list of globally-rekeyed stream traces.
    """
    merged = AtomicityReport(ok=True)
    for stream in streams:
        report = check_read_atomicity(
            stream.observations,
            stream.write_regions,
            stream.writer_data,
            baseline=stream.baseline,
            committed=stream.committed,
        )
        merged.overlap_regions_checked += report.overlap_regions_checked
        merged.overlapped_bytes += report.overlapped_bytes
        if not report.ok:
            merged.ok = False
            merged.violations.extend(
                Violation(
                    kind=v.kind,
                    interval=v.interval,
                    detail=f"[stream {stream.stream_id}] {v.detail}",
                )
                for v in report.violations
            )
    return merged


def check_coverage(store: ByteStore, regions: Sequence[FileRegionSet]) -> AtomicityReport:
    """Verify that every byte covered by some view was written by a covering rank.

    This catches the failure mode where a coordination strategy drops data —
    e.g. a rank-ordering implementation that trims too much and leaves holes.
    """
    report = AtomicityReport(ok=True)
    for region in regions:
        for iv in region.coverage:
            writers = store.writers(iv.start, iv.length)
            unwritten = int(np.count_nonzero(writers == NO_WRITER))
            if unwritten:
                report.ok = False
                report.violations.append(
                    Violation(
                        kind="unwritten",
                        interval=iv,
                        detail=(
                            f"{unwritten} byte(s) of [{iv.start},{iv.stop}) covered by rank "
                            f"{region.rank}'s view were never written"
                        ),
                    )
                )
                continue
            covering = {r.rank for r in regions if r.coverage.overlaps(IntervalSet.single(iv.start, iv.stop))}
            foreign = {int(w) for w in np.unique(writers)} - covering
            if foreign:
                report.ok = False
                report.violations.append(
                    Violation(
                        kind="foreign-writer",
                        interval=iv,
                        detail=(
                            f"bytes of [{iv.start},{iv.stop}) were written by rank(s) "
                            f"{sorted(foreign)} whose views do not cover them"
                        ),
                    )
                )
    return report
