"""Workload and partitioning generators (row/column/block-block, ghost cells)."""

from .partition import (
    SubarraySpec,
    block_block_spec,
    block_block_views,
    column_wise_spec,
    column_wise_views,
    row_wise_spec,
    row_wise_views,
    spec_to_segments,
)
from .ghost import GhostDecomposition
from .workloads import (
    PAPER_ARRAY_SIZES,
    PAPER_OVERLAP_COLUMNS,
    PAPER_PROCESS_COUNTS,
    CheckpointRestartWorkload,
    ColumnWiseWorkload,
    rank_fill_bytes,
    rank_pattern_bytes,
)

__all__ = [
    "SubarraySpec",
    "column_wise_spec",
    "row_wise_spec",
    "block_block_spec",
    "column_wise_views",
    "row_wise_views",
    "block_block_views",
    "spec_to_segments",
    "GhostDecomposition",
    "ColumnWiseWorkload",
    "CheckpointRestartWorkload",
    "PAPER_ARRAY_SIZES",
    "PAPER_PROCESS_COUNTS",
    "PAPER_OVERLAP_COLUMNS",
    "rank_fill_bytes",
    "rank_pattern_bytes",
]
