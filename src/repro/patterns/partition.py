"""2-D array partitioning patterns with ghost overlap (Figures 1 and 3).

The paper's workloads partition a global ``M x N`` array (row-major on disk)
across ``P`` processes:

* **row-wise** — split along the most significant axis; each process's file
  view is one contiguous file range, overlapping its neighbours by ``R`` rows;
* **column-wise** — split along the least significant axis; each process's
  view is ``M`` non-contiguous file segments (one per row), overlapping its
  neighbours by ``R`` columns.  This is the pattern of the evaluation;
* **block-block** — split along both axes with a ghost border of ``R`` cells,
  the Figure 1 pattern where corner ghost cells are accessed by up to four
  processes.

Each function returns, per rank, either the flattened file segments
(``(offset, length)`` pairs, ready for :class:`repro.core.regions.FileRegionSet`)
or the ``(sizes, subsizes, starts)`` triple to feed
``MPI_Type_create_subarray`` exactly as the paper's Figure 4 does.

Overlap convention: each process extends its owned span by ``R/2`` cells on
each interior side, so two neighbouring processes share ``R`` rows/columns,
matching Section 3.1 ("the sub-arrays partitioned in every two processes with
consecutive rank id numbers overlap with each other for a few rows/columns").
Edge processes have ``R/2`` fewer cells than interior ones, as the paper
notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "SubarraySpec",
    "column_wise_spec",
    "row_wise_spec",
    "block_block_spec",
    "column_wise_views",
    "row_wise_views",
    "block_block_views",
    "spec_to_segments",
    "PATTERN_NAMES",
    "process_grid",
    "views_for_pattern",
]


@dataclass(frozen=True)
class SubarraySpec:
    """The ``MPI_Type_create_subarray`` arguments for one rank's file view."""

    sizes: Tuple[int, int]
    subsizes: Tuple[int, int]
    starts: Tuple[int, int]
    itemsize: int = 1

    @property
    def total_bytes(self) -> int:
        """Bytes covered by the sub-array."""
        return self.subsizes[0] * self.subsizes[1] * self.itemsize

    def segments(self) -> List[Tuple[int, int]]:
        """Flattened ``(offset, length)`` file segments (row-major storage)."""
        return spec_to_segments(self)


def spec_to_segments(spec: SubarraySpec) -> List[Tuple[int, int]]:
    """Flatten a 2-D subarray spec into per-row file segments."""
    M, N = spec.sizes
    sm, sn = spec.subsizes
    r0, c0 = spec.starts
    item = spec.itemsize
    if sm == 0 or sn == 0:
        return []
    out: List[Tuple[int, int]] = []
    if sn == N and c0 == 0:
        # Full-width rows collapse to a single contiguous segment.
        return [((r0 * N) * item, sm * N * item)]
    for row in range(r0, r0 + sm):
        out.append(((row * N + c0) * item, sn * item))
    return out


def _split_span(total: int, parts: int, index: int) -> Tuple[int, int]:
    """Owned (start, stop) of block ``index`` when ``total`` cells are divided
    into ``parts`` nearly equal consecutive blocks."""
    base = total // parts
    extra = total % parts
    start = index * base + min(index, extra)
    length = base + (1 if index < extra else 0)
    return start, start + length


def _extend_with_ghost(start: int, stop: int, total: int, index: int, parts: int, R: int) -> Tuple[int, int]:
    """Extend an owned span by R/2 ghost cells on each interior side."""
    half = R // 2
    lo = start - (half if index > 0 else 0)
    hi = stop + (R - half if index < parts - 1 else 0)
    return max(lo, 0), min(hi, total)


def column_wise_spec(M: int, N: int, P: int, rank: int, R: int = 0, itemsize: int = 1) -> SubarraySpec:
    """Subarray spec for the column-wise partitioning of Figure 3(b)."""
    _validate(M, N, P, rank, R, itemsize)
    if N // P < R:
        raise ValueError("overlap R must not exceed N/P")
    start, stop = _split_span(N, P, rank)
    start, stop = _extend_with_ghost(start, stop, N, rank, P, R)
    return SubarraySpec(
        sizes=(M, N), subsizes=(M, stop - start), starts=(0, start), itemsize=itemsize
    )


def row_wise_spec(M: int, N: int, P: int, rank: int, R: int = 0, itemsize: int = 1) -> SubarraySpec:
    """Subarray spec for the row-wise partitioning of Figure 3(a)."""
    _validate(M, N, P, rank, R, itemsize)
    if M // P < R:
        raise ValueError("overlap R must not exceed M/P")
    start, stop = _split_span(M, P, rank)
    start, stop = _extend_with_ghost(start, stop, M, rank, P, R)
    return SubarraySpec(
        sizes=(M, N), subsizes=(stop - start, N), starts=(start, 0), itemsize=itemsize
    )


def block_block_spec(
    M: int, N: int, Pr: int, Pc: int, rank: int, R: int = 0, itemsize: int = 1
) -> SubarraySpec:
    """Subarray spec for the block-block ghost-cell partitioning of Figure 1.

    Ranks are laid out row-major on a ``Pr x Pc`` process grid; each process's
    view is its owned block extended by ``R/2`` ghost cells towards every
    interior neighbour, so interior edges overlap by ``R`` cells and corner
    ghost regions are accessed by four processes.
    """
    if Pr <= 0 or Pc <= 0:
        raise ValueError("process grid dimensions must be positive")
    if rank < 0 or rank >= Pr * Pc:
        raise ValueError(f"rank {rank} outside process grid {Pr}x{Pc}")
    if M <= 0 or N <= 0 or itemsize <= 0 or R < 0:
        raise ValueError("invalid array parameters")
    pr, pc = divmod(rank, Pc)
    r_start, r_stop = _split_span(M, Pr, pr)
    c_start, c_stop = _split_span(N, Pc, pc)
    r_start, r_stop = _extend_with_ghost(r_start, r_stop, M, pr, Pr, R)
    c_start, c_stop = _extend_with_ghost(c_start, c_stop, N, pc, Pc, R)
    return SubarraySpec(
        sizes=(M, N),
        subsizes=(r_stop - r_start, c_stop - c_start),
        starts=(r_start, c_start),
        itemsize=itemsize,
    )


def column_wise_views(M: int, N: int, P: int, R: int = 0, itemsize: int = 1) -> List[List[Tuple[int, int]]]:
    """Flattened file segments of every rank for column-wise partitioning."""
    return [column_wise_spec(M, N, P, rank, R, itemsize).segments() for rank in range(P)]


def row_wise_views(M: int, N: int, P: int, R: int = 0, itemsize: int = 1) -> List[List[Tuple[int, int]]]:
    """Flattened file segments of every rank for row-wise partitioning."""
    return [row_wise_spec(M, N, P, rank, R, itemsize).segments() for rank in range(P)]


def block_block_views(
    M: int, N: int, Pr: int, Pc: int, R: int = 0, itemsize: int = 1
) -> List[List[Tuple[int, int]]]:
    """Flattened file segments of every rank for block-block partitioning."""
    return [
        block_block_spec(M, N, Pr, Pc, rank, R, itemsize).segments()
        for rank in range(Pr * Pc)
    ]


#: Partitioning patterns the benchmark harness can sweep.
PATTERN_NAMES: Tuple[str, ...] = ("column-wise", "row-wise", "block-block")


def process_grid(P: int) -> Tuple[int, int]:
    """Factor ``P`` into the most square ``Pr x Pc`` process grid (Pr <= Pc)."""
    if P <= 0:
        raise ValueError("P must be positive")
    pr = int(P ** 0.5)
    while P % pr:
        pr -= 1
    return pr, P // pr


def views_for_pattern(
    pattern: str, M: int, N: int, P: int, R: int = 0, itemsize: int = 1
) -> List[List[Tuple[int, int]]]:
    """Per-rank flattened file views for a named partitioning pattern.

    ``"column-wise"`` and ``"row-wise"`` are the 1-D splits of Figure 3;
    ``"block-block"`` lays the ranks out on the most square ``Pr x Pc`` grid
    (Figure 1's ghost-cell pattern).  This is the selection point the
    benchmark harness uses to sweep patterns.
    """
    if pattern == "column-wise":
        return column_wise_views(M, N, P, R, itemsize)
    if pattern == "row-wise":
        return row_wise_views(M, N, P, R, itemsize)
    if pattern == "block-block":
        Pr, Pc = process_grid(P)
        return block_block_views(M, N, Pr, Pc, R, itemsize)
    raise ValueError(f"unknown pattern {pattern!r}; known: {PATTERN_NAMES}")


def _validate(M: int, N: int, P: int, rank: int, R: int, itemsize: int) -> None:
    if M <= 0 or N <= 0 or P <= 0 or itemsize <= 0:
        raise ValueError("M, N, P and itemsize must be positive")
    if R < 0:
        raise ValueError("R must be non-negative")
    if rank < 0 or rank >= P:
        raise ValueError(f"rank {rank} outside 0..{P - 1}")
