"""Workload generators for the evaluation.

The paper's evaluation writes a column-wise partitioned 2-D character array
of three sizes — ``4096 x 8192`` (32 MB), ``4096 x 32768`` (128 MB) and
``4096 x 262144`` (1 GB) — from 4, 8 and 16 processes.  This module encodes
those parameters, provides rank-identifying fill data, and offers a row-count
scaling knob so the benchmark grid stays tractable on a laptop-sized machine
while preserving the segment sizes and counts per row that drive the
performance behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "PAPER_ARRAY_SIZES",
    "PAPER_PROCESS_COUNTS",
    "PAPER_OVERLAP_COLUMNS",
    "ColumnWiseWorkload",
    "CheckpointRestartWorkload",
    "rank_fill_bytes",
    "rank_pattern_bytes",
]

#: (M, N) array shapes used in the paper's Figure 8, in elements of 1 byte.
PAPER_ARRAY_SIZES: Dict[str, Tuple[int, int]] = {
    "32MB": (4096, 8192),
    "128MB": (4096, 32768),
    "1GB": (4096, 262144),
}

#: Process counts used in the paper's Figure 8.
PAPER_PROCESS_COUNTS: Tuple[int, ...] = (4, 8, 16)

#: Number of overlapped columns between neighbouring processes.  The paper
#: does not report the exact ghost width used; 4 columns is representative of
#: the ghost-cell workloads it cites and is what the benchmarks default to.
PAPER_OVERLAP_COLUMNS: int = 4


@dataclass(frozen=True)
class ColumnWiseWorkload:
    """A column-wise checkpoint workload instance.

    ``row_scale`` divides the number of rows ``M`` (keeping every row's
    length and the per-rank segment count proportionally smaller) so the full
    Figure 8 grid runs quickly; ``row_scale=1`` reproduces the paper's exact
    array shapes.
    """

    label: str
    M: int
    N: int
    P: int
    R: int = PAPER_OVERLAP_COLUMNS
    row_scale: int = 1

    def __post_init__(self) -> None:
        if self.row_scale <= 0:
            raise ValueError("row_scale must be positive")
        if self.M % self.row_scale != 0:
            raise ValueError("row_scale must divide M")

    @property
    def effective_M(self) -> int:
        """Row count after scaling."""
        return self.M // self.row_scale

    @property
    def file_bytes(self) -> int:
        """Size of the shared file actually written (after scaling)."""
        return self.effective_M * self.N

    @property
    def nominal_bytes(self) -> int:
        """Unscaled size of the paper's file."""
        return self.M * self.N

    @classmethod
    def from_label(cls, label: str, P: int, R: int = PAPER_OVERLAP_COLUMNS,
                   row_scale: int = 1) -> "ColumnWiseWorkload":
        """Build one of the paper's three workloads by its size label."""
        M, N = PAPER_ARRAY_SIZES[label]
        return cls(label=label, M=M, N=N, P=P, R=R, row_scale=row_scale)


@dataclass(frozen=True)
class CheckpointRestartWorkload:
    """A checkpoint-then-restart workload (the read-heavy scenario).

    ``writers`` processes checkpoint a partitioned 2-D array (a concurrent
    overlapping atomic write, ghost columns included), then a restart job of
    ``readers`` processes — typically a *different* process count, which is
    exactly why the restart cannot assume its views match the checkpoint's —
    collectively reads its own overlapping partitioning of the same file.
    ``row_scale`` works as in :class:`ColumnWiseWorkload`.
    """

    label: str
    M: int
    N: int
    writers: int
    readers: int
    R: int = PAPER_OVERLAP_COLUMNS
    row_scale: int = 1
    pattern: str = "column-wise"

    def __post_init__(self) -> None:
        if self.writers <= 0 or self.readers <= 0:
            raise ValueError("writers and readers must be positive")
        if self.row_scale <= 0:
            raise ValueError("row_scale must be positive")
        if self.M % self.row_scale != 0:
            raise ValueError("row_scale must divide M")

    @property
    def effective_M(self) -> int:
        """Row count after scaling."""
        return self.M // self.row_scale

    @property
    def file_bytes(self) -> int:
        """Size of the shared checkpoint file (after scaling)."""
        return self.effective_M * self.N

    def write_views(self) -> List[List[Tuple[int, int]]]:
        """Per-writer flattened file views of the checkpoint phase."""
        from .partition import views_for_pattern

        return views_for_pattern(self.pattern, self.effective_M, self.N,
                                 self.writers, self.R)

    def read_views(self) -> List[List[Tuple[int, int]]]:
        """Per-reader flattened file views of the restart phase."""
        from .partition import views_for_pattern

        return views_for_pattern(self.pattern, self.effective_M, self.N,
                                 self.readers, self.R)

    def writer_stream(self, rank: int) -> bytes:
        """Rank-identifying checkpoint data for ``rank`` (pattern fill, so
        content-based verification works alongside provenance)."""
        nbytes = sum(length for _, length in self.write_views()[rank])
        return rank_pattern_bytes(rank, nbytes)

    @classmethod
    def from_label(
        cls,
        label: str,
        writers: int,
        readers: int,
        R: int = PAPER_OVERLAP_COLUMNS,
        row_scale: int = 1,
    ) -> "CheckpointRestartWorkload":
        """Build one of the paper's three array sizes as a restart workload."""
        M, N = PAPER_ARRAY_SIZES[label]
        return cls(label=label, M=M, N=N, writers=writers, readers=readers,
                   R=R, row_scale=row_scale)


def rank_fill_bytes(rank: int, nbytes: int) -> bytes:
    """A constant, rank-identifying fill ('A' + rank)."""
    return bytes([ord("A") + (rank % 26)]) * nbytes


def rank_pattern_bytes(rank: int, nbytes: int) -> bytes:
    """A varying but rank-identifying pattern: byte ``i`` is
    ``(rank * 41 + i) mod 251``.

    Unlike :func:`rank_fill_bytes`, equal byte values across ranks are rare,
    so content-based interleaving detection (as opposed to provenance-based)
    also works on this data.
    """
    i = np.arange(nbytes, dtype=np.int64)
    return ((rank * 41 + i) % 251).astype(np.uint8).tobytes()
