"""Ghost-cell decompositions for checkpoint workloads (Figure 1).

The paper motivates concurrent overlapping I/O with the ghost-cell technique:
each process owns a block of a global array plus a halo of cells replicated
from its neighbours, and periodic check-pointing writes the *whole* local
block — halo included — to a shared file, producing overlapping writes.

:class:`GhostDecomposition` packages the bookkeeping one of those
applications needs: the process grid, each rank's owned block and ghosted
block, neighbour ranks, the local array shape, and the file view for the
checkpoint write.  The ``ghost_cell_checkpoint`` example builds directly on
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .partition import SubarraySpec, block_block_spec

__all__ = ["GhostDecomposition"]


@dataclass(frozen=True)
class GhostDecomposition:
    """A rank's place in a 2-D block-block decomposition with ghost cells.

    Parameters
    ----------
    M, N:
        Global array shape (rows, columns).
    Pr, Pc:
        Process grid shape; ``Pr * Pc`` ranks in row-major order.
    rank:
        This process's rank.
    ghost_width:
        Total overlap ``R`` between neighbouring blocks (``R/2`` cells of halo
        on each interior side).
    itemsize:
        Bytes per array element.
    """

    M: int
    N: int
    Pr: int
    Pc: int
    rank: int
    ghost_width: int = 2
    itemsize: int = 1

    # -- grid position -------------------------------------------------------------

    @property
    def grid_coords(self) -> Tuple[int, int]:
        """(row, column) of this rank in the process grid."""
        return divmod(self.rank, self.Pc)

    @property
    def nprocs(self) -> int:
        """Total number of ranks in the decomposition."""
        return self.Pr * self.Pc

    def rank_at(self, pr: int, pc: int) -> Optional[int]:
        """Rank at grid position ``(pr, pc)`` or ``None`` outside the grid."""
        if 0 <= pr < self.Pr and 0 <= pc < self.Pc:
            return pr * self.Pc + pc
        return None

    def neighbors(self) -> Dict[str, int]:
        """The up-to-8 neighbouring ranks, keyed by compass direction."""
        pr, pc = self.grid_coords
        candidates = {
            "north": (pr - 1, pc),
            "south": (pr + 1, pc),
            "west": (pr, pc - 1),
            "east": (pr, pc + 1),
            "northwest": (pr - 1, pc - 1),
            "northeast": (pr - 1, pc + 1),
            "southwest": (pr + 1, pc - 1),
            "southeast": (pr + 1, pc + 1),
        }
        out: Dict[str, int] = {}
        for direction, (r, c) in candidates.items():
            neighbor = self.rank_at(r, c)
            if neighbor is not None:
                out[direction] = neighbor
        return out

    # -- file view ----------------------------------------------------------------------

    def ghosted_spec(self) -> SubarraySpec:
        """Subarray spec of the ghosted block (what a checkpoint writes)."""
        return block_block_spec(
            self.M, self.N, self.Pr, self.Pc, self.rank, self.ghost_width, self.itemsize
        )

    def owned_spec(self) -> SubarraySpec:
        """Subarray spec of the owned block (no halo)."""
        return block_block_spec(
            self.M, self.N, self.Pr, self.Pc, self.rank, 0, self.itemsize
        )

    def file_segments(self) -> List[Tuple[int, int]]:
        """Flattened file segments of the ghosted checkpoint write."""
        return self.ghosted_spec().segments()

    # -- local array ------------------------------------------------------------------------

    def local_shape(self) -> Tuple[int, int]:
        """Shape of the rank's local (ghosted) array."""
        return self.ghosted_spec().subsizes

    def make_local_array(self, dtype=np.uint8, fill_with_rank: bool = True) -> np.ndarray:
        """Allocate the local ghosted array, optionally rank-stamped."""
        shape = self.local_shape()
        if fill_with_rank:
            return np.full(shape, self.rank % 256, dtype=dtype)
        return np.zeros(shape, dtype=dtype)

    def overlapping_ranks(self) -> List[int]:
        """Ranks whose ghosted blocks overlap this rank's ghosted block."""
        if self.ghost_width == 0:
            return []
        mine = self.ghosted_spec()
        my_rows = range(mine.starts[0], mine.starts[0] + mine.subsizes[0])
        my_cols = range(mine.starts[1], mine.starts[1] + mine.subsizes[1])
        out: List[int] = []
        for other in range(self.nprocs):
            if other == self.rank:
                continue
            spec = block_block_spec(
                self.M, self.N, self.Pr, self.Pc, other, self.ghost_width, self.itemsize
            )
            rows = range(spec.starts[0], spec.starts[0] + spec.subsizes[0])
            cols = range(spec.starts[1], spec.starts[1] + spec.subsizes[1])
            row_overlap = max(my_rows.start, rows.start) < min(my_rows.stop, rows.stop)
            col_overlap = max(my_cols.start, cols.start) < min(my_cols.stop, cols.stop)
            if row_overlap and col_overlap:
                out.append(other)
        return out
