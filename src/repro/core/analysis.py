"""Closed-form scalability analysis (Section 3.4 of the paper).

The paper's Section 3.4 argues, without running code, why the three
strategies scale the way they do for the column-wise partitioning case:

* **file locking** locks ``M*N - (N/P - R)*M`` bytes — nearly the whole file —
  per process, so the P writes serialise;
* **graph colouring** pays an overlap-matrix negotiation (one allgather of
  file-view summaries) and splits the I/O into a small number of phases while
  writing the full (overlapping) volume;
* **rank ordering** pays the negotiation with exact byte ranges, then writes
  strictly less data (the overlaps are written exactly once) with full
  parallelism.

This module provides those formulas so the benchmarks can print the
analytical expectations next to the measured virtual-time results, and so the
tests can check the measured behaviour against the model's ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from .overlap import overlapped_bytes_total
from .rank_ordering import resolve_by_rank
from .regions import FileRegionSet

__all__ = [
    "ColumnWiseCase",
    "StrategyEstimate",
    "estimate_column_wise",
    "analyze_regions",
    "pattern_features",
]


@dataclass(frozen=True)
class ColumnWiseCase:
    """Parameters of the paper's column-wise partitioning workload.

    A global ``M x N`` array of ``itemsize``-byte elements, partitioned
    column-wise over ``P`` processes, with ``R`` overlapped columns between
    neighbouring processes.
    """

    M: int
    N: int
    P: int
    R: int
    itemsize: int = 1

    def __post_init__(self) -> None:
        if self.M <= 0 or self.N <= 0 or self.P <= 0 or self.itemsize <= 0:
            raise ValueError("M, N, P and itemsize must be positive")
        if self.R < 0:
            raise ValueError("R must be non-negative")
        if self.P > 1 and self.N // self.P < self.R:
            raise ValueError("overlap R must not exceed the per-process column count")

    @property
    def file_bytes(self) -> int:
        """Size of the shared file."""
        return self.M * self.N * self.itemsize

    @property
    def bytes_per_interior_process(self) -> int:
        """Bytes written by an interior process (N/P + R columns)."""
        if self.P == 1:
            return self.file_bytes
        cols = self.N // self.P + self.R
        return self.M * cols * self.itemsize

    @property
    def locked_bytes_per_process(self) -> int:
        """Bytes covered by the locking strategy's extent lock (interior rank).

        The first and last row of the process's view are ``N`` columns apart,
        so the extent spans nearly the whole file: ``M*N - (N - width)`` columns
        worth of bytes, where ``width = N/P + R``.
        """
        if self.P == 1:
            return self.file_bytes
        width_cols = self.N // self.P + self.R
        # extent = (M - 1) rows * N columns + width columns
        return ((self.M - 1) * self.N + width_cols) * self.itemsize

    @property
    def overlapped_bytes(self) -> int:
        """Total bytes written by more than one process."""
        if self.P == 1:
            return 0
        return (self.P - 1) * self.R * self.M * self.itemsize

    @property
    def total_requested_bytes(self) -> int:
        """Total bytes requested across all processes (overlaps counted twice)."""
        return self.file_bytes + self.overlapped_bytes


@dataclass(frozen=True)
class StrategyEstimate:
    """Analytical expectations for one strategy on one workload."""

    strategy: str
    bytes_transferred: int
    parallel_steps: int
    degree_of_parallelism: float
    locked_bytes: int = 0

    def relative_time(self, per_byte: float = 1.0) -> float:
        """A unitless time estimate: transferred volume divided by parallelism,
        times the number of serial steps implied by the strategy."""
        if self.degree_of_parallelism <= 0:
            return float("inf")
        return self.bytes_transferred * per_byte / self.degree_of_parallelism


def estimate_column_wise(case: ColumnWiseCase) -> Dict[str, StrategyEstimate]:
    """Section 3.4 style estimates for the three strategies."""
    P = case.P
    estimates: Dict[str, StrategyEstimate] = {}
    # Locking: everyone writes its full view, one process at a time.
    estimates["locking"] = StrategyEstimate(
        strategy="locking",
        bytes_transferred=case.total_requested_bytes,
        parallel_steps=P,
        degree_of_parallelism=1.0,
        locked_bytes=case.locked_bytes_per_process,
    )
    # Graph colouring: full volume, two phases (even/odd), P/2-way parallel.
    phases = 1 if P == 1 else 2
    estimates["graph-coloring"] = StrategyEstimate(
        strategy="graph-coloring",
        bytes_transferred=case.total_requested_bytes,
        parallel_steps=phases,
        degree_of_parallelism=max(P / phases, 1.0),
    )
    # Rank ordering: overlaps written once, one fully parallel phase.
    estimates["rank-ordering"] = StrategyEstimate(
        strategy="rank-ordering",
        bytes_transferred=case.file_bytes,
        parallel_steps=1,
        degree_of_parallelism=float(P),
    )
    return estimates


def analyze_regions(regions: Sequence[FileRegionSet]) -> Dict[str, float]:
    """Workload-agnostic analysis of a set of file views.

    Returns the quantities Section 3.4 talks about, computed exactly from the
    views: total requested bytes, overlapped bytes, bytes remaining after
    rank-ordering trims, and the average fraction of the file each process's
    extent lock would cover.
    """
    total_requested = sum(r.total_bytes for r in regions)
    overlapped = overlapped_bytes_total(regions)
    resolution = resolve_by_rank(regions)
    remaining = resolution.total_remaining
    file_end = max((r.coverage.max_offset or 0) for r in regions) if regions else 0
    if file_end > 0:
        lock_fraction = sum(r.extent_bytes() for r in regions) / (len(regions) * file_end)
    else:
        lock_fraction = 0.0
    return {
        "total_requested_bytes": float(total_requested),
        "overlapped_bytes": float(overlapped),
        "rank_ordering_bytes": float(remaining),
        "surrendered_bytes": float(resolution.total_surrendered),
        "mean_extent_lock_fraction": float(lock_fraction),
    }


def _uniform_stride(regions: Sequence[FileRegionSet]) -> int:
    """The common inter-segment stride over all multi-segment views, or 0.

    A view is *uniformly strided* when all its segments have the same length
    and consecutive segment offsets differ by one constant.  The stride is
    only meaningful for the classifier when every non-empty view agrees on
    it (the paper's column-wise and block-block partitionings both do: the
    stride is the array row length ``N``).
    """
    stride = 0
    for region in regions:
        segs = region.segments
        if len(segs) < 2:
            if segs:
                return 0  # a single-segment view mixed in: not strided
            continue
        lengths = {length for _, length in segs}
        gaps = {segs[i + 1][0] - segs[i][0] for i in range(len(segs) - 1)}
        if len(lengths) != 1 or len(gaps) != 1:
            return 0
        gap = gaps.pop()
        if gap <= 0 or (stride and gap != stride):
            return 0
        stride = gap
    return stride


def pattern_features(regions: Sequence[FileRegionSet]) -> Dict[str, float]:
    """Access-pattern features of a set of file views, for the autotuner.

    Feeds :func:`repro.core.autotune.classify_pattern`.  All quantities are
    computed from the already-exchanged views — no extra communication — and
    reuse the existing sweep-line overlap analysis:

    ``max_segments`` / ``total_bytes`` / ``extent_bytes``
        Shape of the request: the worst per-rank fragmentation, the summed
        requested volume, and the hull ``[min start, max stop)`` of all views.
    ``stride``
        The common inter-segment stride when every view is uniformly strided
        (0 otherwise) — column-wise and block-block partitionings of an
        ``M x N`` array both report the row length ``N`` here.
    ``interleave``
        How many ranks interleave within one stride period: ``P`` divided by
        the number of distinct period-aligned start groups.  A column-wise
        partitioning interleaves all ``P`` ranks in every file row
        (``interleave == P``); a ``Pr x Pc`` block-block partitioning
        interleaves only the ``Pc`` ranks of one row-block.
    ``overlapped_bytes``
        Bytes touched by more than one rank (sweep-line depth >= 2).
    """
    nonempty = [r for r in regions if not r.is_empty()]
    if not nonempty:
        return {
            "nprocs": float(len(regions)),
            "max_segments": 0.0,
            "total_bytes": 0.0,
            "extent_bytes": 0.0,
            "stride": 0.0,
            "interleave": 1.0,
            "overlapped_bytes": 0.0,
        }
    start = min(int(r.coverage.starts[0]) for r in nonempty)
    stop = max(int(r.coverage.stops[-1]) for r in nonempty)
    stride = _uniform_stride(nonempty)
    if stride:
        groups = {(int(r.coverage.starts[0]) - start) // stride for r in nonempty}
        interleave = len(nonempty) / max(1, len(groups))
    else:
        interleave = 1.0
    return {
        "nprocs": float(len(regions)),
        "max_segments": float(max(r.num_segments for r in nonempty)),
        "total_bytes": float(sum(r.total_bytes for r in nonempty)),
        "extent_bytes": float(stop - start),
        "stride": float(stride),
        "interleave": float(interleave),
        "overlapped_bytes": float(overlapped_bytes_total(regions)),
    }
