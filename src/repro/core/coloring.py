"""Greedy graph-coloring of the process overlap graph (Figure 5).

The graph-coloring strategy treats I/O processes as vertices and overlaps
between two processes' file views as edges.  A valid vertex colouring splits
the processes into colour classes such that no two processes in the same
class overlap; the concurrent I/O is then carried out in ``K`` steps (one per
colour) with a barrier between steps, preserving MPI atomicity while keeping
intra-step parallelism.

The paper uses the simple greedy algorithm reproduced in its Figure 5: each
process scans the ranks in increasing order and takes the smallest colour not
used by an already-coloured overlapping neighbour.  Because every process
runs the identical deterministic algorithm on the identical overlap matrix
(obtained via ``allgather``), all processes agree on the colouring without
further communication.

Optimal graph colouring is NP-hard in general [Garey & Johnson 1979]; the
overlap graphs arising from scientific array partitionings are nearly always
interval-like or grid-like, for which the greedy heuristic produces small
colour counts (2 for the paper's column-wise case, <= 4 for block-block ghost
partitionings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .overlap import OverlapMatrix

__all__ = ["ColoringResult", "greedy_coloring", "validate_coloring", "color_groups"]


@dataclass(frozen=True)
class ColoringResult:
    """Outcome of colouring the overlap graph.

    Attributes
    ----------
    colors:
        ``colors[rank]`` is the colour id (0-based) assigned to ``rank``.
    num_colors:
        Number of distinct colours used; also the number of I/O steps the
        graph-coloring strategy performs.
    """

    colors: tuple
    num_colors: int

    def groups(self) -> List[List[int]]:
        """Ranks grouped by colour, ``groups()[c]`` = ranks with colour ``c``."""
        out: List[List[int]] = [[] for _ in range(self.num_colors)]
        for rank, color in enumerate(self.colors):
            out[color].append(rank)
        return out

    def color_of(self, rank: int) -> int:
        """Colour assigned to ``rank``."""
        return self.colors[rank]

    def step_of(self, rank: int) -> int:
        """The I/O step in which ``rank`` performs its write (== its colour)."""
        return self.colors[rank]


def greedy_coloring(
    overlap: OverlapMatrix, order: Optional[Sequence[int]] = None
) -> ColoringResult:
    """Greedy colouring of the overlap graph, Figure 5 of the paper.

    Parameters
    ----------
    overlap:
        The boolean overlap matrix ``W``.
    order:
        Vertex consideration order.  The paper's algorithm scans ranks in
        increasing rank order (the default); alternative orders (for the
        ablation benchmarks) may be supplied as a permutation of
        ``range(nprocs)``.

    Returns
    -------
    ColoringResult
        A valid colouring: adjacent ranks never share a colour.
    """
    n = overlap.nprocs
    if order is None:
        order = range(n)
    else:
        if sorted(order) != list(range(n)):
            raise ValueError("order must be a permutation of range(nprocs)")
    colors: List[int] = [-1] * n
    w = overlap.matrix
    for rank in order:
        used = {colors[j] for j in np.nonzero(w[rank])[0] if colors[j] >= 0}
        color = 0
        while color in used:
            color += 1
        colors[rank] = color
    num_colors = (max(colors) + 1) if n else 0
    return ColoringResult(colors=tuple(colors), num_colors=num_colors)


def validate_coloring(overlap: OverlapMatrix, result: ColoringResult) -> bool:
    """True when ``result`` is a proper colouring of ``overlap``."""
    if len(result.colors) != overlap.nprocs:
        return False
    if any(c < 0 for c in result.colors):
        return False
    for i, j in overlap.edges():
        if result.colors[i] == result.colors[j]:
            return False
    return True


def color_groups(overlap: OverlapMatrix) -> List[List[int]]:
    """Convenience: greedy-colour and return the colour classes directly."""
    return greedy_coloring(overlap).groups()


def chromatic_lower_bound(overlap: OverlapMatrix) -> int:
    """A cheap lower bound on the chromatic number (size of a greedy clique).

    Used by the analysis benchmarks to show how close the greedy colouring
    gets for the paper's partitioning patterns (it is exact for the 1-D
    column/row-wise cases and for the block-block ghost case).
    """
    n = overlap.nprocs
    if n == 0:
        return 0
    w = overlap.matrix
    # Grow a clique greedily from the highest-degree vertex.
    degrees = w.sum(axis=1)
    start = int(np.argmax(degrees))
    clique = [start]
    candidates = [int(v) for v in np.nonzero(w[start])[0]]
    candidates.sort(key=lambda v: -int(degrees[v]))
    for v in candidates:
        if all(w[v, u] for u in clique):
            clique.append(v)
    return max(1, len(clique))
