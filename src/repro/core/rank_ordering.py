"""Process-rank ordering strategy — file-view trimming (Figure 7).

Under process-rank ordering, all processes agree on a fixed access priority
to overlapped file regions: the **highest-ranked** process that accesses a
region wins the right to write it and every lower-ranked process surrenders
(removes) those bytes from its own file view.  After trimming, no two
processes' views overlap, so all writes proceed fully in parallel with no
locks and no phase barriers, and the total volume written shrinks by the
amount of surrendered data.

This module computes, for a set of per-rank
:class:`~repro.core.regions.FileRegionSet` views, the trimmed views and the
statistics the paper's Section 3.4 analysis quotes (surrendered bytes,
remaining bytes).  The priority policy is pluggable; the paper's
"higher rank wins" rule is the default and a "lower rank wins" variant is
provided for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from .intervals import IntervalSet, merge_interval_sets
from .regions import FileRegionSet

__all__ = [
    "RankOrderingResult",
    "resolve_by_rank",
    "surrendered_bytes_by_priority",
    "HIGHER_RANK_WINS",
    "LOWER_RANK_WINS",
]

# A priority policy maps a rank to a priority value; for each overlapped byte
# the process with the highest priority keeps it.  Ties cannot occur because
# ranks are unique.
PriorityPolicy = Callable[[int], int]

HIGHER_RANK_WINS: PriorityPolicy = lambda rank: rank  # noqa: E731 - paper's policy
LOWER_RANK_WINS: PriorityPolicy = lambda rank: -rank  # noqa: E731 - ablation variant


@dataclass(frozen=True)
class RankOrderingResult:
    """Outcome of the rank-ordering negotiation.

    Attributes
    ----------
    trimmed:
        ``trimmed[rank]`` is the rank's file view after surrendering every
        byte that a higher-priority process also writes.  Trimmed views are
        pairwise disjoint.
    surrendered_bytes:
        ``surrendered_bytes[rank]`` is how many bytes the rank gave up.
    """

    trimmed: tuple
    surrendered_bytes: tuple

    @property
    def total_surrendered(self) -> int:
        """Total bytes removed from the concurrent write across all ranks."""
        return sum(self.surrendered_bytes)

    @property
    def total_remaining(self) -> int:
        """Total bytes still written after trimming."""
        return sum(r.total_bytes for r in self.trimmed)

    def view_of(self, rank: int) -> FileRegionSet:
        """The trimmed view of ``rank``."""
        return self.trimmed[rank]


def resolve_by_rank(
    regions: Sequence[FileRegionSet],
    policy: PriorityPolicy = HIGHER_RANK_WINS,
) -> RankOrderingResult:
    """Trim every process's view so that exactly one process owns each byte.

    Parameters
    ----------
    regions:
        ``regions[i]`` is rank *i*'s flattened file view.
    policy:
        Priority function; the process whose rank has the highest policy
        value keeps each contested byte.  Defaults to the paper's
        higher-rank-wins rule.

    Returns
    -------
    RankOrderingResult
        Trimmed (pairwise disjoint) views plus per-rank surrendered byte
        counts.  Coverage is preserved: the union of the trimmed views equals
        the union of the original views.
    """
    n = len(regions)
    for rank, region in enumerate(regions):
        if region.rank != rank:
            raise ValueError(
                f"regions must be ordered by rank: index {rank} holds rank {region.rank}"
            )

    # Ranks sorted from highest to lowest priority; each rank surrenders the
    # bytes claimed by every rank of strictly higher priority.
    by_priority = sorted(range(n), key=policy, reverse=True)
    claimed = IntervalSet.empty()
    trimmed: List[FileRegionSet] = [None] * n  # type: ignore[list-item]
    surrendered: List[int] = [0] * n
    for rank in by_priority:
        original = regions[rank]
        new_view = original.trimmed(claimed)
        trimmed[rank] = new_view
        surrendered[rank] = original.total_bytes - new_view.total_bytes
        claimed = claimed.union(original.coverage)
    return RankOrderingResult(trimmed=tuple(trimmed), surrendered_bytes=tuple(surrendered))


def surrendered_bytes_by_priority(
    regions: Sequence[FileRegionSet],
    policy: PriorityPolicy = HIGHER_RANK_WINS,
) -> List[int]:
    """Per-rank surrendered byte counts, without materialising trimmed views.

    ``surrendered[rank]`` counts the bytes of ``rank``'s view also covered by
    some strictly-higher-priority rank (ties break towards the lower rank, as
    everywhere else) — exactly the counts :func:`resolve_by_rank` reports,
    but computed as one winner sweep instead of ``P`` incremental set unions:
    the file is cut at every interval boundary into elementary segments, each
    rank paints its segments in *ascending* priority order (so the winner's
    paint lands last), and each rank then surrenders everything it covers
    minus what it won.  This is the form the two-phase negotiation can afford
    at tens of thousands of ranks, where it only needs the counts.
    """
    n = len(regions)
    for rank, region in enumerate(regions):
        if region.rank != rank:
            raise ValueError(
                f"regions must be ordered by rank: index {rank} holds rank {region.rank}"
            )
    covered = [len(r.coverage.starts) > 0 for r in regions]
    if not any(covered):
        return [0] * n
    boundaries = np.unique(
        np.concatenate(
            [r.coverage.starts for r in regions if len(r.coverage.starts)]
            + [r.coverage.stops for r in regions if len(r.coverage.starts)]
        )
    )
    widths = boundaries[1:] - boundaries[:-1]
    winner = np.full(len(widths), -1, dtype=np.int64)
    for rank in sorted(range(n), key=lambda r: (policy(r), -r)):
        cov = regions[rank].coverage
        if not len(cov.starts):
            continue
        seg_lo = np.searchsorted(boundaries, cov.starts)
        seg_hi = np.searchsorted(boundaries, cov.stops)
        for a, b in zip(seg_lo.tolist(), seg_hi.tolist()):
            winner[a:b] = rank
    won = np.zeros(n, dtype=np.int64)
    painted = winner >= 0
    np.add.at(won, winner[painted], widths[painted])
    return [
        regions[rank].coverage.total_bytes - int(won[rank]) for rank in range(n)
    ]


def verify_disjoint(result: RankOrderingResult) -> bool:
    """True when the trimmed views are pairwise disjoint (the MPI-atomicity
    precondition the strategy relies on)."""
    views = result.trimmed
    for i in range(len(views)):
        for j in range(i + 1, len(views)):
            if views[i].overlaps(views[j]):
                return False
    return True


def verify_coverage_preserved(
    regions: Sequence[FileRegionSet], result: RankOrderingResult
) -> bool:
    """True when the trimmed views still cover every byte some process wrote.

    Rank ordering must not leave holes: every byte of the original union is
    written by exactly one process afterwards.
    """
    before = merge_interval_sets([r.coverage for r in regions])
    after = merge_interval_sets([r.coverage for r in result.trimmed])
    return before == after
