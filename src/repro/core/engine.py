"""Deterministic cooperative discrete-event scheduler.

The SPMD runtime executes every MPI rank as a *task* of one
:class:`Engine`.  Exactly one task runs at any moment; a task runs until it
blocks on a synchronisation primitive (collective rendezvous, lock queue,
message receive), reaches a :meth:`Engine.sequence` point, or finishes.  The
scheduler then resumes the ready task with the smallest
``(virtual time, task id)`` key, so the whole execution — including every
interaction with shared virtual-time resources — is a pure function of the
task code and is reproduced bit-for-bit run after run.

Tasks are plain synchronous callables.  Each task is carried by a suspended
OS thread (greenlet-style switching without the dependency): the thread
exists only so the task's call stack can be frozen mid-call; it never runs
concurrently with another task or with the scheduler, and all handoffs are
two semaphore operations.  Thousands of ranks are therefore cheap — parked
threads cost only their (small) stacks, and wall-clock time is spent on the
simulated work, not on lock contention.

Primitives
----------

``wait``
    Park the current task until another task (or the scheduler) wakes it.
``wake`` / ``throw``
    Make a blocked task ready again, optionally delivering a value or an
    exception to raise from its ``wait``.
``sequence``
    A *sequence point*: yield to the scheduler iff some ready task has an
    earlier ``(virtual time, task id)`` key.  Shared virtual-time resources
    call this before every reservation so queueing happens in global
    virtual-time order.

Shared services build their blocking behaviour from these primitives (the
lock managers keep a waiter queue and wake exactly the requests that no
longer conflict — see ``fs/lockmanager.py``).  Code that may run either
inside or outside an engine (the lock managers' unit tests drive them with
plain threads) discovers the ambient task with :func:`current_task` and
falls back to its legacy blocking behaviour when there is none.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import traceback
from typing import Any, Callable, List, Optional

from ..mpi.clock import VirtualClock

__all__ = [
    "Engine",
    "EngineError",
    "Task",
    "TaskCancelled",
    "current_task",
    "sequence_point",
]

#: C-stack size for task carrier threads.  Python frames live on the heap,
#: so 1 MiB comfortably holds the interpreter recursion of any rank function
#: while keeping even multi-thousand-rank runs cheap.
_TASK_STACK_BYTES = 1024 * 1024

#: Wall-clock grace given to a timed-out task to unwind before the engine
#: returns (mirrors the old thread-join grace period).
_DEFAULT_GRACE_SECONDS = 1.0

#: Idle carrier threads kept parked for reuse.  OS thread creation is the
#: dominant per-task cost at scale (it degrades super-linearly as live
#: threads accumulate), so carriers whose task finished are recycled across
#: tasks *and* engines instead of exiting.  The cap bounds idle virtual
#: memory; carriers beyond it simply exit as before.
_MAX_IDLE_CARRIERS = 4096

_tls = threading.local()


class EngineError(RuntimeError):
    """Misuse of the engine (wrong thread, double run, waking a ready task)."""


class TaskCancelled(BaseException):
    """Injected into a task to unwind it (deadlock teardown, engine abort).

    Derives from :class:`BaseException` so ordinary ``except Exception``
    handlers in rank code cannot swallow the cancellation.
    """


def current_task() -> Optional["Task"]:
    """The engine task executing on this thread, or ``None`` outside one."""
    return getattr(_tls, "task", None)


def sequence_point() -> None:
    """Yield to the scheduler if an earlier-keyed task is ready (no-op
    outside an engine task)."""
    task = current_task()
    if task is not None:
        task.engine.sequence(task)


class _Carrier:
    """A reusable parked OS thread that executes tasks one at a time.

    The thread loops: wait for a task assignment, run the task to
    completion (the task body ends by yielding to the scheduler), then
    return to the shared pool for the next assignment.  A carrier only ever
    runs while its current task is the engine's running task, so recycling
    never introduces concurrency — it only skips the thread create/destroy.
    """

    __slots__ = ("thread", "_work", "_task")

    def __init__(self) -> None:
        self._work = threading.Semaphore(0)
        self._task: Optional["Task"] = None
        old_stack = threading.stack_size(_TASK_STACK_BYTES)
        try:
            self.thread = threading.Thread(
                target=self._loop, name="engine-carrier", daemon=True
            )
            self.thread.start()
        finally:
            threading.stack_size(old_stack)

    def assign(self, task: "Task") -> None:
        self._task = task
        self._work.release()

    def _loop(self) -> None:
        while True:
            self._work.acquire()
            task = self._task
            task._main()
            # The scheduler was already released inside _main; from here the
            # carrier only touches its own state and the locked pool.
            self._task = None
            _tls.task = None
            if not _carrier_pool.release(self):
                return


class _CarrierPool:
    """Process-wide free list of idle carriers (threads are fungible)."""

    def __init__(self, max_idle: int) -> None:
        self._idle: List[_Carrier] = []
        self._max_idle = max_idle
        self._lock = threading.Lock()

    def acquire(self) -> _Carrier:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return _Carrier()

    def release(self, carrier: _Carrier) -> bool:
        """Park an idle carrier for reuse; False tells the thread to exit."""
        with self._lock:
            if len(self._idle) < self._max_idle:
                self._idle.append(carrier)
                return True
        return False


_carrier_pool = _CarrierPool(_MAX_IDLE_CARRIERS)


class Task:
    """One cooperatively scheduled unit of work (an MPI rank, usually)."""

    # States
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    __slots__ = (
        "engine",
        "tid",
        "name",
        "fn",
        "clock",
        "state",
        "wait_reason",
        "result",
        "error",
        "traceback_text",
        "deadlocked",
        "detached",
        "tag",
        "_thread",
        "_resume",
        "_wake_value",
        "_throw_exc",
        "_cancel_exc",
        "_cancelling",
    )

    def __init__(self, engine: "Engine", tid: int, fn: Callable[[], Any],
                 name: str, clock: VirtualClock, detached: bool = False,
                 tag: Optional[str] = None) -> None:
        self.engine = engine
        self.tid = tid
        self.name = name
        self.fn = fn
        self.clock = clock
        self.detached = detached
        self.tag = tag
        self.state = Task.NEW
        self.wait_reason = ""
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.traceback_text: Optional[str] = None
        self.deadlocked = False
        self._thread: Optional[threading.Thread] = None
        self._resume = threading.Semaphore(0)
        self._wake_value: Any = None
        self._throw_exc: Optional[BaseException] = None
        self._cancel_exc: Optional[BaseException] = None
        self._cancelling = False

    @property
    def finished(self) -> bool:
        """True once the task can never run again."""
        return self.state in (Task.DONE, Task.FAILED, Task.CANCELLED)

    def sort_key(self):
        """Deterministic scheduling key: virtual time, then task id."""
        return (self.clock.now, self.tid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.name!r}, state={self.state}, t={self.clock.now:.6f})"

    # -- carrier-thread body --------------------------------------------------

    def _main(self) -> None:
        _tls.task = self
        try:
            self.result = self.fn()
        except TaskCancelled as exc:
            self.state = Task.CANCELLED
            self.error = exc
        except BaseException as exc:  # noqa: BLE001 - reported via the engine
            self.state = Task.FAILED
            self.error = exc
            self.traceback_text = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
        else:
            self.state = Task.DONE
        finally:
            self.engine._yield_to_scheduler()


class Engine:
    """A single-shot cooperative scheduler over a set of tasks."""

    def __init__(self, name: str = "engine") -> None:
        self.name = name
        self.tasks: List[Task] = []
        #: Invoked in scheduler context right after a task fails; used by the
        #: SPMD runtime to abort the communicator group so peers blocked in a
        #: collective are released instead of deadlocking.
        self.on_task_failed: Optional[Callable[[Task], None]] = None
        self.timed_out = False
        #: Snapshot (at the deadline) of tasks that had not finished.
        self.unfinished: List[Task] = []
        self._ready: List = []  # heap of (time, tid, Task)
        self._running: Optional[Task] = None
        self._yield_sem = threading.Semaphore(0)
        self._started = False
        self._aborted = False
        self._tids = itertools.count()

    # -- task creation ----------------------------------------------------------

    def spawn(self, fn: Callable[[], Any], name: Optional[str] = None,
              clock: Optional[VirtualClock] = None, detached: bool = False,
              tag: Optional[str] = None) -> Task:
        """Register a task; it becomes ready at its clock's current time.

        Tasks spawned earlier win scheduling ties, so spawning in rank order
        gives the rank-id tiebreak the determinism guarantee relies on.  A
        task whose clock is already advanced (a job arriving at a later
        virtual time in the multi-tenant scheduler) simply becomes ready at
        that later time — the ready heap orders on ``(clock.now, tid)``.

        ``detached=True`` marks a *progress task*: a helper spawned from
        inside a running task (e.g. the execution of a nonblocking file
        request) whose failure is reported through whatever handle owns it
        rather than through the run's per-rank error collection.  Spawning
        mid-run is safe — exactly one task executes at a time, so the ready
        heap is never mutated concurrently.

        ``tag`` is a free-form attribution label (the owning job's id in the
        multi-tenant scheduler) carried on the task for error reporting and
        diagnostics; the engine itself never interprets it.
        """
        tid = next(self._tids)
        task = Task(self, tid, fn, name or f"task-{tid}", clock or VirtualClock(),
                    detached=detached, tag=tag)
        self.tasks.append(task)
        task.state = Task.READY
        heapq.heappush(self._ready, (task.clock.now, task.tid, task))
        return task

    # -- primitives (called from inside tasks) -------------------------------------

    def wait(self, reason: str = "") -> Any:
        """Park the current task until :meth:`wake`; returns the wake value."""
        task = self._require_current()
        if self._aborted or task._cancelling:
            raise TaskCancelled(f"engine {self.name!r} aborted")
        task.state = Task.BLOCKED
        task.wait_reason = reason
        self._yield_to_scheduler()
        task._resume.acquire()
        return self._on_resumed(task)

    def wake(self, task: Task, value: Any = None, at: Optional[float] = None) -> None:
        """Make a blocked task ready; schedule it at virtual time ``at``
        (default: its own clock)."""
        if task.state != Task.BLOCKED:
            raise EngineError(f"cannot wake {task!r}: not blocked")
        task._wake_value = value
        self._make_ready(task, at)

    def wake_all(self, tasks: List[Task], value: Any = None,
                 at: Optional[float] = None) -> None:
        """Wake many blocked tasks in one batch (all get the same value).

        The collective rendezvous releases every participant at once; for
        large communicators, extending the ready heap and re-heapifying in
        one pass beats per-task pushes, and the state checks run before any
        task is made ready so a bad batch cannot be half-applied.
        """
        for task in tasks:
            if task.state != Task.BLOCKED:
                raise EngineError(f"cannot wake {task!r}: not blocked")
        entries = []
        for task in tasks:
            task._wake_value = value
            task.state = Task.READY
            entries.append((task.clock.now if at is None else at, task.tid, task))
        if len(entries) > len(self._ready):
            self._ready.extend(entries)
            heapq.heapify(self._ready)
        else:
            for entry in entries:
                heapq.heappush(self._ready, entry)

    def throw(self, task: Task, exc: BaseException, at: Optional[float] = None) -> None:
        """Wake a blocked task so that its ``wait`` raises ``exc``."""
        if task.state != Task.BLOCKED:
            raise EngineError(f"cannot throw into {task!r}: not blocked")
        task._throw_exc = exc
        self._make_ready(task, at)

    def sequence(self, task: Optional[Task] = None) -> None:
        """Yield iff a ready task has a strictly smaller (time, tid) key.

        Shared virtual-time resources call this before reserving, which makes
        reservation order equal to virtual-time order — the discrete-event
        ordering — rather than the order tasks happened to run in.
        """
        task = task if task is not None else self._require_current()
        while self._ready and (self._ready[0][0], self._ready[0][1]) < task.sort_key():
            if self._aborted or task._cancelling:
                raise TaskCancelled(f"engine {self.name!r} aborted")
            task.state = Task.READY
            heapq.heappush(self._ready, (task.clock.now, task.tid, task))
            self._yield_to_scheduler()
            task._resume.acquire()
            self._on_resumed(task)

    # -- the scheduler loop ------------------------------------------------------

    def run(self, timeout: Optional[float] = None,
            grace: float = _DEFAULT_GRACE_SECONDS) -> None:
        """Drive tasks to completion (or deadlock-cancellation / timeout).

        The engine is single-shot.  After ``run`` returns, inspect
        :attr:`tasks` for per-task results and errors, and :attr:`timed_out`
        / :attr:`unfinished` for the wall-clock safety net's verdict.
        """
        if self._started:
            raise EngineError("an Engine can only run once")
        if current_task() is not None:
            raise EngineError("Engine.run cannot be called from inside a task")
        self._started = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                self._expire(grace)
                return
            task = self._pop_ready()
            if task is None:
                blocked = [t for t in self.tasks if t.state == Task.BLOCKED]
                if not blocked:
                    break
                # No runnable task, blocked tasks remain: the run cannot make
                # progress.  Cancel the earliest-keyed blocked task; its
                # unwinding (lock releases, ...) may make others runnable, so
                # re-enter the loop rather than cancelling all at once.  The
                # unwind itself is bounded by the deadline: a victim stuck in
                # real time must not suspend the wall-clock safety net.
                victim = min(blocked, key=Task.sort_key)
                victim.deadlocked = True
                budget = None if deadline is None else max(0.0, deadline - time.monotonic())
                unwound = self._cancel(victim, TaskCancelled(
                    f"deadlock: {victim.name} blocked on "
                    f"{victim.wait_reason or 'nothing runnable'}"
                ), wait_timeout=budget)
                if not unwound:
                    self._expire(grace)
                    return
                continue
            self._running = task
            task.state = Task.RUNNING
            if task._thread is None:
                self._start_thread(task)
            else:
                task._resume.release()
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            if not self._yield_sem.acquire(timeout=remaining):
                self._expire(grace)
                return
            self._running = None
            if task.state == Task.FAILED and self.on_task_failed is not None:
                self.on_task_failed(task)

    # -- internals --------------------------------------------------------------

    def _require_current(self) -> Task:
        task = current_task()
        if task is None or task.engine is not self:
            raise EngineError("primitive called outside a task of this engine")
        return task

    def _yield_to_scheduler(self) -> None:
        self._yield_sem.release()

    def _on_resumed(self, task: Task) -> Any:
        if task._cancel_exc is not None:
            exc = task._cancel_exc
            task._cancel_exc = None
            raise exc
        if task._throw_exc is not None:
            exc = task._throw_exc
            task._throw_exc = None
            raise exc
        value = task._wake_value
        task._wake_value = None
        return value

    def _make_ready(self, task: Task, at: Optional[float] = None) -> None:
        task.state = Task.READY
        key = task.clock.now if at is None else at
        heapq.heappush(self._ready, (key, task.tid, task))

    def _pop_ready(self) -> Optional[Task]:
        while self._ready:
            _, _, task = heapq.heappop(self._ready)
            if task.state == Task.READY:
                return task
        return None

    def _start_thread(self, task: Task) -> None:
        carrier = _carrier_pool.acquire()
        task._thread = carrier.thread
        carrier.assign(task)

    def _cancel(self, task: Task, exc: TaskCancelled,
                wait_timeout: Optional[float] = None) -> bool:
        """Synchronously unwind a blocked task (scheduler context only).

        Returns ``False`` if the unwind did not complete within
        ``wait_timeout`` seconds (the victim is stuck in real time, e.g. its
        cleanup blocks on a non-engine lock); the caller must then stop
        scheduling — the engine is left marked aborted so the straggler dies
        at its next primitive call.
        """
        if task._thread is None:
            # Never ran: no stack to unwind.
            task.state = Task.CANCELLED
            task.error = exc
            return True
        task._cancelling = True
        task._cancel_exc = exc
        task.state = Task.RUNNING
        self._running = task
        task._resume.release()
        if not self._yield_sem.acquire(timeout=wait_timeout):
            self._aborted = True
            return False
        self._running = None
        if task.state == Task.FAILED and self.on_task_failed is not None:
            self.on_task_failed(task)
        return True

    def _expire(self, grace: float) -> None:
        """Wall-clock timeout: snapshot the stragglers and stop scheduling."""
        unfinished = [t for t in self.tasks if not t.finished]
        if not unfinished and self._running is None:
            # The deadline raced with completion: everything actually
            # finished, so the run did not time out.
            return
        self.timed_out = True
        self._aborted = True
        self.unfinished = unfinished
        # Give the currently running task (stuck in real time, e.g. a sleep)
        # a short grace period to unwind; parked tasks stay parked on their
        # daemon carrier threads.
        if self._running is not None:
            self._yield_sem.acquire(timeout=max(0.0, grace))
            self._running = None
