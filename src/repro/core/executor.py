"""High-level drivers for concurrent overlapping reads and writes.

:class:`AtomicWriteExecutor` runs a complete concurrent-overlapping-write
experiment: it spins up ``nprocs`` SPMD ranks, gives each a file system
client whose virtual clock is the rank's MPI clock, lets every rank write its
(possibly overlapping) file view under a chosen atomicity strategy, and
returns the per-rank outcomes together with the resulting file object so the
result can be verified and timed.

:class:`CollectiveReadExecutor` is the mirror image for the staged read
pipeline: every rank reads its (possibly overlapping) file view collectively
under a chosen strategy, and the result carries the per-rank
:class:`~repro.core.strategies.ReadOutcome` records plus the delivered data
streams, ready for :func:`repro.verify.atomicity.check_read_atomicity`.

These are the entry points used by the examples, the integration tests and
the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from ..mpi.cost import CommCostModel
from .regions import FileRegionSet
from .strategies import AtomicityStrategy, ReadOutcome, WriteOutcome

if TYPE_CHECKING:  # imported lazily to keep the package import graph acyclic
    from ..fs.filesystem import FileObject, ParallelFileSystem
    from ..mpi.comm import Communicator
    from ..mpi.runtime import SPMDResult

__all__ = [
    "ConcurrentWriteResult",
    "AtomicWriteExecutor",
    "ConcurrentReadResult",
    "CollectiveReadExecutor",
]

#: A view factory maps (rank, nprocs) to the rank's flattened file view
#: segments, ``[(file_offset, length), ...]`` in data-stream order.
ViewFactory = Callable[[int, int], Sequence[Tuple[int, int]]]

#: A data factory maps (rank, nbytes) to the rank's contiguous data stream.
DataFactory = Callable[[int, int], bytes]


def default_data_factory(rank: int, nbytes: int) -> bytes:
    """Fill the rank's stream with a repeated, rank-identifying byte.

    Byte value ``ord('A') + rank`` makes visual inspection of small files easy
    while the provenance tracking in the ByteStore covers the verification.
    """
    return bytes([ord("A") + (rank % 26)]) * nbytes


@dataclass
class ConcurrentWriteResult:
    """Everything produced by one concurrent overlapping write."""

    filename: str
    fs: ParallelFileSystem
    file: FileObject
    outcomes: List[WriteOutcome]
    spmd: SPMDResult
    regions: List[FileRegionSet] = field(default_factory=list)

    @property
    def nprocs(self) -> int:
        """Number of participating processes."""
        return len(self.outcomes)

    @property
    def makespan(self) -> float:
        """Virtual time at which the last rank finished (seconds)."""
        return self.spmd.makespan

    @property
    def total_bytes_requested(self) -> int:
        """Bytes the application asked to write (before rank-ordering trims)."""
        return sum(o.bytes_requested for o in self.outcomes)

    @property
    def total_bytes_written(self) -> int:
        """Bytes actually transferred to the file system."""
        return sum(o.bytes_written for o in self.outcomes)

    def bandwidth(self) -> float:
        """Effective I/O bandwidth in bytes/second of virtual time.

        Following the paper, the *requested* volume is divided by the time of
        the slowest process: surrendering overlapped bytes (rank ordering) is
        a win, not a penalty.
        """
        if self.makespan <= 0:
            return float("inf") if self.total_bytes_requested else 0.0
        return self.total_bytes_requested / self.makespan


class AtomicWriteExecutor:
    """Runs concurrent overlapping writes under an atomicity strategy."""

    def __init__(
        self,
        fs: ParallelFileSystem,
        strategy: AtomicityStrategy,
        filename: str = "shared.dat",
        comm_cost: Optional[CommCostModel] = None,
    ) -> None:
        self.fs = fs
        self.strategy = strategy
        self.filename = filename
        self.comm_cost = comm_cost or CommCostModel(latency=20e-6, byte_cost=1e-8)
        # Context-aware strategies (the adaptive tuner) learn the machine
        # model and per-file tuning record from the file they will drive.
        bind = getattr(strategy, "bind_context", None)
        if bind is not None:
            bind(fs, filename)

    def run(
        self,
        nprocs: int,
        view_factory: ViewFactory,
        data_factory: DataFactory = default_data_factory,
    ) -> ConcurrentWriteResult:
        """Execute the concurrent write on ``nprocs`` ranks.

        Each rank obtains its view from ``view_factory(rank, nprocs)``, its
        payload from ``data_factory(rank, nbytes)``, opens the shared file
        and calls the strategy collectively.
        """
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        from ..fs.client import FSClient
        from ..mpi.runtime import run_spmd

        fs = self.fs
        filename = self.filename
        strategy = self.strategy
        # Pre-create so every rank opens the same FileObject.
        fobj = fs.create(filename)

        regions = [
            FileRegionSet(rank, view_factory(rank, nprocs)) for rank in range(nprocs)
        ]

        def rank_main(comm: Communicator) -> WriteOutcome:
            rank = comm.rank
            region = regions[rank]
            data = data_factory(rank, region.total_bytes)
            client = FSClient(fs, client_id=rank, clock=comm.clock)
            handle = client.open(filename)
            try:
                outcome = strategy.execute_write(comm, handle, region, data)
            finally:
                handle.close()
            return outcome

        spmd = run_spmd(rank_main, nprocs, comm_cost=self.comm_cost)
        return ConcurrentWriteResult(
            filename=filename,
            fs=fs,
            file=fobj,
            outcomes=list(spmd.returns),
            spmd=spmd,
            regions=regions,
        )


@dataclass
class ConcurrentReadResult:
    """Everything produced by one collective overlapping read."""

    filename: str
    fs: ParallelFileSystem
    file: FileObject
    outcomes: List[ReadOutcome]
    #: ``data[rank]`` is the contiguous stream delivered to the rank.
    data: List[bytes]
    spmd: SPMDResult
    regions: List[FileRegionSet] = field(default_factory=list)

    @property
    def nprocs(self) -> int:
        """Number of participating processes."""
        return len(self.outcomes)

    @property
    def makespan(self) -> float:
        """Virtual time at which the last rank finished (seconds)."""
        return self.spmd.makespan

    @property
    def total_bytes_requested(self) -> int:
        """Bytes the application asked to read."""
        return sum(o.bytes_requested for o in self.outcomes)

    @property
    def total_bytes_read(self) -> int:
        """Bytes actually fetched from the file system (smaller than the
        requested volume when an aggregation strategy de-duplicates
        overlapped bytes)."""
        return sum(o.bytes_read for o in self.outcomes)

    def bandwidth(self) -> float:
        """Effective read bandwidth in bytes/second of virtual time
        (requested volume over the slowest rank's time, as for writes)."""
        if self.makespan <= 0:
            return float("inf") if self.total_bytes_requested else 0.0
        return self.total_bytes_requested / self.makespan


class CollectiveReadExecutor:
    """Runs collective overlapping reads under an atomicity strategy.

    The file must already exist on the file system (a previous write, e.g. a
    checkpoint); each rank reads its view through the strategy's staged read
    pipeline and the result carries the delivered streams for verification.
    """

    def __init__(
        self,
        fs: ParallelFileSystem,
        strategy: AtomicityStrategy,
        filename: str = "shared.dat",
        comm_cost: Optional[CommCostModel] = None,
    ) -> None:
        self.fs = fs
        self.strategy = strategy
        self.filename = filename
        self.comm_cost = comm_cost or CommCostModel(latency=20e-6, byte_cost=1e-8)
        bind = getattr(strategy, "bind_context", None)
        if bind is not None:
            bind(fs, filename)

    def run(self, nprocs: int, view_factory: ViewFactory) -> ConcurrentReadResult:
        """Execute the collective read on ``nprocs`` ranks."""
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        from ..fs.client import FSClient
        from ..mpi.runtime import run_spmd

        fs = self.fs
        filename = self.filename
        strategy = self.strategy
        fobj = fs.lookup(filename)

        regions = [
            FileRegionSet(rank, view_factory(rank, nprocs)) for rank in range(nprocs)
        ]

        def rank_main(comm: Communicator) -> Tuple[bytes, ReadOutcome]:
            rank = comm.rank
            region = regions[rank]
            client = FSClient(fs, client_id=rank, clock=comm.clock)
            handle = client.open(filename, create=False)
            try:
                data, outcome = strategy.execute_read(comm, handle, region)
            finally:
                handle.close()
            return data, outcome

        spmd = run_spmd(rank_main, nprocs, comm_cost=self.comm_cost)
        return ConcurrentReadResult(
            filename=filename,
            fs=fs,
            file=fobj,
            outcomes=[outcome for _, outcome in spmd.returns],
            data=[data for data, _ in spmd.returns],
            spmd=spmd,
            regions=regions,
        )
