"""Central registry of atomicity strategies.

Replaces the ad-hoc ``strategy_by_name`` lookup table and the duplicated
strategy-name lists that used to live in the benchmark harness.  A strategy
class declares its capabilities (``provides_atomicity``, ``requires_locks``)
and registers itself once; every consumer — the MPI-IO layer's Info hints,
the benchmark grid, machine-applicability filtering — queries the registry
instead of hard-coding names.

Adding a new strategy is therefore local to one module::

    from repro.core.registry import register_strategy
    from repro.core.strategies import PipelineStrategy

    @register_strategy
    class MyStrategy(PipelineStrategy):
        name = "my-strategy"
        ...

and it is immediately constructible via ``strategy_by_name`` and swept by
the Figure 8 grid defaults and the CI smoke benchmark.  (The legacy
``STRATEGY_NAMES`` tuple is frozen at import of ``repro.core.strategies``
and lists only the built-ins; query ``default_registry.names()`` for the
live set.)

Registration order matters only for that frozen tuple: later-registered
entries such as the adaptive ``auto`` tuner (:mod:`repro.core.autotune`),
which dispatches to the built-ins rather than implementing its own data
movement, still appear in ``default_registry.names()``, the Info-hint
resolution, and the benchmark grids.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type, TypeVar

__all__ = [
    "StrategyRegistry",
    "default_registry",
    "register_strategy",
]

C = TypeVar("C", bound=type)


class StrategyRegistry:
    """Name → strategy-class mapping with capability queries."""

    def __init__(self) -> None:
        self._classes: Dict[str, type] = {}

    # -- registration ----------------------------------------------------------

    def register(self, cls: C) -> C:
        """Register ``cls`` under its ``name`` attribute (decorator-friendly)."""
        name = getattr(cls, "name", None)
        if not name or not isinstance(name, str) or name == "abstract":
            raise ValueError(f"{cls!r} must define a non-empty string `name`")
        existing = self._classes.get(name)
        if existing is not None and existing is not cls:
            # A redefinition of the same class (module reload, notebook
            # re-execution) replaces the old registration; a *different*
            # class squatting on the name is an error.
            same_definition = (
                existing.__module__ == cls.__module__
                and existing.__qualname__ == cls.__qualname__
            )
            if not same_definition:
                raise ValueError(
                    f"strategy name {name!r} is already registered to {existing.__name__}"
                )
        self._classes[name] = cls
        return cls

    # -- lookup ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def get(self, name: str) -> type:
        """The registered class for ``name`` (raises ``KeyError`` if unknown)."""
        try:
            return self._classes[name]
        except KeyError:
            raise KeyError(
                f"unknown strategy {name!r}; known: {sorted(self._classes)}"
            ) from None

    def create(self, name: str, **kwargs):
        """Instantiate the strategy registered under ``name``."""
        return self.get(name)(**kwargs)

    def create_from_info(self, name: str, info=None):
        """Instantiate ``name`` configured from an MPI-IO ``Info`` hint bag.

        Dispatches to the class's ``from_info`` constructor (see
        :meth:`repro.core.strategies.AtomicityStrategy.from_info`), which is
        how ``cb_nodes`` / ``cb_buffer_size`` and friends reach aggregator
        election without the MPI-IO layer knowing any strategy's tunables.
        With no ``info`` (or for classes without ``from_info``) this is plain
        :meth:`create`.
        """
        cls = self.get(name)
        factory = getattr(cls, "from_info", None)
        if info is None or factory is None:
            return cls()
        return factory(info)

    # -- queries ---------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._classes)

    def atomic_names(self) -> Tuple[str, ...]:
        """Names of strategies that guarantee MPI atomicity."""
        return tuple(
            n for n, cls in self._classes.items()
            if getattr(cls, "provides_atomicity", True)
        )

    def read_capable_names(self) -> Tuple[str, ...]:
        """Names of strategies implementing the collective read pipeline."""
        return tuple(
            n for n, cls in self._classes.items()
            if getattr(cls, "supports_collective_read", False)
        )

    def supported_on(self, name: str, supports_locking: bool) -> bool:
        """Whether the named strategy can run on a machine with/without
        byte-range lock support.  The single encoding of the capability rule:
        both the registry queries and the benchmark harness filter use it."""
        cls = self.get(name)
        return supports_locking or not getattr(cls, "requires_locks", False)

    def names_for_machine(self, supports_locking: bool) -> List[str]:
        """Atomic strategies runnable on a machine with/without lock support."""
        return [n for n in self.atomic_names() if self.supported_on(n, supports_locking)]


#: The process-wide registry every consumer uses.
default_registry = StrategyRegistry()

#: Decorator alias: ``@register_strategy`` above a strategy class.
register_strategy = default_registry.register
