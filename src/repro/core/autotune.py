"""Pattern-aware adaptive collective I/O (``atomicity_strategy = auto``).

The paper evaluates *fixed* atomicity strategies per run; production MPI-IO
stacks (ROMIO-style heuristics) instead derive the collective-buffering
parameters from the observed access pattern.  This module closes that gap
with three layers:

1. **Pattern classifier** — from the per-collective exchanged views (already
   computed once and shared between ranks), classify the access pattern into
   a compact, hashable :class:`PatternSignature`: contiguous / strided /
   block-block / irregular, plus log-bucketed fragmentation, overlap density
   and inter-rank interleave factor from the existing sweep-line analysis
   (:func:`repro.core.analysis.pattern_features`).

2. **Self-tuning hint engine** — :class:`HintEngine` maps a signature plus a
   :class:`MachineModel` (lock support, I/O server count, stripe size) to a
   concrete strategy (``rank-ordering`` / ``two-phase`` / ``two-phase-hier``)
   and auto-derived ``cb_nodes`` / ``cb_ppn`` / ``cb_buffer_size``.  The
   chosen :class:`TuningDecision` is remembered in a per-``(fs, file)``
   :class:`FileTuningRecord` that survives ``Close``/``Open``, so the second
   job step on the same file starts warm.

3. **Cross-collective plan cache** — repeated collectives (the
   checkpoint-every-timestep workload) reuse the exchanged region objects,
   the classification and the tuning decision from the previous collective
   instead of re-shipping and re-analysing identical views; see
   :meth:`AutoStrategy._resolve` for the protocol.  The cache is invalidated
   by ``Set_view`` (:func:`notify_view_change`), by hint changes
   (:func:`notify_hint_change`), and implicitly by any view change — a
   fingerprint mismatch on any rank falls back to the cold path.

Plan-cache protocol (deadlock-free by construction)
---------------------------------------------------
Every collective performs exactly **one** ``allgather`` regardless of cache
state; only the *payload* differs per rank.  A rank whose local view
fingerprint matches the cached entry sends a 4-element hit claim
``("hit", num_segments, total_bytes, hash)``; any other rank sends its
flattened view ``("view", off0, len0, off1, len1, ...)``.  Because the
collective structure never branches on the (rank-local) cache guess, ranks
disagreeing about the cache state cannot deadlock.  The hit/miss verdict is
computed *after* the allgather, once per collective, from the shared payload
list: all-hit replays the cached regions (identity-stable, so the downstream
analysis/negotiation memos hit too); any view payload rebuilds the region
list — reusing the cached region object for verified hit claimers — and
refreshes the cache.  Each hit-claiming rank additionally compares its
actual segments against the cached ones and raises on mismatch, so a
fingerprint collision can corrupt nothing.

The warm path is also cheaper in *virtual* time, honestly modelled: the hit
claim is a 4-element payload where the cold view payload carries
``1 + 2 * num_segments`` elements, so ``N``-timestep workloads amortise the
view shipping exactly as a real implementation would.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis import pattern_features
from .pipeline import _SharedMemo
from .regions import FileRegionSet
from .registry import register_strategy
from .strategies import (
    HierarchicalTwoPhaseStrategy,
    PipelineStrategy,
    PreparedRead,
    PreparedWrite,
    RankOrderingStrategy,
    TwoPhaseStrategy,
)

__all__ = [
    "PatternSignature",
    "classify_pattern",
    "MachineModel",
    "TuningDecision",
    "HintEngine",
    "PlanEntry",
    "FileTuningRecord",
    "record_for",
    "peek_record",
    "notify_view_change",
    "notify_hint_change",
    "AutoStrategy",
]


# -- machine model ------------------------------------------------------------


@dataclass(frozen=True)
class MachineModel:
    """What the hint engine knows about the machine under the file.

    Derived from the :class:`~repro.fs.filesystem.FSConfig` when the strategy
    is bound to a file (:meth:`AutoStrategy.bind_context`); the unbound
    default is a lockless machine so the engine never proposes ``locking``
    without evidence the file system supports it.
    """

    supports_locking: bool = False
    num_servers: int = 4
    stripe_size: int = 64 * 1024

    @classmethod
    def from_fs(cls, fs) -> "MachineModel":
        cfg = fs.config
        return cls(
            supports_locking=bool(cfg.supports_locking()),
            num_servers=max(1, int(cfg.num_servers)),
            stripe_size=max(1, int(cfg.stripe_size)),
        )


# -- pattern classification ---------------------------------------------------


def _bucket(value: float) -> int:
    """Log2 bucket of a non-negative quantity (0 stays 0)."""
    return int(value).bit_length() if value > 0 else 0


@dataclass(frozen=True)
class PatternSignature:
    """A compact, hashable description of one collective's access pattern.

    Exact byte offsets are deliberately dropped: two collectives whose views
    differ only in absolute position (or by less than a power of two in
    scale) should share a tuning decision.  ``domain_bucket`` is the
    file-size class — when an append-style workload grows the file past the
    next power of two, the signature changes and the hint cache is consulted
    afresh.
    """

    kind: str  #: "contiguous" | "strided" | "block-block" | "irregular"
    nprocs: int
    segments_bucket: int  #: log2 of the worst per-rank segment count
    segment_bucket: int  #: log2 of the typical segment length (bytes)
    domain_bucket: int  #: log2 of the hull of all views — the file-size class
    overlap_bucket: int  #: log2 of overlapped permille of the domain
    interleave_bucket: int  #: log2 of the inter-rank interleave factor


def classify_pattern(regions: Sequence[FileRegionSet]) -> PatternSignature:
    """Classify exchanged views into a :class:`PatternSignature`.

    Runs on the already-shared region list (no communication).  ``kind`` is
    ``contiguous`` when every rank's view is a single run, ``strided`` when
    the views are uniformly strided and all ``P`` ranks interleave within one
    stride period (the paper's column-wise partitioning), ``block-block``
    when uniformly strided but only a subset of ranks interleaves (a
    ``Pr x Pc`` process grid), and ``irregular`` otherwise.
    """
    feats = pattern_features(regions)
    nprocs = int(feats["nprocs"])
    max_segments = int(feats["max_segments"])
    total = int(feats["total_bytes"])
    extent = int(feats["extent_bytes"])
    interleave = feats["interleave"]
    if max_segments <= 1:
        kind = "contiguous"
    elif feats["stride"]:
        kind = "strided" if interleave >= nprocs - 0.5 else "block-block"
    else:
        kind = "irregular"
    overlap_permille = (
        int(feats["overlapped_bytes"]) * 1000 // extent if extent else 0
    )
    segment_count = max(1, max_segments) * max(1, nprocs)
    return PatternSignature(
        kind=kind,
        nprocs=nprocs,
        segments_bucket=_bucket(max_segments),
        segment_bucket=_bucket(total // segment_count),
        domain_bucket=_bucket(extent),
        overlap_bucket=_bucket(overlap_permille),
        interleave_bucket=_bucket(int(interleave)),
    )


# -- tuning decisions ---------------------------------------------------------


@dataclass
class TuningDecision:
    """A concrete strategy choice with its derived collective-buffering hints.

    The delegate strategy instance is built lazily and cached: all ranks of a
    collective share the record (and hence the decision), so they share one
    delegate — which is what lets the delegate's own per-instance analysis
    and class-level negotiation memos collapse P identical computations into
    one, exactly as the static strategies do.
    """

    strategy: str
    cb_nodes: Optional[int] = None
    cb_ppn: Optional[int] = None
    cb_buffer_size: Optional[int] = None
    #: Read-side cache coupling: ``True`` keeps/enables client read-ahead
    #: (contiguous cached reads), ``False`` disables it (scatter-fed or
    #: direct-read schedules never benefit), ``None`` leaves the handle's
    #: policy alone (write decisions).
    read_ahead: Optional[bool] = None
    _delegate: Optional[PipelineStrategy] = field(
        default=None, repr=False, compare=False
    )

    def delegate(self) -> PipelineStrategy:
        """The (shared, cached) strategy instance implementing the decision."""
        if self._delegate is None:
            self._delegate = self._build()
        return self._delegate

    def _build(self) -> PipelineStrategy:
        if self.strategy == "two-phase":
            return TwoPhaseStrategy(
                num_aggregators=self.cb_nodes, cb_buffer_size=self.cb_buffer_size
            )
        if self.strategy == "two-phase-hier":
            return HierarchicalTwoPhaseStrategy(
                num_aggregators=self.cb_nodes,
                cb_buffer_size=self.cb_buffer_size,
                ranks_per_node=self.cb_ppn,
            )
        if self.strategy == "rank-ordering":
            return RankOrderingStrategy()
        if self.strategy == "locking":
            # Import here: the locking strategy is only reachable on machines
            # that support locks, and keeping the hot imports minimal.
            from .strategies import LockingStrategy

            return LockingStrategy()
        raise ValueError(f"unknown tuned strategy {self.strategy!r}")

    def hints(self) -> Dict[str, float]:
        """The derived ``cb_*`` hints as numeric plan/outcome extras."""
        out: Dict[str, float] = {}
        if self.cb_nodes is not None:
            out["cb_nodes"] = float(self.cb_nodes)
        if self.cb_ppn is not None:
            out["cb_ppn"] = float(self.cb_ppn)
        if self.cb_buffer_size is not None:
            out["cb_buffer_size"] = float(self.cb_buffer_size)
        if self.read_ahead is not None:
            out["read_ahead"] = 1.0 if self.read_ahead else 0.0
        return out


class HintEngine:
    """Maps ``(PatternSignature, MachineModel)`` to a :class:`TuningDecision`.

    The rules mirror ROMIO-style heuristics, adapted to what the simulation
    actually rewards (measured against the deterministic cost model):

    * **contiguous** views — each rank owns an (almost) private byte range —
      want no aggregation at all: ``rank-ordering`` trims the small ghost
      overlaps and writes fully in parallel.
    * **interleaved** views (strided / block-block / irregular) want
      two-phase aggregation: the aggregate domain is re-partitioned into
      contiguous per-aggregator chunks, converting the fine-grained
      interleave into large sequential writes.  ``cb_nodes`` is capped at
      the I/O server count once ``P`` exceeds it — more writers than servers
      only adds shuffle fan-out — and ``cb_buffer_size`` records the
      stripe-aligned per-aggregator domain chunk.
    * at large ``P`` the flat shuffle's fan-out dominates, so the engine
      switches to the hierarchical variant with ``cb_ppn`` node-local
      combining.

    ``locking`` is never proposed: even where supported, the extent locks of
    interleaved patterns cover nearly the whole file and serialise (the
    paper's Section 3.4 argument), and ``auto`` must stay runnable on the
    lockless machines.
    """

    #: Above this rank count the flat alltoallv metadata dominates and the
    #: hierarchical strategy wins (PR 6's scale sweep).
    hier_threshold: int = 64
    #: Node width assumed when deriving ``cb_ppn`` (the paper's clusters).
    default_ppn: int = 8

    def decide(self, signature: PatternSignature, machine: MachineModel) -> TuningDecision:
        nprocs = max(1, signature.nprocs)
        if signature.kind == "contiguous":
            return TuningDecision(strategy="rank-ordering")
        domain_bytes = 1 << signature.domain_bucket
        if nprocs >= self.hier_threshold:
            ppn = self.default_ppn
            nodes = -(-nprocs // ppn)
            cb_nodes = max(1, min(nodes, max(machine.num_servers, nodes // 4)))
            return TuningDecision(
                strategy="two-phase-hier",
                cb_nodes=cb_nodes,
                cb_ppn=ppn,
                cb_buffer_size=self._chunk(domain_bytes, cb_nodes, machine),
            )
        # Half the server count measures best across the machine presets: it
        # keeps every server busy (two aggregators interleave on one server's
        # stripes) without paying the full shuffle fan-out of one aggregator
        # per server.
        cb_nodes = min(nprocs, max(1, machine.num_servers // 2))
        return TuningDecision(
            strategy="two-phase",
            cb_nodes=cb_nodes,
            cb_buffer_size=self._chunk(domain_bytes, cb_nodes, machine),
        )

    def decide_read(
        self, signature: PatternSignature, machine: MachineModel
    ) -> TuningDecision:
        """Read-side rules: fetch-parallel aggregation plus cache coupling.

        Reads invert the write economics.  A write wants few aggregators
        (fewer lock/commit streams at the servers); a read has no commit
        side, so the fetch phase scales with server parallelism and the only
        brake is shuffle latency.  Two aggregators per I/O server keeps every
        server's pipeline full without over-paying alltoallv latency — it
        reproduces the measured optimum on both the many-server (XFS, best at
        ``cb = P``) and single-server (ENFS, best at ``cb = 2``) presets.
        What also differs from writes is the client cache: contiguous readers
        walk their range sequentially, so read-ahead turns page misses into
        hits and stays on; aggregation delegates fetch *direct*
        (cache-bypassing) and scatter-feed the consumers, so read-ahead would
        only prefetch pages nobody reads through the cache — the decision
        switches it off.
        """
        nprocs = max(1, signature.nprocs)
        if signature.kind == "contiguous":
            return TuningDecision(strategy="rank-ordering", read_ahead=True)
        domain_bytes = 1 << signature.domain_bucket
        if nprocs >= self.hier_threshold:
            ppn = self.default_ppn
            nodes = -(-nprocs // ppn)
            cb_nodes = max(1, min(nodes, max(machine.num_servers, nodes // 4)))
            return TuningDecision(
                strategy="two-phase-hier",
                cb_nodes=cb_nodes,
                cb_ppn=ppn,
                cb_buffer_size=self._chunk(domain_bytes, cb_nodes, machine),
                read_ahead=False,
            )
        cb_nodes = min(nprocs, max(1, 2 * machine.num_servers))
        return TuningDecision(
            strategy="two-phase",
            cb_nodes=cb_nodes,
            cb_buffer_size=self._chunk(domain_bytes, cb_nodes, machine),
            read_ahead=False,
        )

    @staticmethod
    def _chunk(domain_bytes: int, cb_nodes: int, machine: MachineModel) -> int:
        """Stripe-aligned per-aggregator file-domain chunk."""
        stripe = max(1, machine.stripe_size)
        raw = -(-domain_bytes // max(1, cb_nodes))
        return max(stripe, -(-raw // stripe) * stripe)


# -- per-file tuning records --------------------------------------------------


@dataclass
class PlanEntry:
    """One cached collective plan: the exchanged views and their signature.

    The entry is mode-agnostic: a cached plan seeded by a write collective
    replays for a read of the same views (and vice versa) — the signature is
    looked up in the per-mode decision table at resolution time, so the two
    modes never hand each other the wrong decision.
    """

    signature: PatternSignature
    #: The shared exchanged region list.  Replayed *by identity* on a hit so
    #: the delegate's analysis/negotiation memos (keyed on region identity)
    #: hit as well.
    regions: List[FileRegionSet]
    #: Per-rank fingerprints ``(num_segments, total_bytes, hash(segments))``.
    fingerprints: Tuple[Tuple[int, int, int], ...]


class FileTuningRecord:
    """Adaptive-I/O state for one ``(file system, filename)`` pair.

    Shared by every rank's strategy instance (the simulated ranks live in one
    process and one :class:`~repro.fs.filesystem.ParallelFileSystem`), and —
    unlike the strategy instances — it survives ``Close``/``Open``: the hint
    cache (``decisions``) is the persistent layer, while ``entry`` (the plan
    cache) is dropped on every ``Set_view``/hint change.
    """

    def __init__(self) -> None:
        #: Persistent hint cache: signature -> tuning decision (writes).
        self.decisions: Dict[PatternSignature, TuningDecision] = {}
        #: Persistent read-side hint cache (reads reward different cache
        #: coupling, so the two modes keep separate tables).
        self.read_decisions: Dict[PatternSignature, TuningDecision] = {}
        #: Cross-collective plan cache (at most one live entry).
        self.entry: Optional[PlanEntry] = None
        #: Once-per-collective resolution memo, keyed on the identity of the
        #: shared allgather payload list (same scheme as ViewExchange).
        self.memo = _SharedMemo()
        #: Plan-cache accounting (collectives, not ranks).
        self.hits = 0
        self.misses = 0
        #: Host CPU spent resolving views (summed over ranks): what a warm
        #: collective actually saves.  Thread CPU time, so the blocked wait
        #: inside the allgather is excluded — this measures the payload
        #: construction, region rebuilding, classification and verification
        #: work, which is exactly the work the plan cache elides.
        self.cold_cpu = 0.0
        self.warm_cpu = 0.0


_RECORDS: Dict[Tuple[int, str], FileTuningRecord] = {}


def record_for(fs, filename: str) -> FileTuningRecord:
    """The (created-on-demand) tuning record for ``filename`` on ``fs``.

    Keyed by file-system identity so two simulated machines never share
    tuning state; a finalizer drops the record when the file system dies, so
    a recycled ``id()`` can never resurrect stale state.
    """
    key = (id(fs), str(filename))
    record = _RECORDS.get(key)
    if record is None:
        record = FileTuningRecord()
        _RECORDS[key] = record
        weakref.finalize(fs, _RECORDS.pop, key, None)
    return record


def peek_record(fs, filename: str) -> Optional[FileTuningRecord]:
    """The tuning record if one exists (no creation) — for tests/inspection."""
    return _RECORDS.get((id(fs), str(filename)))


def notify_view_change(fs, filename: str) -> None:
    """Invalidate the plan cache after ``Set_view`` (idempotent, per rank)."""
    record = peek_record(fs, filename)
    if record is not None:
        record.entry = None


def notify_hint_change(fs, filename: str) -> None:
    """Invalidate plans *and* decisions after a hint change (idempotent)."""
    record = peek_record(fs, filename)
    if record is not None:
        record.entry = None
        record.decisions.clear()
        record.read_decisions.clear()


# -- the adaptive strategy ----------------------------------------------------

#: A resolution: the shared region list, the signature, and the hit verdict.
#: (Mode-agnostic — the per-mode decision is looked up from the signature.)
_Resolution = Tuple[List[FileRegionSet], PatternSignature, bool]


@register_strategy
class AutoStrategy(PipelineStrategy):
    """``atomicity_strategy = auto``: classify, tune, cache, delegate.

    Collective-count parity with the statics: every write/read prepare is one
    allgather (plus, for aggregation delegates, the delegate's own shuffle),
    so makespans are directly comparable.  See the module docstring for the
    plan-cache protocol.
    """

    name = "auto"

    def __init__(self, plan_cache: bool = True) -> None:
        self.plan_cache = bool(plan_cache)
        self.engine = HintEngine()
        self._machine = MachineModel()
        self._record: Optional[FileTuningRecord] = None
        self._fallback: Optional[FileTuningRecord] = None
        #: The decision taken by the most recent collective (harness/jsonlog
        #: report it as ``selected_strategy`` + ``cb_*``).
        self.last_decision: Optional[TuningDecision] = None
        self.last_hit: bool = False

    @classmethod
    def from_info(cls, info) -> "AutoStrategy":
        """Read the ``plan_cache`` toggle (default on)."""
        return cls(plan_cache=info.get_bool("plan_cache", True))

    # -- context binding ------------------------------------------------------

    def bind_context(self, fs, filename: str) -> None:
        """Attach the per-file tuning record and the machine model.

        Called by the executors and :class:`repro.io.file.MPIFile` when the
        strategy is associated with a concrete file.  Unbound instances fall
        back to a private record and the default (lockless) machine model.
        """
        self._machine = MachineModel.from_fs(fs)
        self._record = record_for(fs, filename)

    def _active_record(self) -> FileTuningRecord:
        if self._record is not None:
            return self._record
        if self._fallback is None:
            self._fallback = FileTuningRecord()
        return self._fallback

    # -- resolution protocol --------------------------------------------------

    @staticmethod
    def _fingerprint(region: FileRegionSet) -> Tuple[int, int, int]:
        return (region.num_segments, region.total_bytes, hash(region.segments))

    def _decision_for(
        self, record: FileTuningRecord, signature: PatternSignature, mode: str
    ) -> TuningDecision:
        """Get-or-create the ``mode``'s decision for ``signature``."""
        table = record.decisions if mode == "write" else record.read_decisions
        decision = table.get(signature)
        if decision is None:
            decide = self.engine.decide if mode == "write" else self.engine.decide_read
            decision = decide(signature, self._machine)
            table[signature] = decision
        return decision

    def _resolve(
        self, comm, region: FileRegionSet, mode: str = "write"
    ) -> Tuple[List[FileRegionSet], TuningDecision, bool]:
        """One collective exchange resolving views, signature and decision.

        Exactly one allgather, whatever the cache state (see module doc).
        """
        record = self._active_record()
        cpu_start = time.thread_time()
        fingerprint = self._fingerprint(region)
        entry = record.entry
        claim_hit = (
            self.plan_cache
            and entry is not None
            and region.rank < len(entry.fingerprints)
            and entry.fingerprints[region.rank] == fingerprint
        )
        if claim_hit:
            payload: Tuple = ("hit",) + fingerprint
        else:
            payload = ("view",) + tuple(
                value for segment in region.segments for value in segment
            )
        shared = comm.allgather_shared(payload)
        key = id(shared)
        resolution = record.memo.get(key)
        if resolution is None:
            resolution = self._decide(comm.size, shared, record)
            record.memo.put(key, shared, resolution)
        regions, signature, hit = resolution
        decision = self._decision_for(record, signature, mode)
        if claim_hit:
            # Exact verification behind the O(1) fingerprint: a hash collision
            # must never let a stale plan touch the wrong bytes.
            if regions[region.rank].segments != region.segments:
                raise RuntimeError(
                    f"auto: plan-cache fingerprint collision on rank "
                    f"{region.rank}; cached view does not match the request"
                )
        self.last_decision = decision
        self.last_hit = hit
        elapsed = time.thread_time() - cpu_start
        if hit:
            record.warm_cpu += elapsed
        else:
            record.cold_cpu += elapsed
        return (regions, decision, hit)

    def _decide(self, comm_size: int, shared, record: FileTuningRecord) -> _Resolution:
        """The once-per-collective verdict, computed from the shared payloads.

        Runs exactly once per collective (memoised on the shared list) on
        whichever rank drains the allgather first; every mutation of the
        record therefore happens before any rank finishes its prepare, i.e.
        strictly before the next collective's cache guesses.
        """
        entry = record.entry
        if (
            entry is not None
            and comm_size == len(entry.fingerprints)
            and all(payload[0] == "hit" for payload in shared)
        ):
            for rank, payload in enumerate(shared):
                if tuple(payload[1:]) != entry.fingerprints[rank]:
                    raise RuntimeError(
                        f"auto: rank {rank} hit claim does not match the "
                        "cached plan entry"
                    )
            record.hits += 1
            return (entry.regions, entry.signature, True)
        regions: List[FileRegionSet] = []
        for rank, payload in enumerate(shared):
            tag = payload[0]
            if tag == "hit":
                if (
                    entry is None
                    or rank >= len(entry.fingerprints)
                    or entry.fingerprints[rank] != tuple(payload[1:])
                ):
                    raise RuntimeError(
                        f"auto: rank {rank} claimed a plan-cache hit with no "
                        "matching cached entry"
                    )
                regions.append(entry.regions[rank])
            elif tag == "view":
                flat = payload[1:]
                regions.append(FileRegionSet(rank, zip(flat[0::2], flat[1::2])))
            else:
                raise RuntimeError(
                    f"auto: malformed exchange payload from rank {rank}: {tag!r}"
                )
        signature = classify_pattern(regions)
        record.misses += 1
        record.entry = PlanEntry(
            signature=signature,
            regions=regions,
            fingerprints=tuple(self._fingerprint(r) for r in regions),
        )
        return (regions, signature, False)

    # -- the pipeline, via the delegate ---------------------------------------

    def prepare_write(self, comm, region, data, start_time):  # noqa: D102
        self._check_request(region, data)
        regions, decision, _ = self._resolve(comm, region)
        delegate = decision.delegate()
        report = delegate.analysis.run(regions)
        plan, payloads = delegate.schedule(comm, region, data, report)
        plan.strategy = self.name
        plan.extra.update(decision.hints())
        return PreparedWrite(plan=plan, payloads=payloads, start_time=start_time)

    def prepare_read(self, comm, region, start_time):  # noqa: D102
        regions, decision, _ = self._resolve(comm, region, mode="read")
        delegate = decision.delegate()
        report = delegate.analysis.run(regions)
        plan = delegate.schedule_read(comm, region, report)
        plan.strategy = self.name
        plan.extra.update(decision.hints())
        prepared = PreparedRead(
            plan=plan, report=report, region=region, start_time=start_time
        )
        # The delegate owns delivery (two-phase scatters from aggregators);
        # remember it for commit_read, which may run on a detached task.
        prepared.delegate = delegate
        prepared.decision = decision
        return prepared

    def commit_read(self, comm, handle, prepared):  # noqa: D102
        delegate = getattr(prepared, "delegate", None)
        if delegate is None:
            return super().commit_read(comm, handle, prepared)
        decision = getattr(prepared, "decision", None)
        if decision is not None and decision.read_ahead is not None:
            self._apply_read_ahead(handle, decision.read_ahead)
        return delegate.commit_read(comm, handle, prepared)

    @staticmethod
    def _apply_read_ahead(handle, enabled: bool) -> None:
        """Couple the decision's ``read_ahead`` verdict to the client cache.

        Free in simulated time (a pure policy swap) — it changes which pages
        future cached reads prefetch, not the clock.
        """
        cache = getattr(handle, "cache", None)
        if cache is None:
            return
        from ..fs.cache import CachePolicy

        policy = cache.policy
        pages = CachePolicy.read_ahead_pages if enabled else 0
        if policy.read_ahead_pages != pages:
            cache.policy = replace(policy, read_ahead_pages=pages)

    def schedule(self, comm, region, data, report):  # noqa: D102
        raise RuntimeError(
            "AutoStrategy delegates scheduling to the tuned strategy; "
            "prepare_write/prepare_read are the entry points"
        )

    # -- bulk-replay support ---------------------------------------------------

    def resolve_static(
        self, comm_size: int, regions: Sequence[FileRegionSet], mode: str = "write"
    ) -> TwoPhaseStrategy:
        """Classify and decide without a collective, for the bulk replay.

        The bulk executor already holds every rank's regions, so no exchange
        is needed; the plan cache does not apply (one-shot replay).  Raises
        :class:`TypeError` when the tuned strategy is not an aggregation
        schedule the replay can execute.
        """
        record = self._active_record()
        signature = classify_pattern(regions)
        decision = self._decision_for(record, signature, mode)
        self.last_decision = decision
        self.last_hit = False
        delegate = decision.delegate()
        if not isinstance(delegate, TwoPhaseStrategy):
            raise TypeError(
                f"auto selected {decision.strategy!r} for this pattern, which "
                "the bulk replay cannot execute; use the engine executors"
            )
        return delegate
