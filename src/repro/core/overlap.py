"""Overlap analysis between per-process file views.

The handshaking strategies of the paper (Section 3.3) both begin by having
every process learn which other processes its file view overlaps with:

* the **graph-coloring** strategy needs only a boolean overlap matrix ``W``
  (``W[i][j] = 1`` when process *i* and *j* access at least one common byte,
  Figure 5);
* the **process-rank ordering** strategy needs the *exact* overlapped byte
  ranges so each process can trim them from its own view (Figure 7).

Both are computed here from :class:`~repro.core.regions.FileRegionSet`
objects.  In the distributed implementation
(:class:`repro.core.strategies.GraphColoringStrategy` and friends) each rank
contributes its own flattened view through ``allgather`` and then runs these
routines locally — exactly the negotiation the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .intervals import IntervalSet, merge_interval_sets
from .regions import FileRegionSet

__all__ = [
    "OverlapMatrix",
    "build_overlap_matrix",
    "pairwise_overlap_regions",
    "overlapped_bytes_total",
    "conflict_free_groups_are_disjoint",
]


@dataclass(frozen=True)
class OverlapMatrix:
    """Boolean overlap matrix ``W`` over ``nprocs`` processes.

    ``matrix[i, j]`` is ``True`` when the file views of processes *i* and *j*
    (``i != j``) share at least one byte.  The matrix is symmetric with a
    ``False`` diagonal, as in Figure 5 of the paper.
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        m = self.matrix
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError("overlap matrix must be square")
        if m.dtype != np.bool_:
            raise ValueError("overlap matrix must be boolean")
        if np.any(np.diag(m)):
            raise ValueError("overlap matrix diagonal must be False")
        if not np.array_equal(m, m.T):
            raise ValueError("overlap matrix must be symmetric")

    @property
    def nprocs(self) -> int:
        """Number of processes the matrix describes."""
        return self.matrix.shape[0]

    def neighbors(self, rank: int) -> List[int]:
        """Ranks whose views overlap ``rank``'s view."""
        return [int(j) for j in np.nonzero(self.matrix[rank])[0]]

    def degree(self, rank: int) -> int:
        """Number of overlapping neighbours of ``rank``."""
        return int(self.matrix[rank].sum())

    def max_degree(self) -> int:
        """Largest neighbour count over all ranks (0 for an empty graph)."""
        if self.nprocs == 0:
            return 0
        return int(self.matrix.sum(axis=1).max())

    def has_any_overlap(self) -> bool:
        """True when at least one pair of processes overlaps."""
        return bool(self.matrix.any())

    def edges(self) -> List[Tuple[int, int]]:
        """All overlapping pairs ``(i, j)`` with ``i < j``."""
        out: List[Tuple[int, int]] = []
        n = self.nprocs
        for i in range(n):
            for j in range(i + 1, n):
                if self.matrix[i, j]:
                    out.append((i, j))
        return out

    def as_int_matrix(self) -> np.ndarray:
        """The matrix as 0/1 integers (the form printed in Figure 6)."""
        return self.matrix.astype(np.int8)


def _flatten_sorted(
    regions: Sequence[FileRegionSet],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All coverage intervals of all ranks, as flat arrays sorted by start.

    Returns ``(starts, stops, ranks)``.  Each rank's own coverage is already
    normalised (disjoint, file-ordered), so the concatenation is one array
    append per rank and the only sort is the global one.
    """
    parts_s: List[np.ndarray] = []
    parts_e: List[np.ndarray] = []
    parts_r: List[np.ndarray] = []
    for region in regions:
        cov = region.coverage
        k = len(cov.starts)
        if not k:
            continue
        parts_s.append(cov.starts)
        parts_e.append(cov.stops)
        parts_r.append(np.full(k, region.rank, dtype=np.int64))
    if not parts_s:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    starts = np.concatenate(parts_s)
    stops = np.concatenate(parts_e)
    ranks = np.concatenate(parts_r)
    order = np.lexsort((stops, starts))
    return starts[order], stops[order], ranks[order]


def _overlapping_interval_pairs(
    starts: np.ndarray, stops: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Index pairs ``(i, j)``, ``i < j``, of overlapping intervals.

    ``starts`` must be ascending.  Because interval ``i`` overlaps a
    later-starting interval ``j`` exactly when ``starts[j] < stops[i]``, the
    overlap partners of ``i`` form the contiguous index run
    ``(i, searchsorted(starts, stops[i]))`` — so the enumeration visits only
    the actually-overlapping pairs, never the full ``O(E^2)`` cross product.
    """
    n = len(starts)
    if n < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    reach = np.searchsorted(starts, stops, side="left")
    counts = reach - np.arange(1, n + 1, dtype=np.int64)
    np.maximum(counts, 0, out=counts)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    i_idx = np.repeat(np.arange(n, dtype=np.int64), counts)
    bases = np.cumsum(counts) - counts
    j_idx = np.arange(total, dtype=np.int64) - bases[i_idx] + i_idx + 1
    return i_idx, j_idx


def build_overlap_matrix(regions: Sequence[FileRegionSet]) -> OverlapMatrix:
    """Construct the boolean overlap matrix ``W`` from all processes' views.

    ``regions[i]`` must be the view of rank ``i``.  One global sort of the
    file-ordered intervals followed by a bisection sweep enumerates exactly
    the overlapping interval pairs, so the cost is ``O(E log E + K)`` for
    ``E`` total intervals and ``K`` overlapping pairs — for the paper's
    partitioned workloads (each byte touched by a handful of ranks) this is
    near-linear in ``E``, which is what makes colouring feasible at tens of
    thousands of ranks.
    """
    n = len(regions)
    for rank, region in enumerate(regions):
        if region.rank != rank:
            raise ValueError(
                f"regions must be ordered by rank: index {rank} holds rank {region.rank}"
            )
    w = np.zeros((n, n), dtype=np.bool_)
    starts, stops, ranks = _flatten_sorted(regions)
    i_idx, j_idx = _overlapping_interval_pairs(starts, stops)
    if len(i_idx):
        ri, rj = ranks[i_idx], ranks[j_idx]
        distinct = ri != rj
        ri, rj = ri[distinct], rj[distinct]
        w[ri, rj] = True
        w[rj, ri] = True
    return OverlapMatrix(w)


def pairwise_overlap_regions(
    regions: Sequence[FileRegionSet],
) -> Dict[Tuple[int, int], IntervalSet]:
    """Exact overlapped byte ranges for every overlapping pair ``(i, j)``, i<j.

    This is the information the process-rank ordering strategy needs: unlike
    the coloring strategy's single bit per pair, rank ordering must know the
    byte ranges so lower ranks can surrender exactly those bytes.  The same
    bisection sweep as :func:`build_overlap_matrix` enumerates only the
    actually-overlapping interval pairs, then one argsort groups the clipped
    pieces by process pair — no ``O(P^2)`` pass over non-overlapping pairs.
    """
    out: Dict[Tuple[int, int], IntervalSet] = {}
    n = len(regions)
    starts, stops, ranks = _flatten_sorted(regions)
    i_idx, j_idx = _overlapping_interval_pairs(starts, stops)
    if not len(i_idx):
        return out
    ri, rj = ranks[i_idx], ranks[j_idx]
    distinct = ri != rj
    if not distinct.any():
        return out
    i_idx, j_idx, ri, rj = i_idx[distinct], j_idx[distinct], ri[distinct], rj[distinct]
    # Clip each overlapping pair: starts are ascending, so the later-starting
    # interval's start is the overlap's low edge.
    lo = starts[j_idx]
    hi = np.minimum(stops[i_idx], stops[j_idx])
    key = np.minimum(ri, rj) * n + np.maximum(ri, rj)
    order = np.lexsort((lo, key))
    key, lo, hi = key[order], lo[order], hi[order]
    heads = np.flatnonzero(np.concatenate(([True], key[1:] != key[:-1])))
    bounds = np.append(heads, len(key))
    for h, head in enumerate(heads):
        tail = bounds[h + 1]
        pair = int(key[head])
        out[(pair // n, pair % n)] = IntervalSet.from_arrays(
            lo[head:tail], hi[head:tail]
        )
    return out


def overlapped_bytes_total(regions: Sequence[FileRegionSet]) -> int:
    """Total number of file bytes written by more than one process.

    One coverage-depth sweep over all intervals (each process's own view is
    overlap-free by construction, so depth >= 2 at a byte means two distinct
    processes), costing ``O(E log E)`` for ``E`` total intervals instead of
    a pairwise intersection over all process pairs.
    """
    starts, stops, _ = _flatten_sorted(regions)
    if not len(starts):
        return 0
    positions = np.concatenate((starts, stops))
    deltas = np.concatenate(
        (np.ones(len(starts), dtype=np.int64), -np.ones(len(stops), dtype=np.int64))
    )
    order = np.lexsort((deltas, positions))
    positions, deltas = positions[order], deltas[order]
    depth = np.cumsum(deltas)
    covered = (positions[1:] - positions[:-1])[depth[:-1] >= 2]
    return int(covered.sum())


def conflict_free_groups_are_disjoint(
    regions: Sequence[FileRegionSet], groups: Sequence[Sequence[int]]
) -> bool:
    """Check that no two ranks placed in the same group overlap.

    Used to validate graph-coloring output: every colour class must be an
    independent set of the overlap graph.
    """
    for group in groups:
        members = list(group)
        for a_idx in range(len(members)):
            for b_idx in range(a_idx + 1, len(members)):
                if regions[members[a_idx]].overlaps(regions[members[b_idx]]):
                    return False
    return True
