"""Overlap analysis between per-process file views.

The handshaking strategies of the paper (Section 3.3) both begin by having
every process learn which other processes its file view overlaps with:

* the **graph-coloring** strategy needs only a boolean overlap matrix ``W``
  (``W[i][j] = 1`` when process *i* and *j* access at least one common byte,
  Figure 5);
* the **process-rank ordering** strategy needs the *exact* overlapped byte
  ranges so each process can trim them from its own view (Figure 7).

Both are computed here from :class:`~repro.core.regions.FileRegionSet`
objects.  In the distributed implementation
(:class:`repro.core.strategies.GraphColoringStrategy` and friends) each rank
contributes its own flattened view through ``allgather`` and then runs these
routines locally — exactly the negotiation the paper describes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .intervals import IntervalSet, merge_interval_sets
from .regions import FileRegionSet

__all__ = [
    "OverlapMatrix",
    "build_overlap_matrix",
    "pairwise_overlap_regions",
    "overlapped_bytes_total",
    "conflict_free_groups_are_disjoint",
]


@dataclass(frozen=True)
class OverlapMatrix:
    """Boolean overlap matrix ``W`` over ``nprocs`` processes.

    ``matrix[i, j]`` is ``True`` when the file views of processes *i* and *j*
    (``i != j``) share at least one byte.  The matrix is symmetric with a
    ``False`` diagonal, as in Figure 5 of the paper.
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        m = self.matrix
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError("overlap matrix must be square")
        if m.dtype != np.bool_:
            raise ValueError("overlap matrix must be boolean")
        if np.any(np.diag(m)):
            raise ValueError("overlap matrix diagonal must be False")
        if not np.array_equal(m, m.T):
            raise ValueError("overlap matrix must be symmetric")

    @property
    def nprocs(self) -> int:
        """Number of processes the matrix describes."""
        return self.matrix.shape[0]

    def neighbors(self, rank: int) -> List[int]:
        """Ranks whose views overlap ``rank``'s view."""
        return [int(j) for j in np.nonzero(self.matrix[rank])[0]]

    def degree(self, rank: int) -> int:
        """Number of overlapping neighbours of ``rank``."""
        return int(self.matrix[rank].sum())

    def max_degree(self) -> int:
        """Largest neighbour count over all ranks (0 for an empty graph)."""
        if self.nprocs == 0:
            return 0
        return int(self.matrix.sum(axis=1).max())

    def has_any_overlap(self) -> bool:
        """True when at least one pair of processes overlaps."""
        return bool(self.matrix.any())

    def edges(self) -> List[Tuple[int, int]]:
        """All overlapping pairs ``(i, j)`` with ``i < j``."""
        out: List[Tuple[int, int]] = []
        n = self.nprocs
        for i in range(n):
            for j in range(i + 1, n):
                if self.matrix[i, j]:
                    out.append((i, j))
        return out

    def as_int_matrix(self) -> np.ndarray:
        """The matrix as 0/1 integers (the form printed in Figure 6)."""
        return self.matrix.astype(np.int8)


def build_overlap_matrix(regions: Sequence[FileRegionSet]) -> OverlapMatrix:
    """Construct the boolean overlap matrix ``W`` from all processes' views.

    ``regions[i]`` must be the view of rank ``i``.  A sweep over the
    file-ordered intervals marks an edge for every pair simultaneously
    active at some byte, so the cost is ``O(E log E + K)`` for ``E`` total
    intervals and ``K`` active-pair encounters — for the paper's partitioned
    workloads (each byte touched by a handful of ranks) this is near-linear
    in ``E``, which is what makes colouring feasible at thousands of ranks.
    """
    n = len(regions)
    for rank, region in enumerate(regions):
        if region.rank != rank:
            raise ValueError(
                f"regions must be ordered by rank: index {rank} holds rank {region.rank}"
            )
    w = np.zeros((n, n), dtype=np.bool_)
    intervals = [
        (iv.start, iv.stop, region.rank)
        for region in regions
        for iv in region.coverage
    ]
    intervals.sort()
    active: list = []  # heap of (stop, rank)
    for start, stop, rank in intervals:
        while active and active[0][0] <= start:
            heapq.heappop(active)
        for _, other in active:
            if other != rank:
                w[rank, other] = w[other, rank] = True
        heapq.heappush(active, (stop, rank))
    return OverlapMatrix(w)


def pairwise_overlap_regions(
    regions: Sequence[FileRegionSet],
) -> Dict[Tuple[int, int], IntervalSet]:
    """Exact overlapped byte ranges for every overlapping pair ``(i, j)``, i<j.

    This is the information the process-rank ordering strategy needs: unlike
    the coloring strategy's single bit per pair, rank ordering must know the
    byte ranges so lower ranks can surrender exactly those bytes.
    """
    out: Dict[Tuple[int, int], IntervalSet] = {}
    n = len(regions)
    for i in range(n):
        for j in range(i + 1, n):
            inter = regions[i].overlap_region(regions[j])
            if not inter.is_empty():
                out[(i, j)] = inter
    return out


def overlapped_bytes_total(regions: Sequence[FileRegionSet]) -> int:
    """Total number of file bytes written by more than one process.

    One coverage-depth sweep over all intervals (each process's own view is
    overlap-free by construction, so depth >= 2 at a byte means two distinct
    processes), costing ``O(E log E)`` for ``E`` total intervals instead of
    a pairwise intersection over all process pairs.
    """
    events: List[Tuple[int, int]] = []
    for region in regions:
        for iv in region.coverage:
            events.append((iv.start, +1))
            events.append((iv.stop, -1))
    events.sort()
    depth = 0
    overlapped = 0
    prev = 0
    for position, delta in events:
        if depth >= 2:
            overlapped += position - prev
        prev = position
        depth += delta
    return overlapped


def conflict_free_groups_are_disjoint(
    regions: Sequence[FileRegionSet], groups: Sequence[Sequence[int]]
) -> bool:
    """Check that no two ranks placed in the same group overlap.

    Used to validate graph-coloring output: every colour class must be an
    independent set of the overlap graph.
    """
    for group in groups:
        members = list(group)
        for a_idx in range(len(members)):
            for b_idx in range(a_idx + 1, len(members)):
                if regions[members[a_idx]].overlaps(regions[members[b_idx]]):
                    return False
    return True
