"""The paper's primary contribution: MPI atomicity strategies.

Interval algebra, file-view region sets, overlap analysis, greedy graph
colouring, process-rank ordering, the three atomicity strategies and the
concurrent-write executor.
"""

from .intervals import Interval, IntervalSet, merge_interval_sets
from .regions import FileRegionSet, build_region_sets
from .overlap import (
    OverlapMatrix,
    build_overlap_matrix,
    conflict_free_groups_are_disjoint,
    overlapped_bytes_total,
    pairwise_overlap_regions,
)
from .coloring import ColoringResult, chromatic_lower_bound, color_groups, greedy_coloring, validate_coloring
from .rank_ordering import (
    HIGHER_RANK_WINS,
    LOWER_RANK_WINS,
    RankOrderingResult,
    resolve_by_rank,
    verify_coverage_preserved,
    verify_disjoint,
)
from .pipeline import (
    ConflictAnalysis,
    ConflictReport,
    LockDirective,
    PhasePlan,
    PhaseRunner,
    ReadPhasePlan,
    ReadPlan,
    ReadRunner,
    ReadStep,
    ViewExchange,
    WritePlan,
    WriteStep,
)
from .registry import StrategyRegistry, default_registry, register_strategy
from .aggregation import (
    AggregatedRun,
    assemble_stream,
    choose_aggregators,
    merge_pieces,
    partition_domain,
    scatter_pieces,
)
from .strategies import (
    STRATEGY_NAMES,
    AtomicityStrategy,
    GraphColoringStrategy,
    LockingStrategy,
    NoAtomicityStrategy,
    PipelineStrategy,
    RankOrderingStrategy,
    ReadOutcome,
    TwoPhaseStrategy,
    WriteOutcome,
    strategy_by_name,
)
from .executor import (
    AtomicWriteExecutor,
    CollectiveReadExecutor,
    ConcurrentReadResult,
    ConcurrentWriteResult,
    default_data_factory,
)
from .analysis import ColumnWiseCase, StrategyEstimate, analyze_regions, estimate_column_wise

__all__ = [
    "Interval",
    "IntervalSet",
    "merge_interval_sets",
    "FileRegionSet",
    "build_region_sets",
    "OverlapMatrix",
    "build_overlap_matrix",
    "pairwise_overlap_regions",
    "overlapped_bytes_total",
    "conflict_free_groups_are_disjoint",
    "ColoringResult",
    "greedy_coloring",
    "validate_coloring",
    "color_groups",
    "chromatic_lower_bound",
    "RankOrderingResult",
    "resolve_by_rank",
    "verify_disjoint",
    "verify_coverage_preserved",
    "HIGHER_RANK_WINS",
    "LOWER_RANK_WINS",
    "AtomicityStrategy",
    "PipelineStrategy",
    "NoAtomicityStrategy",
    "LockingStrategy",
    "GraphColoringStrategy",
    "RankOrderingStrategy",
    "TwoPhaseStrategy",
    "WriteOutcome",
    "ReadOutcome",
    "strategy_by_name",
    "STRATEGY_NAMES",
    "ViewExchange",
    "ConflictAnalysis",
    "ConflictReport",
    "LockDirective",
    "WriteStep",
    "PhasePlan",
    "WritePlan",
    "PhaseRunner",
    "ReadStep",
    "ReadPhasePlan",
    "ReadPlan",
    "ReadRunner",
    "StrategyRegistry",
    "default_registry",
    "register_strategy",
    "AggregatedRun",
    "choose_aggregators",
    "partition_domain",
    "merge_pieces",
    "scatter_pieces",
    "assemble_stream",
    "AtomicWriteExecutor",
    "ConcurrentWriteResult",
    "CollectiveReadExecutor",
    "ConcurrentReadResult",
    "default_data_factory",
    "ColumnWiseCase",
    "StrategyEstimate",
    "estimate_column_wise",
    "analyze_regions",
]
