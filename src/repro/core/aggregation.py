"""Two-phase I/O aggregation: aggregator election, file-domain partitioning
and conflict-resolving merge.

The two-phase (collective buffering) strategy — ROMIO's classic optimisation
and the natural next point of comparison to the paper's Section 3 family —
splits a concurrent overlapping write into a communication phase and an I/O
phase:

1. a subset of ranks is elected as **aggregators**, and the *file domain*
   (the union of every rank's file view) is partitioned among them into
   disjoint, file-ordered chunks of near-equal byte counts;
2. every rank ships the data for each file byte it covers to the aggregator
   owning that byte (an ``alltoallv``-style shuffle); each aggregator merges
   the incoming pieces, resolving overlapped bytes by the same priority rule
   as process-rank ordering (highest-priority covering rank wins);
3. the aggregators write their now pairwise-disjoint chunks fully in
   parallel — no locks, no inter-phase barriers.

MPI atomicity holds by construction: after the merge every overlapped byte
carries exactly one rank's data, chosen by a fixed total order, and the
aggregators' write ranges never intersect.

This module holds the deterministic, communication-free pieces (every rank
computes the identical election and partitioning from the exchanged views);
the shuffle itself lives in
:class:`repro.core.strategies.TwoPhaseStrategy`.

The **two-phase collective read** is the mirror image: the aggregators each
read their disjoint file-domain chunk *once* (so an overlapped byte costs one
server read no matter how many consumers want it), then scatter the pieces of
every consumer's view back through the same ``alltoallv`` primitive.
:func:`scatter_pieces` cuts an aggregator's fetched chunk into per-consumer
pieces and :func:`assemble_stream` places the received pieces into a
consumer's contiguous data stream.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .intervals import IntervalSet, clip_many, clip_sorted_runs, merge_interval_sets
from .rank_ordering import HIGHER_RANK_WINS, PriorityPolicy

__all__ = [
    "AggregatedRun",
    "choose_aggregators",
    "node_leaders",
    "choose_node_aggregators",
    "partition_domain",
    "merge_pieces",
    "merge_origin_runs",
    "route_stream",
    "scatter_pieces",
    "node_coverages",
    "gather_runs",
    "assemble_stream",
]

#: One contiguous merged extent an aggregator writes: the winning data and
#: the rank it originated from (recorded as the write's provenance).
@dataclass(frozen=True)
class AggregatedRun:
    offset: int
    data: bytes
    origin: int

    @property
    def length(self) -> int:
        """Bytes in the run."""
        return len(self.data)


def choose_aggregators(nprocs: int, num_aggregators: int) -> List[int]:
    """Elect ``num_aggregators`` evenly spaced ranks as I/O aggregators.

    Deterministic so that every rank elects the identical set without
    communication.  Rank 0 is always an aggregator (ROMIO's convention).
    """
    if nprocs <= 0:
        raise ValueError("nprocs must be positive")
    count = max(1, min(num_aggregators, nprocs))
    return [(i * nprocs) // count for i in range(count)]


def node_leaders(nprocs: int, ranks_per_node: int) -> List[int]:
    """First rank of every node under a block rank-to-node placement.

    With ``ranks_per_node`` consecutive ranks per node (the default MPI
    block mapping), rank ``r`` lives on node ``r // ranks_per_node`` and the
    node's leader is its lowest rank.  Deterministic, so every rank elects
    the identical leaders without communication.
    """
    if nprocs <= 0:
        raise ValueError("nprocs must be positive")
    if ranks_per_node <= 0:
        raise ValueError("ranks_per_node must be positive")
    return list(range(0, nprocs, ranks_per_node))


def choose_node_aggregators(
    nprocs: int, ranks_per_node: int, num_aggregator_nodes: int
) -> List[int]:
    """Elect topology-aware global aggregators: evenly spaced *node leaders*.

    The two-level scheme's upper tier.  ``num_aggregator_nodes`` (the
    ``cb_nodes`` hint) picks that many nodes, evenly spread over the job, and
    each contributes its leader rank as a global aggregator — so global
    aggregation traffic enters every chosen node exactly once instead of
    hitting arbitrary ranks.  Rank 0's node is always included (ROMIO's
    convention, as in :func:`choose_aggregators`).
    """
    leaders = node_leaders(nprocs, ranks_per_node)
    picks = choose_aggregators(len(leaders), num_aggregator_nodes)
    return [leaders[i] for i in picks]


def partition_domain(domain: IntervalSet, num_chunks: int) -> List[IntervalSet]:
    """Split the aggregate file domain into ``num_chunks`` file-ordered chunks.

    Chunk byte counts differ by at most one, mirroring ROMIO's
    ``fd_start``/``fd_end`` assignment but on the *covered* bytes only, so a
    sparse domain still balances the actual I/O volume.  Chunks may be empty
    when the domain has fewer bytes than there are aggregators.
    """
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    total = domain.total_bytes
    base, extra = divmod(total, num_chunks)
    targets = [base + (1 if i < extra else 0) for i in range(num_chunks)]
    chunks: List[IntervalSet] = []
    pending = iter(domain)
    current = next(pending, None)
    for want in targets:
        pieces: List[Tuple[int, int]] = []
        while want > 0 and current is not None:
            take = min(want, current.length)
            pieces.append((current.start, take))
            want -= take
            if take == current.length:
                current = next(pending, None)
            else:
                current = type(current)(current.start + take, current.stop)
        chunks.append(IntervalSet.from_segments(pieces))
    return chunks


def merge_pieces(
    pieces_by_sender: Sequence[Tuple[int, Sequence[Tuple[int, bytes]]]],
    policy: PriorityPolicy = HIGHER_RANK_WINS,
) -> List[AggregatedRun]:
    """Merge shuffled pieces into disjoint runs, resolving conflicts.

    ``pieces_by_sender`` maps each sending rank to its ``(file_offset, data)``
    pieces (already restricted to this aggregator's file-domain chunk).
    Senders are applied from lowest to highest priority, so the
    highest-priority rank's bytes win every contested range — the same
    winner process-rank ordering would pick, keeping the two strategies
    byte-for-byte comparable.  Priority ties (a non-injective policy) break
    towards the *lower* rank, matching :func:`resolve_by_rank`'s stable
    highest-priority-first claiming order.

    Returns contiguous runs of constant origin, in file order.
    """
    flat = [
        (rank, int(off), bytes(data))
        for rank, pieces in pieces_by_sender
        for off, data in pieces
        if len(data) > 0
    ]
    return merge_origin_runs(flat, policy)


def merge_origin_runs(
    runs: Sequence[Tuple[int, int, bytes]],
    policy: PriorityPolicy = HIGHER_RANK_WINS,
) -> List[AggregatedRun]:
    """Merge ``(origin_rank, file_offset, data)`` runs, resolving conflicts.

    The general form of :func:`merge_pieces`: each run carries its own origin
    rank instead of inheriting it from the sender, so *pre-merged* runs (a
    node-local aggregator's output, whose bytes originate from several ranks)
    can be merged again at a higher tier.  Because the winner of every byte
    is the covering origin with the highest ``(policy(origin), -origin)``
    order — a fixed total order independent of grouping — merging node-local
    results and then merging across nodes yields exactly the bytes a single
    flat merge would: the property that makes two-level aggregation
    byte-identical to single-level.
    """
    flat = [
        (int(origin), int(off), bytes(data))
        for origin, off, data in runs
        if len(data) > 0
    ]
    if not flat:
        return []
    # Merge densely only within each connected covered extent, so a sparse
    # domain (pieces straddling a large file hole) costs memory proportional
    # to the covered bytes, never to the overall offset span.
    coverage = IntervalSet.from_segments([(off, len(data)) for _, off, data in flat])
    components = coverage.intervals
    component_starts = [iv.start for iv in components]
    grouped: List[List[Tuple[int, int, bytes]]] = [[] for _ in components]
    # Ascending (priority, -rank): the last writer of a byte wins, so the
    # highest priority — and on ties the lowest rank, as in resolve_by_rank —
    # is applied last.
    for item in sorted(flat, key=lambda item: (policy(item[0]), -item[0], item[1])):
        # Each piece is contiguous, hence fully inside one covered component.
        idx = bisect_right(component_starts, item[1]) - 1
        grouped[idx].append(item)
    runs: List[AggregatedRun] = []
    for component, items in zip(components, grouped):
        lo, span = component.start, component.length
        merged = np.zeros(span, dtype=np.uint8)
        origin = np.full(span, -1, dtype=np.int32)
        for rank, off, data in items:
            a = off - lo
            b = a + len(data)
            merged[a:b] = np.frombuffer(data, dtype=np.uint8)
            origin[a:b] = rank
        change = np.flatnonzero(np.diff(origin) != 0) + 1
        starts = np.concatenate(([0], change))
        stops = np.concatenate((change, [span]))
        for s, e in zip(starts, stops):
            who = int(origin[s])
            if who < 0:
                continue
            runs.append(
                AggregatedRun(offset=lo + int(s), data=merged[s:e].tobytes(), origin=who)
            )
    return runs


def route_stream(
    buffer_map: Sequence[Tuple[int, int, int]],
    data: bytes,
    piece_starts: Sequence[int],
    piece_stops: Sequence[int],
    pieces: Sequence[Tuple[int, int, int]],
):
    """Route one rank's data stream through the file-domain piece table.

    ``buffer_map`` is the rank's view as ``(buffer_offset, file_offset,
    length)`` triples (:meth:`~repro.core.regions.FileRegionSet.buffer_map`);
    ``pieces`` is the negotiated file-ordered routing table ``(start, stop,
    aggregator_rank)`` with ``piece_starts``/``piece_stops`` its bisection
    index.  Yields ``(aggregator_rank, file_offset, chunk)`` for every routed
    piece of the stream — the shuffle send-side shared by the engine schedule
    (:meth:`~repro.core.strategies.TwoPhaseStrategy.schedule`) and the bulk
    replay.  Bisection keeps the cost proportional to the rank's own segment
    count, not the aggregator count.
    """
    for buf_off, file_off, length in buffer_map:
        for lo, hi, idx in clip_sorted_runs(
            piece_starts, piece_stops, file_off, file_off + length
        ):
            yield (
                pieces[idx][2],
                lo,
                data[buf_off + (lo - file_off) : buf_off + (hi - file_off)],
            )


def scatter_pieces(
    held: Sequence[Tuple[int, int, int]],
    buffer: "bytes | bytearray",
    coverages: Sequence[IntervalSet],
) -> List[List[Tuple[int, bytes]]]:
    """Cut an aggregator's fetched file-domain chunk into per-consumer pieces.

    ``held`` lists the aggregator's resident runs as ``(start, stop,
    buffer_offset)`` triples in file order: file bytes ``[start, stop)`` live
    at ``buffer[buffer_offset : buffer_offset + (stop - start)]``.
    ``coverages[r]`` is consumer ``r``'s requested byte set.  Returns, for
    each consumer, the ``(file_offset, data)`` pieces of its request that
    this aggregator holds — the send buffers of the scatter half of a
    two-phase collective read.

    Routed by one batch clip of every consumer interval against the
    file-ordered runs, so the cost scales with the consumers' piece count,
    not with ``len(held) * len(coverages)``.
    """
    out: List[List[Tuple[int, bytes]]] = [[] for _ in coverages]
    if not held:
        return out
    run_starts = np.fromiter((s for s, _, _ in held), dtype=np.int64, count=len(held))
    run_stops = np.fromiter((e for _, e, _ in held), dtype=np.int64, count=len(held))
    run_bufs = np.fromiter((b for _, _, b in held), dtype=np.int64, count=len(held))
    # Flatten every consumer's request intervals into one query batch, with a
    # parallel array recording which consumer each query belongs to.
    q_starts = [c.starts for c in coverages if len(c.starts)]
    if not q_starts:
        return out
    q_stops = [c.stops for c in coverages if len(c.starts)]
    q_dest = [
        np.full(len(c.starts), dest, dtype=np.int64)
        for dest, c in enumerate(coverages)
        if len(c.starts)
    ]
    a_idx, b_idx, lo, hi = clip_many(
        np.concatenate(q_starts), np.concatenate(q_stops), run_starts, run_stops
    )
    dest_of = np.concatenate(q_dest)
    piece_dest = dest_of[a_idx].tolist()
    src = (run_bufs[b_idx] + (lo - run_starts[b_idx])).tolist()
    for dest, piece_lo, piece_src, piece_hi in zip(
        piece_dest, lo.tolist(), src, hi.tolist()
    ):
        out[dest].append(
            (piece_lo, bytes(buffer[piece_src : piece_src + (piece_hi - piece_lo)]))
        )
    return out


def node_coverages(
    coverages: Sequence[IntervalSet], ranks_per_node: int
) -> List[IntervalSet]:
    """Union of the consumers' requested byte sets, one set per node.

    ``coverages[r]`` is rank ``r``'s request; under the block rank-to-node
    placement (``ranks_per_node`` consecutive ranks per node, as in
    :func:`node_leaders`) the union of a node's requests is what must cross
    the inter-node network to that node *once* in a hierarchical read —
    however many of the node's ranks ask for the same byte.  Deterministic
    and communication-free, like the rest of the negotiation.
    """
    if ranks_per_node <= 0:
        raise ValueError("ranks_per_node must be positive")
    return [
        merge_interval_sets(coverages[base : base + ranks_per_node])
        for base in range(0, len(coverages), ranks_per_node)
    ]


def gather_runs(
    pieces: Sequence[Tuple[int, bytes]],
) -> Tuple[List[Tuple[int, int, int]], bytearray]:
    """Splice disjoint ``(file_offset, data)`` pieces into resident runs.

    The inverse of one :func:`scatter_pieces` cut: the pieces a node leader
    received from the global aggregators become ``(start, stop,
    buffer_offset)`` runs over one concatenated buffer — the exact ``held`` /
    ``buffer`` shape :func:`scatter_pieces` consumes, so the leader can cut
    again for its local ranks.  Pieces must be pairwise disjoint (aggregator
    file domains are), else ``ValueError``.
    """
    held: List[Tuple[int, int, int]] = []
    buffer = bytearray()
    for off, data in sorted(pieces):
        if not data:
            continue
        if held and off < held[-1][1]:
            raise ValueError(
                "overlapping pieces delivered to gather_runs: "
                f"[{held[-1][0]}, {held[-1][1]}) and [{off}, {off + len(data)}) "
                "share bytes"
            )
        held.append((off, off + len(data), len(buffer)))
        buffer.extend(data)
    return held, buffer


def assemble_stream(
    pieces: Sequence[Tuple[int, bytes]],
    buffer_map: Sequence[Tuple[int, int, int]],
    total_bytes: int,
) -> Tuple[bytes, int]:
    """Place received ``(file_offset, data)`` pieces into a contiguous stream.

    ``buffer_map`` is the consumer's
    :meth:`~repro.core.regions.FileRegionSet.buffer_map`; the returned stream
    is the rank's user data stream with every covered byte filled from the
    pieces.  Returns ``(stream, filled_bytes)`` so the caller can verify that
    the scatter delivered the whole request.

    The pieces must be pairwise disjoint (a correct scatter cuts each
    consumer's request into non-overlapping pieces); overlapping deliveries
    raise ``ValueError``.  Silently accepting them would double-count
    ``filled`` — the routing below bisects over sorted *disjoint* runs — and
    a duplicated delivery could then mask a short scatter that left part of
    the request unfilled.
    """
    stream = bytearray(total_bytes)
    filled = 0
    ordered = sorted(pieces)
    starts = [off for off, _ in ordered]
    stops = [off + len(data) for off, data in ordered]
    for idx in range(1, len(ordered)):
        if starts[idx] < stops[idx - 1]:
            raise ValueError(
                "overlapping pieces delivered to assemble_stream: "
                f"[{starts[idx - 1]}, {stops[idx - 1]}) and "
                f"[{starts[idx]}, {stops[idx]}) share bytes"
            )
    for buf_off, file_off, length in buffer_map:
        for lo, hi, idx in clip_sorted_runs(starts, stops, file_off, file_off + length):
            off, data = ordered[idx]
            stream[buf_off + (lo - file_off) : buf_off + (hi - file_off)] = data[
                lo - off : hi - off
            ]
            filled += hi - lo
    return bytes(stream), filled
