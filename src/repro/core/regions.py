"""File-region descriptions of per-process file views.

The atomicity strategies in :mod:`repro.core.strategies` operate on the
*flattened* form of each process's MPI file view: an ordered list of
contiguous file segments ``(offset, length)`` that a single MPI read/write
call will touch.  :class:`FileRegionSet` packages that list together with the
owning rank and provides the queries the strategies need (overlap tests,
extent, trimming against other processes' regions).

The ordered segment list (``segments``) preserves the data-stream order of
the MPI file view — segment ``i`` receives the next ``length_i`` bytes of the
user buffer — while the normalised :class:`~repro.core.intervals.IntervalSet`
(``coverage``) is used for the set-algebra questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .intervals import Interval, IntervalSet, _complement_arrays, clip_many

__all__ = ["FileRegionSet", "build_region_sets"]


def _segment_arrays(
    segments: Sequence[Tuple[int, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """The view's segments as parallel ``(starts, stops)`` arrays (stream order)."""
    n = len(segments)
    starts = np.fromiter((off for off, _ in segments), dtype=np.int64, count=n)
    stops = starts + np.fromiter(
        (length for _, length in segments), dtype=np.int64, count=n
    )
    return starts, stops


@dataclass(frozen=True)
class FileRegionSet:
    """The file regions one process will access in a single MPI I/O call.

    Parameters
    ----------
    rank:
        The MPI rank owning this view.
    segments:
        Ordered ``(file_offset, length)`` pairs in data-stream order.  The
        same file byte must not appear twice within one process's view (MPI
        forbids overlapping writes *within* a single request in atomic mode);
        this is validated at construction.
    """

    rank: int
    segments: Tuple[Tuple[int, int], ...]
    coverage: IntervalSet = field(init=False, compare=False, repr=False)

    def __init__(self, rank: int, segments: Iterable[Tuple[int, int]]):
        segs = tuple((int(off), int(length)) for off, length in segments)
        for off, length in segs:
            if off < 0 or length < 0:
                raise ValueError(f"invalid segment ({off}, {length})")
        segs = tuple((off, length) for off, length in segs if length > 0)
        coverage = IntervalSet.from_segments(segs)
        if coverage.total_bytes != sum(length for _, length in segs):
            raise ValueError(
                f"rank {rank}: file view segments overlap each other; "
                "a single MPI request may not write the same byte twice"
            )
        object.__setattr__(self, "rank", int(rank))
        object.__setattr__(self, "segments", segs)
        object.__setattr__(self, "coverage", coverage)

    # -- inspection ----------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Number of bytes this process accesses."""
        return sum(length for _, length in self.segments)

    @property
    def num_segments(self) -> int:
        """Number of contiguous file segments in the view."""
        return len(self.segments)

    def is_empty(self) -> bool:
        """True when the view accesses no bytes."""
        return not self.segments

    def is_contiguous(self) -> bool:
        """True when the whole view is a single contiguous file range."""
        return len(self.coverage.intervals) <= 1

    def extent(self) -> Interval | None:
        """Hull ``[first byte, last byte)`` of the view (what locking locks)."""
        return self.coverage.extent()

    def extent_bytes(self) -> int:
        """Size in bytes of the extent hull (0 when empty)."""
        ext = self.extent()
        return 0 if ext is None else ext.length

    # -- relations -------------------------------------------------------------

    def overlaps(self, other: "FileRegionSet") -> bool:
        """True when the two processes access at least one common byte."""
        return self.coverage.overlaps(other.coverage)

    def overlap_bytes(self, other: "FileRegionSet") -> int:
        """Number of bytes accessed by both processes."""
        return self.coverage.intersection(other.coverage).total_bytes

    def overlap_region(self, other: "FileRegionSet") -> IntervalSet:
        """The byte ranges accessed by both processes."""
        return self.coverage.intersection(other.coverage)

    # -- transformation ---------------------------------------------------------

    def trimmed(self, remove: IntervalSet) -> "FileRegionSet":
        """A copy of the view with the ``remove`` byte ranges cut out.

        This is the core operation of the process-rank ordering strategy: a
        lower-ranked process surrenders the bytes that a higher-ranked
        process will also write.  Segment order is preserved; segments that
        intersect ``remove`` are split, segments fully covered are dropped.
        """
        if remove.is_empty() or not self.segments:
            return self
        # Subtracting `remove` is intersecting with its complement; one batch
        # clip then handles every segment at once, in stream order.
        starts, stops = _segment_arrays(self.segments)
        comp = _complement_arrays(remove.starts, remove.stops, int(stops.max()))
        _, _, lo, hi = clip_many(starts, stops, *comp)
        return FileRegionSet(self.rank, zip(lo.tolist(), (hi - lo).tolist()))

    def restricted_to(self, keep: IntervalSet) -> "FileRegionSet":
        """A copy of the view containing only bytes inside ``keep``."""
        if not self.segments:
            return self
        starts, stops = _segment_arrays(self.segments)
        _, _, lo, hi = clip_many(starts, stops, keep.starts, keep.stops)
        return FileRegionSet(self.rank, zip(lo.tolist(), (hi - lo).tolist()))

    # -- buffer mapping -----------------------------------------------------------

    def buffer_map(self) -> List[Tuple[int, int, int]]:
        """Map user-buffer offsets to file segments.

        Returns a list of ``(buffer_offset, file_offset, length)`` triples in
        data-stream order: byte ``buffer_offset + i`` of the user buffer goes
        to file byte ``file_offset + i``.
        """
        out: List[Tuple[int, int, int]] = []
        buf = 0
        for off, length in self.segments:
            out.append((buf, off, length))
            buf += length
        return out

    def buffer_map_restricted(self, keep: IntervalSet) -> List[Tuple[int, int, int]]:
        """Like :meth:`buffer_map` but keeping only the file bytes in ``keep``.

        Needed by the rank-ordering strategy: after trimming, each remaining
        file range must still be paired with the *original* position of its
        data in the user buffer (the surrendered bytes are simply never
        transferred).
        """
        if not self.segments:
            return []
        starts, stops = _segment_arrays(self.segments)
        lengths = stops - starts
        buf_base = np.cumsum(lengths) - lengths
        a_idx, _, lo, hi = clip_many(starts, stops, keep.starts, keep.stops)
        buf = buf_base[a_idx] + (lo - starts[a_idx])
        return list(zip(buf.tolist(), lo.tolist(), (hi - lo).tolist()))


def build_region_sets(
    views: Sequence[Sequence[Tuple[int, int]]]
) -> List[FileRegionSet]:
    """Build one :class:`FileRegionSet` per rank from raw segment lists."""
    return [FileRegionSet(rank, segs) for rank, segs in enumerate(views)]
