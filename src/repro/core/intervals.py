"""Byte-range interval algebra.

Every file view, lock request, overlap computation and rank-ordering trim in
this library ultimately operates on sets of half-open byte intervals
``[start, stop)`` over the file's linear offset space.  This module provides
a small, dependency-free interval-set implementation with the operations the
atomicity algorithms in :mod:`repro.core` need:

* normalisation (sorting + coalescing of adjacent/overlapping intervals),
* union, intersection, subtraction,
* overlap queries between interval sets,
* extent (the ``[first, last)`` hull used by the byte-range locking strategy).

The representation is deliberately simple — a tuple of ``Interval`` objects —
because the number of segments per file view in the paper's workloads is the
number of array rows per process (thousands at most), and the algorithms are
``O(n log n)``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Interval", "IntervalSet", "clip_sorted_runs"]


def clip_sorted_runs(
    starts: Sequence[int],
    stops: Sequence[int],
    qstart: int,
    qstop: int,
) -> Iterator[Tuple[int, int, int]]:
    """Clip the query range ``[qstart, qstop)`` against sorted, disjoint runs.

    ``starts``/``stops`` describe runs ``[starts[i], stops[i])`` in ascending
    file order.  Yields ``(lo, hi, i)`` for every non-empty intersection of
    the query with run ``i``, found by bisection — the routing sweep shared
    by the two-phase shuffle/scatter, stream assembly and the read-atomicity
    verifier's stream images.
    """
    idx = max(bisect_right(starts, qstart) - 1, 0)
    n = len(starts)
    while idx < n:
        start = starts[idx]
        if start >= qstop:
            break
        lo = max(qstart, start)
        hi = min(qstop, stops[idx])
        if lo < hi:
            yield lo, hi, idx
        idx += 1


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open byte range ``[start, stop)``.

    ``start`` and ``stop`` are non-negative integers with ``start <= stop``.
    Empty intervals (``start == stop``) are permitted as values but are
    dropped when building an :class:`IntervalSet`.
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < 0:
            raise ValueError(f"negative offsets not allowed: {self!r}")
        if self.stop < self.start:
            raise ValueError(f"stop < start in {self!r}")

    # -- basic properties -------------------------------------------------

    @property
    def length(self) -> int:
        """Number of bytes covered by the interval."""
        return self.stop - self.start

    def is_empty(self) -> bool:
        """True when the interval covers no bytes."""
        return self.stop == self.start

    # -- relations ---------------------------------------------------------

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one byte."""
        return self.start < other.stop and other.start < self.stop

    def touches(self, other: "Interval") -> bool:
        """True when the intervals overlap or are exactly adjacent."""
        return self.start <= other.stop and other.start <= self.stop

    def contains_offset(self, offset: int) -> bool:
        """True when ``offset`` falls inside the interval."""
        return self.start <= offset < self.stop

    def contains(self, other: "Interval") -> bool:
        """True when ``other`` is fully inside this interval."""
        if other.is_empty():
            return self.start <= other.start <= self.stop
        return self.start <= other.start and other.stop <= self.stop

    # -- operations ---------------------------------------------------------

    def intersection(self, other: "Interval") -> "Interval":
        """The overlapping sub-range (possibly empty, anchored at ``start``)."""
        lo = max(self.start, other.start)
        hi = min(self.stop, other.stop)
        if hi < lo:
            return Interval(lo, lo)
        return Interval(lo, hi)

    def subtract(self, other: "Interval") -> Tuple["Interval", ...]:
        """Bytes of ``self`` not covered by ``other`` (0, 1 or 2 pieces)."""
        if not self.overlaps(other):
            return (self,) if not self.is_empty() else ()
        pieces: List[Interval] = []
        if self.start < other.start:
            pieces.append(Interval(self.start, other.start))
        if other.stop < self.stop:
            pieces.append(Interval(other.stop, self.stop))
        return tuple(pieces)

    def shifted(self, delta: int) -> "Interval":
        """The interval translated by ``delta`` bytes."""
        return Interval(self.start + delta, self.stop + delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval({self.start}, {self.stop})"


class IntervalSet:
    """An immutable, normalised set of disjoint byte intervals.

    The constructor accepts any iterable of :class:`Interval` (or
    ``(start, stop)`` pairs); the result is sorted, with empty intervals
    dropped and overlapping/adjacent intervals coalesced.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval | Tuple[int, int]] = ()) -> None:
        norm = self._normalise(intervals)
        object.__setattr__(self, "_intervals", norm)

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _coerce(item: Interval | Tuple[int, int]) -> Interval:
        if isinstance(item, Interval):
            return item
        start, stop = item
        return Interval(int(start), int(stop))

    @classmethod
    def _normalise(
        cls, intervals: Iterable[Interval | Tuple[int, int]]
    ) -> Tuple[Interval, ...]:
        items = sorted(
            (cls._coerce(iv) for iv in intervals), key=lambda iv: (iv.start, iv.stop)
        )
        merged: List[Interval] = []
        for iv in items:
            if iv.is_empty():
                continue
            if merged and iv.start <= merged[-1].stop:
                last = merged[-1]
                if iv.stop > last.stop:
                    merged[-1] = Interval(last.start, iv.stop)
            else:
                merged.append(iv)
        return tuple(merged)

    @classmethod
    def from_segments(cls, segments: Iterable[Tuple[int, int]]) -> "IntervalSet":
        """Build from ``(offset, length)`` pairs (the flattened-datatype form)."""
        return cls(Interval(off, off + length) for off, length in segments)

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty interval set."""
        return cls(())

    @classmethod
    def single(cls, start: int, stop: int) -> "IntervalSet":
        """An interval set holding one range ``[start, stop)``."""
        return cls((Interval(start, stop),))

    # -- inspection ----------------------------------------------------------

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The normalised, sorted, disjoint intervals."""
        return self._intervals

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"[{iv.start},{iv.stop})" for iv in self._intervals)
        return f"IntervalSet({inner})"

    @property
    def total_bytes(self) -> int:
        """Total number of bytes covered."""
        return sum(iv.length for iv in self._intervals)

    def is_empty(self) -> bool:
        """True when no bytes are covered."""
        return not self._intervals

    @property
    def min_offset(self) -> Optional[int]:
        """Lowest covered offset, or ``None`` when empty."""
        return self._intervals[0].start if self._intervals else None

    @property
    def max_offset(self) -> Optional[int]:
        """One past the highest covered offset, or ``None`` when empty."""
        return self._intervals[-1].stop if self._intervals else None

    def extent(self) -> Optional[Interval]:
        """The hull ``[min_offset, max_offset)`` — what the locking strategy locks."""
        if not self._intervals:
            return None
        return Interval(self._intervals[0].start, self._intervals[-1].stop)

    def contains_offset(self, offset: int) -> bool:
        """True when ``offset`` is covered by some interval (binary search)."""
        lo, hi = 0, len(self._intervals)
        while lo < hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if offset < iv.start:
                hi = mid
            elif offset >= iv.stop:
                lo = mid + 1
            else:
                return True
        return False

    def covers(self, other: "IntervalSet") -> bool:
        """True when every byte of ``other`` is also in ``self``."""
        return other.subtract(self).is_empty()

    # -- set algebra ----------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Bytes in either set."""
        return IntervalSet(self._intervals + other._intervals)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Bytes present in both sets (linear merge)."""
        out: List[Interval] = []
        a, b = self._intervals, other._intervals
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i].start, b[j].start)
            hi = min(a[i].stop, b[j].stop)
            if lo < hi:
                out.append(Interval(lo, hi))
            if a[i].stop < b[j].stop:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """Bytes in ``self`` but not in ``other`` (linear sweep)."""
        if not other._intervals or not self._intervals:
            return IntervalSet(self._intervals)
        out: List[Interval] = []
        j = 0
        b = other._intervals
        for iv in self._intervals:
            cur_start = iv.start
            while j < len(b) and b[j].stop <= cur_start:
                j += 1
            k = j
            while k < len(b) and b[k].start < iv.stop:
                if b[k].start > cur_start:
                    out.append(Interval(cur_start, b[k].start))
                cur_start = max(cur_start, b[k].stop)
                if cur_start >= iv.stop:
                    break
                k += 1
            if cur_start < iv.stop:
                out.append(Interval(cur_start, iv.stop))
        return IntervalSet(out)

    def overlaps(self, other: "IntervalSet") -> bool:
        """True when the two sets share at least one byte."""
        a, b = self._intervals, other._intervals
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i].overlaps(b[j]):
                return True
            if a[i].stop <= b[j].start:
                i += 1
            else:
                j += 1
        return False

    def shifted(self, delta: int) -> "IntervalSet":
        """The whole set translated by ``delta`` bytes."""
        return IntervalSet(iv.shifted(delta) for iv in self._intervals)

    def clipped(self, lo: int, hi: int) -> "IntervalSet":
        """Bytes of the set falling inside ``[lo, hi)``."""
        return self.intersection(IntervalSet.single(lo, hi))

    def as_segments(self) -> List[Tuple[int, int]]:
        """Return ``(offset, length)`` pairs (inverse of :meth:`from_segments`)."""
        return [(iv.start, iv.length) for iv in self._intervals]


def merge_interval_sets(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Union of many interval sets."""
    intervals: List[Interval] = []
    for s in sets:
        intervals.extend(s.intervals)
    return IntervalSet(intervals)
