"""Byte-range interval algebra on flat offset arrays.

Every file view, lock request, overlap computation and rank-ordering trim in
this library ultimately operates on sets of half-open byte intervals
``[start, stop)`` over the file's linear offset space.  This module provides
the interval-set implementation with the operations the atomicity algorithms
in :mod:`repro.core` need:

* normalisation (sorting + coalescing of adjacent/overlapping intervals),
* union, intersection, subtraction,
* overlap queries between interval sets,
* extent (the ``[first, last)`` hull used by the byte-range locking strategy).

The representation is a pair of flat ``int64`` arrays (``starts``/``stops``)
so the set algebra runs as numpy batch operations: normalisation is one
lexsort plus a running-maximum coalesce, and intersection/subtraction
enumerate only the actually-overlapping interval pairs through
``searchsorted`` bisection.  At the 16k–64k rank scale the Section 3.4 sweep
targets, the per-object tuple representation this replaces dominated the
wall-clock profile; a handful of array sweeps per collective does not.

Small sets (a few intervals — the common case for one rank's view in one
operation) take a plain-Python fast path, because a lexsort on a 2-element
array costs more than the loop it replaces.

The pure-Python kernels are kept as module functions (``py_normalise``,
``py_union``, ``py_intersection``, ``py_subtract``) — they are the reference
the property-based differential tests pin the vectorized kernels against,
bit for bit, and they document the algorithms in their simplest form.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Interval",
    "IntervalSet",
    "clip_sorted_runs",
    "clip_many",
    "merge_interval_sets",
]

#: Below this many intervals the plain-Python kernels beat the numpy ones
#: (array setup costs more than the loop it replaces).
_SMALL_N = 16

_EMPTY = np.empty(0, dtype=np.int64)


# ---------------------------------------------------------------------------
# Pure-Python reference kernels (differential-test baseline)
# ---------------------------------------------------------------------------


def py_normalise(pairs: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort/coalesce ``(start, stop)`` pairs; the reference normalisation."""
    items = sorted((int(s), int(e)) for s, e in pairs)
    merged: List[Tuple[int, int]] = []
    for start, stop in items:
        if stop <= start:
            continue
        if merged and start <= merged[-1][1]:
            last_start, last_stop = merged[-1]
            if stop > last_stop:
                merged[-1] = (last_start, stop)
        else:
            merged.append((start, stop))
    return merged


def py_union(
    a: Sequence[Tuple[int, int]], b: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Reference union of two normalised pair lists."""
    return py_normalise(list(a) + list(b))


def py_intersection(
    a: Sequence[Tuple[int, int]], b: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Reference intersection of two normalised pair lists (linear merge)."""
    out: List[Tuple[int, int]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def py_subtract(
    a: Sequence[Tuple[int, int]], b: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Reference subtraction of two normalised pair lists (linear sweep)."""
    if not b or not a:
        return list(a)
    out: List[Tuple[int, int]] = []
    j = 0
    for start, stop in a:
        cur = start
        while j < len(b) and b[j][1] <= cur:
            j += 1
        k = j
        while k < len(b) and b[k][0] < stop:
            if b[k][0] > cur:
                out.append((cur, b[k][0]))
            cur = max(cur, b[k][1])
            if cur >= stop:
                break
            k += 1
        if cur < stop:
            out.append((cur, stop))
    return out


# ---------------------------------------------------------------------------
# Vectorized kernels over flat (starts, stops) arrays
# ---------------------------------------------------------------------------


def _normalise_arrays(
    starts: np.ndarray, stops: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort/coalesce interval arrays (any order, empties allowed)."""
    keep = stops > starts
    if not keep.all():
        starts, stops = starts[keep], stops[keep]
    n = len(starts)
    if n <= 1:
        return starts, stops
    order = np.lexsort((stops, starts))
    starts, stops = starts[order], stops[order]
    running = np.maximum.accumulate(stops)
    fresh = np.empty(n, dtype=np.bool_)
    fresh[0] = True
    # A new run begins where an interval starts beyond everything coalesced
    # so far (adjacency merges: `>` not `>=`).
    np.greater(starts[1:], running[:-1], out=fresh[1:])
    heads = np.flatnonzero(fresh)
    ends = np.concatenate((heads[1:], [n])) - 1
    return starts[heads], running[ends]


def clip_many(
    a_starts: np.ndarray,
    a_stops: np.ndarray,
    b_starts: np.ndarray,
    b_stops: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Clip every query run ``a`` against sorted disjoint runs ``b`` at once.

    ``b`` must be normalised (file-ordered, disjoint, non-adjacent); the
    query runs ``a`` may be in any order and are processed independently.
    Returns ``(a_idx, b_idx, lo, hi)`` — one row per non-empty intersection
    of query ``a_idx`` with run ``b_idx`` — grouped by query in input order,
    ascending in file offset within each query.  This is the vectorized form
    of :func:`clip_sorted_runs` over a whole batch of queries: the routing
    sweep of the two-phase shuffle/scatter, the region trims, and the overlap
    analysis all reduce to it.
    """
    if len(a_starts) == 0 or len(b_starts) == 0:
        return _EMPTY, _EMPTY, _EMPTY, _EMPTY
    first = np.searchsorted(b_stops, a_starts, side="right")
    last = np.searchsorted(b_starts, a_stops, side="left")
    counts = last - first
    np.maximum(counts, 0, out=counts)
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY, _EMPTY, _EMPTY
    a_idx = np.repeat(np.arange(len(a_starts), dtype=np.int64), counts)
    bases = np.cumsum(counts) - counts
    b_idx = np.arange(total, dtype=np.int64) - bases[a_idx] + first[a_idx]
    lo = np.maximum(a_starts[a_idx], b_starts[b_idx])
    hi = np.minimum(a_stops[a_idx], b_stops[b_idx])
    nonempty = lo < hi
    if not nonempty.all():
        a_idx, b_idx, lo, hi = (
            a_idx[nonempty], b_idx[nonempty], lo[nonempty], hi[nonempty]
        )
    return a_idx, b_idx, lo, hi


def _intersect_arrays(
    a_starts: np.ndarray,
    a_stops: np.ndarray,
    b_starts: np.ndarray,
    b_stops: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Intersection of two normalised interval arrays (already normalised)."""
    _, _, lo, hi = clip_many(a_starts, a_stops, b_starts, b_stops)
    return lo, hi


def _complement_arrays(
    starts: np.ndarray, stops: np.ndarray, hull_stop: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaps of a normalised interval array within ``[0, hull_stop)``."""
    comp_starts = np.concatenate(([0], stops))
    comp_stops = np.concatenate((starts, [hull_stop]))
    keep = comp_stops > comp_starts
    return comp_starts[keep], comp_stops[keep]


def _subtract_arrays(
    a_starts: np.ndarray,
    a_stops: np.ndarray,
    b_starts: np.ndarray,
    b_stops: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Subtraction of normalised interval arrays: intersect with b's gaps."""
    if len(a_starts) == 0 or len(b_starts) == 0:
        return a_starts, a_stops
    comp = _complement_arrays(b_starts, b_stops, int(a_stops[-1]))
    return _intersect_arrays(a_starts, a_stops, *comp)


def clip_sorted_runs(
    starts: Sequence[int],
    stops: Sequence[int],
    qstart: int,
    qstop: int,
) -> Iterator[Tuple[int, int, int]]:
    """Clip the query range ``[qstart, qstop)`` against sorted, disjoint runs.

    ``starts``/``stops`` describe runs ``[starts[i], stops[i])`` in ascending
    file order.  Yields ``(lo, hi, i)`` for every non-empty intersection of
    the query with run ``i``, found by bisection — the routing sweep shared
    by the two-phase shuffle/scatter, stream assembly and the read-atomicity
    verifier's stream images.  (:func:`clip_many` is the batch form.)
    """
    idx = max(bisect_right(starts, qstart) - 1, 0)
    n = len(starts)
    while idx < n:
        start = starts[idx]
        if start >= qstop:
            break
        lo = max(qstart, start)
        hi = min(qstop, stops[idx])
        if lo < hi:
            yield lo, hi, idx
        idx += 1


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open byte range ``[start, stop)``.

    ``start`` and ``stop`` are non-negative integers with ``start <= stop``.
    Empty intervals (``start == stop``) are permitted as values but are
    dropped when building an :class:`IntervalSet`.
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < 0:
            raise ValueError(f"negative offsets not allowed: {self!r}")
        if self.stop < self.start:
            raise ValueError(f"stop < start in {self!r}")

    # -- basic properties -------------------------------------------------

    @property
    def length(self) -> int:
        """Number of bytes covered by the interval."""
        return self.stop - self.start

    def is_empty(self) -> bool:
        """True when the interval covers no bytes."""
        return self.stop == self.start

    # -- relations ---------------------------------------------------------

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one byte."""
        return self.start < other.stop and other.start < self.stop

    def touches(self, other: "Interval") -> bool:
        """True when the intervals overlap or are exactly adjacent."""
        return self.start <= other.stop and other.start <= self.stop

    def contains_offset(self, offset: int) -> bool:
        """True when ``offset`` falls inside the interval."""
        return self.start <= offset < self.stop

    def contains(self, other: "Interval") -> bool:
        """True when ``other`` is fully inside this interval."""
        if other.is_empty():
            return self.start <= other.start <= self.stop
        return self.start <= other.start and other.stop <= self.stop

    # -- operations ---------------------------------------------------------

    def intersection(self, other: "Interval") -> "Interval":
        """The overlapping sub-range (possibly empty, anchored at ``start``)."""
        lo = max(self.start, other.start)
        hi = min(self.stop, other.stop)
        if hi < lo:
            return Interval(lo, lo)
        return Interval(lo, hi)

    def subtract(self, other: "Interval") -> Tuple["Interval", ...]:
        """Bytes of ``self`` not covered by ``other`` (0, 1 or 2 pieces)."""
        if not self.overlaps(other):
            return (self,) if not self.is_empty() else ()
        pieces: List[Interval] = []
        if self.start < other.start:
            pieces.append(Interval(self.start, other.start))
        if other.stop < self.stop:
            pieces.append(Interval(other.stop, self.stop))
        return tuple(pieces)

    def shifted(self, delta: int) -> "Interval":
        """The interval translated by ``delta`` bytes."""
        return Interval(self.start + delta, self.stop + delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval({self.start}, {self.stop})"


class IntervalSet:
    """An immutable, normalised set of disjoint byte intervals.

    The constructor accepts any iterable of :class:`Interval` (or
    ``(start, stop)`` pairs); the result is sorted, with empty intervals
    dropped and overlapping/adjacent intervals coalesced.

    Storage is a pair of flat ``int64`` arrays (:attr:`starts` /
    :attr:`stops`) so the set algebra runs as numpy batch operations; the
    tuple-of-:class:`Interval` view (:attr:`intervals`) is materialised
    lazily for callers that iterate.
    """

    __slots__ = ("_starts", "_stops", "_tuple")

    def __init__(self, intervals: Iterable["Interval | Tuple[int, int]"] = ()) -> None:
        pairs: List[Tuple[int, int]] = []
        for item in intervals:
            if isinstance(item, Interval):
                pairs.append((item.start, item.stop))
            else:
                start, stop = item
                pairs.append((int(start), int(stop)))
        if len(pairs) < _SMALL_N:
            self._init_small(pairs)
        else:
            starts = np.fromiter(
                (p[0] for p in pairs), dtype=np.int64, count=len(pairs)
            )
            stops = np.fromiter(
                (p[1] for p in pairs), dtype=np.int64, count=len(pairs)
            )
            self._init_arrays(starts, stops)

    def _init_small(self, pairs: List[Tuple[int, int]]) -> None:
        for start, stop in pairs:
            self._validate(start, stop)
        merged = py_normalise(pairs)
        self._starts = np.fromiter(
            (p[0] for p in merged), dtype=np.int64, count=len(merged)
        )
        self._stops = np.fromiter(
            (p[1] for p in merged), dtype=np.int64, count=len(merged)
        )
        self._tuple = None

    def _init_arrays(self, starts: np.ndarray, stops: np.ndarray) -> None:
        if len(starts) and (starts.min() < 0 or stops.min() < 0):
            bad = int(np.flatnonzero((starts < 0) | (stops < 0))[0])
            raise ValueError(
                "negative offsets not allowed: "
                f"Interval({int(starts[bad])}, {int(stops[bad])})"
            )
        if len(starts) and (stops < starts).any():
            bad = int(np.flatnonzero(stops < starts)[0])
            raise ValueError(
                f"stop < start in Interval({int(starts[bad])}, {int(stops[bad])})"
            )
        self._starts, self._stops = _normalise_arrays(starts, stops)
        self._tuple = None

    @staticmethod
    def _validate(start: int, stop: int) -> None:
        if start < 0 or stop < 0:
            raise ValueError(
                f"negative offsets not allowed: Interval({start}, {stop})"
            )
        if stop < start:
            raise ValueError(f"stop < start in Interval({start}, {stop})")

    # -- construction helpers ------------------------------------------------

    @classmethod
    def _from_normalised(
        cls, starts: np.ndarray, stops: np.ndarray
    ) -> "IntervalSet":
        """Wrap already-normalised arrays without copying or re-sorting."""
        out = cls.__new__(cls)
        out._starts = starts
        out._stops = stops
        out._tuple = None
        return out

    @classmethod
    def from_arrays(cls, starts, stops) -> "IntervalSet":
        """Build from parallel start/stop arrays (any order, validated)."""
        out = cls.__new__(cls)
        out._init_arrays(
            np.asarray(starts, dtype=np.int64), np.asarray(stops, dtype=np.int64)
        )
        return out

    @classmethod
    def from_segments(cls, segments: Iterable[Tuple[int, int]]) -> "IntervalSet":
        """Build from ``(offset, length)`` pairs (the flattened-datatype form)."""
        return cls((off, off + length) for off, length in segments)

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty interval set."""
        return cls._from_normalised(_EMPTY, _EMPTY)

    @classmethod
    def single(cls, start: int, stop: int) -> "IntervalSet":
        """An interval set holding one range ``[start, stop)``."""
        cls._validate(int(start), int(stop))
        if stop <= start:
            return cls.empty()
        return cls._from_normalised(
            np.array([start], dtype=np.int64), np.array([stop], dtype=np.int64)
        )

    # -- inspection ----------------------------------------------------------

    @property
    def starts(self) -> np.ndarray:
        """Sorted interval start offsets (do not mutate)."""
        return self._starts

    @property
    def stops(self) -> np.ndarray:
        """Sorted interval stop offsets (do not mutate)."""
        return self._stops

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The normalised, sorted, disjoint intervals."""
        if self._tuple is None:
            self._tuple = tuple(
                Interval(int(s), int(e))
                for s, e in zip(self._starts.tolist(), self._stops.tolist())
            )
        return self._tuple

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return len(self._starts) > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return (
            len(self._starts) == len(other._starts)
            and bool(np.array_equal(self._starts, other._starts))
            and bool(np.array_equal(self._stops, other._stops))
        )

    def __hash__(self) -> int:
        return hash((self._starts.tobytes(), self._stops.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"[{s},{e})" for s, e in zip(self._starts.tolist(), self._stops.tolist())
        )
        return f"IntervalSet({inner})"

    @property
    def total_bytes(self) -> int:
        """Total number of bytes covered."""
        return int((self._stops - self._starts).sum())

    def is_empty(self) -> bool:
        """True when no bytes are covered."""
        return len(self._starts) == 0

    @property
    def min_offset(self) -> Optional[int]:
        """Lowest covered offset, or ``None`` when empty."""
        return int(self._starts[0]) if len(self._starts) else None

    @property
    def max_offset(self) -> Optional[int]:
        """One past the highest covered offset, or ``None`` when empty."""
        return int(self._stops[-1]) if len(self._stops) else None

    def extent(self) -> Optional[Interval]:
        """The hull ``[min_offset, max_offset)`` — what the locking strategy locks."""
        if not len(self._starts):
            return None
        return Interval(int(self._starts[0]), int(self._stops[-1]))

    def contains_offset(self, offset: int) -> bool:
        """True when ``offset`` is covered by some interval (binary search)."""
        idx = int(np.searchsorted(self._starts, offset, side="right")) - 1
        return idx >= 0 and offset < int(self._stops[idx])

    def covers(self, other: "IntervalSet") -> bool:
        """True when every byte of ``other`` is also in ``self``."""
        return other.subtract(self).is_empty()

    # -- set algebra ----------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Bytes in either set."""
        if not len(self._starts):
            return other
        if not len(other._starts):
            return self
        n = len(self._starts) + len(other._starts)
        if n < _SMALL_N:
            merged = py_union(self._pairs(), other._pairs())
            return IntervalSet(merged)
        return IntervalSet._from_normalised(
            *_normalise_arrays(
                np.concatenate((self._starts, other._starts)),
                np.concatenate((self._stops, other._stops)),
            )
        )

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Bytes present in both sets."""
        if not len(self._starts) or not len(other._starts):
            return IntervalSet.empty()
        if len(self._starts) + len(other._starts) < _SMALL_N:
            return IntervalSet(py_intersection(self._pairs(), other._pairs()))
        return IntervalSet._from_normalised(
            *_intersect_arrays(self._starts, self._stops, other._starts, other._stops)
        )

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """Bytes in ``self`` but not in ``other``."""
        if not len(other._starts) or not len(self._starts):
            return self
        if len(self._starts) + len(other._starts) < _SMALL_N:
            return IntervalSet(py_subtract(self._pairs(), other._pairs()))
        return IntervalSet._from_normalised(
            *_subtract_arrays(self._starts, self._stops, other._starts, other._stops)
        )

    def overlaps(self, other: "IntervalSet") -> bool:
        """True when the two sets share at least one byte."""
        a, b = self, other
        if not len(a._starts) or not len(b._starts):
            return False
        if len(a._starts) > len(b._starts):
            a, b = b, a
        first = np.searchsorted(b._stops, a._starts, side="right")
        last = np.searchsorted(b._starts, a._stops, side="left")
        return bool((last > first).any())

    def shifted(self, delta: int) -> "IntervalSet":
        """The whole set translated by ``delta`` bytes."""
        if len(self._starts) and int(self._starts[0]) + delta < 0:
            raise ValueError(
                f"negative offsets not allowed: shift by {delta} moves "
                f"{int(self._starts[0])} below zero"
            )
        return IntervalSet._from_normalised(self._starts + delta, self._stops + delta)

    def clipped(self, lo: int, hi: int) -> "IntervalSet":
        """Bytes of the set falling inside ``[lo, hi)``."""
        return self.intersection(IntervalSet.single(lo, hi))

    def as_segments(self) -> List[Tuple[int, int]]:
        """Return ``(offset, length)`` pairs (inverse of :meth:`from_segments`)."""
        return list(
            zip(self._starts.tolist(), (self._stops - self._starts).tolist())
        )

    def _pairs(self) -> List[Tuple[int, int]]:
        """The set as plain ``(start, stop)`` pairs (for the Python kernels)."""
        return list(zip(self._starts.tolist(), self._stops.tolist()))


def merge_interval_sets(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Union of many interval sets (one concatenate + one normalise)."""
    arrays = [(s._starts, s._stops) for s in sets if len(s._starts)]
    if not arrays:
        return IntervalSet.empty()
    if len(arrays) == 1:
        return IntervalSet._from_normalised(*arrays[0])
    return IntervalSet._from_normalised(
        *_normalise_arrays(
            np.concatenate([a for a, _ in arrays]),
            np.concatenate([b for _, b in arrays]),
        )
    )
