"""Bulk-synchronous scale executor: the engine's answer without the engine.

:class:`~repro.core.executor.AtomicWriteExecutor` runs every rank as a
cooperative engine task on a parked OS thread.  That is the right model for
arbitrary rank programs — any blocking pattern works — but even recycled
carrier threads put a ceiling in the tens of thousands of ranks: stacks,
handoffs and ready-heap traffic all scale with ``P``.  The collective write
strategies need none of that generality.  Their rank program is a fixed
bulk-synchronous sequence — collective, pure local compute, collective,
file I/O — so the whole SPMD execution can be *replayed* by one driver loop
with plain per-rank state:

* A collective rendezvous synchronises every clock to the latest arrival
  and charges each rank its own payload cost — exactly what
  ``Communicator._collective`` computes, in closed form.
* The file I/O phase issues each rank's write steps against the real
  :class:`~repro.fs.client.ClientFileHandle` / shared
  :class:`~repro.fs.costmodel.Resource` stack, one step at a time in
  ascending ``(virtual clock, rank)`` order — exactly the discrete-event
  order the engine's sequence points enforce (a running task keeps the
  resources while its key is minimal; ties resume in task-id order, and
  task ids are assigned in rank order).

Both paths therefore produce **bit-identical** virtual times, file bytes
and per-byte provenance; ``tests/test_core_bulk.py`` pins the equivalence
against the engine at small ``P``.  What the replay gives up is generality
— it supports exactly the aggregation strategies whose schedules it mirrors
(:class:`~repro.core.strategies.TwoPhaseStrategy` and its hierarchical
subclass) — and what it buys is scale: no tasks, no threads, no handoffs,
so the Section 3.4 sweep extends to 64k ranks in seconds.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..fs.filesystem import ParallelFileSystem
from ..mpi.clock import VirtualClock
from ..mpi.cost import CommCostModel, _Volume, payload_nbytes
from ..mpi.runtime import SPMDResult
from .aggregation import (
    assemble_stream,
    gather_runs,
    merge_origin_runs,
    merge_pieces,
    node_coverages,
    route_stream,
    scatter_pieces,
)
from .executor import (
    ConcurrentReadResult,
    ConcurrentWriteResult,
    default_data_factory,
)
from .intervals import clip_sorted_runs
from .regions import FileRegionSet
from .strategies import (
    AGGREGATE_PAYLOAD,
    HierarchicalTwoPhaseStrategy,
    ReadOutcome,
    TwoPhaseStrategy,
    WriteOutcome,
)

__all__ = ["BulkReadExecutor", "BulkWriteExecutor"]

ViewFactory = Callable[[int, int], Sequence[Tuple[int, int]]]
DataFactory = Callable[[int, int], bytes]

#: One rank's replayed schedule: the write steps as ``(file_offset, data,
#: writer)`` triples plus the outcome bookkeeping the plan would carry.
_RankSchedule = Tuple[List[Tuple[int, bytes, Optional[int]]], WriteOutcome]


def _rendezvous(clocks: List[VirtualClock], costs: Sequence[float]) -> None:
    """Replay one collective: synchronise to the latest arrival, then charge
    each rank its own payload cost (``Communicator._collective``'s clock
    arithmetic, without the rendezvous machinery)."""
    latest = max(clock.now for clock in clocks)
    for clock, cost in zip(clocks, costs):
        clock.advance_to(latest, waiting=True)
        clock.advance(cost)


class BulkWriteExecutor:
    """Drop-in replacement for :class:`AtomicWriteExecutor` at scale.

    Same constructor and :meth:`run` contract, same
    :class:`~repro.core.executor.ConcurrentWriteResult`; only the execution
    substrate differs (driver-loop replay instead of engine tasks).  Raises
    :class:`TypeError` for strategies whose schedule it cannot replay.
    """

    def __init__(
        self,
        fs: ParallelFileSystem,
        strategy: TwoPhaseStrategy,
        filename: str = "shared.dat",
        comm_cost: Optional[CommCostModel] = None,
    ) -> None:
        # The adaptive strategy is accepted too: it resolves to a two-phase
        # delegate at run time (and raises TypeError there if its decision is
        # not an aggregation schedule).
        if not isinstance(strategy, TwoPhaseStrategy) and not hasattr(
            strategy, "resolve_static"
        ):
            raise TypeError(
                "BulkWriteExecutor replays aggregation schedules only; "
                f"{type(strategy).__name__} must run on the engine "
                "(AtomicWriteExecutor)"
            )
        self.fs = fs
        self.strategy = strategy
        self.filename = filename
        self.comm_cost = comm_cost or CommCostModel(latency=20e-6, byte_cost=1e-8)
        bind = getattr(strategy, "bind_context", None)
        if bind is not None:
            bind(fs, filename)

    def run(
        self,
        nprocs: int,
        view_factory: ViewFactory,
        data_factory: DataFactory = default_data_factory,
    ) -> ConcurrentWriteResult:
        """Execute the concurrent write on ``nprocs`` replayed ranks."""
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        from ..fs.client import FSClient

        fs = self.fs
        fobj = fs.create(self.filename)
        regions = [
            FileRegionSet(rank, view_factory(rank, nprocs)) for rank in range(nprocs)
        ]
        datas = [data_factory(rank, r.total_bytes) for rank, r in enumerate(regions)]
        clocks = [VirtualClock() for _ in range(nprocs)]

        # Resolve the adaptive strategy to its tuned aggregation delegate.
        # The replay driver already holds every rank's regions, so the
        # classification needs no collective; only the payload cost differs.
        resolver = getattr(self.strategy, "resolve_static", None)
        delegate = resolver(nprocs, regions) if resolver is not None else self.strategy

        # Stage 1 — view exchange: one allgather of the segment tuples (the
        # adaptive strategy ships a tagged flattened view of 1 + 2*segments
        # elements instead, costed honestly).
        if resolver is not None:
            exchange_costs = [
                self.comm_cost.cost(_Volume(1 + 2 * r.num_segments)) for r in regions
            ]
        else:
            exchange_costs = [self.comm_cost.cost(r.segments) for r in regions]
        _rendezvous(clocks, exchange_costs)

        # Stages 2+3 — analysis and schedule, replayed for all ranks at once.
        if isinstance(delegate, HierarchicalTwoPhaseStrategy):
            schedules = self._schedule_hierarchical(
                nprocs, regions, datas, clocks, delegate
            )
        else:
            schedules = self._schedule_flat(nprocs, regions, datas, clocks, delegate)

        # Stage 4 — file I/O in discrete-event order: repeatedly run one
        # write step for the rank holding the minimal (clock, rank) key,
        # against the real client/link/server resource stack (sequence
        # points no-op outside engine tasks; the heap IS the sequencing).
        handles = []
        for rank in range(nprocs):
            client = FSClient(fs, client_id=rank, clock=clocks[rank])
            handles.append(client.open(self.filename))
        try:
            heap = [
                (clocks[rank].now, rank)
                for rank in range(nprocs)
                if schedules[rank][0]
            ]
            heapq.heapify(heap)
            cursors = [0] * nprocs
            while heap:
                _, rank = heapq.heappop(heap)
                steps, outcome = schedules[rank]
                offset, data, writer = steps[cursors[rank]]
                cursors[rank] += 1
                outcome.bytes_written += handles[rank].write(
                    offset, data, direct=True, writer=writer
                )
                outcome.segments_written += 1
                if cursors[rank] < len(steps):
                    heapq.heappush(heap, (clocks[rank].now, rank))
            outcomes = []
            for rank, (steps, outcome) in enumerate(schedules):
                outcome.end_time = clocks[rank].now
                outcomes.append(outcome)
        finally:
            for handle in handles:
                handle.close()

        return ConcurrentWriteResult(
            filename=self.filename,
            fs=fs,
            file=fobj,
            outcomes=outcomes,
            spmd=SPMDResult(returns=list(outcomes), clocks=clocks),
            regions=regions,
        )

    # -- schedule replays -------------------------------------------------------

    def _outcome(self, rank: int, region: FileRegionSet, **kwargs) -> WriteOutcome:
        return WriteOutcome(
            strategy=self.strategy.name,
            rank=rank,
            bytes_requested=region.total_bytes,
            start_time=0.0,
            **kwargs,
        )

    def _schedule_flat(
        self,
        nprocs: int,
        regions: List[FileRegionSet],
        datas: List[bytes],
        clocks: List[VirtualClock],
        strategy: TwoPhaseStrategy,
    ) -> List[_RankSchedule]:
        """Replay :meth:`TwoPhaseStrategy.schedule` for every rank."""
        agg_set, aggregators, piece_starts, pieces, surrendered = strategy._negotiate(
            nprocs, regions
        )
        piece_stops = [stop for _, stop, _ in pieces]

        # Shuffle: route each rank's view through the piece table.  Sparse
        # per-destination dicts replace the engine path's dense send lists —
        # same payloads, same network bytes, but bookkeeping sized by actual
        # traffic instead of P lists per rank.
        sendbufs: List[Dict[int, List[Tuple[int, bytes]]]] = []
        shuffled = [0] * nprocs
        for rank in range(nprocs):
            out: Dict[int, List[Tuple[int, bytes]]] = {}
            for agg_rank, lo, chunk in route_stream(
                regions[rank].buffer_map(),
                datas[rank],
                piece_starts,
                piece_stops,
                pieces,
            ):
                out.setdefault(agg_rank, []).append((lo, chunk))
                shuffled[rank] += len(chunk)
            sendbufs.append(out)
        _rendezvous(
            clocks,
            [
                self.comm_cost.cost(
                    _Volume(
                        sum(
                            payload_nbytes(bufs)
                            for dest, bufs in sendbufs[rank].items()
                            if dest != rank
                        )
                    )
                )
                for rank in range(nprocs)
            ],
        )

        schedules: List[_RankSchedule] = []
        for rank in range(nprocs):
            steps: List[Tuple[int, bytes, Optional[int]]] = []
            if rank in agg_set:
                received = [
                    (src, sendbufs[src].get(rank, [])) for src in range(nprocs)
                ]
                for run in merge_pieces(received, policy=strategy.policy):
                    steps.append((run.offset, run.data, run.origin))
            outcome = self._outcome(
                rank,
                regions[rank],
                bytes_surrendered=surrendered[rank],
                phases=2,
                my_phase=1 if rank in agg_set else 0,
                extra={
                    "aggregators": float(len(aggregators)),
                    "shuffled_bytes": float(shuffled[rank]),
                },
            )
            schedules.append((steps, outcome))
        return schedules

    def _schedule_hierarchical(
        self,
        nprocs: int,
        regions: List[FileRegionSet],
        datas: List[bytes],
        clocks: List[VirtualClock],
        strategy: HierarchicalTwoPhaseStrategy,
    ) -> List[_RankSchedule]:
        """Replay :meth:`HierarchicalTwoPhaseStrategy.schedule` for every rank."""
        agg_set, aggregators, piece_starts, pieces, surrendered = strategy._negotiate(
            nprocs, regions
        )
        piece_stops = [stop for _, stop, _ in pieces]
        leaders = [strategy._leader_of(rank) for rank in range(nprocs)]
        shuffled = [0] * nprocs

        # Hop 1 — node combine: raw view pieces to the node leader.
        node_received: Dict[int, List[Tuple[int, List[Tuple[int, bytes]]]]] = {}
        hop1_costs = []
        for rank in range(nprocs):
            data = datas[rank]
            my_pieces = [
                (file_off, data[buf_off : buf_off + length])
                for buf_off, file_off, length in regions[rank].buffer_map()
            ]
            volume = 0
            if my_pieces:
                node_received.setdefault(leaders[rank], []).append((rank, my_pieces))
                if leaders[rank] != rank:
                    volume = sum(len(d) for _, d in my_pieces)
                    shuffled[rank] += volume
            hop1_costs.append(self.comm_cost.cost(_Volume(volume)))
        _rendezvous(clocks, hop1_costs)

        # Leaders pre-merge and route the origin-tagged runs to the global
        # aggregator owning each byte.
        outgoing: List[Dict[int, List[Tuple[int, int, bytes]]]] = [
            {} for _ in range(nprocs)
        ]
        for leader, arrivals in node_received.items():
            node_runs = merge_origin_runs(
                [
                    (src, off, piece)
                    for src, sent in arrivals
                    for off, piece in sent
                ],
                policy=strategy.policy,
            )
            for run in node_runs:
                for lo, hi, idx in clip_sorted_runs(
                    piece_starts, piece_stops, run.offset, run.offset + run.length
                ):
                    agg_rank = pieces[idx][2]
                    outgoing[leader].setdefault(agg_rank, []).append(
                        (run.origin, lo, run.data[lo - run.offset : hi - run.offset])
                    )
                    if agg_rank != leader:
                        shuffled[leader] += hi - lo

        # Hop 2 — global combine.
        _rendezvous(
            clocks,
            [
                self.comm_cost.cost(
                    _Volume(
                        sum(
                            payload_nbytes(runs)
                            for dest, runs in outgoing[rank].items()
                            if dest != rank
                        )
                    )
                )
                for rank in range(nprocs)
            ],
        )

        num_nodes = -(-nprocs // strategy.ranks_per_node)
        schedules: List[_RankSchedule] = []
        for rank in range(nprocs):
            steps: List[Tuple[int, bytes, Optional[int]]] = []
            if rank in agg_set:
                arrived = [
                    run
                    for src in range(nprocs)
                    for run in outgoing[src].get(rank, [])
                ]
                for run in merge_origin_runs(arrived, policy=strategy.policy):
                    steps.append((run.offset, run.data, run.origin))
            outcome = self._outcome(
                rank,
                regions[rank],
                bytes_surrendered=surrendered[rank],
                phases=3,
                my_phase=2 if rank in agg_set else (1 if rank == leaders[rank] else 0),
                extra={
                    "aggregators": float(len(aggregators)),
                    "node_leaders": float(num_nodes),
                    "shuffled_bytes": float(shuffled[rank]),
                },
            )
            schedules.append((steps, outcome))
        return schedules


class BulkReadExecutor:
    """Drop-in replacement for :class:`CollectiveReadExecutor` at scale.

    Same constructor and :meth:`run` contract, same
    :class:`~repro.core.executor.ConcurrentReadResult`; only the execution
    substrate differs (driver-loop replay instead of engine tasks).  The
    replayed rank program is the strategies' own bulk-synchronous read
    sequence — flush, view exchange, aggregator fetch in discrete-event
    order, scatter (one hop flat, two hops hierarchical), local assembly —
    so virtual times, delivered streams and outcome accounting are
    bit-identical to the engine path (``tests/test_core_bulk.py`` pins it).
    Raises :class:`TypeError` for strategies whose read schedule it cannot
    replay.
    """

    def __init__(
        self,
        fs: ParallelFileSystem,
        strategy: TwoPhaseStrategy,
        filename: str = "shared.dat",
        comm_cost: Optional[CommCostModel] = None,
    ) -> None:
        if not isinstance(strategy, TwoPhaseStrategy) and not hasattr(
            strategy, "resolve_static"
        ):
            raise TypeError(
                "BulkReadExecutor replays aggregation read schedules only; "
                f"{type(strategy).__name__} must run on the engine "
                "(CollectiveReadExecutor)"
            )
        self.fs = fs
        self.strategy = strategy
        self.filename = filename
        self.comm_cost = comm_cost or CommCostModel(latency=20e-6, byte_cost=1e-8)
        bind = getattr(strategy, "bind_context", None)
        if bind is not None:
            bind(fs, filename)

    def run(self, nprocs: int, view_factory: ViewFactory) -> ConcurrentReadResult:
        """Execute the collective read on ``nprocs`` replayed ranks."""
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        from ..fs.client import FSClient

        fs = self.fs
        fobj = fs.lookup(self.filename)
        regions = [
            FileRegionSet(rank, view_factory(rank, nprocs)) for rank in range(nprocs)
        ]
        clocks = [VirtualClock() for _ in range(nprocs)]

        # Resolve the adaptive strategy to its tuned read delegate (no
        # collective needed — the driver holds every rank's regions).
        resolver = getattr(self.strategy, "resolve_static", None)
        if resolver is not None:
            delegate = resolver(nprocs, regions, mode="read")
            decision = getattr(self.strategy, "last_decision", None)
            hint_extra = decision.hints() if decision is not None else {}
        else:
            delegate = self.strategy
            hint_extra = {}

        handles = []
        for rank in range(nprocs):
            client = FSClient(fs, client_id=rank, clock=clocks[rank])
            handles.append(client.open(self.filename, create=False))
        try:
            # Flush before the exchange rendezvous, exactly like
            # ``execute_read`` — a no-op in virtual time on the clean caches
            # of freshly opened handles, kept for sequence parity.
            for handle in handles:
                handle.sync()

            # Stage 1 — view exchange (adaptive ships the tagged flattened
            # view of 1 + 2*segments elements instead, costed honestly).
            if resolver is not None:
                exchange_costs = [
                    self.comm_cost.cost(_Volume(1 + 2 * r.num_segments))
                    for r in regions
                ]
            else:
                exchange_costs = [self.comm_cost.cost(r.segments) for r in regions]
            _rendezvous(clocks, exchange_costs)

            agg_set, aggregators, _, pieces, _ = delegate._negotiate(nprocs, regions)
            hierarchical = isinstance(delegate, HierarchicalTwoPhaseStrategy)

            # Per-aggregator fetch steps and aggregate sink buffers.
            held_by_rank: List[List[Tuple[int, int, int]]] = []
            buffers: List[bytearray] = []
            outcomes: List[ReadOutcome] = []
            for rank in range(nprocs):
                held = list(delegate._held_runs(rank, pieces))
                held_by_rank.append(held)
                size = held[-1][2] + (held[-1][1] - held[-1][0]) if held else 0
                buffers.append(bytearray(size))
                if hierarchical:
                    my_phase = (
                        0
                        if rank in agg_set
                        else (1 if rank == delegate._leader_of(rank) else 2)
                    )
                    extra = {
                        "aggregators": float(len(aggregators)),
                        "node_leaders": float(
                            -(-nprocs // delegate.ranks_per_node)
                        ),
                    }
                    phases = 3
                else:
                    my_phase = 0 if rank in agg_set else 1
                    extra = {"aggregators": float(len(aggregators))}
                    phases = 2
                extra.update(hint_extra)
                outcomes.append(
                    ReadOutcome(
                        strategy=self.strategy.name,
                        rank=rank,
                        bytes_requested=regions[rank].total_bytes,
                        phases=phases,
                        my_phase=my_phase,
                        start_time=0.0,
                        extra=extra,
                    )
                )

            # Phase 1 — aggregator fetch in discrete-event order: one direct
            # read per heap pop against the real client/link/server resource
            # stack (the heap IS the sequencing, as in the write replay).
            heap = [
                (clocks[rank].now, rank) for rank in range(nprocs) if held_by_rank[rank]
            ]
            heapq.heapify(heap)
            cursors = [0] * nprocs
            while heap:
                _, rank = heapq.heappop(heap)
                held = held_by_rank[rank]
                start, stop, buf = held[cursors[rank]]
                cursors[rank] += 1
                data = handles[rank].read(start, stop - start, direct=True)
                buffers[rank][buf : buf + len(data)] = data
                outcomes[rank].bytes_read += len(data)
                outcomes[rank].segments_read += 1
                if cursors[rank] < len(held):
                    heapq.heappush(heap, (clocks[rank].now, rank))

            # Phase 2 — scatter + assembly.
            if hierarchical:
                streams = self._deliver_hierarchical(
                    nprocs, regions, clocks, delegate, held_by_rank, buffers, outcomes
                )
            else:
                streams = self._deliver_flat(
                    nprocs, regions, clocks, held_by_rank, buffers, outcomes
                )
            for rank in range(nprocs):
                outcomes[rank].end_time = clocks[rank].now
                outcomes[rank].bytes_returned = len(streams[rank])
        finally:
            for handle in handles:
                handle.close()

        return ConcurrentReadResult(
            filename=self.filename,
            fs=fs,
            file=fobj,
            outcomes=outcomes,
            data=streams,
            spmd=SPMDResult(returns=list(zip(streams, outcomes)), clocks=clocks),
            regions=regions,
        )

    # -- delivery replays -------------------------------------------------------

    def _deliver_flat(
        self,
        nprocs: int,
        regions: List[FileRegionSet],
        clocks: List[VirtualClock],
        held_by_rank: List[List[Tuple[int, int, int]]],
        buffers: List[bytearray],
        outcomes: List[ReadOutcome],
    ) -> List[bytes]:
        """Replay :meth:`TwoPhaseStrategy.deliver_read` for every rank."""
        coverages = [r.coverage for r in regions]
        pieces_for: List[List[Tuple[int, bytes]]] = [[] for _ in range(nprocs)]
        volumes = [0] * nprocs
        for rank in range(nprocs):
            if not held_by_rank[rank]:
                continue
            sendbufs = scatter_pieces(held_by_rank[rank], buffers[rank], coverages)
            for dest, bufs in enumerate(sendbufs):
                if not bufs:
                    continue
                pieces_for[dest].extend(bufs)
                if dest != rank:
                    volumes[rank] += sum(len(piece) for _, piece in bufs)
        _rendezvous(
            clocks, [self.comm_cost.cost(_Volume(v)) for v in volumes]
        )
        streams = []
        for rank in range(nprocs):
            outcomes[rank].bytes_shuffled = volumes[rank]
            stream, filled = assemble_stream(
                pieces_for[rank], regions[rank].buffer_map(), regions[rank].total_bytes
            )
            outcomes[rank].extra["scatter_filled_bytes"] = float(filled)
            streams.append(stream)
        return streams

    def _deliver_hierarchical(
        self,
        nprocs: int,
        regions: List[FileRegionSet],
        clocks: List[VirtualClock],
        strategy: HierarchicalTwoPhaseStrategy,
        held_by_rank: List[List[Tuple[int, int, int]]],
        buffers: List[bytearray],
        outcomes: List[ReadOutcome],
    ) -> List[bytes]:
        """Replay :meth:`HierarchicalTwoPhaseStrategy.deliver_read`."""
        ppn = strategy.ranks_per_node
        coverages = [r.coverage for r in regions]
        per_node = node_coverages(coverages, ppn)

        # Hop 1 — inter-node scatter: aggregators ship each node leader the
        # union of its node's requested bytes.
        arrivals: List[List[Tuple[int, bytes]]] = [[] for _ in range(nprocs)]
        shuffled = [0] * nprocs
        hop1 = [0] * nprocs
        for rank in range(nprocs):
            if not held_by_rank[rank]:
                continue
            node_sendbufs = scatter_pieces(held_by_rank[rank], buffers[rank], per_node)
            for node_idx, bufs in enumerate(node_sendbufs):
                if not bufs:
                    continue
                leader = node_idx * ppn
                arrivals[leader].extend(bufs)
                if leader != rank:
                    hop1[rank] += sum(len(piece) for _, piece in bufs)
            shuffled[rank] += hop1[rank]
        _rendezvous(clocks, [self.comm_cost.cost(_Volume(v)) for v in hop1])

        # Leaders splice the arrived runs and cut them per local rank.
        pieces_for: List[List[Tuple[int, bytes]]] = [[] for _ in range(nprocs)]
        hop2 = [0] * nprocs
        for leader in range(0, nprocs, ppn):
            if not arrivals[leader]:
                continue
            node_held, node_buffer = gather_runs(arrivals[leader])
            locals_stop = min(nprocs, leader + ppn)
            cut = scatter_pieces(
                node_held,
                node_buffer,
                [coverages[r] for r in range(leader, locals_stop)],
            )
            for i, bufs in enumerate(cut):
                if not bufs:
                    continue
                dest = leader + i
                pieces_for[dest].extend(bufs)
                if dest != leader:
                    hop2[leader] += sum(len(piece) for _, piece in bufs)
        for leader in range(0, nprocs, ppn):
            shuffled[leader] += hop2[leader]

        # Hop 2 — intra-node scatter.
        _rendezvous(clocks, [self.comm_cost.cost(_Volume(v)) for v in hop2])

        streams = []
        for rank in range(nprocs):
            outcomes[rank].bytes_shuffled = shuffled[rank]
            stream, filled = assemble_stream(
                pieces_for[rank], regions[rank].buffer_map(), regions[rank].total_bytes
            )
            outcomes[rank].extra["scatter_filled_bytes"] = float(filled)
            streams.append(stream)
        return streams
