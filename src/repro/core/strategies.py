"""MPI-atomicity implementation strategies (Section 3 of the paper).

Each strategy turns one rank's share of a *concurrent overlapping write*
into a sequence of file system operations such that the MPI atomic-mode
guarantee holds: every byte of every overlapped region ends up containing
data from exactly one of the participating processes.

Implemented strategies:

:class:`NoAtomicityStrategy`
    The baseline (MPI non-atomic mode): each contiguous segment becomes an
    independent POSIX write.  Overlapped regions may end up interleaved —
    this is the failure mode of Figure 2 that motivates the paper.

:class:`LockingStrategy`
    Byte-range file locking (Section 3.2, the ROMIO approach): lock the whole
    extent of the process's file view, write every segment directly to the
    servers, unlock.  Correct on any file system with byte-range locks, but
    for the column-wise pattern the extent is nearly the whole file, so the
    concurrent writes serialise.

:class:`GraphColoringStrategy`
    Process handshaking via graph colouring (Section 3.3.1): exchange file
    views, build the boolean overlap matrix, greedily colour it, and perform
    the I/O in one phase per colour with barriers in between, flushing
    (``sync``) after the writes of each phase.

:class:`RankOrderingStrategy`
    Process-rank ordering (Section 3.3.2): exchange file views, give every
    overlapped byte to the highest-ranked writer, trim lower-ranked views,
    and let all processes write their now-disjoint regions fully in parallel.

All strategies are *collective over the communicator*: every rank of the
concurrent operation must call :meth:`AtomicityStrategy.execute_write`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..fs.client import ClientFileHandle
from ..fs.lockmanager import LockMode
from ..mpi.comm import Communicator
from .coloring import ColoringResult, greedy_coloring
from .overlap import build_overlap_matrix
from .rank_ordering import HIGHER_RANK_WINS, PriorityPolicy, resolve_by_rank
from .regions import FileRegionSet

__all__ = [
    "WriteOutcome",
    "AtomicityStrategy",
    "NoAtomicityStrategy",
    "LockingStrategy",
    "GraphColoringStrategy",
    "RankOrderingStrategy",
    "strategy_by_name",
    "STRATEGY_NAMES",
]


@dataclass
class WriteOutcome:
    """Per-rank accounting of one strategy execution."""

    strategy: str
    rank: int
    bytes_requested: int = 0
    bytes_written: int = 0
    bytes_surrendered: int = 0
    segments_written: int = 0
    locks_acquired: int = 0
    phases: int = 1
    my_phase: int = 0
    colors_used: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Virtual time this rank spent in the strategy."""
        return self.end_time - self.start_time


class AtomicityStrategy(ABC):
    """Interface of an MPI-atomicity implementation strategy."""

    #: Short machine-readable identifier (used by the benchmark harness).
    name: str = "abstract"

    @abstractmethod
    def execute_write(
        self,
        comm: Communicator,
        handle: ClientFileHandle,
        region: FileRegionSet,
        data: bytes,
    ) -> WriteOutcome:
        """Perform this rank's part of the concurrent overlapping write.

        Parameters
        ----------
        comm:
            Communicator of the participating processes (collective call).
        handle:
            The rank's open file handle.
        region:
            The rank's flattened file view for this request.
        data:
            The contiguous data stream; ``len(data)`` must equal
            ``region.total_bytes``.
        """

    # -- shared helpers ------------------------------------------------------------

    @staticmethod
    def _check_request(region: FileRegionSet, data: bytes) -> None:
        if len(data) != region.total_bytes:
            raise ValueError(
                f"data stream has {len(data)} bytes but the file view covers "
                f"{region.total_bytes} bytes"
            )

    @staticmethod
    def _exchange_views(
        comm: Communicator, region: FileRegionSet
    ) -> List[FileRegionSet]:
        """Allgather every rank's flattened view (the handshaking step)."""
        all_segments = comm.allgather(region.segments)
        return [FileRegionSet(rank, segs) for rank, segs in enumerate(all_segments)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NoAtomicityStrategy(AtomicityStrategy):
    """MPI non-atomic mode: uncoordinated per-segment POSIX writes."""

    name = "none"

    def __init__(self, use_cache: bool = True, sync_after: bool = True) -> None:
        self.use_cache = use_cache
        self.sync_after = sync_after

    def execute_write(self, comm, handle, region, data):  # noqa: D102 - see base
        self._check_request(region, data)
        out = WriteOutcome(
            strategy=self.name,
            rank=region.rank,
            bytes_requested=region.total_bytes,
            start_time=handle.clock.now,
        )
        for buf_off, file_off, length in region.buffer_map():
            handle.write(file_off, data[buf_off : buf_off + length], direct=not self.use_cache)
            out.bytes_written += length
            out.segments_written += 1
        if self.sync_after:
            handle.sync()
        out.end_time = handle.clock.now
        return out


class LockingStrategy(AtomicityStrategy):
    """Byte-range file locking over the whole file-view extent (Section 3.2)."""

    name = "locking"

    def execute_write(self, comm, handle, region, data):  # noqa: D102 - see base
        self._check_request(region, data)
        out = WriteOutcome(
            strategy=self.name,
            rank=region.rank,
            bytes_requested=region.total_bytes,
            start_time=handle.clock.now,
        )
        if region.is_empty():
            out.end_time = handle.clock.now
            return out
        extent = region.extent()
        # The lock must span from the first to the last byte the process will
        # write; locking each segment individually is NOT sufficient for MPI
        # atomicity (Section 3.2 / tests.test_incorrect_per_segment_locking).
        lock = handle.lock(extent.start, extent.stop, mode=LockMode.EXCLUSIVE)
        out.locks_acquired = 1
        out.extra["locked_bytes"] = float(extent.length)
        try:
            for buf_off, file_off, length in region.buffer_map():
                handle.write(file_off, data[buf_off : buf_off + length], direct=True)
                out.bytes_written += length
                out.segments_written += 1
        finally:
            handle.unlock(lock)
        out.end_time = handle.clock.now
        return out


class GraphColoringStrategy(AtomicityStrategy):
    """Process handshaking by graph colouring (Section 3.3.1)."""

    name = "graph-coloring"

    def __init__(self, use_cache: bool = True) -> None:
        self.use_cache = use_cache

    def execute_write(self, comm, handle, region, data):  # noqa: D102 - see base
        self._check_request(region, data)
        out = WriteOutcome(
            strategy=self.name,
            rank=region.rank,
            bytes_requested=region.total_bytes,
            start_time=handle.clock.now,
        )
        # Handshake: every process learns every other process's file view and
        # independently computes the identical colouring.
        regions = self._exchange_views(comm, region)
        overlap = build_overlap_matrix(regions)
        coloring: ColoringResult = greedy_coloring(overlap)
        my_color = coloring.color_of(region.rank)
        out.phases = max(coloring.num_colors, 1)
        out.colors_used = coloring.num_colors
        out.my_phase = my_color

        for step in range(max(coloring.num_colors, 1)):
            if step == my_color and not region.is_empty():
                for buf_off, file_off, length in region.buffer_map():
                    handle.write(
                        file_off, data[buf_off : buf_off + length], direct=not self.use_cache
                    )
                    out.bytes_written += length
                    out.segments_written += 1
                # Flush write-behind data so the next colour's processes (and
                # later readers) observe it — the file-sync the paper requires
                # after every write when handshaking replaces locking.
                handle.sync()
            # No process of colour step+1 may start before colour step finishes.
            comm.barrier()
        out.end_time = handle.clock.now
        return out


class RankOrderingStrategy(AtomicityStrategy):
    """Process-rank ordering (Section 3.3.2): high rank wins, others trim."""

    name = "rank-ordering"

    def __init__(self, policy: PriorityPolicy = HIGHER_RANK_WINS, use_cache: bool = True) -> None:
        self.policy = policy
        self.use_cache = use_cache

    def execute_write(self, comm, handle, region, data):  # noqa: D102 - see base
        self._check_request(region, data)
        out = WriteOutcome(
            strategy=self.name,
            rank=region.rank,
            bytes_requested=region.total_bytes,
            start_time=handle.clock.now,
        )
        # Handshake: exchange exact file views (byte ranges, not just a bit).
        regions = self._exchange_views(comm, region)
        resolution = resolve_by_rank(regions, policy=self.policy)
        my_view = resolution.view_of(region.rank)
        out.bytes_surrendered = resolution.surrendered_bytes[region.rank]

        # Write only the bytes this rank still owns; the data for surrendered
        # bytes is simply not transferred (reducing the total I/O volume).
        for buf_off, file_off, length in region.buffer_map_restricted(my_view.coverage):
            handle.write(file_off, data[buf_off : buf_off + length], direct=not self.use_cache)
            out.bytes_written += length
            out.segments_written += 1
        handle.sync()
        out.end_time = handle.clock.now
        return out


STRATEGY_NAMES: Tuple[str, ...] = ("locking", "graph-coloring", "rank-ordering", "none")


def strategy_by_name(name: str, **kwargs) -> AtomicityStrategy:
    """Instantiate a strategy from its short name."""
    table = {
        "locking": LockingStrategy,
        "graph-coloring": GraphColoringStrategy,
        "rank-ordering": RankOrderingStrategy,
        "none": NoAtomicityStrategy,
    }
    try:
        cls = table[name]
    except KeyError:
        raise KeyError(f"unknown strategy {name!r}; known: {sorted(table)}") from None
    return cls(**kwargs)
