"""MPI-atomicity implementation strategies (Section 3 of the paper).

Each strategy turns one rank's share of a *concurrent overlapping write*
into a sequence of file system operations such that the MPI atomic-mode
guarantee holds: every byte of every overlapped region ends up containing
data from exactly one of the participating processes.

All strategies are expressed as compositions of the staged collective-write
pipeline (:mod:`repro.core.pipeline`): a :class:`~repro.core.pipeline.ViewExchange`
configuration, a :class:`~repro.core.pipeline.ConflictAnalysis` configuration,
and a ``schedule`` method that turns the analysis into a declarative
:class:`~repro.core.pipeline.WritePlan`, which the shared
:class:`~repro.core.pipeline.PhaseRunner` executes.  Adding a strategy means
writing a ``schedule`` method and registering the class — see
``ARCHITECTURE.md`` for a worked example.

Implemented strategies:

:class:`NoAtomicityStrategy`
    The baseline (MPI non-atomic mode): each contiguous segment becomes an
    independent POSIX write.  Overlapped regions may end up interleaved —
    this is the failure mode of Figure 2 that motivates the paper.

:class:`LockingStrategy`
    Byte-range file locking (Section 3.2, the ROMIO approach): lock the whole
    extent of the process's file view, write every segment directly to the
    servers, unlock.  Correct on any file system with byte-range locks, but
    for the column-wise pattern the extent is nearly the whole file, so the
    concurrent writes serialise.

:class:`GraphColoringStrategy`
    Process handshaking via graph colouring (Section 3.3.1): exchange file
    views, build the boolean overlap matrix, greedily colour it, and perform
    the I/O in one phase per colour with barriers in between, flushing
    (``sync``) after the writes of each phase.

:class:`RankOrderingStrategy`
    Process-rank ordering (Section 3.3.2): exchange file views, give every
    overlapped byte to the highest-ranked writer, trim lower-ranked views,
    and let all processes write their now-disjoint regions fully in parallel.

:class:`TwoPhaseStrategy`
    Two-phase aggregation (ROMIO-style collective buffering): elect
    aggregator ranks, shuffle every rank's data to the aggregator owning the
    corresponding file-domain chunk (resolving overlaps by the rank-ordering
    priority rule during the merge), then write the disjoint aggregated
    extents fully in parallel.

All strategies are *collective over the communicator*: every rank of the
concurrent operation must call :meth:`AtomicityStrategy.execute_write`.

Every strategy also implements the **collective read** side
(:meth:`AtomicityStrategy.execute_read`) through the mirrored read pipeline
(:class:`~repro.core.pipeline.ReadPlan` / :class:`~repro.core.pipeline.ReadRunner`):

* ``none`` / ``graph-coloring`` / ``rank-ordering`` — invalidate the client
  cache (sync-then-invalidate, the paper's protocol for observing peers'
  flushed writes), then read the full view through the cache in one fully
  parallel phase; reads commute with reads, so no coloring phases or view
  trimming are needed — serialisation against conflicting *writers* comes
  from the cache protocol (their sync-after-write, our invalidate-before-read).
* ``locking`` — a *shared-mode* byte-range lock over the view extent, then
  direct reads: concurrent readers coexist while conflicting exclusive
  writers serialise against them.
* ``two-phase`` — aggregators read their disjoint file-domain chunks *once*
  (direct, no cache invalidation — resident pages stay warm), then scatter
  every consumer's pieces through ``alltoallv``; an overlapped byte costs one
  server read no matter how many ranks request it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..fs.lockmanager import LockMode
from .aggregation import (
    assemble_stream,
    choose_aggregators,
    choose_node_aggregators,
    gather_runs,
    merge_origin_runs,
    merge_pieces,
    node_coverages,
    partition_domain,
    route_stream,
    scatter_pieces,
)
from .coloring import ColoringResult
from .intervals import IntervalSet, clip_sorted_runs, merge_interval_sets
from .pipeline import (
    _SharedMemo,
    ConflictAnalysis,
    ConflictReport,
    LockDirective,
    PhasePlan,
    PhaseRunner,
    ReadPhasePlan,
    ReadPlan,
    ReadRunner,
    ReadStep,
    USER_PAYLOAD,
    ViewExchange,
    WritePlan,
    WriteStep,
)
from .rank_ordering import (
    HIGHER_RANK_WINS,
    PriorityPolicy,
    surrendered_bytes_by_priority,
)
from .regions import FileRegionSet
from .registry import default_registry, register_strategy

if TYPE_CHECKING:  # imported lazily to keep the package import graph acyclic
    from ..fs.client import ClientFileHandle
    from ..mpi.comm import Communicator

__all__ = [
    "WriteOutcome",
    "ReadOutcome",
    "PreparedWrite",
    "PreparedRead",
    "AtomicityStrategy",
    "PipelineStrategy",
    "NoAtomicityStrategy",
    "LockingStrategy",
    "GraphColoringStrategy",
    "RankOrderingStrategy",
    "TwoPhaseStrategy",
    "HierarchicalTwoPhaseStrategy",
    "strategy_by_name",
    "STRATEGY_NAMES",
]

#: Payload key of the merged aggregation buffer in a two-phase plan.
AGGREGATE_PAYLOAD = "aggregate"


@dataclass
class WriteOutcome:
    """Per-rank accounting of one strategy execution."""

    strategy: str
    rank: int
    bytes_requested: int = 0
    bytes_written: int = 0
    bytes_surrendered: int = 0
    segments_written: int = 0
    locks_acquired: int = 0
    phases: int = 1
    my_phase: int = 0
    colors_used: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Virtual time this rank spent in the strategy."""
        return self.end_time - self.start_time


@dataclass
class ReadOutcome:
    """Per-rank accounting of one collective-read execution.

    Symmetric to :class:`WriteOutcome`: ``bytes_requested`` is the volume the
    rank's view covers (and ``bytes_returned`` what the strategy delivered to
    it), ``bytes_read`` the volume actually fetched from the file system —
    smaller than the sum of requests when an aggregation strategy reads each
    overlapped byte once — and ``bytes_shuffled`` the volume moved between
    ranks by a scatter phase.
    """

    strategy: str
    rank: int
    bytes_requested: int = 0
    bytes_returned: int = 0
    bytes_read: int = 0
    bytes_shuffled: int = 0
    segments_read: int = 0
    locks_acquired: int = 0
    lock_wait_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    invalidations: int = 0
    phases: int = 1
    my_phase: int = 0
    colors_used: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Virtual time this rank spent in the strategy."""
        return self.end_time - self.start_time


@dataclass
class PreparedWrite:
    """Stage-3 output of a collective write, ready for execution.

    Produced by :meth:`PipelineStrategy.prepare_write` (view exchange,
    conflict analysis, scheduling — everything that needs the *data* and the
    peers), consumed by :meth:`PipelineStrategy.commit_write` (the file I/O).
    The split is what the split-collective API pins down: ``begin`` runs the
    exchange, ``end`` (or a detached progress task in between) the commit.
    """

    plan: WritePlan
    payloads: Dict[str, bytes]
    start_time: float


@dataclass
class PreparedRead:
    """Stage-3 output of a collective read, ready for execution.

    Carries the conflict report and the region alongside the plan because
    delivery (:meth:`PipelineStrategy.deliver_read`, which runs inside
    :meth:`PipelineStrategy.commit_read`) may need them — the two-phase
    scatter routes pieces with the exchanged views.
    """

    plan: ReadPlan
    report: ConflictReport
    region: FileRegionSet
    start_time: float


class AtomicityStrategy(ABC):
    """Interface of an MPI-atomicity implementation strategy."""

    #: Short machine-readable identifier (used by the registry and harness).
    name: str = "abstract"
    #: Whether the strategy guarantees the MPI atomic-mode outcome.
    provides_atomicity: bool = True
    #: Whether the strategy needs byte-range locks from the file system.
    requires_locks: bool = False
    #: Whether the strategy implements the collective read pipeline
    #: (:meth:`execute_read`).  Every :class:`PipelineStrategy` does.
    supports_collective_read: bool = False

    @classmethod
    def from_info(cls, info) -> "AtomicityStrategy":
        """Construct the strategy from an :class:`repro.io.info.Info` bag.

        The default ignores every hint; strategies with tunables override it
        to read theirs (``two-phase`` reads ``cb_nodes`` /
        ``cb_buffer_size``).  This is how MPI-IO hints thread through the
        registry (:meth:`repro.core.registry.StrategyRegistry.create_from_info`)
        into strategy construction.
        """
        return cls()

    @abstractmethod
    def execute_write(
        self,
        comm: Communicator,
        handle: ClientFileHandle,
        region: FileRegionSet,
        data: bytes,
    ) -> WriteOutcome:
        """Perform this rank's part of the concurrent overlapping write.

        Parameters
        ----------
        comm:
            Communicator of the participating processes (collective call).
        handle:
            The rank's open file handle.
        region:
            The rank's flattened file view for this request.
        data:
            The contiguous data stream; ``len(data)`` must equal
            ``region.total_bytes``.
        """

    def execute_read(
        self,
        comm: Communicator,
        handle: ClientFileHandle,
        region: FileRegionSet,
    ) -> Tuple[bytes, ReadOutcome]:
        """Perform this rank's part of a collective read.

        Returns ``(data, outcome)`` where ``data`` is the rank's contiguous
        data stream (``region.total_bytes`` bytes, in view order).  Collective
        over the communicator, like :meth:`execute_write`.
        """
        raise NotImplementedError(
            f"strategy {self.name!r} does not implement collective reads"
        )

    # -- shared helpers ------------------------------------------------------------

    @staticmethod
    def _check_request(region: FileRegionSet, data: bytes) -> None:
        if len(data) != region.total_bytes:
            raise ValueError(
                f"data stream has {len(data)} bytes but the file view covers "
                f"{region.total_bytes} bytes"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PipelineStrategy(AtomicityStrategy):
    """A strategy expressed as a staged-pipeline composition.

    Subclasses configure the first two stages (``exchange``, ``analysis``)
    and implement :meth:`schedule`, which turns the conflict report into a
    declarative :class:`~repro.core.pipeline.WritePlan` plus the payload
    buffers its steps draw from.  Execution is shared.

    The collective-read side is symmetric: stages 1 and 2 are reused as-is
    (the exchange and analysis are direction-agnostic), :meth:`schedule_read`
    builds a :class:`~repro.core.pipeline.ReadPlan`, the shared
    :class:`~repro.core.pipeline.ReadRunner` fetches it into named sinks, and
    :meth:`deliver_read` turns the sinks into the rank's contiguous data
    stream — the one read-specific hook, because delivery may involve
    communication (the two-phase scatter).  The default ``schedule_read`` /
    ``deliver_read`` pair — invalidate, then read the full view through the
    cache in one parallel phase — is correct for any strategy, so registering
    a new write strategy yields a working collective read for free.
    """

    exchange: ViewExchange = ViewExchange(enabled=False)
    analysis: ConflictAnalysis = ConflictAnalysis(mode="none")
    runner: PhaseRunner = PhaseRunner()
    read_runner: ReadRunner = ReadRunner()
    supports_collective_read = True

    def prepare_write(
        self,
        comm: Communicator,
        region: FileRegionSet,
        data: bytes,
        start_time: float,
    ) -> PreparedWrite:
        """Stages 1–3 of a collective write: exchange, analyse, schedule.

        Collective over ``comm`` (the exchange — and, for two-phase, the
        shuffle inside :meth:`schedule` — rendezvous there); performs no file
        I/O, so the result can be committed later, on a different clock, by
        :meth:`commit_write`.  ``start_time`` backdates the eventual outcome
        to when the operation logically began.
        """
        self._check_request(region, data)
        regions = self.exchange.run(comm, region)
        report = self.analysis.run(regions)
        plan, payloads = self.schedule(comm, region, data, report)
        return PreparedWrite(plan=plan, payloads=payloads, start_time=start_time)

    def commit_write(
        self, comm: Communicator, handle: ClientFileHandle, prepared: PreparedWrite
    ) -> WriteOutcome:
        """Stage 4 of a collective write: run the prepared plan's file I/O.

        Collective over ``comm`` when the plan contains barrier directives
        (graph colouring); ``comm`` and ``handle`` may belong to a detached
        progress task rather than the rank's main task.
        """
        return self.runner.execute(
            comm, handle, prepared.plan, prepared.payloads,
            start_time=prepared.start_time,
        )

    def execute_write(self, comm, handle, region, data):  # noqa: D102 - see base
        prepared = self.prepare_write(comm, region, data, handle.clock.now)
        return self.commit_write(comm, handle, prepared)

    def prepare_read(
        self, comm: Communicator, region: FileRegionSet, start_time: float
    ) -> PreparedRead:
        """Stages 1–3 of a collective read: exchange, analyse, schedule.

        The caller must have flushed its own write-behind data *before* the
        exchange rendezvous (``handle.sync()``): two-phase aggregators read
        directly from the servers on every rank's behalf, and they may start
        the moment the exchange completes.
        """
        regions = self.exchange.run(comm, region)
        report = self.analysis.run(regions)
        plan = self.schedule_read(comm, region, report)
        return PreparedRead(
            plan=plan, report=report, region=region, start_time=start_time
        )

    def commit_read(
        self, comm: Communicator, handle: ClientFileHandle, prepared: PreparedRead
    ) -> Tuple[bytes, ReadOutcome]:
        """Stage 4 of a collective read: fetch the plan, deliver the stream."""
        outcome, sinks = self.read_runner.execute(
            comm, handle, prepared.plan, start_time=prepared.start_time
        )
        data = self.deliver_read(
            comm, prepared.region, prepared.report, outcome, sinks
        )
        # Delivery may communicate; the outcome covers it.
        outcome.end_time = handle.clock.now
        outcome.bytes_returned = len(data)
        return data, outcome

    def execute_read(self, comm, handle, region):  # noqa: D102 - see base
        start_time = handle.clock.now
        # Push this rank's own write-behind data to the servers before any
        # read I/O happens — its own direct reads (locking), an aggregator's
        # read on its behalf (two-phase, whose fetches only start after the
        # exchange rendezvous below, i.e. after every rank has flushed), or
        # its own cached reads.  Without this, a direct read would return
        # the servers' stale bytes for data this very rank wrote.
        handle.sync()
        prepared = self.prepare_read(comm, region, start_time)
        return self.commit_read(comm, handle, prepared)

    @abstractmethod
    def schedule(
        self,
        comm: Communicator,
        region: FileRegionSet,
        data: bytes,
        report: ConflictReport,
    ) -> Tuple[WritePlan, Dict[str, bytes]]:
        """Build this rank's write plan from the conflict analysis."""

    def schedule_read(
        self,
        comm: Communicator,
        region: FileRegionSet,
        report: ConflictReport,
    ) -> ReadPlan:
        """Build this rank's read plan from the conflict analysis.

        Default schedule: drop cached pages that peers may have overwritten
        (sync-then-invalidate), then read the full view through the cache in
        one fully parallel phase.  Reads commute with reads, so no strategy
        needs phases or trimming for correctness; strategies override this to
        trade the invalidation and the per-rank read amplification away.
        """
        phase = ReadPhasePlan(
            index=0,
            steps=self._read_steps(region.buffer_map()),
            direct=not getattr(self, "use_cache", True),
            invalidate_before=True,
        )
        return self._read_plan(region, phases=[phase])

    def deliver_read(
        self,
        comm: Communicator,
        region: FileRegionSet,
        report: ConflictReport,
        outcome: ReadOutcome,
        sinks: Dict[str, bytearray],
    ) -> bytes:
        """Turn the runner's filled sinks into the rank's data stream."""
        return bytes(sinks.get(USER_PAYLOAD, bytearray()))

    def _plan(self, region: FileRegionSet, **kwargs) -> WritePlan:
        """A fresh plan pre-filled with the request bookkeeping."""
        return WritePlan(
            strategy=self.name,
            rank=region.rank,
            bytes_requested=region.total_bytes,
            **kwargs,
        )

    def _read_plan(self, region: FileRegionSet, **kwargs) -> ReadPlan:
        """A fresh read plan pre-filled with the request bookkeeping."""
        return ReadPlan(
            strategy=self.name,
            rank=region.rank,
            bytes_requested=region.total_bytes,
            **kwargs,
        )

    @staticmethod
    def _steps(buffer_map: Sequence[Tuple[int, int, int]]) -> List[WriteStep]:
        """Turn a region buffer map into user-payload write steps."""
        return [
            WriteStep(buffer_offset=buf, file_offset=off, length=length)
            for buf, off, length in buffer_map
        ]

    @staticmethod
    def _read_steps(
        buffer_map: Sequence[Tuple[int, int, int]], sink: str = USER_PAYLOAD
    ) -> List[ReadStep]:
        """Turn a region buffer map into read steps targeting ``sink``."""
        return [
            ReadStep(buffer_offset=buf, file_offset=off, length=length, sink=sink)
            for buf, off, length in buffer_map
        ]


@register_strategy
class NoAtomicityStrategy(PipelineStrategy):
    """MPI non-atomic mode: uncoordinated per-segment POSIX writes."""

    name = "none"
    provides_atomicity = False

    def __init__(self, use_cache: bool = True, sync_after: bool = True) -> None:
        self.use_cache = use_cache
        self.sync_after = sync_after

    def schedule(self, comm, region, data, report):  # noqa: D102 - see base
        phase = PhasePlan(
            index=0,
            steps=self._steps(region.buffer_map()),
            direct=not self.use_cache,
            sync_after=self.sync_after,
        )
        return self._plan(region, phases=[phase]), {USER_PAYLOAD: data}


@register_strategy
class LockingStrategy(PipelineStrategy):
    """Byte-range file locking over the whole file-view extent (Section 3.2)."""

    name = "locking"
    requires_locks = True

    def schedule(self, comm, region, data, report):  # noqa: D102 - see base
        if region.is_empty():
            return self._plan(region), {USER_PAYLOAD: data}
        extent = region.extent()
        # The lock must span from the first to the last byte the process will
        # write; locking each segment individually is NOT sufficient for MPI
        # atomicity (Section 3.2 / tests.test_incorrect_per_segment_locking).
        plan = self._plan(
            region,
            locks=[LockDirective(extent.start, extent.stop)],
            phases=[PhasePlan(index=0, steps=self._steps(region.buffer_map()), direct=True)],
            extra={"locked_bytes": float(extent.length)},
        )
        return plan, {USER_PAYLOAD: data}

    def schedule_read(self, comm, region, report):  # noqa: D102 - see base
        if region.is_empty():
            return self._read_plan(region)
        extent = region.extent()
        # Shared mode: concurrent readers are granted together; only a
        # conflicting exclusive (writer) lock serialises against us.  Reads
        # under the lock go direct (and the pipeline already flushed this
        # rank's dirty pages), so no cache invalidation is needed and
        # resident pages stay warm for later unlocked reads.
        return self._read_plan(
            region,
            locks=[LockDirective(extent.start, extent.stop, mode=LockMode.SHARED)],
            phases=[
                ReadPhasePlan(index=0, steps=self._read_steps(region.buffer_map()), direct=True)
            ],
            extra={"locked_bytes": float(extent.length)},
        )


@register_strategy
class GraphColoringStrategy(PipelineStrategy):
    """Process handshaking by graph colouring (Section 3.3.1)."""

    name = "graph-coloring"

    exchange = ViewExchange(enabled=True)
    analysis = ConflictAnalysis(mode="coloring")

    def __init__(self, use_cache: bool = True) -> None:
        self.use_cache = use_cache

    def schedule(self, comm, region, data, report):  # noqa: D102 - see base
        coloring: ColoringResult = report.coloring
        my_color = coloring.color_of(region.rank)
        steps = [] if region.is_empty() else self._steps(region.buffer_map())
        phases = []
        for step in range(max(coloring.num_colors, 1)):
            mine = step == my_color and bool(steps)
            phases.append(
                PhasePlan(
                    index=step,
                    steps=steps if mine else [],
                    direct=not self.use_cache,
                    # Flush write-behind data so the next colour's processes
                    # (and later readers) observe it — the file-sync the paper
                    # requires after every write when handshaking replaces
                    # locking.
                    sync_after=mine,
                    # No process of colour step+1 may start before colour
                    # step finishes.
                    barrier_after=True,
                )
            )
        plan = self._plan(
            region,
            phases=phases,
            my_phase=my_color,
            colors_used=coloring.num_colors,
        )
        return plan, {USER_PAYLOAD: data}

    def schedule_read(self, comm, region, report):  # noqa: D102 - see base
        # The handshake (view exchange + coloring) ran, but reads commute
        # with reads: the colouring resolves write-write conflicts, so the
        # read schedule is one fully parallel phase.  The invalidation is the
        # read half of the paper's protocol — writers of a conflicting
        # operation flushed (sync-after-write), we must drop stale pages.
        coloring: ColoringResult = report.coloring
        phase = ReadPhasePlan(
            index=0,
            steps=self._read_steps(region.buffer_map()),
            direct=not self.use_cache,
            invalidate_before=True,
        )
        return self._read_plan(
            region,
            phases=[phase],
            my_phase=coloring.color_of(region.rank),
            colors_used=coloring.num_colors,
        )


@register_strategy
class RankOrderingStrategy(PipelineStrategy):
    """Process-rank ordering (Section 3.3.2): high rank wins, others trim."""

    name = "rank-ordering"

    exchange = ViewExchange(enabled=True)

    def __init__(self, policy: PriorityPolicy = HIGHER_RANK_WINS, use_cache: bool = True) -> None:
        self.policy = policy
        self.use_cache = use_cache
        self.analysis = ConflictAnalysis(mode="rank-order", policy=policy)

    def schedule(self, comm, region, data, report):  # noqa: D102 - see base
        resolution = report.ordering
        my_view = resolution.view_of(region.rank)
        # Write only the bytes this rank still owns; the data for surrendered
        # bytes is simply not transferred (reducing the total I/O volume).
        phase = PhasePlan(
            index=0,
            steps=self._steps(region.buffer_map_restricted(my_view.coverage)),
            direct=not self.use_cache,
            sync_after=True,
        )
        plan = self._plan(
            region,
            phases=[phase],
            bytes_surrendered=resolution.surrendered_bytes[region.rank],
        )
        return plan, {USER_PAYLOAD: data}


@register_strategy
class TwoPhaseStrategy(PipelineStrategy):
    """Two-phase aggregation (ROMIO-style collective buffering).

    Phase 1 (shuffle): the aggregate file domain — the union of every rank's
    view — is partitioned among elected aggregator ranks; every rank ships
    the data for each covered byte to that byte's aggregator through an
    ``alltoallv`` exchange, and the aggregator merges the incoming pieces,
    giving contested bytes to the highest-priority covering rank (the same
    winner process-rank ordering picks, so the two strategies are
    byte-for-byte comparable).

    Phase 2 (write): each aggregator writes its merged, pairwise-disjoint
    extents fully in parallel — no locks, no inter-phase barriers — with the
    originating rank recorded as each run's provenance.
    """

    name = "two-phase"

    exchange = ViewExchange(enabled=True)

    #: Class-level negotiation memo: the MPI-IO layer builds one strategy
    #: instance per rank (each rank owns its file handle), yet all ranks of a
    #: collective negotiate over the *same* exchanged region objects, so
    #: keying by region identity plus the tunables lets P ranks share one
    #: negotiation instead of computing P identical ones.
    _negotiation_memo = _SharedMemo()

    def __init__(
        self,
        num_aggregators: Optional[int] = None,
        policy: PriorityPolicy = HIGHER_RANK_WINS,
        cb_buffer_size: Optional[int] = None,
    ) -> None:
        if num_aggregators is not None and num_aggregators <= 0:
            raise ValueError("num_aggregators must be positive")
        if cb_buffer_size is not None and cb_buffer_size <= 0:
            raise ValueError("cb_buffer_size must be positive")
        self.num_aggregators = num_aggregators
        self.policy = policy
        self.cb_buffer_size = cb_buffer_size
        self._memo = self._negotiation_memo

    @classmethod
    def from_info(cls, info) -> "TwoPhaseStrategy":
        """Read the ROMIO collective-buffering hints.

        ``cb_nodes`` fixes the aggregator count; ``cb_buffer_size`` caps the
        per-aggregator file-domain chunk, so when ``cb_nodes`` is absent the
        election sizes itself to the covered domain.
        """
        cb_nodes = info.get_int("cb_nodes", 0)
        cb_buffer = info.get_int("cb_buffer_size", 0)
        return cls(
            num_aggregators=cb_nodes if cb_nodes > 0 else None,
            cb_buffer_size=cb_buffer if cb_buffer > 0 else None,
        )

    def _aggregator_count(self, comm_size: int, domain_bytes: int) -> int:
        """How many aggregators to elect for a domain of ``domain_bytes``."""
        if self.num_aggregators is not None:
            return self.num_aggregators
        if self.cb_buffer_size is not None and domain_bytes > 0:
            wanted = -(-domain_bytes // self.cb_buffer_size)  # ceil division
            return max(1, min(comm_size, wanted))
        return comm_size

    def _elect(self, comm_size: int, want: int) -> List[int]:
        """Pick the aggregator ranks (hook for topology-aware subclasses)."""
        return choose_aggregators(comm_size, want)

    def _tunables_key(self) -> Tuple:
        """Every tunable that changes the negotiation, for the memo key."""
        return (type(self).__name__, self.num_aggregators, self.cb_buffer_size,
                id(self.policy))

    def _negotiate(self, comm_size: int, regions: Sequence[FileRegionSet]):
        """Election, partitioning and surrender accounting for one collective.

        Every rank computes the identical result from the identical exchanged
        views, so when the ranks share the regions list from the exchange
        stage this runs once per collective instead of once per rank.
        Returns ``(agg_set, aggregators, piece_starts, pieces, surrendered)``
        where ``agg_set`` is ``frozenset(aggregators)`` (precomputed once so
        the per-rank membership tests in :meth:`schedule` stay O(1)),
        ``pieces`` is the flat file-ordered routing table
        ``(start, stop, aggregator_rank)`` over the covered domain with
        ``piece_starts`` its bisection index, and ``surrendered[rank]``
        counts the bytes of ``rank``'s view that a higher-priority rank also
        covers — the same winners the aggregators' merge picks (ties break
        towards the lower rank, as in :func:`resolve_by_rank`), computed by
        one descending-priority sweep.
        """
        # Fingerprint every exchanged view by identity: the region objects
        # are shared between ranks even when the list holding them was
        # copied (ConflictReport hands each rank its own list), and two
        # lists differing in any element must not share a negotiation.
        pin = tuple(regions)
        # The memo is shared between strategy instances (one per rank in the
        # MPI-IO layer), so the key must include every tunable that changes
        # the negotiation, not just the exchanged views.
        key = (
            tuple(map(id, pin)),
            comm_size,
            self._tunables_key(),
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        domain = merge_interval_sets([r.coverage for r in regions])
        want = self._aggregator_count(comm_size, domain.total_bytes)
        aggregators = self._elect(comm_size, want)
        chunks = partition_domain(domain, len(aggregators))
        pieces: List[Tuple[int, int, int]] = []
        for chunk, agg_rank in zip(chunks, aggregators):
            for iv in chunk:
                pieces.append((iv.start, iv.stop, agg_rank))
        pieces.sort()
        piece_starts = [start for start, _, _ in pieces]
        surrendered = surrendered_bytes_by_priority(regions, policy=self.policy)
        result = (frozenset(aggregators), aggregators, piece_starts, pieces, surrendered)
        self._memo.put(key, pin, result)
        return result

    def schedule(self, comm, region, data, report):  # noqa: D102 - see base
        regions = report.regions
        agg_set, aggregators, piece_starts, pieces, surrendered = self._negotiate(
            comm.size, regions
        )

        # Phase 1 — shuffle: ship each covered byte to its chunk's aggregator.
        # Route each view segment through the file-ordered piece table by
        # bisection, so the per-rank cost scales with the rank's own segment
        # count, not with the aggregator count.
        sendbufs: List[List[Tuple[int, bytes]]] = [[] for _ in range(comm.size)]
        shuffled = 0
        piece_stops = [stop for _, stop, _ in pieces]
        for agg_rank, lo, chunk in route_stream(
            region.buffer_map(), data, piece_starts, piece_stops, pieces
        ):
            sendbufs[agg_rank].append((lo, chunk))
            shuffled += len(chunk)
        received = comm.alltoallv(sendbufs)

        # Merge (aggregators only): later-priority data overwrites earlier.
        steps: List[WriteStep] = []
        buffer = bytearray()
        if region.rank in agg_set:
            runs = merge_pieces(list(enumerate(received)), policy=self.policy)
            for run in runs:
                steps.append(
                    WriteStep(
                        buffer_offset=len(buffer),
                        file_offset=run.offset,
                        length=run.length,
                        source=AGGREGATE_PAYLOAD,
                        writer=run.origin,
                    )
                )
                buffer.extend(run.data)

        # Phase 2 — parallel disjoint writes of the aggregated extents.
        plan = self._plan(
            region,
            phases=[PhasePlan(index=1, steps=steps, direct=True)],
            reported_phases=2,
            my_phase=1 if region.rank in agg_set else 0,
            bytes_surrendered=surrendered[region.rank],
            extra={
                "aggregators": float(len(aggregators)),
                "shuffled_bytes": float(shuffled),
            },
        )
        return plan, {USER_PAYLOAD: data, AGGREGATE_PAYLOAD: bytes(buffer)}

    def _held_runs(self, rank: int, pieces: Sequence[Tuple[int, int, int]]):
        """The chunk runs ``rank`` aggregates, as ``(start, stop, buffer_offset)``
        triples in file order — the layout of its aggregation sink."""
        held: List[Tuple[int, int, int]] = []
        buf = 0
        for start, stop, agg_rank in pieces:
            if agg_rank == rank:
                held.append((start, stop, buf))
                buf += stop - start
        return held

    def schedule_read(self, comm, region, report):  # noqa: D102 - see base
        # Phase 1 — read: each aggregator fetches its file-domain chunk once,
        # directly from the servers (bypassing — and therefore never
        # invalidating — the client cache; every rank's dirty pages were
        # flushed before the exchange rendezvous, so the servers are
        # current).  An overlapped byte costs one server read regardless of
        # how many consumers cover it.
        regions = report.regions
        agg_set, aggregators, _, pieces, _ = self._negotiate(comm.size, regions)
        steps = [
            ReadStep(buffer_offset=buf, file_offset=start, length=stop - start,
                     sink=AGGREGATE_PAYLOAD)
            for start, stop, buf in self._held_runs(region.rank, pieces)
        ]
        return self._read_plan(
            region,
            phases=[ReadPhasePlan(index=0, steps=steps, direct=True)],
            reported_phases=2,
            my_phase=0 if region.rank in agg_set else 1,
            extra={"aggregators": float(len(aggregators))},
        )

    def deliver_read(self, comm, region, report, outcome, sinks):  # noqa: D102 - see base
        # Phase 2 — scatter: ship every consumer the pieces of its view this
        # aggregator holds, then assemble the received pieces into the user
        # stream.  _negotiate is memoised per collective, so re-asking here
        # costs a dictionary lookup.
        regions = report.regions
        _, _, _, pieces, _ = self._negotiate(comm.size, regions)
        held = self._held_runs(region.rank, pieces)
        sendbufs = scatter_pieces(
            held,
            sinks.get(AGGREGATE_PAYLOAD, bytearray()),
            [r.coverage for r in regions],
        )
        received = comm.alltoallv(sendbufs)
        outcome.bytes_shuffled = sum(
            len(data) for dest, bufs in enumerate(sendbufs) if dest != region.rank
            for _, data in bufs
        )
        stream, filled = assemble_stream(
            [piece for bufs in received for piece in bufs],
            region.buffer_map(),
            region.total_bytes,
        )
        outcome.extra["scatter_filled_bytes"] = float(filled)
        return stream


@register_strategy
class HierarchicalTwoPhaseStrategy(TwoPhaseStrategy):
    """Two-level (hierarchical) two-phase aggregation.

    The flat shuffle of :class:`TwoPhaseStrategy` has every rank exchanging
    with every aggregator — at tens of thousands of ranks the metadata alone
    (dense per-destination send lists) dominates.  The hierarchical variant
    splits the shuffle along the machine topology:

    1. **node combine** — every rank ships its pieces to its *node leader*
       (the lowest rank of its ``ranks_per_node`` block), which pre-merges
       them with the same priority rule, keeping per-byte origins;
    2. **global combine** — node leaders route the pre-merged, origin-tagged
       runs to the global aggregators (evenly spaced node leaders, the
       ``cb_nodes`` hint) owning each file-domain chunk, which merge again
       *by origin priority*;
    3. **write** — the aggregators write their disjoint extents in parallel,
       exactly as in the flat strategy.

    Both hops use the sparse all-to-all, so every data structure is sized by
    actual traffic (each rank talks to one leader; each leader to a handful
    of aggregators), never by ``P``.  Because the merge priority
    ``(policy(origin), -origin)`` is a fixed total order, merging node-local
    winners and then merging across nodes picks the same winner for every
    byte as one flat merge — file contents and per-byte provenance are
    byte-identical to :class:`TwoPhaseStrategy`; only the communication
    schedule (and hence the virtual makespan) differs.

    Selectable through Info hints: ``atomicity_strategy = two-phase-hier``
    with ``cb_ppn`` (ranks per node, default 8) and ``cb_nodes`` (number of
    aggregator nodes, default: every node) describing the topology.
    """

    name = "two-phase-hier"

    #: Default block size of the rank-to-node placement when no ``cb_ppn``
    #: hint is given.
    DEFAULT_RANKS_PER_NODE = 8

    def __init__(
        self,
        num_aggregators: Optional[int] = None,
        policy: PriorityPolicy = HIGHER_RANK_WINS,
        cb_buffer_size: Optional[int] = None,
        ranks_per_node: Optional[int] = None,
    ) -> None:
        super().__init__(
            num_aggregators=num_aggregators,
            policy=policy,
            cb_buffer_size=cb_buffer_size,
        )
        if ranks_per_node is not None and ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")
        self.ranks_per_node = ranks_per_node or self.DEFAULT_RANKS_PER_NODE

    @classmethod
    def from_info(cls, info) -> "HierarchicalTwoPhaseStrategy":
        """Read the collective-buffering hints plus the ``cb_ppn`` topology."""
        cb_nodes = info.get_int("cb_nodes", 0)
        cb_buffer = info.get_int("cb_buffer_size", 0)
        cb_ppn = info.get_int("cb_ppn", 0)
        return cls(
            num_aggregators=cb_nodes if cb_nodes > 0 else None,
            cb_buffer_size=cb_buffer if cb_buffer > 0 else None,
            ranks_per_node=cb_ppn if cb_ppn > 0 else None,
        )

    def _aggregator_count(self, comm_size: int, domain_bytes: int) -> int:
        """Default to one aggregator per node instead of one per rank."""
        if self.num_aggregators is None and self.cb_buffer_size is None:
            return -(-comm_size // self.ranks_per_node)  # ceil: node count
        return super()._aggregator_count(comm_size, domain_bytes)

    def _elect(self, comm_size: int, want: int) -> List[int]:
        ppn = min(self.ranks_per_node, comm_size)
        return choose_node_aggregators(comm_size, ppn, want)

    def _tunables_key(self) -> Tuple:
        return super()._tunables_key() + (self.ranks_per_node,)

    def _leader_of(self, rank: int) -> int:
        return (rank // self.ranks_per_node) * self.ranks_per_node

    def schedule(self, comm, region, data, report):  # noqa: D102 - see base
        regions = report.regions
        agg_set, aggregators, piece_starts, pieces, surrendered = self._negotiate(
            comm.size, regions
        )
        leader = self._leader_of(region.rank)
        is_leader = region.rank == leader

        # Hop 1 — node combine: ship this rank's raw view pieces to its node
        # leader.  No routing yet; the leader sees every piece of its node.
        my_pieces = [
            (file_off, data[buf_off : buf_off + length])
            for buf_off, file_off, length in region.buffer_map()
        ]
        shuffled = 0
        if not is_leader:
            shuffled += sum(len(d) for _, d in my_pieces)
        node_received = comm.alltoallv_sparse(
            {leader: my_pieces} if my_pieces else {}
        )

        # Leaders pre-merge their node's pieces, keeping per-byte origins,
        # then route the merged runs through the file-ordered piece table to
        # the global aggregator owning each byte.
        outgoing: Dict[int, List[Tuple[int, int, bytes]]] = {}
        if is_leader and node_received:
            node_runs = merge_origin_runs(
                [
                    (src, off, piece)
                    for src, sent in node_received
                    for off, piece in sent
                ],
                policy=self.policy,
            )
            piece_stops = [stop for _, stop, _ in pieces]
            for run in node_runs:
                for lo, hi, idx in clip_sorted_runs(
                    piece_starts, piece_stops, run.offset, run.offset + run.length
                ):
                    agg_rank = pieces[idx][2]
                    outgoing.setdefault(agg_rank, []).append(
                        (run.origin, lo, run.data[lo - run.offset : hi - run.offset])
                    )
                    if agg_rank != region.rank:
                        shuffled += hi - lo

        # Hop 2 — global combine: aggregators merge the origin-tagged runs
        # from all leaders; the fixed priority total order makes the result
        # identical to a flat merge of every rank's raw pieces.
        agg_received = comm.alltoallv_sparse(outgoing)
        steps: List[WriteStep] = []
        buffer = bytearray()
        if region.rank in agg_set:
            runs = merge_origin_runs(
                [run for _, sent in agg_received for run in sent],
                policy=self.policy,
            )
            for run in runs:
                steps.append(
                    WriteStep(
                        buffer_offset=len(buffer),
                        file_offset=run.offset,
                        length=run.length,
                        source=AGGREGATE_PAYLOAD,
                        writer=run.origin,
                    )
                )
                buffer.extend(run.data)

        # Write phase: identical to the flat strategy — disjoint extents,
        # fully parallel, provenance per merged run.
        plan = self._plan(
            region,
            phases=[PhasePlan(index=2, steps=steps, direct=True)],
            reported_phases=3,
            my_phase=2 if region.rank in agg_set else (1 if is_leader else 0),
            bytes_surrendered=surrendered[region.rank],
            extra={
                "aggregators": float(len(aggregators)),
                "node_leaders": float(-(-comm.size // self.ranks_per_node)),
                "shuffled_bytes": float(shuffled),
            },
        )
        return plan, {USER_PAYLOAD: data, AGGREGATE_PAYLOAD: bytes(buffer)}

    #: Class-level memo for the per-node union coverages of one collective
    #: read — shared across the P per-rank strategy instances exactly like
    #: the negotiation memo.
    _node_coverage_memo = _SharedMemo()

    def _node_coverages(
        self, comm_size: int, regions: Sequence[FileRegionSet]
    ) -> List[IntervalSet]:
        """Per-node union coverages for the scatter hops, memoised per
        collective (same identity-pinning discipline as :meth:`_negotiate`)."""
        pin = tuple(regions)
        key = (tuple(map(id, pin)), comm_size, self.ranks_per_node)
        cached = self._node_coverage_memo.get(key)
        if cached is not None:
            return cached
        per_node = node_coverages([r.coverage for r in regions], self.ranks_per_node)
        self._node_coverage_memo.put(key, pin, per_node)
        return per_node

    def schedule_read(self, comm, region, report):  # noqa: D102 - see base
        # Phase 0 — fetch: identical to the flat read (the negotiation already
        # elects topology-aware node-leader aggregators via cb_nodes/cb_ppn),
        # but the plan reports the three-phase hierarchical schedule: fetch,
        # inter-node scatter to the node leaders, intra-node scatter.
        regions = report.regions
        agg_set, aggregators, _, pieces, _ = self._negotiate(comm.size, regions)
        steps = [
            ReadStep(buffer_offset=buf, file_offset=start, length=stop - start,
                     sink=AGGREGATE_PAYLOAD)
            for start, stop, buf in self._held_runs(region.rank, pieces)
        ]
        is_leader = region.rank == self._leader_of(region.rank)
        return self._read_plan(
            region,
            phases=[ReadPhasePlan(index=0, steps=steps, direct=True)],
            reported_phases=3,
            my_phase=0 if region.rank in agg_set else (1 if is_leader else 2),
            extra={
                "aggregators": float(len(aggregators)),
                "node_leaders": float(-(-comm.size // self.ranks_per_node)),
            },
        )

    def deliver_read(self, comm, region, report, outcome, sinks):  # noqa: D102 - see base
        # The scatter half of the flat read, split along the topology.  Both
        # hops are sparse, so the per-rank bookkeeping is sized by actual
        # traffic: an aggregator talks to node leaders, a leader to its
        # ranks_per_node locals.  Every byte of a node's union request
        # crosses the inter-node network once, however many of the node's
        # ranks cover it.
        regions = report.regions
        _, _, _, pieces, _ = self._negotiate(comm.size, regions)
        held = self._held_runs(region.rank, pieces)
        per_node = self._node_coverages(comm.size, regions)

        # Hop 1 — inter-node scatter: cut the fetched chunk against the
        # per-node union coverages and ship each node's pieces to its leader.
        node_sendbufs = scatter_pieces(
            held, sinks.get(AGGREGATE_PAYLOAD, bytearray()), per_node
        )
        shuffled = 0
        outgoing: Dict[int, List[Tuple[int, bytes]]] = {}
        for node_idx, bufs in enumerate(node_sendbufs):
            if not bufs:
                continue
            leader = node_idx * self.ranks_per_node
            outgoing[leader] = bufs
            if leader != region.rank:
                shuffled += sum(len(piece) for _, piece in bufs)
        node_received = comm.alltoallv_sparse(outgoing)

        # Leaders splice the received disjoint pieces into a node-resident
        # buffer and cut it again, per local rank this time.
        local: Dict[int, List[Tuple[int, bytes]]] = {}
        if region.rank == self._leader_of(region.rank) and node_received:
            node_held, node_buffer = gather_runs(
                [piece for _, sent in node_received for piece in sent]
            )
            locals_stop = min(comm.size, region.rank + self.ranks_per_node)
            cut = scatter_pieces(
                node_held,
                node_buffer,
                [regions[r].coverage for r in range(region.rank, locals_stop)],
            )
            for i, bufs in enumerate(cut):
                if not bufs:
                    continue
                dest = region.rank + i
                local[dest] = bufs
                if dest != region.rank:
                    shuffled += sum(len(piece) for _, piece in bufs)

        # Hop 2 — intra-node scatter: every rank receives exactly the pieces
        # of its own view from its leader.
        received = comm.alltoallv_sparse(local)
        outcome.bytes_shuffled = shuffled
        stream, filled = assemble_stream(
            [piece for _, sent in received for piece in sent],
            region.buffer_map(),
            region.total_bytes,
        )
        outcome.extra["scatter_filled_bytes"] = float(filled)
        return stream


def strategy_by_name(name: str, **kwargs) -> AtomicityStrategy:
    """Instantiate a strategy from its registered short name."""
    return default_registry.create(name, **kwargs)


#: The built-in strategy names, frozen at import of this module (kept for
#: backwards compatibility).  Strategies registered later do NOT appear here;
#: query :data:`repro.core.registry.default_registry` for the live set.
STRATEGY_NAMES: Tuple[str, ...] = default_registry.names()

# Registers the adaptive "auto" strategy (deliberately after the freeze
# above: "auto" is a tuner over these strategies, not one of the paper's
# fixed strategies).  Imported last to keep the dependency one-way at class
# definition time.
from . import autotune as _autotune  # noqa: E402,F401  (registration side effect)
