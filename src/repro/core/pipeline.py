"""The staged collective-write pipeline.

Every atomicity strategy in the paper follows the same hidden sequence:
exchange file views, analyse conflicts, schedule who writes what when, then
execute the I/O.  This module makes that sequence explicit as four composable
stages, so a strategy is nothing but a particular configuration of them:

:class:`ViewExchange`
    Stage 1 (communication): ``allgather`` every rank's flattened file view —
    the handshaking step of Section 3.3.  Strategies that need no knowledge
    of their peers (byte-range locking, the non-atomic baseline) disable it
    and pay no negotiation cost.

:class:`ConflictAnalysis`
    Stage 2 (pure local computation): run the requested conflict-resolution
    algorithm on the exchanged views — the boolean overlap matrix plus greedy
    colouring (Section 3.3.1), or the exact rank-priority trimming
    (Section 3.3.2).  Every rank computes the identical result from the
    identical inputs, so no further communication is needed.

:class:`WritePlan` / :class:`PhasePlan` / :class:`WriteStep` / :class:`LockDirective`
    Stage 3 output: a *declarative* schedule of this rank's I/O — which byte
    ranges to lock, how many phases the collective operation has, and which
    ``(buffer, file, length)`` transfers happen in each phase, with per-phase
    cache/sync/barrier behaviour.  Building the plan is the only part a
    strategy has to implement.

:class:`PhaseRunner`
    Stage 4 (execution): walk a :class:`WritePlan` against a
    :class:`~repro.fs.client.ClientFileHandle`, acquire the scheduled locks,
    issue each phase's transfers as one batched write, honour the sync and
    barrier directives, and account everything into a
    :class:`~repro.core.strategies.WriteOutcome`.

The legacy strategies (locking, graph-coloring, rank-ordering) and the
two-phase aggregation strategy are all expressed as compositions of these
stages — see :mod:`repro.core.strategies`.

The **read pipeline** mirrors the write pipeline with the data flowing the
other way: stages 1 and 2 are shared unchanged (the exchange and the
analysis do not care about the transfer direction), stage 3 produces a
:class:`ReadPlan` — :class:`ReadStep` transfers grouped into
:class:`ReadPhasePlan` phases, with shared-mode :class:`LockDirective` locks
and per-phase cache-invalidation directives instead of sync directives —
and stage 4 is the :class:`ReadRunner`, which fetches each step into a named
*sink* buffer and accounts everything into a
:class:`~repro.core.strategies.ReadOutcome`.  Because a collective read may
move fetched bytes *between* ranks after the file I/O (the two-phase scatter),
delivery of the user stream is a strategy hook that runs after the runner —
see :meth:`repro.core.strategies.PipelineStrategy.execute_read`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..fs.lockmanager import LockMode
from .coloring import ColoringResult, greedy_coloring
from .overlap import OverlapMatrix, build_overlap_matrix
from .rank_ordering import (
    HIGHER_RANK_WINS,
    PriorityPolicy,
    RankOrderingResult,
    resolve_by_rank,
)
from .regions import FileRegionSet

if TYPE_CHECKING:  # imported lazily to keep the package import graph acyclic
    from ..fs.client import ClientFileHandle
    from ..mpi.comm import Communicator

__all__ = [
    "ViewExchange",
    "ConflictAnalysis",
    "ConflictReport",
    "LockDirective",
    "WriteStep",
    "PhasePlan",
    "WritePlan",
    "PhaseRunner",
    "ReadStep",
    "ReadPhasePlan",
    "ReadPlan",
    "ReadRunner",
    "USER_PAYLOAD",
]

#: Key of the rank's own data stream in a plan's payload dictionary.
USER_PAYLOAD = "user"

#: How many recent collective operations the view/analysis caches remember.
#: One entry per concurrent collective is enough; a few more tolerate
#: interleaved experiments sharing a strategy instance.
_MEMO_ENTRIES = 4


class _SharedMemo:
    """A tiny LRU keyed by object identity, pinning keys alive.

    Within one collective operation every rank receives the *same* Python
    objects from the exchange (payloads travel by reference), so object
    identity is a constant-time fingerprint for "the same exchanged views".
    The memo stores a reference (``pin``) to the keyed objects, which keeps
    their ids stable — and therefore unique — for as long as the entry
    lives, so a key hit is guaranteed to mean "the very same objects".
    """

    def __init__(self, entries: int = _MEMO_ENTRIES) -> None:
        self.entries = entries
        self._slots: "OrderedDict[Any, Tuple[Any, Any]]" = OrderedDict()

    def get(self, key: Any) -> Optional[Any]:
        hit = self._slots.get(key)
        if hit is None:
            return None
        self._slots.move_to_end(key)
        return hit[1]

    def put(self, key: Any, pin: Any, value: Any) -> None:
        self._slots[key] = (pin, value)
        while len(self._slots) > self.entries:
            self._slots.popitem(last=False)


# ---------------------------------------------------------------------------
# Stage 1 — view exchange (communication layer)
# ---------------------------------------------------------------------------


class ViewExchange:
    """Collectively exchange every rank's flattened file view.

    ``enabled=False`` makes the stage a no-op (returns ``None``): the
    byte-range locking strategy and the non-atomic baseline coordinate
    through the file system, not through the communicator, and must not pay
    the negotiation cost of an ``allgather``.

    Every rank of one collective operation allgathers the *same* segment
    tuples (payloads travel by reference), so the stage builds the
    :class:`~repro.core.regions.FileRegionSet` list once and hands the same
    (read-only) list to all ranks — an O(P) identity-fingerprint lookup per
    rank instead of P regions rebuilt P times.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._memo = _SharedMemo()

    def run(
        self, comm: "Communicator", region: FileRegionSet
    ) -> Optional[List[FileRegionSet]]:
        """Allgather the views; ``regions[i]`` is rank *i*'s view.

        The returned list is shared between the ranks of one collective —
        treat it as immutable.
        """
        if not self.enabled:
            return None
        all_segments = comm.allgather_shared(region.segments)
        key = id(all_segments)
        regions = self._memo.get(key)
        if regions is None:
            regions = [FileRegionSet(rank, segs) for rank, segs in enumerate(all_segments)]
            self._memo.put(key, all_segments, regions)
        return regions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ViewExchange(enabled={self.enabled})"


# ---------------------------------------------------------------------------
# Stage 2 — conflict analysis (pure local computation)
# ---------------------------------------------------------------------------


@dataclass
class ConflictReport:
    """Everything stage 2 learned about the concurrent operation.

    Fields are ``None`` when the corresponding analysis was not requested;
    strategies read only what their scheduling needs.
    """

    regions: Optional[List[FileRegionSet]] = None
    overlap: Optional[OverlapMatrix] = None
    coloring: Optional[ColoringResult] = None
    ordering: Optional[RankOrderingResult] = None


class ConflictAnalysis:
    """Run a conflict-resolution algorithm on the exchanged views.

    ``mode`` selects the algorithm:

    * ``"none"`` — no analysis (locking / baseline);
    * ``"coloring"`` — overlap matrix + greedy colouring (Section 3.3.1);
    * ``"rank-order"`` — exact priority trimming (Section 3.3.2).  Also used
      by the two-phase strategy, whose per-byte winner is the same
      highest-priority covering rank.
    """

    MODES = ("none", "coloring", "rank-order")

    def __init__(
        self,
        mode: str = "none",
        policy: PriorityPolicy = HIGHER_RANK_WINS,
        order: Optional[Sequence[int]] = None,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown analysis mode {mode!r}; known: {self.MODES}")
        self.mode = mode
        self.policy = policy
        self.order = order
        self._memo = _SharedMemo()

    def run(self, regions: Optional[Sequence[FileRegionSet]]) -> ConflictReport:
        """Analyse ``regions`` (the stage-1 output) deterministically.

        Every rank computes the identical result from the identical inputs,
        so when the ranks of one collective pass the shared regions list
        from :class:`ViewExchange`, the analysis runs once and the products
        (matrix, colouring, ordering) are shared — this is what makes the
        O(P^2)-ish negotiation algorithms affordable at thousands of ranks.
        """
        # Hand the shared stage-1 list through as-is: copying it per rank is
        # O(P) references per rank — O(P^2) per collective — for no benefit,
        # since the report is read-only downstream.
        if regions is not None and not isinstance(regions, list):
            regions = list(regions)
        report = ConflictReport(regions=regions)
        if self.mode == "none" or regions is None:
            return report
        # Fingerprint every view by identity: the region objects are shared
        # between the ranks of one collective even when the list holding
        # them was copied, and two lists differing in any element must not
        # share an analysis.
        pin = tuple(regions)
        key = tuple(map(id, pin))
        products = self._memo.get(key)
        if products is None:
            if self.mode == "coloring":
                overlap = build_overlap_matrix(regions)
                products = (overlap, greedy_coloring(overlap, order=self.order), None)
            else:  # rank-order
                products = (None, None, resolve_by_rank(regions, policy=self.policy))
            self._memo.put(key, pin, products)
        report.overlap, report.coloring, report.ordering = products
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConflictAnalysis(mode={self.mode!r})"


# ---------------------------------------------------------------------------
# Stage 3 — the declarative write schedule
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LockDirective:
    """One byte-range lock to hold for the duration of the plan."""

    start: int
    stop: int
    mode: str = LockMode.EXCLUSIVE

    @property
    def length(self) -> int:
        """Bytes covered by the lock."""
        return self.stop - self.start


@dataclass(frozen=True)
class WriteStep:
    """One contiguous transfer: payload bytes → file bytes.

    ``source`` names the payload buffer the bytes come from (``"user"`` for
    the rank's own data stream; the two-phase strategy adds an aggregation
    buffer).  ``writer`` optionally overrides the provenance recorded by the
    file system — an aggregator writing *on behalf of* the rank whose data
    won the conflict resolution.
    """

    buffer_offset: int
    file_offset: int
    length: int
    source: str = USER_PAYLOAD
    writer: Optional[int] = None


@dataclass
class PhasePlan:
    """The I/O this rank performs in one phase of the collective write."""

    index: int
    steps: List[WriteStep] = field(default_factory=list)
    #: Bypass the client cache (the behaviour of writes under a lock).
    direct: bool = False
    #: Flush write-behind data after the phase's transfers (``MPI_File_sync``).
    sync_after: bool = False
    #: Synchronise with every other rank before the next phase may begin.
    barrier_after: bool = False

    @property
    def bytes_scheduled(self) -> int:
        """Total payload bytes this phase transfers."""
        return sum(s.length for s in self.steps)


@dataclass
class WritePlan:
    """A complete declarative schedule for one rank's collective write."""

    strategy: str
    rank: int
    bytes_requested: int
    phases: List[PhasePlan] = field(default_factory=list)
    locks: List[LockDirective] = field(default_factory=list)
    my_phase: int = 0
    colors_used: int = 0
    bytes_surrendered: int = 0
    #: Override for the reported phase count when the logical phase structure
    #: differs from the plan's I/O phases (two-phase I/O reports its shuffle
    #: phase even though only the write phase performs file I/O).
    reported_phases: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def num_phases(self) -> int:
        """Phase count reported in the outcome (at least 1)."""
        if self.reported_phases is not None:
            return self.reported_phases
        return max(len(self.phases), 1)

    @property
    def bytes_scheduled(self) -> int:
        """Total payload bytes scheduled across all phases."""
        return sum(p.bytes_scheduled for p in self.phases)


# ---------------------------------------------------------------------------
# Stage 3 (read side) — the declarative read schedule
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadStep:
    """One contiguous transfer: file bytes → a named sink buffer.

    ``sink`` names the buffer the fetched bytes land in (``"user"`` for the
    rank's own data stream; the two-phase read strategy fills an aggregation
    sink it later scatters to the consumers).
    """

    buffer_offset: int
    file_offset: int
    length: int
    sink: str = USER_PAYLOAD


@dataclass
class ReadPhasePlan:
    """The I/O this rank performs in one phase of the collective read."""

    index: int
    steps: List[ReadStep] = field(default_factory=list)
    #: Bypass the client cache (the behaviour of reads under a lock).
    direct: bool = False
    #: Drop cached pages before the phase's transfers, so they observe data
    #: that peers flushed since the pages were cached (the invalidate half of
    #: the paper's handshaking protocol; the cache flushes its own dirty
    #: pages first — sync-then-invalidate).
    invalidate_before: bool = False
    #: Synchronise with every other rank before the next phase may begin.
    barrier_after: bool = False

    @property
    def bytes_scheduled(self) -> int:
        """Total file bytes this phase fetches."""
        return sum(s.length for s in self.steps)


@dataclass
class ReadPlan:
    """A complete declarative schedule for one rank's collective read."""

    strategy: str
    rank: int
    bytes_requested: int
    phases: List[ReadPhasePlan] = field(default_factory=list)
    #: Byte-range locks held for the duration of the plan; read schedules use
    #: shared mode so concurrent readers coexist while conflicting writers
    #: (exclusive mode) still serialise against them.
    locks: List[LockDirective] = field(default_factory=list)
    my_phase: int = 0
    colors_used: int = 0
    #: Override for the reported phase count (the two-phase read reports its
    #: scatter phase even though only the read phase performs file I/O).
    reported_phases: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def num_phases(self) -> int:
        """Phase count reported in the outcome (at least 1)."""
        if self.reported_phases is not None:
            return self.reported_phases
        return max(len(self.phases), 1)

    @property
    def bytes_scheduled(self) -> int:
        """Total file bytes scheduled across all phases."""
        return sum(p.bytes_scheduled for p in self.phases)

    def sink_sizes(self) -> Dict[str, int]:
        """Required size of each sink buffer (max step end per sink)."""
        sizes: Dict[str, int] = {}
        for phase in self.phases:
            for step in phase.steps:
                end = step.buffer_offset + step.length
                if end > sizes.get(step.sink, 0):
                    sizes[step.sink] = end
        return sizes


# ---------------------------------------------------------------------------
# Stage 4 — plan execution
# ---------------------------------------------------------------------------


class PhaseRunner:
    """Execute a :class:`WritePlan` against a client file handle.

    The runner is strategy-agnostic: every behavioural difference between the
    strategies is encoded in the plan it receives.  Locks are acquired before
    the first phase and released after the last (or on error); each phase's
    steps go to the file system as one batched write.
    """

    def execute(
        self,
        comm: Communicator,
        handle: ClientFileHandle,
        plan: WritePlan,
        payloads: Dict[str, bytes],
        start_time: Optional[float] = None,
    ) -> "WriteOutcome":
        """Run ``plan``, drawing step data from ``payloads``.

        ``start_time`` backdates the outcome to when the pipeline started
        (stage 1), so the negotiation cost is part of the measured time just
        as in the monolithic implementations.
        """
        from .strategies import WriteOutcome  # local import: avoids a cycle

        out = WriteOutcome(
            strategy=plan.strategy,
            rank=plan.rank,
            bytes_requested=plan.bytes_requested,
            bytes_surrendered=plan.bytes_surrendered,
            phases=plan.num_phases,
            my_phase=plan.my_phase,
            colors_used=plan.colors_used,
            start_time=handle.clock.now if start_time is None else start_time,
            extra=dict(plan.extra),
        )
        held = []
        for directive in plan.locks:
            held.append(handle.lock(directive.start, directive.stop, mode=directive.mode))
            out.locks_acquired += 1
        try:
            for phase in plan.phases:
                if phase.steps:
                    batch = [
                        (
                            step.file_offset,
                            payloads[step.source][
                                step.buffer_offset : step.buffer_offset + step.length
                            ],
                            step.writer,
                        )
                        for step in phase.steps
                    ]
                    out.bytes_written += handle.write_batch(batch, direct=phase.direct)
                    out.segments_written += len(batch)
                if phase.sync_after:
                    handle.sync()
                if phase.barrier_after:
                    comm.barrier()
        finally:
            for lock in held:
                handle.unlock(lock)
        out.end_time = handle.clock.now
        return out


class ReadRunner:
    """Execute a :class:`ReadPlan` against a client file handle.

    Strategy-agnostic, like :class:`PhaseRunner`: locks (shared mode for
    reads) are acquired before the first phase and released after the last;
    each phase optionally invalidates the client cache first, then issues its
    steps as one batched read whose results land in the named sink buffers.
    Returns the :class:`~repro.core.strategies.ReadOutcome` plus the filled
    sinks — delivery of the user stream (which may involve communication,
    e.g. the two-phase scatter) is the strategy's job.
    """

    def execute(
        self,
        comm: Communicator,
        handle: ClientFileHandle,
        plan: ReadPlan,
        start_time: Optional[float] = None,
    ) -> Tuple["ReadOutcome", Dict[str, bytearray]]:
        """Run ``plan``; returns ``(outcome, sinks)``.

        ``start_time`` backdates the outcome to when the pipeline started
        (stage 1), so the negotiation cost is part of the measured time.
        """
        from .strategies import ReadOutcome  # local import: avoids a cycle

        out = ReadOutcome(
            strategy=plan.strategy,
            rank=plan.rank,
            bytes_requested=plan.bytes_requested,
            phases=plan.num_phases,
            my_phase=plan.my_phase,
            colors_used=plan.colors_used,
            start_time=handle.clock.now if start_time is None else start_time,
            extra=dict(plan.extra),
        )
        sinks: Dict[str, bytearray] = {
            name: bytearray(size) for name, size in plan.sink_sizes().items()
        }
        stats = handle.cache.stats
        hits0, misses0 = stats.hits, stats.misses
        clock = handle.clock
        held = []
        try:
            for directive in plan.locks:
                waited0 = clock.waited
                held.append(handle.lock(directive.start, directive.stop, mode=directive.mode))
                out.locks_acquired += 1
                out.lock_wait_seconds += clock.waited - waited0
            for phase in plan.phases:
                if phase.invalidate_before:
                    handle.invalidate()
                    out.invalidations += 1
                if phase.steps:
                    fetched = handle.read_batch(
                        [(s.file_offset, s.length) for s in phase.steps],
                        direct=phase.direct,
                    )
                    for step, data in zip(phase.steps, fetched):
                        sinks[step.sink][
                            step.buffer_offset : step.buffer_offset + len(data)
                        ] = data
                        out.bytes_read += len(data)
                    out.segments_read += len(phase.steps)
                if phase.barrier_after:
                    comm.barrier()
        finally:
            for lock in held:
                handle.unlock(lock)
        out.cache_hits = stats.hits - hits0
        out.cache_misses = stats.misses - misses0
        out.end_time = clock.now
        return out, sinks
