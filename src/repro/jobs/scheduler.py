"""The multi-tenant scheduler: N independent SPMD jobs, one file system.

:class:`MultiTenantScheduler` launches every :class:`~repro.jobs.spec.JobSpec`
as its own communicator world — a private :class:`~repro.mpi.comm._CommGroup`
whose per-rank clocks start at the job's *arrival time* — on one shared
discrete-event :class:`~repro.core.engine.Engine`, against one shared
:class:`~repro.fs.filesystem.ParallelFileSystem`.  The engine's
``(virtual time, task id)`` scheduling order interleaves the jobs exactly as
a real machine room would multiplex them: a job arriving later simply has
later-keyed tasks, and cross-job contention (server queues, client links,
byte-range locks, cache token revocations) flows through the unmodified
substrate.

Isolation model
---------------

*Per job*: the communicator world, the virtual clocks (a job's makespan is
measured from its own arrival), the strategy instance (negotiation state is
never shared across jobs), and the rank-to-client mapping.

*Shared*: the engine, the file system — servers, striping, lock managers,
token state, client-cache coherence — and any file two specs both name.

Every rank of job *j* gets the globally unique client id
``rank_base(j) + local_rank`` and an :class:`~repro.fs.client.FSClient`
whose ``provenance_base`` is the same offset, so per-byte writer provenance
recorded by the store stays unique across jobs and the post-hoc atomicity
verifiers (:mod:`repro.verify.atomicity`) work across racing jobs.  A
single-job run has offset 0 and is byte- and provenance-identical to the
direct engine path (pinned by ``tests/test_jobs_differential.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import Engine, Task
from ..core.regions import FileRegionSet
from ..fs.client import FSClient
from ..fs.filesystem import ParallelFileSystem
from ..io.info import Info
from ..core.registry import default_registry
from ..mpi.clock import VirtualClock
from ..mpi.comm import CommCostModel, Communicator, _CommGroup
from ..mpi.errors import CollectiveAbortedError
from ..mpi.runtime import collect_rank_failures, spawn_world
from ..patterns.partition import views_for_pattern
from ..verify.atomicity import (
    AtomicityReport,
    ReadObservation,
    StreamTrace,
    check_mpi_atomicity,
    check_stream_atomicity,
)
from .metrics import aggregate_bandwidth, summarize_makespans
from .spec import JobSpec

__all__ = [
    "JobResult",
    "MultiTenantExecutionError",
    "MultiTenantResult",
    "MultiTenantScheduler",
]


class MultiTenantExecutionError(RuntimeError):
    """One or more jobs failed, deadlocked or exceeded the wall budget.

    ``failures`` maps ``(job_id, rank)`` to the rank's exception;
    ``tracebacks`` carries rank-local tracebacks where captured.
    """

    def __init__(
        self,
        failures: Dict[Tuple[str, int], BaseException],
        tracebacks: Optional[Dict[Tuple[str, int], str]] = None,
    ) -> None:
        self.failures = failures
        self.tracebacks = tracebacks or {}
        lines = [
            f"job {job_id!r} rank {rank}: {type(exc).__name__}: {exc}"
            for (job_id, rank), exc in sorted(failures.items())
        ]
        super().__init__(
            f"{len(failures)} rank(s) across "
            f"{len({j for j, _ in failures})} job(s) failed:\n" + "\n".join(lines)
        )


@dataclass
class JobResult:
    """Everything one job produced, accounted in its own timeline."""

    spec: JobSpec
    index: int
    arrival: float
    #: Global client-id/provenance offset of the job's rank 0.
    rank_base: int
    #: Per-rank strategy outcomes (Write- or ReadOutcome).
    outcomes: List
    #: Per-rank delivered streams for read jobs, written streams for write
    #: jobs (what the verifiers compare against).
    data: List[bytes]
    #: Per-rank views with *local* rank ids (what the strategy ran with).
    regions: List[FileRegionSet]
    #: Virtual time at which the job's slowest rank finished.
    finish: float

    @property
    def makespan(self) -> float:
        """Job latency: slowest rank's finish relative to the job's arrival."""
        return self.finish - self.arrival

    @property
    def bytes_requested(self) -> int:
        """Bytes the job's application asked to move."""
        return sum(o.bytes_requested for o in self.outcomes)

    @property
    def bytes_moved(self) -> int:
        """Bytes actually transferred to or from the file system."""
        return sum(
            getattr(o, "bytes_written", 0) + getattr(o, "bytes_read", 0)
            for o in self.outcomes
        )

    @property
    def global_regions(self) -> List[FileRegionSet]:
        """The job's views re-keyed by global rank id, the namespace the
        store's provenance and the cross-job verifiers use."""
        return [
            FileRegionSet(self.rank_base + r.rank, r.segments) for r in self.regions
        ]


@dataclass
class MultiTenantResult:
    """One scheduler run: per-job results plus the cross-job summary."""

    fs: ParallelFileSystem
    jobs: List[JobResult]
    #: Wall-clock seconds the host spent inside ``Engine.run``.
    wall_seconds: float = 0.0
    summary: Dict[str, float] = field(init=False)

    def __post_init__(self) -> None:
        self.summary = summarize_makespans([j.makespan for j in self.jobs])

    @property
    def window(self) -> float:
        """Virtual span from the earliest arrival to the last completion."""
        start = min(j.arrival for j in self.jobs)
        return max(j.finish for j in self.jobs) - start

    @property
    def total_bytes_requested(self) -> int:
        """Offered volume: bytes requested across every job."""
        return sum(j.bytes_requested for j in self.jobs)

    @property
    def offered_load(self) -> float:
        """The saturation sweep's x-coordinate: total offered bytes."""
        return float(self.total_bytes_requested)

    @property
    def fairness(self) -> float:
        """Jain's index over the per-job makespans."""
        return self.summary["fairness"]

    @property
    def bandwidth(self) -> float:
        """Aggregate bytes/second over the whole run window."""
        return aggregate_bandwidth(self.total_bytes_requested, self.window)

    @property
    def arrival_order(self) -> List[str]:
        """Job ids in the order they arrived (ties broken by spec order)."""
        return [
            j.spec.job_id
            for j in sorted(self.jobs, key=lambda j: (j.arrival, j.index))
        ]

    # -- cross-job verification ------------------------------------------------

    def _jobs_on(self, filename: str, mode: str) -> List[JobResult]:
        return [
            j for j in self.jobs
            if j.spec.filename == filename and j.spec.mode == mode
        ]

    def verify_write_atomicity(self, filename: str) -> AtomicityReport:
        """MPI write atomicity across *every* job that wrote ``filename``.

        The union of all writer jobs' globally-keyed views goes through the
        provenance verifier, so an overlapped region interleaving two jobs'
        bytes — not just two ranks' of one job — is reported.
        """
        regions = [
            region
            for job in self._jobs_on(filename, "write")
            for region in job.global_regions
        ]
        return check_mpi_atomicity(self.fs.lookup(filename).store, regions)

    def verify_read_atomicity(
        self, filename: str, baseline: Optional[bytes] = None
    ) -> AtomicityReport:
        """Read serialisability of every read job against every write job
        racing on ``filename``, as one globally-rekeyed
        :class:`~repro.verify.atomicity.StreamTrace` through the shared
        cross-group verifier (:func:`~repro.verify.atomicity.
        check_stream_atomicity`); ``baseline`` is the file's pre-run
        contents (all zeros for a fresh file)."""
        observations = [
            ReadObservation(region.rank, region, job.data[local])
            for job in self._jobs_on(filename, "read")
            for local, region in enumerate(job.global_regions)
        ]
        write_regions: List[FileRegionSet] = []
        write_data: List[bytes] = []
        for job in self._jobs_on(filename, "write"):
            write_regions.extend(job.global_regions)
            write_data.extend(job.data)
        trace = StreamTrace(
            stream_id=filename,
            write_regions=write_regions,
            writer_data=write_data,
            observations=observations,
            baseline=baseline,
        )
        return check_stream_atomicity([trace])


class _JobRuntime:
    """Scheduler-internal per-job state (world, strategy, tasks)."""

    __slots__ = ("spec", "index", "arrival", "rank_base", "group", "strategy",
                 "regions", "data", "tasks")

    def __init__(self, spec: JobSpec, index: int, arrival: float, rank_base: int):
        self.spec = spec
        self.index = index
        self.arrival = arrival
        self.rank_base = rank_base
        self.group: Optional[_CommGroup] = None
        self.strategy = None
        self.regions: List[FileRegionSet] = []
        self.data: List[bytes] = []
        self.tasks: List[Task] = []


class MultiTenantScheduler:
    """Runs a set of :class:`JobSpec` worlds against one shared file system."""

    def __init__(
        self,
        fs: ParallelFileSystem,
        comm_cost: Optional[CommCostModel] = None,
        timeout: Optional[float] = 120.0,
    ) -> None:
        self.fs = fs
        self.comm_cost = comm_cost or CommCostModel(latency=20e-6, byte_cost=1e-8)
        self.timeout = timeout

    # -- setup helpers ---------------------------------------------------------

    def _make_strategy(self, spec: JobSpec):
        supports_locking = self.fs.config.supports_locking()
        if not default_registry.supported_on(spec.strategy, supports_locking):
            raise ValueError(
                f"job {spec.job_id!r}: strategy {spec.strategy!r} requires "
                f"byte-range locking, which {self.fs.config.name!r} lacks"
            )
        if spec.info is not None:
            strategy = default_registry.create_from_info(
                spec.strategy, Info(dict(spec.info))
            )
        else:
            strategy = default_registry.create(spec.strategy, **spec.strategy_options)
        bind = getattr(strategy, "bind_context", None)
        if bind is not None:
            bind(self.fs, spec.filename)
        return strategy

    # -- the run ---------------------------------------------------------------

    def run(
        self,
        specs: Sequence[JobSpec],
        arrivals: Optional[Sequence[float]] = None,
    ) -> MultiTenantResult:
        """Launch every spec at its arrival offset; block until all finish.

        ``arrivals[i]`` is spec *i*'s virtual arrival time (seconds; default
        all zero — a batch).  Raises :class:`MultiTenantExecutionError` when
        any rank of any job fails, deadlocks or outlives the wall budget;
        a failing job's collectives are aborted without touching the other
        jobs' worlds.
        """
        import time as _time

        specs = list(specs)
        if not specs:
            raise ValueError("at least one job spec is required")
        ids = [s.job_id for s in specs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate job ids: {sorted(ids)}")
        if arrivals is None:
            arrivals = [0.0] * len(specs)
        arrivals = [float(a) for a in arrivals]
        if len(arrivals) != len(specs):
            raise ValueError(
                f"{len(specs)} specs but {len(arrivals)} arrival offsets"
            )
        if any(a < 0 for a in arrivals):
            raise ValueError("arrival offsets must be non-negative")

        engine = Engine(name="multitenant")
        fs = self.fs
        jobs: List[_JobRuntime] = []
        task_job: Dict[int, _JobRuntime] = {}
        rank_base = 0
        for index, (spec, arrival) in enumerate(zip(specs, arrivals)):
            job = _JobRuntime(spec, index, arrival, rank_base)
            rank_base += spec.nprocs
            job.strategy = self._make_strategy(spec)
            views = views_for_pattern(
                spec.pattern, spec.M, spec.N, spec.nprocs, spec.overlap_columns
            )
            job.regions = [
                FileRegionSet(rank, views[rank]) for rank in range(spec.nprocs)
            ]
            if spec.mode == "write":
                job.data = [
                    spec.data_factory(
                        job.rank_base + rank, job.regions[rank].total_bytes
                    )
                    for rank in range(spec.nprocs)
                ]
                fs.create(spec.filename)
            else:
                job.data = [b""] * spec.nprocs
                # Read jobs need the file to exist before any rank arrives.
                fs.create(spec.filename)
            job.group = _CommGroup(
                spec.nprocs,
                clocks=[VirtualClock(now=arrival) for _ in range(spec.nprocs)],
                cost_model=self.comm_cost,
                engine=engine,
            )
            job.tasks = spawn_world(
                engine,
                job.group,
                self._make_job_main(job),
                name_prefix=f"job-{spec.job_id}-rank",
                tag=spec.job_id,
            )
            for task in job.tasks:
                task_job[task.tid] = job
            jobs.append(job)

        # A failing rank takes down its own job's collectives — and only its
        # own: other tenants keep running, exactly as independent MPI jobs
        # sharing a file system would.
        def on_task_failed(task: Task) -> None:
            if task.detached:
                return
            owner = task_job.get(task.tid)
            if owner is not None and owner.group is not None:
                owner.group.abort(
                    CollectiveAbortedError(
                        f"collective aborted: job {owner.spec.job_id!r} task "
                        f"{task.name} failed with {type(task.error).__name__}: "
                        f"{task.error}"
                    )
                )

        engine.on_task_failed = on_task_failed
        wall_start = _time.perf_counter()
        engine.run(timeout=self.timeout)
        wall_seconds = _time.perf_counter() - wall_start

        failures: Dict[Tuple[str, int], BaseException] = {}
        tracebacks: Dict[Tuple[str, int], str] = {}
        for job in jobs:
            job_failures, job_tracebacks = collect_rank_failures(job.tasks)
            for rank, exc in job_failures.items():
                failures[(job.spec.job_id, rank)] = exc
            for rank, text in job_tracebacks.items():
                tracebacks[(job.spec.job_id, rank)] = text
        if engine.timed_out:
            for task in engine.unfinished:
                if task.detached:
                    continue
                owner = task_job.get(task.tid)
                if owner is None:
                    continue
                rank = task.tid - owner.tasks[0].tid
                key = (owner.spec.job_id, rank)
                failures[key] = TimeoutError(
                    f"job {owner.spec.job_id!r} rank {rank} did not finish "
                    f"within the {self.timeout}s timeout"
                )
        if failures:
            raise MultiTenantExecutionError(failures, tracebacks)

        results: List[JobResult] = []
        for job in jobs:
            outcomes: List = []
            data: List[bytes] = []
            for rank, task in enumerate(job.tasks):
                if job.spec.mode == "write":
                    outcomes.append(task.result)
                    data.append(job.data[rank])
                else:
                    delivered, outcome = task.result
                    outcomes.append(outcome)
                    data.append(delivered)
            results.append(
                JobResult(
                    spec=job.spec,
                    index=job.index,
                    arrival=job.arrival,
                    rank_base=job.rank_base,
                    outcomes=outcomes,
                    data=data,
                    regions=job.regions,
                    finish=max(c.now for c in job.group.clocks),
                )
            )
        return MultiTenantResult(fs=fs, jobs=results, wall_seconds=wall_seconds)

    def _make_job_main(self, job: _JobRuntime):
        fs = self.fs
        spec = job.spec

        def job_main(comm: Communicator):
            rank = comm.rank
            region = job.regions[rank]
            client = FSClient(
                fs,
                client_id=job.rank_base + rank,
                clock=comm.clock,
                provenance_base=job.rank_base,
            )
            handle = client.open(spec.filename, create=False)
            try:
                if spec.mode == "write":
                    return job.strategy.execute_write(
                        comm, handle, region, job.data[rank]
                    )
                return job.strategy.execute_read(comm, handle, region)
            finally:
                handle.close()

        return job_main
