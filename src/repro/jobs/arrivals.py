"""Deterministic seeded arrival processes for the multi-tenant scheduler.

An arrival process maps ``n`` jobs to non-negative virtual-time offsets at
which each job's ranks become runnable.  All randomness comes from an
explicit :class:`random.Random` seeded by the caller, so a scheduler run is
a pure function of ``(specs, arrival kind, seed)`` — the determinism the
jsonlog reproducibility tests pin.

Three kinds are registered:

``batch``
    Every job arrives at time zero (closed-system burst).
``staggered``
    Job *i* arrives at ``i * interval`` (open system at a fixed rate).
``poisson``
    Exponential inter-arrival gaps with mean ``interval`` drawn from the
    seeded RNG (a Poisson-like arrival stream), and the job-to-slot
    assignment shuffled with the same RNG — so two different seeds differ
    not only in the gap lengths but in *which* job arrives first.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

__all__ = ["ARRIVAL_KINDS", "make_arrivals"]

ARRIVAL_KINDS = ("batch", "staggered", "poisson")

#: Default inter-arrival spacing (virtual seconds); roughly a fraction of a
#: small job's makespan so staggered jobs genuinely overlap.
DEFAULT_INTERVAL = 0.002


def make_arrivals(
    kind: str,
    n: int,
    interval: float = DEFAULT_INTERVAL,
    seed: Optional[int] = None,
) -> List[float]:
    """Arrival offsets (seconds of virtual time) for ``n`` jobs.

    ``arrivals[i]`` is job *i*'s offset; the list is **not** sorted for the
    ``poisson`` kind — the shuffle is what makes the arrival *order* a
    function of the seed.  ``seed`` is required for ``poisson`` (the only
    stochastic kind) and ignored otherwise.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if kind == "batch":
        return [0.0] * n
    if interval < 0:
        raise ValueError("interval must be non-negative")
    if kind == "staggered":
        return [i * float(interval) for i in range(n)]
    if kind == "poisson":
        if seed is None:
            raise ValueError("the poisson arrival process requires a seed")
        rng = random.Random(seed)
        times: List[float] = []
        now = 0.0
        for _ in range(n):
            # Inverse-transform exponential gaps; 1 - random() is in (0, 1].
            now += -float(interval) * math.log(1.0 - rng.random())
            times.append(now)
        rng.shuffle(times)
        return times
    raise ValueError(f"unknown arrival kind {kind!r}; known: {ARRIVAL_KINDS}")
