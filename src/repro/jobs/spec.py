"""Job descriptions for the multi-tenant scheduler.

A :class:`JobSpec` is everything the scheduler needs to run one independent
SPMD job: how many ranks it has, which file it targets, the workload
geometry (an ``M x N`` byte array partitioned by one of the registered
patterns with ``overlap_columns`` ghost columns), whether the job writes or
reads, and which atomicity strategy — optionally configured through MPI-IO
``Info`` hints — it runs under.  Specs are plain data: the scheduler
instantiates one strategy object per job from the central registry, so two
jobs never share negotiation state even when they share a file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..patterns.workloads import rank_pattern_bytes

__all__ = ["JobSpec"]

#: A data factory maps (global_rank, nbytes) to the rank's contiguous stream.
DataFactory = Callable[[int, int], bytes]


@dataclass(frozen=True)
class JobSpec:
    """One independent SPMD job to be placed on the shared file system.

    Parameters
    ----------
    job_id:
        Stable identifier used in results, jsonlog records and error
        reports; must be unique within one scheduler run.
    nprocs:
        Rank count of the job's world communicator.
    M, N:
        Workload array shape in bytes (rows x row length).
    filename:
        Target file.  Jobs naming the same file *race* on it; jobs naming
        different files contend only for servers and client links.
    mode:
        ``"write"`` (a concurrent overlapping collective write) or
        ``"read"`` (a collective read of the file's current contents).
    strategy:
        Registered atomicity-strategy name (``"two-phase"``, ``"locking"``,
        ``"auto"``, ...).
    pattern:
        Partitioning of the array across the job's ranks (``column-wise``,
        ``row-wise`` or ``block-block``).
    overlap_columns:
        Ghost width shared between neighbouring ranks.
    info:
        Optional MPI-IO Info hints dict handed to the strategy's
        ``from_info`` constructor (``cb_nodes``, ``cb_buffer_size``, ...).
    strategy_options:
        Direct constructor keyword arguments; ignored when ``info`` is
        given (hints already configure the strategy).
    data_factory:
        Stream generator for write jobs, called with the rank's *global*
        id (the job's rank offset plus the local rank) so concurrent jobs
        produce byte-distinguishable data by default.
    """

    job_id: str
    nprocs: int
    M: int
    N: int
    filename: str
    mode: str = "write"
    strategy: str = "two-phase"
    pattern: str = "column-wise"
    overlap_columns: int = 4
    info: Optional[Dict[str, str]] = None
    strategy_options: Dict = field(default_factory=dict)
    data_factory: DataFactory = rank_pattern_bytes

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.nprocs <= 0:
            raise ValueError(f"job {self.job_id!r}: nprocs must be positive")
        if self.M <= 0 or self.N <= 0:
            raise ValueError(f"job {self.job_id!r}: array shape must be positive")
        if self.mode not in ("write", "read"):
            raise ValueError(
                f"job {self.job_id!r}: unknown mode {self.mode!r}; known: write, read"
            )

    @property
    def total_bytes(self) -> int:
        """Bytes of the underlying array (per-rank views may overlap)."""
        return self.M * self.N
