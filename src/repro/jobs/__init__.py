"""Multi-tenant job layer: many independent SPMD jobs on one file system.

Everything below :mod:`repro.bench` measures *one* job on an idle file
system.  This package supplies the production-shaped counterpart: a
:class:`~repro.jobs.spec.JobSpec` describes one SPMD job (rank count,
workload geometry, atomicity strategy, Info hints), an arrival process
(:mod:`repro.jobs.arrivals`) places jobs on the virtual timeline, and the
:class:`~repro.jobs.scheduler.MultiTenantScheduler` runs all of them as
independent communicator worlds multiplexed onto one shared discrete-event
engine and one shared :class:`~repro.fs.filesystem.ParallelFileSystem` —
cross-job contention flows through the ordinary token/lock managers, server
queues and cache layers, so jobs racing on shared files exercise the real
atomicity machinery.

:mod:`repro.jobs.metrics` holds the fairness/latency summaries (Jain's
index, percentile makespans, aggregate bandwidth) the multi-tenant
benchmark (:mod:`repro.bench.multitenant`) reports.
"""

from .arrivals import make_arrivals
from .metrics import aggregate_bandwidth, jains_index, percentile, summarize_makespans
from .scheduler import (
    JobResult,
    MultiTenantExecutionError,
    MultiTenantResult,
    MultiTenantScheduler,
)
from .spec import JobSpec

__all__ = [
    "JobSpec",
    "JobResult",
    "MultiTenantExecutionError",
    "MultiTenantResult",
    "MultiTenantScheduler",
    "make_arrivals",
    "jains_index",
    "percentile",
    "summarize_makespans",
    "aggregate_bandwidth",
]
