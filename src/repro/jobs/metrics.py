"""Fairness and latency summaries for multi-tenant runs.

The multi-tenant benchmark reports three families of numbers per sweep
point: per-job makespan percentiles (p50/p99), Jain's fairness index over
the per-job makespans, and the aggregate bandwidth the shared file system
sustained over the whole run window.  These are deliberately dependency-free
and defined for tiny sample counts (a single job is a legitimate sweep
point), with the edge cases pinned by ``tests/test_jobs_metrics.py`` before
anything is wired into the harness.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = [
    "jains_index",
    "percentile",
    "summarize_makespans",
    "aggregate_bandwidth",
]


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` over ``values``.

    1.0 means perfectly equal allocations, ``1/n`` means one participant got
    everything.  Conventions for the degenerate inputs: an empty sample and
    the all-zero sample (nobody waited, nobody was starved) are perfectly
    fair (1.0).  Negative values have no fairness meaning and raise.
    """
    xs = [float(v) for v in values]
    if any(v < 0 for v in xs):
        raise ValueError("Jain's index is defined for non-negative values")
    if not xs:
        return 1.0
    square_sum = sum(v * v for v in xs)
    if square_sum == 0.0:
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` with linear interpolation.

    Matches ``numpy.percentile``'s default (``linear``) definition: the
    sorted sample is indexed at ``(n - 1) * q / 100`` and fractional
    positions interpolate between the two neighbours.  Tiny samples behave
    sensibly: one value is every percentile of itself, and p99 of two values
    sits just under the larger one.  An empty sample raises.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    xs = sorted(float(v) for v in values)
    if not xs:
        raise ValueError("percentile of an empty sample is undefined")
    pos = (len(xs) - 1) * (q / 100.0)
    lo = int(pos)
    frac = pos - lo
    if frac == 0.0:
        return xs[lo]
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac


def summarize_makespans(makespans: Sequence[float]) -> Dict[str, float]:
    """The per-job latency digest the benchmark records for one sweep point:
    p50/p99/max makespan plus Jain's fairness index over the sample."""
    return {
        "p50_makespan": percentile(makespans, 50.0),
        "p99_makespan": percentile(makespans, 99.0),
        "max_makespan": max(float(v) for v in makespans),
        "fairness": jains_index(makespans),
    }


def aggregate_bandwidth(total_bytes: int, window_seconds: float) -> float:
    """Bytes per second the substrate moved over the run window
    (first arrival to last completion).  A zero-length window with traffic
    is infinitely fast; with no traffic it is zero."""
    if window_seconds <= 0.0:
        return float("inf") if total_bytes else 0.0
    return total_bytes / window_seconds
