"""MPI-IO file access mode flags (``MPI_MODE_*``)."""

from __future__ import annotations

__all__ = [
    "MODE_RDONLY",
    "MODE_WRONLY",
    "MODE_RDWR",
    "MODE_CREATE",
    "MODE_EXCL",
    "MODE_DELETE_ON_CLOSE",
    "MODE_APPEND",
    "describe_mode",
]

MODE_RDONLY = 0x01
MODE_WRONLY = 0x02
MODE_RDWR = 0x04
MODE_CREATE = 0x08
MODE_EXCL = 0x10
MODE_DELETE_ON_CLOSE = 0x20
MODE_APPEND = 0x40

_NAMES = {
    MODE_RDONLY: "MPI_MODE_RDONLY",
    MODE_WRONLY: "MPI_MODE_WRONLY",
    MODE_RDWR: "MPI_MODE_RDWR",
    MODE_CREATE: "MPI_MODE_CREATE",
    MODE_EXCL: "MPI_MODE_EXCL",
    MODE_DELETE_ON_CLOSE: "MPI_MODE_DELETE_ON_CLOSE",
    MODE_APPEND: "MPI_MODE_APPEND",
}


def describe_mode(mode: int) -> str:
    """Human-readable ``A|B|C`` rendering of a mode bitmask."""
    parts = [name for bit, name in _NAMES.items() if mode & bit]
    return "|".join(parts) if parts else "0"
