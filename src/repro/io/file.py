"""The MPI-IO file object (ROMIO equivalent).

:class:`MPIFile` reproduces the slice of the MPI-IO interface the paper's
code fragment (Figure 4) exercises, on top of the file system substrate:

* collective ``Open`` / ``Close``
* ``Set_view`` with an etype/filetype/displacement triple built from the
  derived-datatype constructors
* ``Set_atomicity`` / ``Get_atomicity``
* collective ``Write_all`` / ``Read_all`` and independent ``Write_at`` /
  ``Read_at`` / ``Write`` / ``Read`` (individual file pointer)
* ``Sync``

In **atomic mode** the collective write is delegated to one of the paper's
three strategies (:mod:`repro.core.strategies`); which one is chosen via the
``atomicity_strategy`` Info hint, an explicit :meth:`set_strategy` call, or
the file system's best supported default (locking where available — the
ROMIO behaviour — otherwise process-rank ordering).  In non-atomic mode the
segments are written independently, which is exactly the situation in which
overlapping writes may interleave (Figure 2).

Collective reads are symmetric: ``Read_all`` runs the selected strategy's
*staged read pipeline* (shared-mode locks, invalidate-then-read, or
two-phase aggregate-and-scatter — see :mod:`repro.core.pipeline`) and
returns a :class:`~repro.core.strategies.ReadOutcome`; even the non-atomic
baseline invalidates cached pages first so a collective read observes
everything its peers flushed before the call.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.regions import FileRegionSet
from ..core.strategies import (
    AtomicityStrategy,
    LockingStrategy,
    NoAtomicityStrategy,
    RankOrderingStrategy,
    ReadOutcome,
    WriteOutcome,
    strategy_by_name,
)
from ..fs.lockmanager import LockMode
from ..datatypes.datatype import Datatype
from ..datatypes.pack import pack, unpack
from ..datatypes.typemap import BasicType
from ..fs.client import FSClient
from ..fs.filesystem import ParallelFileSystem
from ..mpi.comm import Communicator
from .fileview import FileView
from .info import Info
from .modes import MODE_CREATE, MODE_RDONLY, MODE_RDWR, MODE_WRONLY

__all__ = ["MPIFile"]

Buffer = Union[bytes, bytearray, np.ndarray]


def _as_bytes(buffer: Buffer, datatype: Optional[Datatype], count: Optional[int]) -> bytes:
    """Render a user buffer as the contiguous data stream to be written."""
    if datatype is not None:
        return pack(buffer, datatype, count if count is not None else 1)
    if isinstance(buffer, np.ndarray):
        return np.ascontiguousarray(buffer).tobytes()
    return bytes(buffer)


class MPIFile:
    """An open MPI file handle for one rank."""

    def __init__(
        self,
        comm: Communicator,
        filename: str,
        fs: ParallelFileSystem,
        amode: int,
        info: Optional[Info] = None,
    ) -> None:
        self.comm = comm
        self.filename = filename
        self.fs = fs
        self.amode = amode
        self.info = info.copy() if info is not None else Info()
        self._client = FSClient(fs, client_id=comm.rank, clock=comm.clock)
        self._handle = self._client.open(filename, create=bool(amode & MODE_CREATE) or True)
        self._view = FileView.default()
        self._atomic = False
        self._strategy: Optional[AtomicityStrategy] = None
        self._position = 0  # individual file pointer, in etypes
        self._closed = False

    # -- lifecycle -----------------------------------------------------------------

    @classmethod
    def Open(  # noqa: N802 - MPI spelling
        cls,
        comm: Communicator,
        filename: str,
        fs: ParallelFileSystem,
        amode: int = MODE_RDWR | MODE_CREATE,
        info: Optional[Info] = None,
    ) -> "MPIFile":
        """Collectively open ``filename`` on ``fs``; all ranks must call."""
        f = cls(comm, filename, fs, amode, info)
        comm.barrier()
        return f

    def Close(self) -> None:  # noqa: N802 - MPI spelling
        """Collectively close the file (flushes write-behind data)."""
        if not self._closed:
            self._handle.close()
            self._closed = True
        self.comm.barrier()

    close = Close

    # -- view management -----------------------------------------------------------

    def Set_view(  # noqa: N802 - MPI spelling
        self,
        disp: int,
        etype: Union[Datatype, BasicType],
        filetype: Union[Datatype, BasicType, None] = None,
        datarep: str = "native",
        info: Optional[Info] = None,
    ) -> None:
        """Set this process's file view (``MPI_File_set_view``)."""
        if datarep != "native":
            raise NotImplementedError("only the 'native' data representation is supported")
        if info is not None:
            for key in info.keys():
                self.info.set(key, info.get(key))
        self._view = FileView.create(disp, etype, filetype if filetype is not None else etype)
        self._position = 0

    set_view = Set_view

    @property
    def view(self) -> FileView:
        """The current file view."""
        return self._view

    # -- atomicity ---------------------------------------------------------------------

    def Set_atomicity(self, flag: bool) -> None:  # noqa: N802 - MPI spelling
        """Enable or disable MPI atomic mode (collective)."""
        self._atomic = bool(flag)
        self.comm.barrier()

    set_atomicity = Set_atomicity

    def Get_atomicity(self) -> bool:  # noqa: N802 - MPI spelling
        """Whether atomic mode is enabled."""
        return self._atomic

    get_atomicity = Get_atomicity

    def set_strategy(self, strategy: Union[str, AtomicityStrategy]) -> None:
        """Choose the atomicity strategy used by collective writes."""
        if isinstance(strategy, str):
            strategy = strategy_by_name(strategy)
        self._strategy = strategy

    def effective_strategy(self) -> AtomicityStrategy:
        """The strategy that an atomic collective write will use."""
        if self._strategy is not None:
            return self._strategy
        hint = self.info.get("atomicity_strategy")
        if hint:
            return strategy_by_name(hint)
        # ROMIO's default is byte-range locking; fall back to rank ordering on
        # file systems (ENFS) that provide no locks.
        if self.fs.config.supports_locking():
            return LockingStrategy()
        return RankOrderingStrategy()

    # -- helpers ------------------------------------------------------------------------

    def _region_for(self, nbytes: int, etype_position: int) -> FileRegionSet:
        segments = self._view.segments_for(
            nbytes, stream_position=etype_position * self._view.etype_size
        )
        return FileRegionSet(self.comm.rank, segments)

    def _data_stream_size(self, buffer: Buffer, datatype: Optional[Datatype], count: Optional[int]) -> int:
        if datatype is not None:
            return datatype.size * (count if count is not None else 1)
        if isinstance(buffer, np.ndarray):
            return buffer.nbytes
        return len(buffer)

    # -- collective data access ------------------------------------------------------------

    def Write_all(  # noqa: N802 - MPI spelling
        self,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> WriteOutcome:
        """Collective write at the individual file pointer.

        In atomic mode the write is carried out by the configured atomicity
        strategy; in non-atomic mode each file segment is written
        independently (no coordination).
        """
        self._check_writable()
        data = _as_bytes(buffer, datatype, count)
        region = self._region_for(len(data), self._position)
        if self._atomic:
            strategy = self.effective_strategy()
        else:
            strategy = NoAtomicityStrategy()
        outcome = strategy.execute_write(self.comm, self._handle, region, data)
        self._position += len(data) // self._view.etype_size
        return outcome

    write_all = Write_all

    def Read_all(  # noqa: N802 - MPI spelling
        self,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> ReadOutcome:
        """Collective read at the individual file pointer into ``buffer``.

        The read runs through the staged read pipeline of the configured
        strategy (the same selection rules as :meth:`Write_all`): shared-mode
        locks for the locking strategy, invalidate-then-cached-read for the
        handshaking strategies, aggregate-and-scatter for two-phase.  In
        non-atomic mode the baseline strategy still drops cached pages first
        (sync-then-invalidate), so a collective read observes everything its
        peers flushed before the call — the cache-coherence contract of
        :mod:`repro.fs.cache`.  No extra barriers are imposed; strategies
        that need synchronisation encode it in their plans.
        """
        self._check_readable()
        nbytes = self._data_stream_size(buffer, datatype, count)
        region = self._region_for(nbytes, self._position)
        if self._atomic:
            strategy = self.effective_strategy()
        else:
            strategy = NoAtomicityStrategy()
        data, outcome = strategy.execute_read(self.comm, self._handle, region)
        self._scatter_into(buffer, data, datatype, count)
        self._position += nbytes // self._view.etype_size
        return outcome

    read_all = Read_all

    # -- independent data access -----------------------------------------------------------

    def Write_at(  # noqa: N802 - MPI spelling
        self,
        offset_etypes: int,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> int:
        """Independent write at an explicit etype offset within the view.

        Independent writes cannot coordinate with unknown peers, so in atomic
        mode they always use byte-range locking (the only correct option the
        paper identifies for non-collective I/O); on lock-less file systems
        atomic independent writes raise ``LockingUnsupported``.
        """
        self._check_writable()
        data = _as_bytes(buffer, datatype, count)
        region = self._region_for(len(data), offset_etypes)
        if self._atomic and not region.is_empty():
            extent = region.extent()
            lock = self._handle.lock(extent.start, extent.stop)
            try:
                written = self._write_region(region, data, direct=True)
            finally:
                self._handle.unlock(lock)
        else:
            written = self._write_region(region, data, direct=False)
        return written

    write_at = Write_at

    def Read_at(  # noqa: N802 - MPI spelling
        self,
        offset_etypes: int,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> ReadOutcome:
        """Independent read at an explicit etype offset within the view.

        Independent reads cannot coordinate with unknown peers, so in atomic
        mode they take a *shared-mode* byte-range lock over the extent and
        read directly (mirroring :meth:`Write_at`'s exclusive lock); on
        lock-less file systems they fall back to invalidate-then-cached-read,
        which observes everything peers have flushed.
        """
        self._check_readable()
        nbytes = self._data_stream_size(buffer, datatype, count)
        region = self._region_for(nbytes, offset_etypes)
        outcome = ReadOutcome(
            strategy="independent",
            rank=self.comm.rank,
            bytes_requested=region.total_bytes,
            start_time=self._handle.clock.now,
        )
        use_lock = (
            self._atomic
            and not region.is_empty()
            and self.fs.config.supports_locking()
        )
        stream = bytearray()
        if use_lock:
            # Direct reads return the servers' bytes: this client's own
            # write-behind data must be flushed first (read-your-own-writes).
            self._handle.sync()
            extent = region.extent()
            waited0 = self._handle.clock.waited
            lock = self._handle.lock(extent.start, extent.stop, mode=LockMode.SHARED)
            outcome.locks_acquired = 1
            outcome.lock_wait_seconds = self._handle.clock.waited - waited0
            try:
                for _, file_off, length in region.buffer_map():
                    stream.extend(self._handle.read(file_off, length, direct=True))
            finally:
                self._handle.unlock(lock)
        else:
            if self._atomic:
                self._handle.invalidate()
                outcome.invalidations = 1
            for _, file_off, length in region.buffer_map():
                stream.extend(self._handle.read(file_off, length))
        self._scatter_into(buffer, bytes(stream), datatype, count)
        outcome.bytes_read = len(stream)
        outcome.bytes_returned = len(stream)
        outcome.segments_read = region.num_segments
        outcome.end_time = self._handle.clock.now
        return outcome

    read_at = Read_at

    def Write(self, buffer: Buffer, count: Optional[int] = None,
              datatype: Optional[Datatype] = None) -> int:  # noqa: N802
        """Independent write at the individual file pointer."""
        data_len = self._data_stream_size(buffer, datatype, count)
        written = self.Write_at(self._position, buffer, count, datatype)
        self._position += data_len // self._view.etype_size
        return written

    def Read(self, buffer: Buffer, count: Optional[int] = None,
             datatype: Optional[Datatype] = None) -> ReadOutcome:  # noqa: N802
        """Independent read at the individual file pointer."""
        data_len = self._data_stream_size(buffer, datatype, count)
        outcome = self.Read_at(self._position, buffer, count, datatype)
        self._position += data_len // self._view.etype_size
        return outcome

    # -- pointer and sync ----------------------------------------------------------------------

    def Seek(self, offset_etypes: int) -> None:  # noqa: N802 - MPI spelling
        """Position the individual file pointer (in etypes)."""
        if offset_etypes < 0:
            raise ValueError("file pointer cannot be negative")
        self._position = offset_etypes

    seek = Seek

    def Tell(self) -> int:  # noqa: N802 - MPI spelling
        """Current individual file pointer (in etypes)."""
        return self._position

    tell = Tell

    def Sync(self) -> None:  # noqa: N802 - MPI spelling
        """Collective flush of write-behind data (``MPI_File_sync``)."""
        self._handle.sync()
        self.comm.barrier()

    sync = Sync

    def Get_size(self) -> int:  # noqa: N802 - MPI spelling
        """Current file size in bytes."""
        return self._handle.size

    # -- internals ---------------------------------------------------------------------------------

    def _write_region(self, region: FileRegionSet, data: bytes, direct: bool) -> int:
        written = 0
        for buf_off, file_off, length in region.buffer_map():
            written += self._handle.write(file_off, data[buf_off : buf_off + length], direct=direct)
        return written

    def _scatter_into(
        self, buffer: Buffer, stream: bytes, datatype: Optional[Datatype], count: Optional[int]
    ) -> None:
        if datatype is not None:
            if isinstance(buffer, (bytes,)):
                raise TypeError("cannot read into an immutable bytes object")
            unpack(stream, datatype, buffer, count if count is not None else 1)
            return
        if isinstance(buffer, np.ndarray):
            flat = buffer.reshape(-1).view(np.uint8)
            src = np.frombuffer(stream, dtype=np.uint8)
            flat[: len(src)] = src
            return
        if isinstance(buffer, bytearray):
            buffer[: len(stream)] = stream
            return
        raise TypeError(f"cannot read into buffer of type {type(buffer).__name__}")

    def _check_writable(self) -> None:
        if self._closed:
            raise ValueError("file is closed")
        if self.amode & MODE_RDONLY and not (self.amode & (MODE_WRONLY | MODE_RDWR)):
            raise PermissionError("file was opened read-only")

    def _check_readable(self) -> None:
        if self._closed:
            raise ValueError("file is closed")
        if self.amode & MODE_WRONLY and not (self.amode & (MODE_RDONLY | MODE_RDWR)):
            raise PermissionError("file was opened write-only")
