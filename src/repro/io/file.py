"""The MPI-IO file object (ROMIO equivalent).

:class:`MPIFile` reproduces the slice of the MPI-IO interface the paper's
code fragment (Figure 4) exercises, on top of the file system substrate:

* collective ``Open`` / ``Close`` (``Close`` flushes write-behind data — an
  implicit ``Sync`` — and refuses to close over unfinished requests)
* ``Set_view`` with an etype/filetype/displacement triple built from the
  derived-datatype constructors
* ``Set_atomicity`` / ``Get_atomicity``
* collective ``Write_all`` / ``Read_all`` and independent ``Write_at`` /
  ``Read_at`` / ``Write`` / ``Read`` (individual file pointer)
* **nonblocking** forms ``Iwrite_all`` / ``Iread_all`` / ``Iwrite_at`` /
  ``Iread_at`` returning an :class:`~repro.io.requests.IORequest`
  (``Wait`` / ``Test``, plus module-level
  :func:`~repro.io.requests.Waitall` / ``Testall`` / ``Waitany``)
* **split-collective** forms ``Write_all_begin`` / ``Write_all_end`` (and
  the read pair): ``begin`` pins the negotiation/exchange phase on the
  calling rank, the commit runs detached, ``end`` joins it
* ``Sync``

The blocking collectives are thin wrappers — ``Write_all`` is literally
``Iwrite_all(...).Wait()``.  A nonblocking operation executes on a *detached
progress task* with its own virtual clock (see
:meth:`repro.mpi.comm.Communicator.dup_detached`), so computation issued
between the call and its ``Wait`` overlaps the collective's shuffle and
commit phases in virtual time.  Requests on one file are executed in issue
order (the MPI ordering rule for nonblocking collectives), which also keeps
the progress communicator's rendezvous consistent across ranks.

In **atomic mode** the collective write is delegated to one of the paper's
three strategies (:mod:`repro.core.strategies`); which one is chosen via the
``atomicity_strategy`` Info hint or the file system's best supported default
(locking where available — the ROMIO behaviour — otherwise process-rank
ordering).  Strategy tunables also come from the Info bag — ``cb_nodes`` /
``cb_buffer_size`` steer two-phase aggregator election, ``striping_unit``
overrides the file's stripe size, ``read_ahead`` / ``read_ahead_pages``
tune the client cache (see :mod:`repro.io.info` for the full table).  The
older :meth:`set_strategy` call survives as a deprecation shim over the
hint.  In non-atomic mode the segments are written independently, which is
exactly the situation in which overlapping writes may interleave (Figure 2).

Collective reads are symmetric: ``Read_all`` runs the selected strategy's
*staged read pipeline* (shared-mode locks, invalidate-then-read, or
two-phase aggregate-and-scatter — see :mod:`repro.core.pipeline`) and
returns a :class:`~repro.core.strategies.ReadOutcome`; even the non-atomic
baseline invalidates cached pages first so a collective read observes
everything its peers flushed before the call.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import replace
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..core import autotune
from ..core.engine import TaskCancelled, current_task
from ..core.regions import FileRegionSet
from ..core.registry import default_registry
from ..core.strategies import (
    AtomicityStrategy,
    NoAtomicityStrategy,
    PipelineStrategy,
    ReadOutcome,
    WriteOutcome,
    strategy_by_name,
)
from ..fs.lockmanager import LockMode
from ..fs.striping import StripingLayout
from ..datatypes.datatype import Datatype
from ..datatypes.pack import pack, unpack
from ..datatypes.typemap import BasicType
from ..fs.client import ClientFileHandle, FSClient
from ..fs.filesystem import ParallelFileSystem
from ..mpi.comm import Communicator
from ..mpi.errors import CollectiveAbortedError
from .fileview import FileView
from .info import Info
from .modes import MODE_CREATE, MODE_RDONLY, MODE_RDWR, MODE_WRONLY
from .requests import IORequest

__all__ = ["MPIFile"]

Buffer = Union[bytes, bytearray, np.ndarray]


def _as_bytes(buffer: Buffer, datatype: Optional[Datatype], count: Optional[int]) -> bytes:
    """Render a user buffer as the contiguous data stream to be written."""
    if datatype is not None:
        return pack(buffer, datatype, count if count is not None else 1)
    if isinstance(buffer, np.ndarray):
        return np.ascontiguousarray(buffer).tobytes()
    return bytes(buffer)


class MPIFile:
    """An open MPI file handle for one rank.

    Construction is collective (all ranks of ``comm`` must construct
    together, which :meth:`Open` guarantees): besides the rank's main file
    handle it sets up the *progress substrate* for nonblocking I/O — a
    detached duplicate of the communicator plus a second client handle on
    the same file, both running on an independent virtual clock.
    """

    def __init__(
        self,
        comm: Communicator,
        filename: str,
        fs: ParallelFileSystem,
        amode: int,
        info: Optional[Info] = None,
    ) -> None:
        self.comm = comm
        self.filename = filename
        self.fs = fs
        self.amode = amode
        self.info = info.copy() if info is not None else Info()
        # The file-system client id must be unique per *process*, not per
        # communicator rank: two groups split from the world communicator
        # both have a rank 0, and byte-range locks are owner-aware (a
        # process's own locks never conflict).  The engine task id is the
        # process identity — for world-communicator files it equals the rank,
        # so per-byte provenance still reads as the writing rank.
        task = current_task()
        client_id = task.tid if task is not None else comm.rank
        # The ``provenance_base`` hint pins the *global* identity instead:
        # coupled groups and multi-tenant jobs racing on one file each pass
        # a disjoint base so client ids — and therefore per-byte provenance,
        # whichever strategy records it — read as ``base + rank`` and the
        # cross-group atomicity verifiers can be keyed globally.
        provenance_base = self.info.get_int("provenance_base", -1)
        if provenance_base >= 0:
            client_id = provenance_base + comm.rank
        self._client = FSClient(
            fs,
            client_id=client_id,
            clock=comm.clock,
            provenance_base=max(provenance_base, 0),
        )
        # Open always creates (a long-standing simplification: MODE_CREATE is
        # accepted but not required for missing files).  The progress handle
        # below opens with create=False and relies on this ordering.
        self._handle = self._client.open(filename, create=True)
        self._view = FileView.default()
        self._atomic = False
        self._strategy: Optional[AtomicityStrategy] = None
        self._auto_strategy: Optional[AtomicityStrategy] = None
        self._non_atomic = NoAtomicityStrategy()
        self._position = 0  # individual file pointer, in etypes
        self._closed = False
        # -- nonblocking-I/O substrate: detached communicator + second handle
        # on an independent clock, so in-flight collectives never contend
        # with the rank's own timeline (compute, independent I/O).
        self._async_comm = comm.dup_detached()
        self._async_client = FSClient(
            fs,
            client_id=client_id,
            clock=self._async_comm.clock,
            provenance_base=max(provenance_base, 0),
        )
        self._async_handle = self._async_client.open(filename, create=False)
        self._outstanding: List[IORequest] = []
        self._chain_tail: Optional[IORequest] = None
        self._split_active: Optional[IORequest] = None
        self._request_seq = itertools.count(1)
        self._apply_open_hints()

    # -- lifecycle -----------------------------------------------------------------

    @classmethod
    def Open(  # noqa: N802 - MPI spelling
        cls,
        comm: Communicator,
        filename: str,
        fs: ParallelFileSystem,
        amode: int = MODE_RDWR | MODE_CREATE,
        info: Optional[Info] = None,
    ) -> "MPIFile":
        """Collectively open ``filename`` on ``fs``; all ranks must call."""
        f = cls(comm, filename, fs, amode, info)
        comm.barrier()
        return f

    def Close(self) -> None:  # noqa: N802 - MPI spelling
        """Collectively close the file.

        Flushes all write-behind cache data (an implicit :meth:`Sync`) and
        synchronises the ranks.  Closing with outstanding unfinished
        :class:`~repro.io.requests.IORequest`\\ s — issued but never
        completed with ``Wait`` or a true ``Test`` — raises ``RuntimeError``:
        a request's data is only guaranteed readable-after once it has been
        waited on, so dropping one across a close is a program error.
        """
        if not self._closed:
            if self._outstanding:
                labels = ", ".join(r._label for r in self._outstanding[:4])
                raise RuntimeError(
                    f"Close of {self.filename!r} with {len(self._outstanding)} "
                    f"outstanding I/O request(s) ({labels}{'…' if len(self._outstanding) > 4 else ''}): "
                    "complete them with Wait/Test (or Waitall) first"
                )
            self._handle.close()  # flushes this handle's write-behind pages
            self._async_handle.close()
            self.comm.release_detached(self._async_comm)
            self._closed = True
        self.comm.barrier()

    close = Close

    # -- view management -----------------------------------------------------------

    def Set_view(  # noqa: N802 - MPI spelling
        self,
        disp: int,
        etype: Union[Datatype, BasicType],
        filetype: Union[Datatype, BasicType, None] = None,
        datarep: str = "native",
        info: Optional[Info] = None,
    ) -> None:
        """Set this process's file view (``MPI_File_set_view``)."""
        if datarep != "native":
            raise NotImplementedError("only the 'native' data representation is supported")
        if info is not None:
            for key in info.keys():
                self.info.set(key, info.get(key))
            self._auto_strategy = None  # hints changed: re-derive the strategy
            self._apply_cache_hints()
            # Hints changed: the adaptive tuner must drop its cached plans
            # *and* decisions for this file (idempotent across ranks).
            autotune.notify_hint_change(self.fs, self.filename)
        self._view = FileView.create(disp, etype, filetype if filetype is not None else etype)
        self._position = 0
        # A cached collective plan must never be replayed against a changed
        # view; conservatively invalidate on every Set_view.
        autotune.notify_view_change(self.fs, self.filename)

    set_view = Set_view

    @property
    def view(self) -> FileView:
        """The current file view."""
        return self._view

    # -- Info hints ----------------------------------------------------------------

    def _apply_open_hints(self) -> None:
        """Apply the hints that configure the file/cache at open time."""
        striping_unit = self.info.get_int("striping_unit", 0)
        if striping_unit > 0 and striping_unit != self._handle.file.layout.stripe_size:
            # The byte store is layout-agnostic, so restriping only redirects
            # which servers future transfers are charged to — safe even when
            # the file already holds data.  All ranks carry the same hint, so
            # the assignment is idempotent across the collective open.
            self._handle.file.layout = StripingLayout(
                num_servers=self.fs.config.num_servers, stripe_size=striping_unit
            )
        self._apply_cache_hints()

    def _apply_cache_hints(self) -> None:
        """Apply the read-ahead hints to both of this rank's cache policies."""
        updates = {}
        # Tri-state toggle: absent or unparseable leaves the configured
        # policy alone (garbage is never treated as truthy).
        toggle = self.info.get_bool("read_ahead", None)
        if toggle is False:
            updates["read_ahead_pages"] = 0
        elif toggle is True:
            configured = self.fs.config.cache_policy.read_ahead_pages
            updates["read_ahead_pages"] = configured if configured > 0 else 2
        pages = self.info.get_int("read_ahead_pages", -1)
        if pages >= 0:
            updates["read_ahead_pages"] = pages
        if not updates:
            return
        for handle in (self._handle, self._async_handle):
            if handle is not None:
                handle.cache.policy = replace(handle.cache.policy, **updates)

    # -- atomicity ---------------------------------------------------------------------

    def Set_atomicity(self, flag: bool) -> None:  # noqa: N802 - MPI spelling
        """Enable or disable MPI atomic mode (collective)."""
        self._atomic = bool(flag)
        self.comm.barrier()

    set_atomicity = Set_atomicity

    def Get_atomicity(self) -> bool:  # noqa: N802 - MPI spelling
        """Whether atomic mode is enabled."""
        return self._atomic

    get_atomicity = Get_atomicity

    def set_strategy(self, strategy: Union[str, AtomicityStrategy]) -> None:
        """Choose the atomicity strategy used by collective writes.

        .. deprecated::
            Pass ``Info({"atomicity_strategy": name})`` to :meth:`Open` or
            :meth:`Set_view` instead; the Info route also threads the
            strategy's tunables (``cb_nodes``, ``cb_buffer_size``, …).
            Passing a strategy *instance* still pins that exact object.
        """
        warnings.warn(
            "MPIFile.set_strategy is deprecated; pass "
            "Info({'atomicity_strategy': <name>}) to Open/Set_view instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if isinstance(strategy, str):
            if strategy not in default_registry:
                # Keep the old eager-validation behaviour for unknown names.
                strategy_by_name(strategy)
            self.info.set("atomicity_strategy", strategy)
            self._strategy = None
            self._auto_strategy = None
        else:
            self._strategy = strategy

    def effective_strategy(self) -> AtomicityStrategy:
        """The strategy that an atomic collective operation will use.

        Resolution order: an explicitly pinned instance
        (:meth:`set_strategy` with an object), the ``atomicity_strategy``
        Info hint, then the file system's best supported default — byte-range
        locking where available (the ROMIO behaviour), process-rank ordering
        on lock-less file systems (ENFS).  The instance is built through the
        registry's Info-aware constructor, so hints like ``cb_nodes`` reach
        aggregator election, and it is cached until the hints change.
        """
        if self._strategy is not None:
            return self._strategy
        if self._auto_strategy is None:
            hint = self.info.get("atomicity_strategy")
            if not hint:
                hint = "locking" if self.fs.config.supports_locking() else "rank-ordering"
            self._auto_strategy = default_registry.create_from_info(hint, self.info)
            bind = getattr(self._auto_strategy, "bind_context", None)
            if bind is not None:
                bind(self.fs, self.filename)
        return self._auto_strategy

    def _collective_strategy(self) -> AtomicityStrategy:
        """The strategy governing a collective data-access call right now."""
        return self.effective_strategy() if self._atomic else self._non_atomic

    # -- helpers ------------------------------------------------------------------------

    def _region_for(self, nbytes: int, etype_position: int) -> FileRegionSet:
        segments = self._view.segments_for(
            nbytes, stream_position=etype_position * self._view.etype_size
        )
        return FileRegionSet(self.comm.rank, segments)

    def _data_stream_size(self, buffer: Buffer, datatype: Optional[Datatype], count: Optional[int]) -> int:
        if datatype is not None:
            return datatype.size * (count if count is not None else 1)
        if isinstance(buffer, np.ndarray):
            return buffer.nbytes
        return len(buffer)

    # -- the request machinery ---------------------------------------------------------

    def _issue(
        self,
        label: str,
        kind: str,
        body: Callable[[Communicator, ClientFileHandle], object],
        collective: bool = True,
        flush_main: bool = True,
    ) -> IORequest:
        """Spawn ``body`` as a detached progress task; return its request.

        The body receives the progress communicator and the progress file
        handle (independent clock).  Requests on one file are chained in
        issue order — request *n* starts only after request *n-1* completed —
        which is both the MPI ordering rule for nonblocking collectives and
        what keeps the progress communicator's rendezvous consistent across
        ranks.  A failing collective body aborts the progress communicator so
        every peer's in-flight request surfaces
        :class:`~repro.mpi.errors.CollectiveAbortedError` instead of
        deadlocking.
        """
        task = current_task()
        if task is None:
            raise RuntimeError(
                "nonblocking file I/O must run inside an engine task "
                "(start the program through run_spmd)"
            )
        # Read-your-own-writes across handles: data this rank wrote through
        # the blocking independent path may still sit in the main handle's
        # write-behind cache, invisible to the progress handle's transfers.
        # (Split-collective begins flushed already, before their exchange
        # rendezvous — the earlier of the two points is the binding one.)
        if flush_main:
            self._handle.sync()
        issue_time = self.comm.clock.now
        request = IORequest(label=label, kind=kind, on_retire=self._retire_request)
        prev = self._chain_tail
        self._chain_tail = request
        self._outstanding.append(request)
        comm = self._async_comm
        handle = self._async_handle
        rank = self.comm.rank

        def progress() -> None:
            try:
                if prev is not None and not prev._done:
                    prev._park_until_done()
                # The operation starts no earlier than it was issued (and no
                # earlier than the previous request finished — the progress
                # clock already stands at that time).
                handle.clock.advance_to(issue_time)
                outcome = body(comm, handle)
            except TaskCancelled:
                raise
            except BaseException as exc:  # noqa: BLE001 - delivered via Wait
                error: BaseException = exc
                if collective:
                    comm.abort(exc)
                    if not isinstance(exc, CollectiveAbortedError):
                        error = CollectiveAbortedError(
                            f"nonblocking collective {label!r} aborted: rank "
                            f"{rank} raised {type(exc).__name__}: {exc}"
                        )
                        error.__cause__ = exc
                request._finish(error=error, end_time=handle.clock.now)
            else:
                request._finish(outcome=outcome, end_time=handle.clock.now)

        task.engine.spawn(
            progress,
            name=f"{self.filename}:{label}@{rank}",
            clock=handle.clock,
            detached=True,
        )
        return request

    def _retire_request(self, request: IORequest) -> None:
        """Bookkeeping when a request is consumed by Wait / a true Test."""
        if request in self._outstanding:
            self._outstanding.remove(request)
        if self._split_active is request:
            self._split_active = None
        if self._closed:
            return
        # A waited-on request is readable-after: push any write-behind data
        # the detached operations left in the progress handle's cache out to
        # the servers *before* refreshing the main handle, even while later
        # requests are still in flight — the flush only moves already-written
        # dirty runs, so it cannot disorder an in-flight operation.  (Free
        # when nothing is dirty.)
        self._async_handle.sync()
        if request.kind == "write":
            # The operation wrote through the progress handle; pages this
            # handle cached before it are stale now.  (Dirty pages are
            # flushed first — invalidate is sync-then-invalidate.)
            self._handle.invalidate()

    def _next_label(self, op: str) -> str:
        return f"{op}#{next(self._request_seq)}"

    # -- nonblocking collective data access ---------------------------------------------

    def Iwrite_all(  # noqa: N802 - MPI spelling
        self,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> IORequest:
        """Nonblocking collective write (``MPI_File_iwrite_all``).

        Captures the data stream and advances the individual file pointer at
        issue time, then runs the full staged pipeline — exchange, conflict
        analysis, commit — on a detached progress task.  Returns the
        :class:`~repro.io.requests.IORequest` whose ``Wait`` yields the
        :class:`~repro.core.strategies.WriteOutcome`.
        """
        self._check_writable()
        data = _as_bytes(buffer, datatype, count)
        region = self._region_for(len(data), self._position)
        strategy = self._collective_strategy()
        request = self._issue(
            self._next_label("iwrite_all"),
            "write",
            lambda comm, handle: strategy.execute_write(comm, handle, region, data),
        )
        self._position += len(data) // self._view.etype_size
        return request

    def Iread_all(  # noqa: N802 - MPI spelling
        self,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> IORequest:
        """Nonblocking collective read (``MPI_File_iread_all``).

        ``buffer`` is filled when the operation completes and must not be
        read (or reused) before ``Wait``.  ``Wait`` returns the
        :class:`~repro.core.strategies.ReadOutcome`.
        """
        self._check_readable()
        nbytes = self._data_stream_size(buffer, datatype, count)
        region = self._region_for(nbytes, self._position)
        strategy = self._collective_strategy()

        def body(comm: Communicator, handle: ClientFileHandle):
            data, outcome = strategy.execute_read(comm, handle, region)
            self._scatter_into(buffer, data, datatype, count)
            return outcome

        request = self._issue(self._next_label("iread_all"), "read", body)
        self._position += nbytes // self._view.etype_size
        return request

    # -- split-collective data access ----------------------------------------------------

    def _require_no_split(self) -> None:
        if self._split_active is not None:
            raise RuntimeError(
                "a split collective is already active on this file; call the "
                "matching _end first (MPI allows one split collective per file)"
            )

    def _split_strategy(self) -> PipelineStrategy:
        strategy = self._collective_strategy()
        if not isinstance(strategy, PipelineStrategy):
            raise NotImplementedError(
                f"strategy {strategy!r} does not expose the staged pipeline "
                "required by split collectives"
            )
        return strategy

    def Write_all_begin(  # noqa: N802 - MPI spelling
        self,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> IORequest:
        """Begin a split collective write (``MPI_File_write_all_begin``).

        The negotiation — view exchange, conflict analysis and, for
        two-phase, the data shuffle — is pinned *here*, on the calling rank's
        own timeline; the commit (the file I/O) runs detached until
        :meth:`Write_all_end`.  Computation between ``begin`` and ``end``
        therefore overlaps exactly the commit phase.
        """
        self._require_no_split()
        self._check_writable()
        data = _as_bytes(buffer, datatype, count)
        region = self._region_for(len(data), self._position)
        strategy = self._split_strategy()
        self._handle.sync()  # flush before the exchange rendezvous
        prepared = strategy.prepare_write(self.comm, region, data, self.comm.clock.now)
        request = self._issue(
            self._next_label("write_all_begin"),
            "write",
            lambda comm, handle: strategy.commit_write(comm, handle, prepared),
            flush_main=False,  # flushed above, before the exchange rendezvous
        )
        self._position += len(data) // self._view.etype_size
        self._split_active = request
        return request

    def Write_all_end(self) -> WriteOutcome:  # noqa: N802 - MPI spelling
        """Finish the active split collective write; returns its outcome."""
        request = self._split_active
        if request is None or request.kind != "write":
            raise RuntimeError("no split collective write is active on this file")
        return request.Wait()

    def Read_all_begin(  # noqa: N802 - MPI spelling
        self,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> IORequest:
        """Begin a split collective read (``MPI_File_read_all_begin``).

        The exchange and read scheduling happen here; the fetch (and, for
        two-phase, the scatter) run detached until :meth:`Read_all_end`.
        ``buffer`` is filled by completion and must not be read before
        ``end``.
        """
        self._require_no_split()
        self._check_readable()
        nbytes = self._data_stream_size(buffer, datatype, count)
        region = self._region_for(nbytes, self._position)
        strategy = self._split_strategy()
        self._handle.sync()  # flush before the exchange rendezvous
        prepared = strategy.prepare_read(self.comm, region, self.comm.clock.now)

        def body(comm: Communicator, handle: ClientFileHandle):
            handle.sync()  # the progress handle's own write-behind pages
            data, outcome = strategy.commit_read(comm, handle, prepared)
            self._scatter_into(buffer, data, datatype, count)
            return outcome

        request = self._issue(
            self._next_label("read_all_begin"), "read", body, flush_main=False
        )
        self._position += nbytes // self._view.etype_size
        self._split_active = request
        return request

    def Read_all_end(self) -> ReadOutcome:  # noqa: N802 - MPI spelling
        """Finish the active split collective read; returns its outcome."""
        request = self._split_active
        if request is None or request.kind != "read":
            raise RuntimeError("no split collective read is active on this file")
        return request.Wait()

    # -- blocking collective data access ------------------------------------------------

    def Write_all(  # noqa: N802 - MPI spelling
        self,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> WriteOutcome:
        """Collective write at the individual file pointer.

        A thin wrapper: ``Iwrite_all(...).Wait()``.  In atomic mode the
        write is carried out by the configured atomicity strategy; in
        non-atomic mode each file segment is written independently (no
        coordination).
        """
        return self.Iwrite_all(buffer, count, datatype).Wait()

    write_all = Write_all

    def Read_all(  # noqa: N802 - MPI spelling
        self,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> ReadOutcome:
        """Collective read at the individual file pointer into ``buffer``.

        A thin wrapper: ``Iread_all(...).Wait()``.  The read runs through
        the staged read pipeline of the configured strategy (the same
        selection rules as :meth:`Write_all`): shared-mode locks for the
        locking strategy, invalidate-then-cached-read for the handshaking
        strategies, aggregate-and-scatter for two-phase.  In non-atomic mode
        the baseline strategy still drops cached pages first
        (sync-then-invalidate), so a collective read observes everything its
        peers flushed before the call.
        """
        return self.Iread_all(buffer, count, datatype).Wait()

    read_all = Read_all

    # -- independent data access -----------------------------------------------------------

    def _independent_write(
        self, handle: ClientFileHandle, region: FileRegionSet, data: bytes, atomic: bool
    ) -> int:
        """One rank's uncoordinated write of ``region`` through ``handle``."""
        if atomic and not region.is_empty():
            extent = region.extent()
            lock = handle.lock(extent.start, extent.stop)
            try:
                return self._write_region(handle, region, data, direct=True)
            finally:
                handle.unlock(lock)
        return self._write_region(handle, region, data, direct=False)

    def _independent_read(
        self,
        handle: ClientFileHandle,
        region: FileRegionSet,
        atomic: bool,
        fresh: bool = False,
    ) -> Tuple[bytes, ReadOutcome]:
        """One rank's uncoordinated read of ``region`` through ``handle``.

        ``fresh=True`` forces a cache invalidation before a non-atomic cached
        read.  The nonblocking path needs it: the progress handle's cache may
        hold pages that predate writes made through the rank's *main* handle,
        and a same-process read after a completed write must see them.
        """
        outcome = ReadOutcome(
            strategy="independent",
            rank=self.comm.rank,
            bytes_requested=region.total_bytes,
            start_time=handle.clock.now,
        )
        use_lock = atomic and not region.is_empty() and self.fs.config.supports_locking()
        stream = bytearray()
        if use_lock:
            # Direct reads return the servers' bytes: this client's own
            # write-behind data must be flushed first (read-your-own-writes).
            handle.sync()
            extent = region.extent()
            waited0 = handle.clock.waited
            lock = handle.lock(extent.start, extent.stop, mode=LockMode.SHARED)
            outcome.locks_acquired = 1
            outcome.lock_wait_seconds = handle.clock.waited - waited0
            try:
                for _, file_off, length in region.buffer_map():
                    stream.extend(handle.read(file_off, length, direct=True))
            finally:
                handle.unlock(lock)
        else:
            if atomic or fresh:
                handle.invalidate()
                outcome.invalidations = 1
            for _, file_off, length in region.buffer_map():
                stream.extend(handle.read(file_off, length))
        outcome.bytes_read = len(stream)
        outcome.bytes_returned = len(stream)
        outcome.segments_read = region.num_segments
        outcome.end_time = handle.clock.now
        return bytes(stream), outcome

    def Write_at(  # noqa: N802 - MPI spelling
        self,
        offset_etypes: int,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> int:
        """Independent write at an explicit etype offset within the view.

        Independent writes cannot coordinate with unknown peers, so in atomic
        mode they always use byte-range locking (the only correct option the
        paper identifies for non-collective I/O); on lock-less file systems
        atomic independent writes raise ``LockingUnsupported``.
        """
        self._check_writable()
        data = _as_bytes(buffer, datatype, count)
        region = self._region_for(len(data), offset_etypes)
        return self._independent_write(self._handle, region, data, self._atomic)

    write_at = Write_at

    def Read_at(  # noqa: N802 - MPI spelling
        self,
        offset_etypes: int,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> ReadOutcome:
        """Independent read at an explicit etype offset within the view.

        Independent reads cannot coordinate with unknown peers, so in atomic
        mode they take a *shared-mode* byte-range lock over the extent and
        read directly (mirroring :meth:`Write_at`'s exclusive lock); on
        lock-less file systems they fall back to invalidate-then-cached-read,
        which observes everything peers have flushed.
        """
        self._check_readable()
        nbytes = self._data_stream_size(buffer, datatype, count)
        region = self._region_for(nbytes, offset_etypes)
        stream, outcome = self._independent_read(self._handle, region, self._atomic)
        self._scatter_into(buffer, stream, datatype, count)
        return outcome

    read_at = Read_at

    def Iwrite_at(  # noqa: N802 - MPI spelling
        self,
        offset_etypes: int,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> IORequest:
        """Nonblocking independent write (``MPI_File_iwrite_at``).

        Same locking rules as :meth:`Write_at`, executed on the detached
        progress timeline; ``Wait`` returns the byte count written.
        """
        self._check_writable()
        data = _as_bytes(buffer, datatype, count)
        region = self._region_for(len(data), offset_etypes)
        atomic = self._atomic
        return self._issue(
            self._next_label("iwrite_at"),
            "write",
            lambda comm, handle: self._independent_write(handle, region, data, atomic),
            collective=False,
        )

    def Iread_at(  # noqa: N802 - MPI spelling
        self,
        offset_etypes: int,
        buffer: Buffer,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ) -> IORequest:
        """Nonblocking independent read (``MPI_File_iread_at``).

        ``buffer`` is filled at completion; ``Wait`` returns the
        :class:`~repro.core.strategies.ReadOutcome`.
        """
        self._check_readable()
        nbytes = self._data_stream_size(buffer, datatype, count)
        region = self._region_for(nbytes, offset_etypes)
        atomic = self._atomic

        def body(comm: Communicator, handle: ClientFileHandle):
            stream, outcome = self._independent_read(handle, region, atomic, fresh=True)
            self._scatter_into(buffer, stream, datatype, count)
            return outcome

        return self._issue(self._next_label("iread_at"), "read", body, collective=False)

    def Write(self, buffer: Buffer, count: Optional[int] = None,
              datatype: Optional[Datatype] = None) -> int:  # noqa: N802
        """Independent write at the individual file pointer."""
        data_len = self._data_stream_size(buffer, datatype, count)
        written = self.Write_at(self._position, buffer, count, datatype)
        self._position += data_len // self._view.etype_size
        return written

    def Read(self, buffer: Buffer, count: Optional[int] = None,
             datatype: Optional[Datatype] = None) -> ReadOutcome:  # noqa: N802
        """Independent read at the individual file pointer."""
        data_len = self._data_stream_size(buffer, datatype, count)
        outcome = self.Read_at(self._position, buffer, count, datatype)
        self._position += data_len // self._view.etype_size
        return outcome

    # -- pointer and sync ----------------------------------------------------------------------

    def Seek(self, offset_etypes: int) -> None:  # noqa: N802 - MPI spelling
        """Position the individual file pointer (in etypes)."""
        if offset_etypes < 0:
            raise ValueError("file pointer cannot be negative")
        self._position = offset_etypes

    seek = Seek

    def Tell(self) -> int:  # noqa: N802 - MPI spelling
        """Current individual file pointer (in etypes)."""
        return self._position

    tell = Tell

    def Sync(self) -> None:  # noqa: N802 - MPI spelling
        """Collective flush of write-behind data (``MPI_File_sync``).

        As in MPI, all outstanding requests on the file must be completed
        first — ``Sync`` over an in-flight request could not promise the
        visibility the call exists to provide, so it raises instead of
        silently flushing a partial state.
        """
        if self._outstanding:
            raise RuntimeError(
                f"Sync of {self.filename!r} with {len(self._outstanding)} "
                "outstanding I/O request(s): complete them with Wait/Test "
                "first (MPI requires it)"
            )
        self._handle.sync()
        self._async_handle.sync()
        self.comm.barrier()

    sync = Sync

    def Get_size(self) -> int:  # noqa: N802 - MPI spelling
        """Current file size in bytes."""
        return self._handle.size

    # -- internals ---------------------------------------------------------------------------------

    @staticmethod
    def _write_region(
        handle: ClientFileHandle, region: FileRegionSet, data: bytes, direct: bool
    ) -> int:
        written = 0
        for buf_off, file_off, length in region.buffer_map():
            written += handle.write(file_off, data[buf_off : buf_off + length], direct=direct)
        return written

    def _scatter_into(
        self, buffer: Buffer, stream: bytes, datatype: Optional[Datatype], count: Optional[int]
    ) -> None:
        if datatype is not None:
            if isinstance(buffer, (bytes,)):
                raise TypeError("cannot read into an immutable bytes object")
            unpack(stream, datatype, buffer, count if count is not None else 1)
            return
        if isinstance(buffer, np.ndarray):
            flat = buffer.reshape(-1).view(np.uint8)
            src = np.frombuffer(stream, dtype=np.uint8)
            flat[: len(src)] = src
            return
        if isinstance(buffer, bytearray):
            buffer[: len(stream)] = stream
            return
        raise TypeError(f"cannot read into buffer of type {type(buffer).__name__}")

    def _check_writable(self) -> None:
        if self._closed:
            raise ValueError("file is closed")
        if self.amode & MODE_RDONLY and not (self.amode & (MODE_WRONLY | MODE_RDWR)):
            raise PermissionError("file was opened read-only")

    def _check_readable(self) -> None:
        if self._closed:
            raise ValueError("file is closed")
        if self.amode & MODE_WRONLY and not (self.amode & (MODE_RDONLY | MODE_RDWR)):
            raise PermissionError("file was opened write-only")
