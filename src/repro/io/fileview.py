"""MPI file views.

A file view (MPI 2.0, ``MPI_File_set_view``) makes a subset of the file
"visible" to a process: starting at a byte ``displacement``, the ``filetype``
tiles the file indefinitely and only the bytes inside the filetype's segments
belong to the process's view; they form a contiguous *data stream* that reads
and writes consume in order.  The ``etype`` is the elementary unit in which
offsets and counts are expressed.

:class:`FileView` wraps the three components and answers the question the
MPI-IO layer and the atomicity strategies need answered: *which absolute file
byte ranges does a request of N etypes starting at file-pointer position S
touch?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..datatypes.constructors import as_datatype
from ..datatypes.datatype import Datatype, DatatypeError
from ..datatypes.flatten import segments_for_bytes
from ..datatypes.typemap import BYTE, BasicType

__all__ = ["FileView"]


@dataclass(frozen=True)
class FileView:
    """One process's view of a file: ``(displacement, etype, filetype)``."""

    displacement: int
    etype: Datatype
    filetype: Datatype

    def __post_init__(self) -> None:
        if self.displacement < 0:
            raise DatatypeError("file view displacement must be non-negative")
        if self.etype.size <= 0:
            raise DatatypeError("etype must have a positive size")
        if self.filetype.size == 0:
            raise DatatypeError("filetype must contain at least one data byte")
        if self.filetype.size % self.etype.size != 0:
            raise DatatypeError(
                "filetype size must be a multiple of the etype size "
                f"({self.filetype.size} vs {self.etype.size})"
            )

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def default() -> "FileView":
        """The default view: the whole file as a stream of bytes."""
        byte_dt = as_datatype(BYTE)
        return FileView(displacement=0, etype=byte_dt, filetype=byte_dt)

    @staticmethod
    def create(displacement: int, etype, filetype) -> "FileView":
        """Build a view, committing datatypes given as constructors' output."""
        et = as_datatype(etype) if isinstance(etype, (BasicType, Datatype)) else etype
        ft = as_datatype(filetype) if isinstance(filetype, (BasicType, Datatype)) else filetype
        if not et.committed:
            et = et.commit()
        if not ft.committed:
            ft = ft.commit()
        return FileView(displacement=displacement, etype=et, filetype=ft)

    # -- queries -------------------------------------------------------------------

    @property
    def etype_size(self) -> int:
        """Bytes per elementary type."""
        return self.etype.size

    def visible_bytes_per_tile(self) -> int:
        """Data bytes contributed by one tiling of the filetype."""
        return self.filetype.size

    def segments_for(
        self, nbytes: int, stream_position: int = 0
    ) -> List[Tuple[int, int]]:
        """Absolute file segments touched by a request of ``nbytes`` data
        bytes starting at data-stream byte ``stream_position``.

        The returned ``(offset, length)`` pairs are in data-stream order and
        are what the atomicity strategies consume as the flattened view.
        """
        if nbytes < 0 or stream_position < 0:
            raise ValueError("nbytes and stream_position must be non-negative")
        return segments_for_bytes(
            self.filetype, nbytes, offset=self.displacement, skip_bytes=stream_position
        )

    def segments_for_etypes(
        self, count: int, etype_position: int = 0
    ) -> List[Tuple[int, int]]:
        """Like :meth:`segments_for` but counted in etypes (MPI-style)."""
        return self.segments_for(
            count * self.etype_size, etype_position * self.etype_size
        )
