"""MPI Info hints (``MPI_Info``).

A thin string-to-string dictionary with the usual ``set``/``get``/``keys``
interface plus typed accessors for the hints this library understands.
Hints are accepted at ``Open`` and ``Set_view`` and thread through the
strategy registry into strategy construction, aggregator election and the
client cache; unknown hints are ignored, as MPI requires.

``atomicity_strategy``
    Which strategy :class:`repro.io.file.MPIFile` uses in atomic mode
    (``"locking"``, ``"graph-coloring"``, ``"rank-ordering"``,
    ``"two-phase"``, ``"auto"``, or any later-registered name).  When
    absent, the file picks the file system's best supported default
    (locking where available, otherwise rank ordering).  ``"auto"`` engages
    the :mod:`repro.core.autotune` hint engine, which classifies the access
    pattern at the first collective and derives ``cb_nodes``/``cb_ppn``/
    ``cb_buffer_size`` itself.
``cb_nodes``
    Number of two-phase aggregators (ROMIO's collective-buffering node
    count).  Default: every rank aggregates.
``cb_buffer_size``
    Per-aggregator file-domain cap in bytes; when ``cb_nodes`` is absent the
    two-phase election sizes itself as ``ceil(domain / cb_buffer_size)``.
``cb_ppn``
    Ranks per node for the hierarchical two-phase strategy (node-leader
    fan-in width).
``plan_cache``
    Boolean toggle (default ``"true"``) for the ``auto`` strategy's
    cross-collective plan cache; set ``"false"`` to force every collective
    through the cold exchange/analysis path.
``striping_unit``
    Overrides the file's stripe size (bytes) at open.
``provenance_base``
    Global identity offset for coupled groups or jobs sharing one file:
    the rank's file-system client id becomes ``provenance_base + rank``
    (instead of the engine task id) and strategy-recorded per-byte
    provenance is rebased the same way, so the cross-group atomicity
    verifiers can key observations on globally unique writer ids.  Groups
    racing on one file must pass disjoint bases.
``read_ahead`` / ``read_ahead_pages``
    Client-cache read-ahead toggle (boolean, see :meth:`Info.get_bool`) and
    explicit page count; applied to the rank's cache policies at
    open/``Set_view``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

__all__ = ["Info"]


class Info:
    """A dictionary of string hints."""

    def __init__(self, initial: Optional[Dict[str, str]] = None) -> None:
        self._data: Dict[str, str] = {}
        if initial:
            for key, value in initial.items():
                self.set(key, value)

    def set(self, key: str, value: str) -> None:
        """Store a hint (keys and values are coerced to ``str``)."""
        self._data[str(key)] = str(value)

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Fetch a hint or ``default``."""
        return self._data.get(str(key), default)

    def delete(self, key: str) -> None:
        """Remove a hint if present."""
        self._data.pop(str(key), None)

    def keys(self) -> Iterator[str]:
        """Iterate over hint names."""
        return iter(sorted(self._data))

    def __contains__(self, key: str) -> bool:
        return str(key) in self._data

    def __len__(self) -> int:
        return len(self._data)

    def copy(self) -> "Info":
        """A shallow copy."""
        return Info(dict(self._data))

    def get_int(self, key: str, default: int = 0) -> int:
        """Fetch a hint converted to ``int`` (``default`` on absence/garbage)."""
        raw = self.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            return default

    #: Spellings accepted by :meth:`get_bool` (ROMIO accepts the same set).
    _TRUE_WORDS = frozenset({"true", "1", "yes", "on", "enable", "enabled"})
    _FALSE_WORDS = frozenset({"false", "0", "no", "off", "disable", "disabled"})

    def get_bool(self, key: str, default: Optional[bool] = False) -> Optional[bool]:
        """Fetch a boolean hint (``default`` on absence *or* garbage).

        Unlike ad-hoc string compares at call sites, an unparseable value is
        never treated as truthy: anything outside the recognised true/false
        spellings falls back to ``default``.  Pass ``default=None`` to
        distinguish "absent or garbage" from an explicit setting.
        """
        raw = self.get(key)
        if raw is None:
            return default
        word = raw.strip().lower()
        if word in self._TRUE_WORDS:
            return True
        if word in self._FALSE_WORDS:
            return False
        return default

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Info({self._data!r})"
