"""Request objects for nonblocking and split-collective file I/O.

An :class:`IORequest` is the handle returned by the nonblocking MPI-IO calls
(``MPI_File_iwrite_all`` and friends — :meth:`repro.io.file.MPIFile.Iwrite_all`
etc.) and by the split-collective ``..._begin`` calls.  The operation itself
runs on a *detached progress task* of the ambient discrete-event engine, on a
virtual clock independent of the issuing rank's, so the rank's own timeline
(computation, independent I/O) overlaps the collective's shuffle and commit
phases.  The two timelines join at :meth:`IORequest.Wait`:

* the caller parks on the scheduler until the progress task completes;
* the caller's clock advances to ``max(caller time, completion time)`` —
  overlap realised is exactly the computation that fit under the I/O.

Request lifecycle::

    issue (I*/begin) ──▶ in flight ──▶ complete ──▶ retired (Wait/Test-true)

A request completes on its own — the engine drives the progress task whether
or not anybody waits — but it is only *retired* (its outcome consumed, its
error raised, its file's bookkeeping released) through :meth:`Wait` or a
successful :meth:`Test`.  Closing a file with unretired requests is an error.
Waiting an already-retired request is a no-op returning the same outcome
(the MPI ``MPI_REQUEST_NULL`` behaviour); a failed request re-raises its
error on every Wait.

Failure semantics: when one rank's detached collective raises, the request
machinery aborts the progress communicator, so every peer's in-flight
request fails with :class:`~repro.mpi.errors.CollectiveAbortedError` — and
the originating rank's error is wrapped in the same type (with the original
as ``__cause__``), so :func:`Waitall` surfaces ``CollectiveAbortedError`` on
*all* ranks.

:func:`Waitall`, :func:`Testall` and :func:`Waitany` accept a mixed list of
:class:`IORequest` and point-to-point :class:`repro.mpi.status.Request`
objects, unifying the two request families the way ``MPI_Waitall`` does.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..core.engine import Task, current_task, sequence_point

__all__ = ["IORequest", "Waitall", "Testall", "Waitany"]


class IORequest:
    """Handle for a nonblocking or split-collective file operation."""

    def __init__(
        self,
        label: str,
        kind: str,
        on_retire: Optional[Callable[["IORequest"], None]] = None,
    ) -> None:
        self._label = label
        #: ``"write"`` or ``"read"`` — drives the owning file's cache
        #: bookkeeping at retirement.
        self.kind = kind
        self._on_retire = on_retire
        self._done = False
        self._retired = False
        self._outcome: Any = None
        self._error: Optional[BaseException] = None
        #: Virtual time at which the detached operation completed.
        self._end_time: Optional[float] = None
        self._waiters: List[Task] = []

    # -- introspection ----------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the detached operation has completed (without retiring)."""
        return self._done

    @property
    def retired(self) -> bool:
        """Whether the request was consumed by ``Wait`` / a true ``Test``."""
        return self._retired

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "retired" if self._retired else ("done" if self._done else "in-flight")
        return f"IORequest({self._label!r}, {state})"

    # -- completion (progress-task side) ----------------------------------------

    def _finish(
        self,
        outcome: Any = None,
        error: Optional[BaseException] = None,
        end_time: Optional[float] = None,
    ) -> None:
        """Mark the request complete and wake every parked waiter."""
        self._outcome = outcome
        self._error = error
        self._end_time = end_time
        self._done = True
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            if task.state == Task.BLOCKED:
                task.engine.wake(task)

    # -- completion (caller side) ------------------------------------------------

    def _park_until_done(self) -> None:
        """Block the current engine task until the operation completes."""
        task = current_task()
        if task is None:
            raise RuntimeError(
                "an IORequest can only be completed from inside an engine "
                "task (run the program through run_spmd)"
            )
        while not self._done:
            self._waiters.append(task)
            try:
                task.engine.wait(f"io-request:{self._label}")
            except BaseException:
                if task in self._waiters:
                    self._waiters.remove(task)
                raise

    def _retire(self) -> None:
        if not self._retired:
            self._retired = True
            if self._on_retire is not None:
                self._on_retire(self)

    def Wait(self) -> Any:  # noqa: N802 - MPI spelling
        """Complete the operation; return its outcome (or raise its error).

        Parks the calling rank until the detached operation finishes, then
        joins the timelines: the caller's clock advances to the operation's
        completion time (no-op if the caller computed past it — that is the
        overlap).  Idempotent: waiting again returns the same outcome, or
        re-raises the same error.
        """
        if not self._done:
            self._park_until_done()
        self._retire()
        task = current_task()
        if task is not None and self._end_time is not None:
            task.clock.advance_to(self._end_time, waiting=True)
        if self._error is not None:
            raise self._error
        return self._outcome

    def Test(self) -> bool:  # noqa: N802 - MPI spelling
        """True when the operation has completed; never blocks.

        A true ``Test`` *completes* the request exactly like :meth:`Wait`
        (clock join, retirement, error raise), per MPI semantics.  A false
        one yields to any earlier-scheduled task first — so a
        compute/``Test`` polling loop actually lets the detached operation
        progress instead of starving it.
        """
        if not self._done:
            sequence_point()
            if not self._done:
                return False
        self.Wait()
        return True

    # lowercase aliases, matching the point-to-point Request duck type
    wait = Wait
    test = Test


# ---------------------------------------------------------------------------
# Module-level completion over mixed request families
# ---------------------------------------------------------------------------


def _wait_one(request: Any) -> Any:
    """Wait on either request family (``Wait`` for files, ``wait`` for p2p).

    Point-to-point requests carry no retirement state of their own, so the
    completion functions stamp one on (``_retired``) — the equivalent of MPI
    setting the handle to ``MPI_REQUEST_NULL`` — which is what lets
    :func:`Waitany` drain a mixed list without returning the same completed
    p2p index forever.
    """
    if isinstance(request, IORequest):
        return request.Wait()
    value = request.wait()
    request._retired = True
    return value


def _is_done(request: Any) -> bool:
    """Non-retiring completion probe for either request family."""
    if isinstance(request, IORequest):
        return request._done
    return request.test()


def _is_retired(request: Any) -> bool:
    if isinstance(request, IORequest):
        return request._retired
    return bool(getattr(request, "_retired", False))


def Waitall(requests: Sequence[Any]) -> List[Any]:  # noqa: N802 - MPI spelling
    """Complete every request; return their outcomes in order.

    ``None`` placeholders (``MPI_REQUEST_NULL`` — e.g. slots a drain loop
    already cleared) are skipped and yield ``None`` results.  Every live
    request is completed even when some fail (so no operation is left in
    flight), then the first error in request order is raised —
    ``MPI_Waitall`` with ``MPI_ERRORS_RETURN`` folded into one exception.
    """
    results: List[Any] = []
    first_error: Optional[BaseException] = None
    for request in requests:
        if request is None:
            results.append(None)
            continue
        try:
            results.append(_wait_one(request))
        except Exception as exc:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = exc
            results.append(None)
    if first_error is not None:
        raise first_error
    return results


def Testall(requests: Sequence[Any]) -> bool:  # noqa: N802 - MPI spelling
    """True iff every request has completed; completes them all if so.

    Like ``MPI_Testall``: a false result completes nothing (no request is
    retired), a true result is equivalent to :func:`Waitall` having
    returned.  ``None`` placeholders count as completed.
    """
    sequence_point()
    if not all(_is_done(r) for r in requests if r is not None):
        return False
    Waitall(requests)
    return True


def Waitany(requests: Sequence[Any]) -> Optional[int]:  # noqa: N802 - MPI spelling
    """Block until some request completes; retire it and return its index.

    Deterministic selection: among the requests found complete when the
    caller runs, the lowest index wins — and because the scheduler wakes the
    caller at each completion in virtual-time order, repeated ``Waitany``
    calls retire requests in their (deterministic) completion order.
    Already-retired requests and ``None`` placeholders are skipped, so the
    usual drain loop — call, use the index, repeat — terminates; returns
    ``None`` when nothing is left to wait for (``MPI_UNDEFINED``).

    Blocking is driven by the file requests in the list (their progress
    tasks wake the caller); when only point-to-point requests remain
    pending, the lowest-indexed one is waited directly.
    """
    task = current_task()
    while True:
        pending = [
            (i, r)
            for i, r in enumerate(requests)
            if r is not None and not _is_retired(r)
        ]
        if not pending:
            return None
        for i, r in pending:
            if _is_done(r):
                _wait_one(r)
                return i
        io_pending = [r for _, r in pending if isinstance(r, IORequest)]
        if io_pending and task is not None:
            for r in io_pending:
                r._waiters.append(task)
            try:
                task.engine.wait("io-waitany")
            finally:
                for r in io_pending:
                    if task in r._waiters:
                        r._waiters.remove(task)
        else:
            # Only point-to-point requests pending: their completion is not
            # announced to third parties, so wait the lowest-indexed one.
            i, r = pending[0]
            _wait_one(r)
            return i
