"""MPI-IO layer (ROMIO equivalent): file views, MPIFile, Info hints, modes,
and request objects for nonblocking / split-collective I/O."""

from .fileview import FileView
from .file import MPIFile
from .info import Info
from .requests import IORequest, Testall, Waitall, Waitany
from .modes import (
    MODE_APPEND,
    MODE_CREATE,
    MODE_DELETE_ON_CLOSE,
    MODE_EXCL,
    MODE_RDONLY,
    MODE_RDWR,
    MODE_WRONLY,
    describe_mode,
)

__all__ = [
    "MPIFile",
    "FileView",
    "Info",
    "IORequest",
    "Waitall",
    "Testall",
    "Waitany",
    "MODE_RDONLY",
    "MODE_WRONLY",
    "MODE_RDWR",
    "MODE_CREATE",
    "MODE_EXCL",
    "MODE_DELETE_ON_CLOSE",
    "MODE_APPEND",
    "describe_mode",
]
