"""Per-rank virtual clocks.

Performance in this reproduction is measured in *virtual time*: every rank
owns a :class:`VirtualClock` that the file-system substrate and the MPI
runtime charge with the simulated cost of each operation (see
``DESIGN.md`` §4).  Synchronising operations (barriers, collective
completions, lock grants) advance a rank's clock to the maximum of the
participating clocks, which is how serialisation — the phenomenon the paper
measures — becomes visible in the reported bandwidth numbers.

Clocks are plain mutable objects owned by exactly one rank's thread; shared
resources keep their own "next free time" and the *maximum* rule is applied
at the interaction points, so no locking of the clock itself is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["VirtualClock", "synchronize_clocks"]


@dataclass
class VirtualClock:
    """A monotonically non-decreasing virtual clock (seconds)."""

    now: float = 0.0
    #: Cumulative time spent waiting (lock waits, barrier waits); useful for
    #: the per-strategy breakdowns in the benchmark reports.
    waited: float = field(default=0.0, compare=False)

    def advance(self, seconds: float) -> float:
        """Add ``seconds`` of busy time; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot advance a clock by a negative duration")
        self.now += seconds
        return self.now

    def advance_to(self, when: float, *, waiting: bool = False) -> float:
        """Move the clock forward to ``when`` (no-op if already later).

        With ``waiting=True`` the skipped span is accounted as wait time.
        """
        if when > self.now:
            if waiting:
                self.waited += when - self.now
            self.now = when
        return self.now

    def reset(self) -> None:
        """Zero the clock (used between benchmark repetitions)."""
        self.now = 0.0
        self.waited = 0.0


def synchronize_clocks(clocks: Iterable[VirtualClock]) -> float:
    """Advance every clock to the maximum — the effect of a barrier.

    Returns the synchronised time.
    """
    clocks = list(clocks)
    if not clocks:
        return 0.0
    latest = max(c.now for c in clocks)
    for c in clocks:
        c.advance_to(latest, waiting=True)
    return latest
