"""Communicators: point-to-point and collective operations.

The simulator executes one Python thread per MPI rank
(:func:`repro.mpi.runtime.run_spmd`).  All ranks of a communicator share a
single :class:`_CommGroup` — mailboxes for point-to-point messages and a
rendezvous area for collectives — while each rank holds its own
:class:`Communicator` facade exposing the familiar API:

* ``send`` / ``recv`` / ``isend`` / ``irecv`` / ``sendrecv``
* ``barrier``, ``bcast``, ``gather``, ``scatter``, ``allgather``,
  ``alltoall``, ``alltoallv``, ``reduce``, ``allreduce``, ``scan``
* ``split`` / ``dup``

Collectives follow MPI semantics: every rank of the communicator must call
the same collective in the same order.  Payloads are arbitrary Python
objects (numpy arrays included); they are passed by reference, so the usual
MPI rule applies — do not mutate a buffer you have sent.

Virtual-time accounting: each collective synchronises the participating
ranks' :class:`~repro.mpi.clock.VirtualClock` objects to their maximum and
optionally charges a latency + volume cost from a
:class:`CommCostModel`, so the handshaking overhead of the paper's
negotiation strategies shows up in the measured virtual time.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .clock import VirtualClock
from .errors import CollectiveMismatchError, CommunicatorError, RankError, TagError
from .reduce_ops import ReduceOp, SUM
from .status import ANY_SOURCE, ANY_TAG, Request, Status

__all__ = ["CommCostModel", "Communicator"]


@dataclass(frozen=True)
class CommCostModel:
    """Virtual-time cost of communication operations.

    ``latency`` is charged once per operation, ``byte_cost`` per payload byte
    (only for payloads exposing ``nbytes`` or ``__len__``).  The default model
    is free communication, which is appropriate when only the I/O time is
    being studied; the benchmark harness uses a small non-zero model so the
    negotiation overhead of the handshaking strategies is represented.
    """

    latency: float = 0.0
    byte_cost: float = 0.0

    def cost(self, payload: Any = None) -> float:
        nbytes = 0
        if payload is not None:
            nbytes = getattr(payload, "nbytes", None)
            if nbytes is None:
                try:
                    nbytes = len(payload)
                except TypeError:
                    nbytes = 0
        return self.latency + self.byte_cost * float(nbytes)


class _Volume:
    """A payload stand-in carrying only a byte count for cost charging."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes


def _payload_nbytes(obj: Any) -> int:
    """Best-effort byte volume of a (possibly nested) payload."""
    if obj is None:
        return 0
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(value) for value in obj.values())
    return 0


class _Mailbox:
    """Unbounded per-rank message queue with tag/source matching."""

    def __init__(self) -> None:
        self._messages: deque = deque()
        self._cond = threading.Condition()

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._cond:
            self._messages.append((source, tag, payload))
            self._cond.notify_all()

    def get(self, source: int, tag: int, timeout: Optional[float] = None) -> Tuple[int, int, Any]:
        """Remove and return the first message matching ``source``/``tag``."""

        def find() -> Optional[Tuple[int, int, Any]]:
            for i, (src, t, payload) in enumerate(self._messages):
                if (source == ANY_SOURCE or src == source) and (
                    tag == ANY_TAG or t == tag
                ):
                    del self._messages[i]
                    return (src, t, payload)
            return None

        with self._cond:
            msg = find()
            while msg is None:
                if not self._cond.wait(timeout=timeout if timeout else 60.0):
                    if timeout is not None:
                        raise TimeoutError(
                            f"recv(source={source}, tag={tag}) timed out"
                        )
                msg = find()
            return msg


class _CommGroup:
    """State shared by all ranks of one communicator."""

    def __init__(self, size: int, clocks: Optional[List[VirtualClock]] = None,
                 cost_model: Optional[CommCostModel] = None) -> None:
        if size <= 0:
            raise CommunicatorError("communicator size must be positive")
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.slots: List[Any] = [None] * size
        self.op_tags: List[Any] = [None] * size
        self.error_slot: Optional[BaseException] = None
        self.clocks = clocks if clocks is not None else [VirtualClock() for _ in range(size)]
        self.cost_model = cost_model or CommCostModel()
        self.time_slots: List[float] = [0.0] * size


class Communicator:
    """One rank's view of a communicator (``MPI_Comm``)."""

    def __init__(self, group: _CommGroup, rank: int) -> None:
        if not 0 <= rank < group.size:
            raise RankError(f"rank {rank} outside communicator of size {group.size}")
        self._group = group
        self._rank = rank

    # -- introspection ---------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._group.size

    @property
    def clock(self) -> VirtualClock:
        """This rank's virtual clock."""
        return self._group.clocks[self._rank]

    def Get_rank(self) -> int:  # noqa: N802 - MPI spelling
        """MPI-style alias for :attr:`rank`."""
        return self._rank

    def Get_size(self) -> int:  # noqa: N802 - MPI spelling
        """MPI-style alias for :attr:`size`."""
        return self._group.size

    # -- point-to-point ----------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise RankError(f"rank {rank} outside communicator of size {self.size}")

    @staticmethod
    def _check_tag(tag: int) -> None:
        if tag < 0 and tag != ANY_TAG:
            raise TagError(f"invalid tag {tag}")

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Eager send of a Python object to ``dest``."""
        self._check_rank(dest)
        if tag < 0:
            raise TagError(f"invalid send tag {tag}")
        self.clock.advance(self._group.cost_model.cost(obj))
        self._group.mailboxes[dest].put(self._rank, tag, obj)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (completes immediately — sends are eager)."""
        req = Request()
        try:
            self.send(obj, dest, tag)
        except Exception as exc:  # pragma: no cover - defensive
            req._fail(exc)
        else:
            req._complete(None, Status(source=self._rank, tag=tag))
        return req

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Blocking receive; returns the received object."""
        if source != ANY_SOURCE:
            self._check_rank(source)
        self._check_tag(tag)
        src, t, payload = self._group.mailboxes[self._rank].get(source, tag, timeout)
        if status is not None:
            status.source = src
            status.tag = t
            status.count = getattr(payload, "nbytes", 0) or 0
        return payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive backed by a helper thread."""
        req = Request()

        def worker() -> None:
            try:
                status = Status()
                value = self.recv(source, tag, status=status)
            except Exception as exc:
                req._fail(exc)
            else:
                req._complete(value, status)

        threading.Thread(target=worker, daemon=True).start()
        return req

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Combined send and receive (deadlock-free: the send is eager)."""
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives ---------------------------------------------------------------

    def _collective_sync(self, op_name: str, payload: Any = None) -> None:
        """Verify all ranks run the same collective and synchronise clocks."""
        g = self._group
        g.op_tags[self._rank] = op_name
        g.time_slots[self._rank] = self.clock.now
        g.barrier.wait()
        if self._rank == 0:
            names = set(g.op_tags)
            if len(names) != 1:
                # Leave the flag for every rank to observe before resetting.
                g.error_slot = CollectiveMismatchError(
                    f"ranks disagree on collective: {sorted(map(str, names))}"
                )
            else:
                g.error_slot = None
        g.barrier.wait()
        err = g.error_slot
        latest = max(g.time_slots)
        self.clock.advance_to(latest, waiting=True)
        self.clock.advance(g.cost_model.cost(payload))
        g.barrier.wait()
        if isinstance(err, CollectiveMismatchError):
            raise err

    def barrier(self) -> None:
        """Block until every rank reaches the barrier; synchronises clocks."""
        self._collective_sync("barrier")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank."""
        self._check_rank(root)
        g = self._group
        if self._rank == root:
            g.slots[root] = obj
        self._collective_sync(f"bcast:{root}", obj if self._rank == root else None)
        value = g.slots[root]
        g.barrier.wait()
        return value

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank at ``root`` (others receive ``None``)."""
        self._check_rank(root)
        g = self._group
        g.slots[self._rank] = obj
        self._collective_sync(f"gather:{root}", obj)
        result = list(g.slots) if self._rank == root else None
        g.barrier.wait()
        return result

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one object per rank at every rank."""
        g = self._group
        g.slots[self._rank] = obj
        self._collective_sync("allgather", obj)
        result = list(g.slots)
        g.barrier.wait()
        return result

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter ``objs[i]`` from ``root`` to rank ``i``."""
        self._check_rank(root)
        g = self._group
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise CommunicatorError(
                    "scatter requires a sequence of exactly `size` items on the root"
                )
            g.slots[root] = list(objs)
        self._collective_sync(f"scatter:{root}", objs if self._rank == root else None)
        value = g.slots[root][self._rank]
        g.barrier.wait()
        return value

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Each rank sends ``objs[j]`` to rank ``j``; receives one item per rank."""
        if len(objs) != self.size:
            raise CommunicatorError("alltoall requires exactly `size` items")
        g = self._group
        g.slots[self._rank] = list(objs)
        self._collective_sync("alltoall", objs)
        result = [g.slots[src][self._rank] for src in range(self.size)]
        g.barrier.wait()
        return result

    def alltoallv(self, objs: Sequence[Any]) -> List[Any]:
        """Variable-volume all-to-all (``MPI_Alltoallv``-style exchange).

        Semantically identical to :meth:`alltoall` — rank *i*'s ``objs[j]``
        goes to rank *j* — but the virtual-time cost is charged on the
        *actual payload bytes* this rank sends (summed over destinations,
        recursing into lists/tuples/dicts of buffers), not on the outer item
        count.  Self-destined data (``objs[rank]``) is free: a real MPI
        implementation moves it with a local copy, never the network.  This
        is the exchange primitive of the two-phase aggregation shuffle,
        where per-destination volumes are highly non-uniform.
        """
        if len(objs) != self.size:
            raise CommunicatorError("alltoallv requires exactly `size` items")
        g = self._group
        g.slots[self._rank] = list(objs)
        network_bytes = sum(
            _payload_nbytes(obj) for dest, obj in enumerate(objs) if dest != self._rank
        )
        self._collective_sync("alltoallv", _Volume(network_bytes))
        result = [g.slots[src][self._rank] for src in range(self.size)]
        g.barrier.wait()
        return result

    def reduce(self, obj: Any, op: ReduceOp = SUM, root: int = 0) -> Optional[Any]:
        """Reduce one value per rank onto ``root`` using ``op``."""
        gathered = self.gather(obj, root=root)
        if self._rank != root:
            return None
        acc = gathered[0]
        for value in gathered[1:]:
            acc = op(acc, value)
        return acc

    def allreduce(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Reduce one value per rank and distribute the result to every rank."""
        gathered = self.allgather(obj)
        acc = gathered[0]
        for value in gathered[1:]:
            acc = op(acc, value)
        return acc

    def scan(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Inclusive prefix reduction over ranks ``0..self.rank``."""
        gathered = self.allgather(obj)
        acc = gathered[0]
        for value in gathered[1 : self._rank + 1]:
            acc = op(acc, value)
        return acc

    def exscan(self, obj: Any, op: ReduceOp = SUM) -> Optional[Any]:
        """Exclusive prefix reduction (``None`` on rank 0)."""
        gathered = self.allgather(obj)
        if self._rank == 0:
            return None
        acc = gathered[0]
        for value in gathered[1 : self._rank]:
            acc = op(acc, value)
        return acc

    # -- communicator management -----------------------------------------------------

    def split(self, color: int, key: Optional[int] = None) -> "Communicator":
        """Partition the communicator by ``color``; order new ranks by ``key``.

        Every rank must participate.  Ranks sharing a ``color`` end up in the
        same new communicator; ``key`` (default: old rank) orders them.
        """
        if key is None:
            key = self._rank
        info = self.allgather((int(color), int(key), self._rank))
        # Rank 0 creates one shared group per colour so all ranks agree on
        # the shared objects, then broadcasts the mapping.
        if self._rank == 0:
            groups: Dict[int, Tuple[_CommGroup, List[int]]] = {}
            for c in sorted({c for c, _, _ in info}):
                members = sorted(
                    [(k, r) for cc, k, r in info if cc == c]
                )
                ranks = [r for _, r in members]
                clocks = [self._group.clocks[r] for r in ranks]
                groups[c] = (
                    _CommGroup(len(ranks), clocks=clocks, cost_model=self._group.cost_model),
                    ranks,
                )
            mapping = groups
        else:
            mapping = None
        mapping = self.bcast(mapping, root=0)
        group, ranks = mapping[int(color)]
        return Communicator(group, ranks.index(self._rank))

    def dup(self) -> "Communicator":
        """A new communicator with the same membership (``MPI_Comm_dup``)."""
        return self.split(color=0, key=self._rank)
