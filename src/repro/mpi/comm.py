"""Communicators: point-to-point and collective operations.

The simulator executes every MPI rank as a cooperative task of one
discrete-event :class:`~repro.core.engine.Engine`
(:func:`repro.mpi.runtime.run_spmd`).  All ranks of a communicator share a
single :class:`_CommGroup` — mailboxes for point-to-point messages and a
rendezvous area for collectives — while each rank holds its own
:class:`Communicator` facade exposing the familiar API:

* ``send`` / ``recv`` / ``isend`` / ``irecv`` / ``sendrecv``
* ``barrier``, ``bcast``, ``gather``, ``scatter``, ``allgather``,
  ``alltoall``, ``alltoallv``, ``reduce``, ``allreduce``, ``scan``
* ``split`` / ``dup``

Collectives follow MPI semantics: every rank of the communicator must call
the same collective in the same order.  Payloads are arbitrary Python
objects (numpy arrays included); they are passed by reference, so the usual
MPI rule applies — do not mutate a buffer you have sent.

A collective is one *rendezvous*: arriving ranks deposit their contribution
and park on the scheduler; the last rank to arrive validates the operation,
computes the synchronised virtual time and wakes everyone.  No OS-level
barrier or condition variable is involved, so a collective over thousands
of ranks costs one scheduler handoff per rank.

Virtual-time accounting: each collective synchronises the participating
ranks' :class:`~repro.mpi.clock.VirtualClock` objects to their maximum and
optionally charges a latency + volume cost from a
:class:`CommCostModel`, so the handshaking overhead of the paper's
negotiation strategies shows up in the measured virtual time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.engine import Engine, Task, current_task
from .clock import VirtualClock
from .cost import CommCostModel, _Volume, payload_nbytes
from .errors import (
    CollectiveAbortedError,
    CollectiveMismatchError,
    CommunicatorError,
    RankError,
    TagError,
)
from .reduce_ops import ReduceOp, SUM
from .status import ANY_SOURCE, ANY_TAG, Request, Status

__all__ = ["CommCostModel", "Communicator"]


def _matches(src: int, tag: int, want_source: int, want_tag: int) -> bool:
    return (want_source == ANY_SOURCE or src == want_source) and (
        want_tag == ANY_TAG or tag == want_tag
    )


class _Mailbox:
    """Unbounded per-rank message queue with tag/source matching.

    Only the owning rank ever receives, so at most one task can be parked on
    a mailbox at a time.
    """

    __slots__ = ("_messages", "_waiter")

    def __init__(self) -> None:
        self._messages: deque = deque()
        self._waiter: Optional[Tuple[Task, int, int]] = None

    def _find(self, source: int, tag: int) -> Optional[Tuple[int, int, Any]]:
        for i, (src, t, payload) in enumerate(self._messages):
            if _matches(src, t, source, tag):
                del self._messages[i]
                return (src, t, payload)
        return None

    def put(self, source: int, tag: int, payload: Any) -> None:
        self._messages.append((source, tag, payload))
        if self._waiter is not None:
            task, want_source, want_tag = self._waiter
            if _matches(source, tag, want_source, want_tag) and task.state == Task.BLOCKED:
                self._waiter = None
                task.engine.wake(task)

    def get(self, task: Task, source: int, tag: int) -> Tuple[int, int, Any]:
        """Remove and return the first message matching ``source``/``tag``,
        parking ``task`` until one arrives."""
        while True:
            msg = self._find(source, tag)
            if msg is not None:
                return msg
            self._waiter = (task, source, tag)
            try:
                task.engine.wait(f"recv(source={source}, tag={tag})")
            except BaseException:
                if self._waiter is not None and self._waiter[0] is task:
                    self._waiter = None
                raise


class _Round:
    """One collective rendezvous: deposits, arrival times and waiters."""

    __slots__ = ("ops", "slots", "times", "waiting", "arrived", "latest", "error",
                 "shared")

    def __init__(self, size: int) -> None:
        self.ops: List[Any] = [None] * size
        self.slots: List[Any] = [None] * size
        self.times: List[float] = [0.0] * size
        self.waiting: List[Task] = []
        self.arrived = 0
        self.latest = 0.0
        self.error: Optional[BaseException] = None
        #: Lazily built result shared by all ranks of the round (the sparse
        #: all-to-all transpose); built once by the first rank to need it.
        self.shared: Optional[List[Any]] = None


class _CommGroup:
    """State shared by all ranks of one communicator."""

    def __init__(
        self,
        size: int,
        clocks: Optional[List[VirtualClock]] = None,
        cost_model: Optional[CommCostModel] = None,
        engine: Optional[Engine] = None,
    ) -> None:
        if size <= 0:
            raise CommunicatorError("communicator size must be positive")
        self.size = size
        self.engine = engine
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.clocks = clocks if clocks is not None else [VirtualClock() for _ in range(size)]
        self.cost_model = cost_model or CommCostModel()
        self._round: Optional[_Round] = None
        self.aborted: Optional[BaseException] = None
        #: Groups derived from this one (``split`` / ``dup_detached``); an
        #: abort cascades into them so ranks parked in a sub-communicator or
        #: detached-progress rendezvous with a dead rank are released too.
        self.children: List["_CommGroup"] = []

    def abort(self, exc: BaseException) -> None:
        """Abandon collective communication: release parked ranks and make
        every future collective on this group (and its derived groups) fail.

        The engine calls this (via the runtime's failure hook) when a rank
        dies, so peers blocked in a rendezvous with the dead rank are woken
        with a :class:`CollectiveAbortedError` instead of deadlocking — the
        event-driven equivalent of the old ``threading.Barrier.abort()``.
        """
        self.aborted = exc
        round_ = self._round
        self._round = None
        if round_ is not None:
            waiting, round_.waiting = round_.waiting, []
            for task in waiting:
                task.engine.throw(task, CollectiveAbortedError(str(exc)))
        for child in self.children:
            if child.aborted is None:
                child.abort(exc)


class Communicator:
    """One rank's view of a communicator (``MPI_Comm``)."""

    def __init__(self, group: _CommGroup, rank: int) -> None:
        if not 0 <= rank < group.size:
            raise RankError(f"rank {rank} outside communicator of size {group.size}")
        self._group = group
        self._rank = rank

    # -- introspection ---------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._group.size

    @property
    def clock(self) -> VirtualClock:
        """This rank's virtual clock."""
        return self._group.clocks[self._rank]

    def Get_rank(self) -> int:  # noqa: N802 - MPI spelling
        """MPI-style alias for :attr:`rank`."""
        return self._rank

    def Get_size(self) -> int:  # noqa: N802 - MPI spelling
        """MPI-style alias for :attr:`size`."""
        return self._group.size

    # -- plumbing ---------------------------------------------------------------

    def _require_task(self) -> Task:
        """The engine task this rank runs on (blocking ops need one)."""
        task = current_task()
        if task is None or self._group.engine is None or task.engine is not self._group.engine:
            raise CommunicatorError(
                "blocking communicator operations must run inside an engine "
                "task (start the program through run_spmd)"
            )
        return task

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise RankError(f"rank {rank} outside communicator of size {self.size}")

    @staticmethod
    def _check_tag(tag: int) -> None:
        if tag < 0 and tag != ANY_TAG:
            raise TagError(f"invalid tag {tag}")

    # -- point-to-point ----------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Eager send of a Python object to ``dest``."""
        self._check_rank(dest)
        if tag < 0:
            raise TagError(f"invalid send tag {tag}")
        self.clock.advance(self._group.cost_model.cost(obj))
        self._group.mailboxes[dest].put(self._rank, tag, obj)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (completes immediately — sends are eager)."""
        req = Request()
        try:
            self.send(obj, dest, tag)
        except Exception as exc:  # pragma: no cover - defensive
            req._fail(exc)
        else:
            req._complete(None, Status(source=self._rank, tag=tag))
        return req

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Blocking receive; returns the received object.

        ``timeout`` is accepted for API compatibility; a receive that can
        never be matched is detected (and reported per rank) by the
        scheduler's deadlock detection rather than a wall-clock timer.
        """
        if source != ANY_SOURCE:
            self._check_rank(source)
        self._check_tag(tag)
        task = self._require_task()
        src, t, payload = self._group.mailboxes[self._rank].get(task, source, tag)
        if status is not None:
            status.source = src
            status.tag = t
            status.count = getattr(payload, "nbytes", 0) or 0
        return payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; completes lazily on ``test``/``wait``."""
        req = Request()
        mailbox = self._group.mailboxes[self._rank]

        def poll() -> bool:
            msg = mailbox._find(source, tag)
            if msg is None:
                return False
            src, t, payload = msg
            req._complete(
                payload,
                Status(source=src, tag=t, count=getattr(payload, "nbytes", 0) or 0),
            )
            return True

        def finish() -> None:
            try:
                status = Status()
                value = self.recv(source, tag, status=status)
            except Exception as exc:
                req._fail(exc)
            else:
                req._complete(value, status)

        req._bind(poll, finish)
        return req

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Combined send and receive (deadlock-free: the send is eager)."""
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives ---------------------------------------------------------------

    def _collective(self, op_name: str, deposit: Any = None, payload: Any = None) -> _Round:
        """One rendezvous: deposit, park until all ranks arrive, settle clocks.

        Every rank of the group must call the same collective in the same
        order.  The last rank to arrive validates the operation tags,
        computes the synchronised time (the max of the arrival clocks) and
        wakes the others; each rank then advances its own clock to that time
        and charges the cost of its *own* payload, exactly as the threaded
        runner did.  Returns the completed round so the caller can read the
        deposited values.
        """
        task = self._require_task()
        g = self._group
        if g.aborted is not None:
            raise CollectiveAbortedError(str(g.aborted))
        round_ = g._round
        if round_ is None:
            round_ = g._round = _Round(g.size)
        round_.ops[self._rank] = op_name
        round_.slots[self._rank] = deposit
        round_.times[self._rank] = self.clock.now
        round_.arrived += 1
        if round_.arrived < g.size:
            round_.waiting.append(task)
            try:
                task.engine.wait(f"collective:{op_name}")
            except BaseException:
                if task in round_.waiting:
                    round_.waiting.remove(task)
                raise
        else:
            g._round = None
            names = set(round_.ops)
            if len(names) != 1:
                round_.error = CollectiveMismatchError(
                    f"ranks disagree on collective: {sorted(map(str, names))}"
                )
            round_.latest = max(round_.times)
            task.engine.wake_all(round_.waiting, at=round_.latest)
        self.clock.advance_to(round_.latest, waiting=True)
        self.clock.advance(g.cost_model.cost(payload))
        if round_.error is not None:
            raise round_.error
        return round_

    def barrier(self) -> None:
        """Block until every rank reaches the barrier; synchronises clocks."""
        self._collective("barrier")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank."""
        self._check_rank(root)
        is_root = self._rank == root
        round_ = self._collective(
            f"bcast:{root}",
            deposit=obj if is_root else None,
            payload=obj if is_root else None,
        )
        return round_.slots[root]

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank at ``root`` (others receive ``None``)."""
        self._check_rank(root)
        round_ = self._collective(f"gather:{root}", deposit=obj, payload=obj)
        return list(round_.slots) if self._rank == root else None

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one object per rank at every rank."""
        round_ = self._collective("allgather", deposit=obj, payload=obj)
        return list(round_.slots)

    def allgather_shared(self, obj: Any) -> List[Any]:
        """Gather one object per rank; every rank receives the *same* list.

        Identical semantics and virtual-time cost to :meth:`allgather`, but
        the returned list object is shared by all ranks instead of copied
        per rank — at tens of thousands of ranks the per-rank copies are
        ``O(P^2)`` references of pure overhead.  Callers must treat the
        result as read-only (the usual MPI don't-touch-the-buffer rule).
        """
        round_ = self._collective("allgather-shared", deposit=obj, payload=obj)
        return round_.slots

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter ``objs[i]`` from ``root`` to rank ``i``."""
        self._check_rank(root)
        is_root = self._rank == root
        if is_root and (objs is None or len(objs) != self.size):
            raise CommunicatorError(
                "scatter requires a sequence of exactly `size` items on the root"
            )
        round_ = self._collective(
            f"scatter:{root}",
            deposit=list(objs) if is_root else None,
            payload=objs if is_root else None,
        )
        return round_.slots[root][self._rank]

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Each rank sends ``objs[j]`` to rank ``j``; receives one item per rank."""
        if len(objs) != self.size:
            raise CommunicatorError("alltoall requires exactly `size` items")
        round_ = self._collective("alltoall", deposit=list(objs), payload=objs)
        return [round_.slots[src][self._rank] for src in range(self.size)]

    def alltoallv(self, objs: Sequence[Any]) -> List[Any]:
        """Variable-volume all-to-all (``MPI_Alltoallv``-style exchange).

        Semantically identical to :meth:`alltoall` — rank *i*'s ``objs[j]``
        goes to rank *j* — but the virtual-time cost is charged on the
        *actual payload bytes* this rank sends (summed over destinations,
        recursing into lists/tuples/dicts of buffers), not on the outer item
        count.  Self-destined data (``objs[rank]``) is free: a real MPI
        implementation moves it with a local copy, never the network.  This
        is the exchange primitive of the two-phase aggregation shuffle,
        where per-destination volumes are highly non-uniform.
        """
        if len(objs) != self.size:
            raise CommunicatorError("alltoallv requires exactly `size` items")
        network_bytes = sum(
            payload_nbytes(obj) for dest, obj in enumerate(objs) if dest != self._rank
        )
        round_ = self._collective(
            "alltoallv", deposit=list(objs), payload=_Volume(network_bytes)
        )
        return [round_.slots[src][self._rank] for src in range(self.size)]

    def alltoallv_sparse(self, items: Dict[int, Any]) -> List[Tuple[int, Any]]:
        """Sparse variable all-to-all: send only to the ranks you name.

        ``items`` maps destination rank to payload (at most one payload per
        destination).  Returns this rank's received ``(source, payload)``
        pairs in ascending source order.  Semantically an :meth:`alltoallv`
        whose unnamed destinations get nothing — but the deposits, the
        transpose and the results are all sized by the *actual* traffic, not
        by ``P`` per rank, which is what keeps the aggregation shuffle's
        bookkeeping sub-quadratic at tens of thousands of ranks (each rank
        talks to a handful of aggregators, not to everyone).  The virtual-
        time cost matches :meth:`alltoallv`: the payload bytes this rank
        sends to *other* ranks (self-delivery is a local copy, free).

        The received pairs are shared structure (built once per round);
        treat payloads as read-only.
        """
        for dest in items:
            self._check_rank(dest)
        network_bytes = sum(
            payload_nbytes(obj) for dest, obj in items.items() if dest != self._rank
        )
        round_ = self._collective(
            "alltoallv-sparse", deposit=items, payload=_Volume(network_bytes)
        )
        if round_.shared is None:
            # First rank back from the rendezvous builds the transpose for
            # everyone.  Ranks run one at a time, so this is race-free; the
            # ascending outer loop makes every per-destination list arrive
            # already sorted by source.
            received: List[List[Tuple[int, Any]]] = [[] for _ in range(self.size)]
            for src, sent in enumerate(round_.slots):
                for dest, payload in sent.items():
                    received[dest].append((src, payload))
            round_.shared = received
        return round_.shared[self._rank]

    def reduce(self, obj: Any, op: ReduceOp = SUM, root: int = 0) -> Optional[Any]:
        """Reduce one value per rank onto ``root`` using ``op``."""
        gathered = self.gather(obj, root=root)
        if self._rank != root:
            return None
        acc = gathered[0]
        for value in gathered[1:]:
            acc = op(acc, value)
        return acc

    def allreduce(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Reduce one value per rank and distribute the result to every rank."""
        gathered = self.allgather(obj)
        acc = gathered[0]
        for value in gathered[1:]:
            acc = op(acc, value)
        return acc

    def scan(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Inclusive prefix reduction over ranks ``0..self.rank``."""
        gathered = self.allgather(obj)
        acc = gathered[0]
        for value in gathered[1 : self._rank + 1]:
            acc = op(acc, value)
        return acc

    def exscan(self, obj: Any, op: ReduceOp = SUM) -> Optional[Any]:
        """Exclusive prefix reduction (``None`` on rank 0)."""
        gathered = self.allgather(obj)
        if self._rank == 0:
            return None
        acc = gathered[0]
        for value in gathered[1 : self._rank]:
            acc = op(acc, value)
        return acc

    # -- communicator management -----------------------------------------------------

    def split(self, color: int, key: Optional[int] = None) -> "Communicator":
        """Partition the communicator by ``color``; order new ranks by ``key``.

        Every rank must participate.  Ranks sharing a ``color`` end up in the
        same new communicator; ``key`` (default: old rank) orders them.
        """
        if key is None:
            key = self._rank
        info = self.allgather((int(color), int(key), self._rank))
        # Rank 0 creates one shared group per colour so all ranks agree on
        # the shared objects, then broadcasts the mapping.
        if self._rank == 0:
            groups: Dict[int, Tuple[_CommGroup, List[int]]] = {}
            for c in sorted({c for c, _, _ in info}):
                members = sorted(
                    [(k, r) for cc, k, r in info if cc == c]
                )
                ranks = [r for _, r in members]
                clocks = [self._group.clocks[r] for r in ranks]
                group = _CommGroup(
                    len(ranks),
                    clocks=clocks,
                    cost_model=self._group.cost_model,
                    engine=self._group.engine,
                )
                self._group.children.append(group)
                groups[c] = (group, ranks)
            mapping = groups
        else:
            mapping = None
        mapping = self.bcast(mapping, root=0)
        group, ranks = mapping[int(color)]
        return Communicator(group, ranks.index(self._rank))

    def dup(self) -> "Communicator":
        """A new communicator with the same membership (``MPI_Comm_dup``)."""
        return self.split(color=0, key=self._rank)

    def dup_detached(self) -> "Communicator":
        """A communicator over the same ranks with *independent* clocks.

        Collective over this communicator.  The duplicate's per-rank virtual
        clocks start at zero and are never synchronised with this
        communicator's clocks; they advance only through operations issued on
        the duplicate.  This is the substrate for detached progress tasks
        (nonblocking collective I/O): the progress task runs its collectives
        and file transfers on the duplicate's clock, so the issuing rank's
        own clock keeps advancing through overlapped computation, and the
        two timelines are joined explicitly when the request is waited on.
        """
        if self._rank == 0:
            group: Optional[_CommGroup] = _CommGroup(
                self.size,
                clocks=[VirtualClock() for _ in range(self.size)],
                cost_model=self._group.cost_model,
                engine=self._group.engine,
            )
            self._group.children.append(group)
        else:
            group = None
        group = self.bcast(group, root=0)
        return Communicator(group, self._rank)

    def release_detached(self, detached: "Communicator") -> None:
        """Forget a communicator created by :meth:`dup_detached`.

        Unlinks it from this group's abort cascade so long-running programs
        that open and close many files do not accumulate dead progress
        groups.  Safe to call from every rank (the first call unlinks, the
        rest are no-ops).
        """
        try:
            self._group.children.remove(detached._group)
        except ValueError:
            pass

    def abort(self, exc: BaseException) -> None:
        """Abandon collective communication on this communicator.

        Parked peers are released with a
        :class:`~repro.mpi.errors.CollectiveAbortedError` and every future
        collective fails; used by the nonblocking-I/O machinery when one
        rank's detached collective dies so its peers do not deadlock.
        """
        self._group.abort(exc)
