"""Communicators: point-to-point and collective operations.

The simulator executes every MPI rank as a cooperative task of one
discrete-event :class:`~repro.core.engine.Engine`
(:func:`repro.mpi.runtime.run_spmd`).  All ranks of a communicator share a
single :class:`_CommGroup` — mailboxes for point-to-point messages and a
rendezvous area for collectives — while each rank holds its own
:class:`Communicator` facade exposing the familiar API:

* ``send`` / ``recv`` / ``isend`` / ``irecv`` / ``sendrecv``
* ``barrier``, ``bcast``, ``gather``, ``scatter``, ``allgather``,
  ``alltoall``, ``alltoallv``, ``reduce``, ``allreduce``, ``scan``
* ``split`` / ``Comm_split`` / ``dup`` / ``Create_group``
* ``Create_intercomm``, building an :class:`Intercomm` that bridges two
  disjoint communicators for cross-group point-to-point and collectives
  (the coupled-application substrate of :mod:`repro.pipelines`)

Collectives follow MPI semantics: every rank of the communicator must call
the same collective in the same order.  Payloads are arbitrary Python
objects (numpy arrays included); they are passed by reference, so the usual
MPI rule applies — do not mutate a buffer you have sent.

A collective is one *rendezvous*: arriving ranks deposit their contribution
and park on the scheduler; the last rank to arrive validates the operation,
computes the synchronised virtual time and wakes everyone.  No OS-level
barrier or condition variable is involved, so a collective over thousands
of ranks costs one scheduler handoff per rank.

Virtual-time accounting: each collective synchronises the participating
ranks' :class:`~repro.mpi.clock.VirtualClock` objects to their maximum and
optionally charges a latency + volume cost from a
:class:`CommCostModel`, so the handshaking overhead of the paper's
negotiation strategies shows up in the measured virtual time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.engine import Engine, Task, current_task
from .clock import VirtualClock
from .cost import CommCostModel, _Volume, payload_nbytes
from .errors import (
    CollectiveAbortedError,
    CollectiveMismatchError,
    CommunicatorError,
    RankError,
    TagError,
)
from .reduce_ops import ReduceOp, SUM
from .status import ANY_SOURCE, ANY_TAG, Request, Status

__all__ = ["CommCostModel", "Communicator", "Group", "Intercomm", "ROOT", "PROC_NULL"]

#: Passed as ``root`` to an :class:`Intercomm` collective by the one process
#: *originating* the data (``MPI_ROOT``).
ROOT = -4
#: Passed as ``root`` by the origin group's non-root processes
#: (``MPI_PROC_NULL``): they participate in the rendezvous but neither
#: contribute nor receive.
PROC_NULL = -3

#: Marker wrapped around the ROOT deposit of an intercomm broadcast so the
#: rendezvous can locate (and validate) the single origin slot.
_IROOT = object()


def _matches(src: int, tag: int, want_source: int, want_tag: int) -> bool:
    return (want_source == ANY_SOURCE or src == want_source) and (
        want_tag == ANY_TAG or tag == want_tag
    )


class _Mailbox:
    """Unbounded per-rank message queue with tag/source matching.

    Only the owning rank ever receives, so at most one task can be parked on
    a mailbox at a time.
    """

    __slots__ = ("_messages", "_waiter")

    def __init__(self) -> None:
        self._messages: deque = deque()
        self._waiter: Optional[Tuple[Task, int, int]] = None

    def _find(self, source: int, tag: int) -> Optional[Tuple[int, int, Any]]:
        for i, (src, t, payload) in enumerate(self._messages):
            if _matches(src, t, source, tag):
                del self._messages[i]
                return (src, t, payload)
        return None

    def put(self, source: int, tag: int, payload: Any) -> None:
        self._messages.append((source, tag, payload))
        if self._waiter is not None:
            task, want_source, want_tag = self._waiter
            if _matches(source, tag, want_source, want_tag) and task.state == Task.BLOCKED:
                self._waiter = None
                task.engine.wake(task)

    def get(self, task: Task, source: int, tag: int) -> Tuple[int, int, Any]:
        """Remove and return the first message matching ``source``/``tag``,
        parking ``task`` until one arrives."""
        while True:
            msg = self._find(source, tag)
            if msg is not None:
                return msg
            self._waiter = (task, source, tag)
            try:
                task.engine.wait(f"recv(source={source}, tag={tag})")
            except BaseException:
                if self._waiter is not None and self._waiter[0] is task:
                    self._waiter = None
                raise


class _Round:
    """One collective rendezvous: deposits, arrival times and waiters."""

    __slots__ = ("ops", "slots", "times", "waiting", "arrived", "latest", "error",
                 "shared")

    def __init__(self, size: int) -> None:
        self.ops: List[Any] = [None] * size
        self.slots: List[Any] = [None] * size
        self.times: List[float] = [0.0] * size
        self.waiting: List[Task] = []
        self.arrived = 0
        self.latest = 0.0
        self.error: Optional[BaseException] = None
        #: Lazily built result shared by all ranks of the round (the sparse
        #: all-to-all transpose); built once by the first rank to need it.
        self.shared: Optional[List[Any]] = None


class _CommGroup:
    """State shared by all ranks of one communicator."""

    def __init__(
        self,
        size: int,
        clocks: Optional[List[VirtualClock]] = None,
        cost_model: Optional[CommCostModel] = None,
        engine: Optional[Engine] = None,
    ) -> None:
        if size <= 0:
            raise CommunicatorError("communicator size must be positive")
        self.size = size
        self.engine = engine
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.clocks = clocks if clocks is not None else [VirtualClock() for _ in range(size)]
        self.cost_model = cost_model or CommCostModel()
        self._round: Optional[_Round] = None
        self.aborted: Optional[BaseException] = None
        #: Groups derived from this one (``split`` / ``dup_detached``); an
        #: abort cascades into them so ranks parked in a sub-communicator or
        #: detached-progress rendezvous with a dead rank are released too.
        self.children: List["_CommGroup"] = []

    def abort(self, exc: BaseException) -> None:
        """Abandon collective communication: release parked ranks and make
        every future collective on this group (and its derived groups) fail.

        The engine calls this (via the runtime's failure hook) when a rank
        dies, so peers blocked in a rendezvous with the dead rank are woken
        with a :class:`CollectiveAbortedError` instead of deadlocking — the
        event-driven equivalent of the old ``threading.Barrier.abort()``.
        """
        self.aborted = exc
        round_ = self._round
        self._round = None
        if round_ is not None:
            waiting, round_.waiting = round_.waiting, []
            for task in waiting:
                task.engine.throw(task, CollectiveAbortedError(str(exc)))
        for child in self.children:
            if child.aborted is None:
                child.abort(exc)


class Group:
    """An ordered set of ranks of a parent communicator (``MPI_Group``).

    A group is pure bookkeeping — no mailboxes, no clocks: position *i* of
    the tuple is group rank *i*, the value is the parent-communicator rank it
    maps to.  Groups are built from :meth:`Communicator.Get_group` and
    combined with :meth:`Incl` / :meth:`Excl`; a communicator over the
    member processes comes from :meth:`Communicator.Create_group`.
    """

    __slots__ = ("_ranks",)

    def __init__(self, ranks: Sequence[int]) -> None:
        ranks = tuple(int(r) for r in ranks)
        if len(set(ranks)) != len(ranks):
            raise CommunicatorError(f"duplicate ranks in group: {list(ranks)}")
        self._ranks = ranks

    @property
    def size(self) -> int:
        """Number of member processes."""
        return len(self._ranks)

    @property
    def ranks(self) -> Tuple[int, ...]:
        """The members' parent-communicator ranks, in group-rank order."""
        return self._ranks

    def __len__(self) -> int:
        return len(self._ranks)

    def __contains__(self, parent_rank: int) -> bool:
        return int(parent_rank) in self._ranks

    def translate(self, group_rank: int) -> int:
        """The parent-communicator rank of group rank ``group_rank``."""
        if not 0 <= group_rank < len(self._ranks):
            raise RankError(f"group rank {group_rank} outside group of size {len(self._ranks)}")
        return self._ranks[group_rank]

    def rank_of(self, parent_rank: int) -> Optional[int]:
        """The group rank of ``parent_rank``; ``None`` for non-members."""
        try:
            return self._ranks.index(int(parent_rank))
        except ValueError:
            return None

    def Incl(self, group_ranks: Sequence[int]) -> "Group":  # noqa: N802 - MPI spelling
        """The subgroup of the named group ranks, in the order given."""
        return Group(self.translate(r) for r in group_ranks)

    def Excl(self, group_ranks: Sequence[int]) -> "Group":  # noqa: N802 - MPI spelling
        """The subgroup without the named group ranks (original order kept)."""
        drop = {int(r) for r in group_ranks}
        for r in drop:
            self.translate(r)  # validate range
        return Group(
            parent for i, parent in enumerate(self._ranks) if i not in drop
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group({list(self._ranks)!r})"


class Communicator:
    """One rank's view of a communicator (``MPI_Comm``)."""

    def __init__(self, group: _CommGroup, rank: int) -> None:
        if not 0 <= rank < group.size:
            raise RankError(f"rank {rank} outside communicator of size {group.size}")
        self._group = group
        self._rank = rank

    # -- introspection ---------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._group.size

    @property
    def clock(self) -> VirtualClock:
        """This rank's virtual clock."""
        return self._group.clocks[self._rank]

    def Get_rank(self) -> int:  # noqa: N802 - MPI spelling
        """MPI-style alias for :attr:`rank`."""
        return self._rank

    def Get_size(self) -> int:  # noqa: N802 - MPI spelling
        """MPI-style alias for :attr:`size`."""
        return self._group.size

    # -- plumbing ---------------------------------------------------------------

    def _require_task(self) -> Task:
        """The engine task this rank runs on (blocking ops need one)."""
        task = current_task()
        if task is None or self._group.engine is None or task.engine is not self._group.engine:
            raise CommunicatorError(
                "blocking communicator operations must run inside an engine "
                "task (start the program through run_spmd)"
            )
        return task

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise RankError(f"rank {rank} outside communicator of size {self.size}")

    @staticmethod
    def _check_tag(tag: int) -> None:
        if tag < 0 and tag != ANY_TAG:
            raise TagError(f"invalid tag {tag}")

    # -- point-to-point ----------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Eager send of a Python object to ``dest``."""
        self._check_rank(dest)
        if tag < 0:
            raise TagError(f"invalid send tag {tag}")
        self.clock.advance(self._group.cost_model.cost(obj))
        self._group.mailboxes[dest].put(self._rank, tag, obj)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (completes immediately — sends are eager)."""
        req = Request()
        try:
            self.send(obj, dest, tag)
        except Exception as exc:  # pragma: no cover - defensive
            req._fail(exc)
        else:
            req._complete(None, Status(source=self._rank, tag=tag))
        return req

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Blocking receive; returns the received object.

        ``timeout`` is accepted for API compatibility; a receive that can
        never be matched is detected (and reported per rank) by the
        scheduler's deadlock detection rather than a wall-clock timer.
        """
        if source != ANY_SOURCE:
            self._check_rank(source)
        self._check_tag(tag)
        task = self._require_task()
        src, t, payload = self._group.mailboxes[self._rank].get(task, source, tag)
        if status is not None:
            status.source = src
            status.tag = t
            status.count = getattr(payload, "nbytes", 0) or 0
        return payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; completes lazily on ``test``/``wait``."""
        req = Request()
        mailbox = self._group.mailboxes[self._rank]

        def poll() -> bool:
            msg = mailbox._find(source, tag)
            if msg is None:
                return False
            src, t, payload = msg
            req._complete(
                payload,
                Status(source=src, tag=t, count=getattr(payload, "nbytes", 0) or 0),
            )
            return True

        def finish() -> None:
            try:
                status = Status()
                value = self.recv(source, tag, status=status)
            except Exception as exc:
                req._fail(exc)
            else:
                req._complete(value, status)

        req._bind(poll, finish)
        return req

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Combined send and receive (deadlock-free: the send is eager)."""
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives ---------------------------------------------------------------

    def _collective(self, op_name: str, deposit: Any = None, payload: Any = None) -> _Round:
        """One rendezvous: deposit, park until all ranks arrive, settle clocks.

        Every rank of the group must call the same collective in the same
        order.  The last rank to arrive validates the operation tags,
        computes the synchronised time (the max of the arrival clocks) and
        wakes the others; each rank then advances its own clock to that time
        and charges the cost of its *own* payload, exactly as the threaded
        runner did.  Returns the completed round so the caller can read the
        deposited values.
        """
        task = self._require_task()
        g = self._group
        if g.aborted is not None:
            raise CollectiveAbortedError(str(g.aborted))
        round_ = g._round
        if round_ is None:
            round_ = g._round = _Round(g.size)
        round_.ops[self._rank] = op_name
        round_.slots[self._rank] = deposit
        round_.times[self._rank] = self.clock.now
        round_.arrived += 1
        if round_.arrived < g.size:
            round_.waiting.append(task)
            try:
                task.engine.wait(f"collective:{op_name}")
            except BaseException:
                if task in round_.waiting:
                    round_.waiting.remove(task)
                raise
        else:
            g._round = None
            names = set(round_.ops)
            if len(names) != 1:
                round_.error = CollectiveMismatchError(
                    f"ranks disagree on collective: {sorted(map(str, names))}"
                )
            round_.latest = max(round_.times)
            task.engine.wake_all(round_.waiting, at=round_.latest)
        self.clock.advance_to(round_.latest, waiting=True)
        self.clock.advance(g.cost_model.cost(payload))
        if round_.error is not None:
            raise round_.error
        return round_

    def barrier(self) -> None:
        """Block until every rank reaches the barrier; synchronises clocks."""
        self._collective("barrier")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank."""
        self._check_rank(root)
        is_root = self._rank == root
        round_ = self._collective(
            f"bcast:{root}",
            deposit=obj if is_root else None,
            payload=obj if is_root else None,
        )
        return round_.slots[root]

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank at ``root`` (others receive ``None``)."""
        self._check_rank(root)
        round_ = self._collective(f"gather:{root}", deposit=obj, payload=obj)
        return list(round_.slots) if self._rank == root else None

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one object per rank at every rank."""
        round_ = self._collective("allgather", deposit=obj, payload=obj)
        return list(round_.slots)

    def allgather_shared(self, obj: Any) -> List[Any]:
        """Gather one object per rank; every rank receives the *same* list.

        Identical semantics and virtual-time cost to :meth:`allgather`, but
        the returned list object is shared by all ranks instead of copied
        per rank — at tens of thousands of ranks the per-rank copies are
        ``O(P^2)`` references of pure overhead.  Callers must treat the
        result as read-only (the usual MPI don't-touch-the-buffer rule).
        """
        round_ = self._collective("allgather-shared", deposit=obj, payload=obj)
        return round_.slots

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter ``objs[i]`` from ``root`` to rank ``i``."""
        self._check_rank(root)
        is_root = self._rank == root
        if is_root and (objs is None or len(objs) != self.size):
            raise CommunicatorError(
                "scatter requires a sequence of exactly `size` items on the root"
            )
        round_ = self._collective(
            f"scatter:{root}",
            deposit=list(objs) if is_root else None,
            payload=objs if is_root else None,
        )
        return round_.slots[root][self._rank]

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Each rank sends ``objs[j]`` to rank ``j``; receives one item per rank."""
        if len(objs) != self.size:
            raise CommunicatorError("alltoall requires exactly `size` items")
        round_ = self._collective("alltoall", deposit=list(objs), payload=objs)
        return [round_.slots[src][self._rank] for src in range(self.size)]

    def alltoallv(self, objs: Sequence[Any]) -> List[Any]:
        """Variable-volume all-to-all (``MPI_Alltoallv``-style exchange).

        Semantically identical to :meth:`alltoall` — rank *i*'s ``objs[j]``
        goes to rank *j* — but the virtual-time cost is charged on the
        *actual payload bytes* this rank sends (summed over destinations,
        recursing into lists/tuples/dicts of buffers), not on the outer item
        count.  Self-destined data (``objs[rank]``) is free: a real MPI
        implementation moves it with a local copy, never the network.  This
        is the exchange primitive of the two-phase aggregation shuffle,
        where per-destination volumes are highly non-uniform.
        """
        if len(objs) != self.size:
            raise CommunicatorError("alltoallv requires exactly `size` items")
        network_bytes = sum(
            payload_nbytes(obj) for dest, obj in enumerate(objs) if dest != self._rank
        )
        round_ = self._collective(
            "alltoallv", deposit=list(objs), payload=_Volume(network_bytes)
        )
        return [round_.slots[src][self._rank] for src in range(self.size)]

    def alltoallv_sparse(self, items: Dict[int, Any]) -> List[Tuple[int, Any]]:
        """Sparse variable all-to-all: send only to the ranks you name.

        ``items`` maps destination rank to payload (at most one payload per
        destination).  Returns this rank's received ``(source, payload)``
        pairs in ascending source order.  Semantically an :meth:`alltoallv`
        whose unnamed destinations get nothing — but the deposits, the
        transpose and the results are all sized by the *actual* traffic, not
        by ``P`` per rank, which is what keeps the aggregation shuffle's
        bookkeeping sub-quadratic at tens of thousands of ranks (each rank
        talks to a handful of aggregators, not to everyone).  The virtual-
        time cost matches :meth:`alltoallv`: the payload bytes this rank
        sends to *other* ranks (self-delivery is a local copy, free).

        The received pairs are shared structure (built once per round);
        treat payloads as read-only.
        """
        for dest in items:
            self._check_rank(dest)
        network_bytes = sum(
            payload_nbytes(obj) for dest, obj in items.items() if dest != self._rank
        )
        round_ = self._collective(
            "alltoallv-sparse", deposit=items, payload=_Volume(network_bytes)
        )
        if round_.shared is None:
            # First rank back from the rendezvous builds the transpose for
            # everyone.  Ranks run one at a time, so this is race-free; the
            # ascending outer loop makes every per-destination list arrive
            # already sorted by source.
            received: List[List[Tuple[int, Any]]] = [[] for _ in range(self.size)]
            for src, sent in enumerate(round_.slots):
                for dest, payload in sent.items():
                    received[dest].append((src, payload))
            round_.shared = received
        return round_.shared[self._rank]

    def reduce(self, obj: Any, op: ReduceOp = SUM, root: int = 0) -> Optional[Any]:
        """Reduce one value per rank onto ``root`` using ``op``."""
        gathered = self.gather(obj, root=root)
        if self._rank != root:
            return None
        acc = gathered[0]
        for value in gathered[1:]:
            acc = op(acc, value)
        return acc

    def allreduce(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Reduce one value per rank and distribute the result to every rank."""
        gathered = self.allgather(obj)
        acc = gathered[0]
        for value in gathered[1:]:
            acc = op(acc, value)
        return acc

    def scan(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Inclusive prefix reduction over ranks ``0..self.rank``."""
        gathered = self.allgather(obj)
        acc = gathered[0]
        for value in gathered[1 : self._rank + 1]:
            acc = op(acc, value)
        return acc

    def exscan(self, obj: Any, op: ReduceOp = SUM) -> Optional[Any]:
        """Exclusive prefix reduction (``None`` on rank 0)."""
        gathered = self.allgather(obj)
        if self._rank == 0:
            return None
        acc = gathered[0]
        for value in gathered[1 : self._rank]:
            acc = op(acc, value)
        return acc

    # -- communicator management -----------------------------------------------------

    def split(self, color: Optional[int], key: Optional[int] = None) -> Optional["Communicator"]:
        """Partition the communicator by ``color``; order new ranks by ``key``.

        Every rank must participate.  Ranks sharing a ``color`` end up in the
        same new communicator; ``key`` (default: old rank) orders them.  A
        rank passing ``color=None`` (``MPI_UNDEFINED``) joins no new
        communicator and receives ``None``.
        """
        if key is None:
            key = self._rank
        mine = None if color is None else int(color)
        info = self.allgather((mine, int(key), self._rank))
        # Rank 0 creates one shared group per colour so all ranks agree on
        # the shared objects, then broadcasts the mapping.
        if self._rank == 0:
            groups: Dict[int, Tuple[_CommGroup, List[int]]] = {}
            for c in sorted({c for c, _, _ in info if c is not None}):
                members = sorted(
                    [(k, r) for cc, k, r in info if cc == c]
                )
                ranks = [r for _, r in members]
                clocks = [self._group.clocks[r] for r in ranks]
                group = _CommGroup(
                    len(ranks),
                    clocks=clocks,
                    cost_model=self._group.cost_model,
                    engine=self._group.engine,
                )
                self._group.children.append(group)
                groups[c] = (group, ranks)
            mapping = groups
        else:
            mapping = None
        mapping = self.bcast(mapping, root=0)
        if mine is None:
            return None
        group, ranks = mapping[mine]
        return Communicator(group, ranks.index(self._rank))

    def Comm_split(  # noqa: N802 - MPI spelling
        self, color: Optional[int], key: Optional[int] = None
    ) -> Optional["Communicator"]:
        """MPI-style alias for :meth:`split` (``MPI_Comm_split``)."""
        return self.split(color, key)

    def dup(self) -> "Communicator":
        """A new communicator with the same membership (``MPI_Comm_dup``)."""
        return self.split(color=0, key=self._rank)

    def Get_group(self) -> Group:  # noqa: N802 - MPI spelling
        """This communicator's group (``MPI_Comm_group``)."""
        return Group(range(self.size))

    def Create_group(self, group: Group) -> Optional["Communicator"]:  # noqa: N802 - MPI spelling
        """A new communicator over the members of ``group``.

        Collective over this communicator (every rank must call, with an
        equal group); non-members receive ``None``, as ``MPI_Comm_create``
        returns ``MPI_COMM_NULL``.  New ranks follow the group order.
        """
        for parent in group.ranks:
            self._check_rank(parent)
        position = group.rank_of(self._rank)
        if position is None:
            return self.split(color=None)
        return self.split(color=0, key=position)

    def dup_detached(self) -> "Communicator":
        """A communicator over the same ranks with *independent* clocks.

        Collective over this communicator.  The duplicate's per-rank virtual
        clocks start at zero and are never synchronised with this
        communicator's clocks; they advance only through operations issued on
        the duplicate.  This is the substrate for detached progress tasks
        (nonblocking collective I/O): the progress task runs its collectives
        and file transfers on the duplicate's clock, so the issuing rank's
        own clock keeps advancing through overlapped computation, and the
        two timelines are joined explicitly when the request is waited on.
        """
        if self._rank == 0:
            group: Optional[_CommGroup] = _CommGroup(
                self.size,
                clocks=[VirtualClock() for _ in range(self.size)],
                cost_model=self._group.cost_model,
                engine=self._group.engine,
            )
            self._group.children.append(group)
        else:
            group = None
        group = self.bcast(group, root=0)
        return Communicator(group, self._rank)

    def release_detached(self, detached: "Communicator") -> None:
        """Forget a communicator created by :meth:`dup_detached`.

        Unlinks it from this group's abort cascade so long-running programs
        that open and close many files do not accumulate dead progress
        groups.  Safe to call from every rank (the first call unlinks, the
        rest are no-ops).
        """
        try:
            self._group.children.remove(detached._group)
        except ValueError:
            pass

    def Create_intercomm(  # noqa: N802 - MPI spelling
        self,
        local_leader: int,
        peer_comm: Optional["Communicator"],
        remote_leader: int,
        tag: int = 0,
    ) -> "Intercomm":
        """Bridge this communicator's group with a remote group
        (``MPI_Intercomm_create``).

        Collective over this (local) communicator.  The two local groups must
        be *disjoint* sets of processes; ``peer_comm`` is a communicator
        containing both group leaders (typically the world communicator the
        groups were split from) and is used only by the leaders, over ``tag``.

        The bridge is one shared rendezvous group spanning both sides, with
        **fresh mailboxes**: cross-bridge point-to-point traffic is matched
        only against cross-bridge traffic, so a tag in flight on the parent
        (or any intra-) communicator can never cross-match a message sent
        over the bridge.  Clocks are shared by reference with the local
        communicators, so intercomm collectives synchronise the two sides'
        real timelines.
        """
        self._check_rank(local_leader)
        if tag < 0:
            raise TagError(f"invalid intercomm tag {tag}")
        g = self._group
        if self._rank == local_leader:
            if peer_comm is None:
                raise CommunicatorError(
                    "the local leader must supply the peer communicator"
                )
            my_peer = peer_comm.rank
            peer_comm._check_rank(remote_leader)
            if remote_leader == my_peer:
                raise CommunicatorError(
                    "local and remote leaders must be distinct processes"
                )
            peer_comm.send((my_peer, g), remote_leader, tag)
            other_peer, other_group = peer_comm.recv(source=remote_leader, tag=tag)
            # The leader with the lower peer rank builds the shared bridge
            # group (its side occupies union slots [0, size)) and ships it to
            # the other leader; both register it for the abort cascade.
            if my_peer < other_peer:
                union = _CommGroup(
                    g.size + other_group.size,
                    clocks=list(g.clocks) + list(other_group.clocks),
                    cost_model=g.cost_model,
                    engine=g.engine,
                )
                peer_comm.send(union, remote_leader, tag)
                local_offset = 0
            else:
                union = peer_comm.recv(source=remote_leader, tag=tag)
                local_offset = union.size - g.size
            g.children.append(union)
            payload: Optional[Tuple[_CommGroup, int, int]] = (
                union, local_offset, union.size - g.size
            )
        else:
            payload = None
        union, local_offset, remote_size = self.bcast(payload, root=local_leader)
        return Intercomm(union, local_offset, remote_size, self)

    def abort(self, exc: BaseException) -> None:
        """Abandon collective communication on this communicator.

        Parked peers are released with a
        :class:`~repro.mpi.errors.CollectiveAbortedError` and every future
        collective fails; used by the nonblocking-I/O machinery when one
        rank's detached collective dies so its peers do not deadlock.
        """
        self._group.abort(exc)


class Intercomm:
    """One rank's view of an inter-communicator (``MPI_Comm``, inter).

    An intercomm connects two disjoint groups (*local* and *remote*): ranks
    are always named in the **remote** group's namespace for point-to-point
    (``send(dest=2)`` reaches remote rank 2) and every collective follows the
    MPI inter-communicator semantics — ``allgather`` returns the remote
    group's contributions, ``bcast`` moves data from one group's
    :data:`ROOT` process to every rank of the other group.

    Implementation: both sides share one rendezvous :class:`_CommGroup`
    (side A in slots ``[0, nA)``, side B in ``[nA, nA+nB)``) whose per-rank
    clocks are the ranks' real clocks, shared by reference.  Its mailboxes
    belong exclusively to the bridge, which is what namespaces message tags
    per bridge (see :meth:`Communicator.Create_intercomm`).
    """

    def __init__(
        self,
        union: _CommGroup,
        local_offset: int,
        remote_size: int,
        local_comm: Communicator,
    ) -> None:
        self._union = union
        self._local_comm = local_comm
        self._local_size = local_comm.size
        self._local_offset = local_offset
        self._remote_size = remote_size
        self._remote_offset = self._local_size if local_offset == 0 else 0
        self._rank = local_comm.rank
        self._urank = local_offset + self._rank
        #: Internal facade over the union group; reuses the rendezvous
        #: machinery (and its abort handling) for the bridge collectives.
        self._inner = Communicator(union, self._urank)

    # -- introspection ---------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within its *local* group."""
        return self._rank

    @property
    def size(self) -> int:
        """Size of the local group."""
        return self._local_size

    @property
    def remote_size(self) -> int:
        """Size of the remote group."""
        return self._remote_size

    @property
    def clock(self) -> VirtualClock:
        """This rank's virtual clock (shared with its intra-communicators)."""
        return self._union.clocks[self._urank]

    def Get_rank(self) -> int:  # noqa: N802 - MPI spelling
        """MPI-style alias for :attr:`rank`."""
        return self._rank

    def Get_size(self) -> int:  # noqa: N802 - MPI spelling
        """MPI-style alias for :attr:`size`."""
        return self._local_size

    def Get_remote_size(self) -> int:  # noqa: N802 - MPI spelling
        """MPI-style alias for :attr:`remote_size`."""
        return self._remote_size

    def Get_group(self) -> Group:  # noqa: N802 - MPI spelling
        """The local group (ranks in local-group order)."""
        return Group(range(self._local_size))

    def Get_remote_group(self) -> Group:  # noqa: N802 - MPI spelling
        """The remote group (ranks in remote-group order)."""
        return Group(range(self._remote_size))

    # -- point-to-point across the bridge --------------------------------------

    def _check_remote_rank(self, rank: int) -> None:
        if not 0 <= rank < self._remote_size:
            raise RankError(
                f"rank {rank} outside remote group of size {self._remote_size}"
            )

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Eager send to rank ``dest`` of the *remote* group.

        Bridge messages are *causal* in virtual time: the payload carries
        the sender's post-charge clock and the receiver's clock is advanced
        to it on delivery, so a handoff between coupled applications can
        never be observed before it was issued.  (Intra-communicator
        point-to-point keeps its looser, rendezvous-free accounting.)
        """
        self._check_remote_rank(dest)
        if tag < 0:
            raise TagError(f"invalid send tag {tag}")
        sent_at = self.clock.advance(self._union.cost_model.cost(obj))
        # Sources are recorded in the sender's local-group namespace, which
        # is unambiguous: a bridge mailbox only ever receives cross-bridge
        # traffic, so "source r" always means remote rank r to the receiver.
        self._union.mailboxes[self._remote_offset + dest].put(
            self._rank, tag, (sent_at, obj)
        )

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (completes immediately — sends are eager)."""
        req = Request()
        try:
            self.send(obj, dest, tag)
        except Exception as exc:  # pragma: no cover - defensive
            req._fail(exc)
        else:
            req._complete(None, Status(source=self._rank, tag=tag))
        return req

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Blocking receive of a message from the remote group."""
        if source != ANY_SOURCE:
            self._check_remote_rank(source)
        Communicator._check_tag(tag)
        task = self._inner._require_task()
        src, t, wrapped = self._union.mailboxes[self._urank].get(task, source, tag)
        sent_at, payload = wrapped
        self.clock.advance_to(sent_at, waiting=True)
        if status is not None:
            status.source = src
            status.tag = t
            status.count = getattr(payload, "nbytes", 0) or 0
        return payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; completes lazily on ``test``/``wait``."""
        req = Request()
        mailbox = self._union.mailboxes[self._urank]

        def poll() -> bool:
            msg = mailbox._find(source, tag)
            if msg is None:
                return False
            src, t, (sent_at, payload) = msg
            self.clock.advance_to(sent_at, waiting=True)
            req._complete(
                payload,
                Status(source=src, tag=t, count=getattr(payload, "nbytes", 0) or 0),
            )
            return True

        def finish() -> None:
            try:
                status = Status()
                value = self.recv(source, tag, status=status)
            except Exception as exc:
                req._fail(exc)
            else:
                req._complete(value, status)

        req._bind(poll, finish)
        return req

    # -- collectives across the bridge -----------------------------------------

    def barrier(self) -> None:
        """Block until every rank of *both* groups arrives; syncs clocks."""
        self._inner._collective("icomm-barrier")

    def bcast(self, obj: Any, root: int) -> Any:
        """Broadcast from one group's root to every rank of the other group.

        MPI inter-communicator semantics: in the origin group, the root
        passes ``root=ROOT`` (and its ``obj``), its peers pass
        ``root=PROC_NULL``; every rank of the receiving group names the
        origin's rank *in its remote group*.  Returns the broadcast object
        (the origin's own ``obj`` on the root, ``None`` on PROC_NULL ranks).
        """
        if root == ROOT:
            deposit: Any = (_IROOT, obj)
            payload = obj
        else:
            if root != PROC_NULL:
                self._check_remote_rank(root)
            deposit = None
            payload = None
        round_ = self._inner._collective("icomm-bcast", deposit=deposit, payload=payload)
        marked = [
            i
            for i, slot in enumerate(round_.slots)
            if type(slot) is tuple and len(slot) == 2 and slot[0] is _IROOT
        ]
        if len(marked) != 1:
            raise CollectiveMismatchError(
                f"intercomm bcast requires exactly one ROOT process, "
                f"found {len(marked)}"
            )
        origin = marked[0]
        if root == ROOT:
            return obj
        if root == PROC_NULL:
            return None
        if origin != self._remote_offset + root:
            raise CollectiveMismatchError(
                f"intercomm bcast roots disagree: this rank named remote "
                f"rank {root}, but the ROOT process sits at remote rank "
                f"{origin - self._remote_offset}"
            )
        return round_.slots[origin][1]

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one object per rank, delivered **from the remote group**.

        MPI inter-communicator semantics: every rank contributes, and each
        rank receives the remote group's contributions in remote-rank order.
        """
        round_ = self._inner._collective("icomm-allgather", deposit=obj, payload=obj)
        lo = self._remote_offset
        return list(round_.slots[lo : lo + self._remote_size])

    def Merge(self, high: bool = False) -> Communicator:  # noqa: N802 - MPI spelling
        """Merge both groups into one intra-communicator
        (``MPI_Intercomm_merge``).

        Ranks passing ``high=False`` come first in the merged rank order
        (ties broken by bridge slot, i.e. the intercomm-construction side
        order); within a group the local order is kept.  The merged
        communicator gets **fresh mailboxes** — its point-to-point namespace
        is as isolated from the bridge's as the bridge's is from the
        parents'.
        """
        round_ = self._inner._collective(
            "icomm-merge", deposit=(bool(high), self._urank)
        )
        if round_.shared is None:
            # First rank back from the rendezvous builds the merged group
            # for everyone (ranks run one at a time, so this is race-free).
            order = sorted(
                range(self._union.size), key=lambda u: (round_.slots[u][0], u)
            )
            group = _CommGroup(
                self._union.size,
                clocks=[self._union.clocks[u] for u in order],
                cost_model=self._union.cost_model,
                engine=self._union.engine,
            )
            self._union.children.append(group)
            round_.shared = [group, {u: r for r, u in enumerate(order)}]
        group, new_ranks = round_.shared
        return Communicator(group, new_ranks[self._urank])

    def abort(self, exc: BaseException) -> None:
        """Abandon collective communication on the bridge (see
        :meth:`Communicator.abort`)."""
        self._union.abort(exc)
