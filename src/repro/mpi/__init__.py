"""Thread-based SPMD MPI runtime simulator.

Provides communicators (point-to-point + collectives), non-blocking
requests, reduction operators, per-rank virtual clocks and the
:func:`~repro.mpi.runtime.run_spmd` execution harness.
"""

from .clock import VirtualClock, synchronize_clocks
from .comm import CommCostModel, Communicator
from .errors import (
    CollectiveMismatchError,
    CommunicatorError,
    MPIError,
    RankError,
    SPMDExecutionError,
    TagError,
)
from .reduce_ops import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM
from .runtime import SPMDResult, run_spmd
from .status import ANY_SOURCE, ANY_TAG, Request, Status

__all__ = [
    "Communicator",
    "CommCostModel",
    "VirtualClock",
    "synchronize_clocks",
    "run_spmd",
    "SPMDResult",
    "Request",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "MPIError",
    "CommunicatorError",
    "RankError",
    "TagError",
    "CollectiveMismatchError",
    "SPMDExecutionError",
]
