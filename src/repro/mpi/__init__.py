"""Event-driven SPMD MPI runtime simulator.

Provides communicators (point-to-point + collectives), non-blocking
requests, reduction operators, per-rank virtual clocks and the
:func:`~repro.mpi.runtime.run_spmd` execution harness.  Ranks run as
cooperative tasks of a deterministic discrete-event scheduler
(:mod:`repro.core.engine`): one rank executes at a time, resumed in
``(virtual time, rank)`` order, so runs with thousands of ranks are cheap
and bit-for-bit reproducible.
"""

from .clock import VirtualClock, synchronize_clocks
from .comm import PROC_NULL, ROOT, CommCostModel, Communicator, Group, Intercomm
from .errors import (
    CollectiveAbortedError,
    CollectiveMismatchError,
    CommunicatorError,
    DeadlockError,
    MPIError,
    RankError,
    SPMDExecutionError,
    TagError,
)
from .reduce_ops import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM
from .runtime import SPMDResult, run_spmd
from .status import ANY_SOURCE, ANY_TAG, Request, Status

__all__ = [
    "Communicator",
    "CommCostModel",
    "Group",
    "Intercomm",
    "ROOT",
    "PROC_NULL",
    "VirtualClock",
    "synchronize_clocks",
    "run_spmd",
    "SPMDResult",
    "Request",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "MPIError",
    "CommunicatorError",
    "RankError",
    "TagError",
    "CollectiveAbortedError",
    "CollectiveMismatchError",
    "DeadlockError",
    "SPMDExecutionError",
]
