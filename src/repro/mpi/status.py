"""Status and request objects for point-to-point communication."""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "Request"]

#: Wildcard source rank for :meth:`Communicator.recv`.
ANY_SOURCE = -1
#: Wildcard message tag for :meth:`Communicator.recv`.
ANY_TAG = -1


@dataclass
class Status:
    """Completion information for a receive (``MPI_Status``)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count: int = 0


class Request:
    """Handle for a non-blocking operation (``MPI_Request``).

    The simulator performs the underlying transfer eagerly on a helper
    mechanism, so :meth:`wait` simply blocks until completion and returns the
    received object (for receive requests) or ``None`` (for sends).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._status = Status()
        self._error: Optional[BaseException] = None

    def _complete(self, value: Any = None, status: Optional[Status] = None) -> None:
        self._value = value
        if status is not None:
            self._status = status
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def test(self) -> bool:
        """True when the operation has completed."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the operation completes; return the received object."""
        finished = self._event.wait(timeout)
        if not finished:
            raise TimeoutError("Request.wait timed out")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def status(self) -> Status:
        """The completion status (valid after :meth:`wait`)."""
        return self._status
