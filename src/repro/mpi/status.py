"""Status and request objects for point-to-point communication."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "Request"]

#: Wildcard source rank for :meth:`Communicator.recv`.
ANY_SOURCE = -1
#: Wildcard message tag for :meth:`Communicator.recv`.
ANY_TAG = -1


@dataclass
class Status:
    """Completion information for a receive (``MPI_Status``)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count: int = 0


class Request:
    """Handle for a non-blocking operation (``MPI_Request``).

    Sends complete eagerly.  A receive request completes lazily and
    cooperatively: :meth:`test` probes the mailbox without blocking, and
    :meth:`wait` performs the receive on the calling rank's own task —
    parking it on the event scheduler until the message arrives — so no
    helper thread ever exists behind a request.
    """

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._status = Status()
        self._error: Optional[BaseException] = None
        #: Non-blocking completion probe (returns True when it completed us).
        self._poll: Optional[Callable[[], bool]] = None
        #: Blocking completion (runs on the caller's task).
        self._finish: Optional[Callable[[], None]] = None

    def _bind(self, poll: Callable[[], bool], finish: Callable[[], None]) -> None:
        self._poll = poll
        self._finish = finish

    def _complete(self, value: Any = None, status: Optional[Status] = None) -> None:
        self._value = value
        if status is not None:
            self._status = status
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True

    def test(self) -> bool:
        """True when the operation has completed (probes without blocking)."""
        if not self._done and self._poll is not None:
            self._poll()
        return self._done

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Complete the operation; return the received object.

        ``timeout`` is accepted for API compatibility; a receive that can
        never complete is detected as a deadlock by the scheduler instead of
        by a wall-clock timer.
        """
        if not self._done:
            if self._finish is None:
                raise RuntimeError("request is pending but has no completion path")
            self._finish()
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def status(self) -> Status:
        """The completion status (valid after :meth:`wait`)."""
        return self._status
