"""Exception hierarchy for the MPI runtime simulator."""

from __future__ import annotations

from typing import Dict, Mapping, Optional

__all__ = [
    "MPIError",
    "CommunicatorError",
    "RankError",
    "TagError",
    "CollectiveMismatchError",
    "CollectiveAbortedError",
    "DeadlockError",
    "SPMDExecutionError",
]


class MPIError(Exception):
    """Base class for all errors raised by the MPI simulator."""


class CommunicatorError(MPIError):
    """Misuse of a communicator (wrong sizes, freed communicator, ...)."""


class RankError(MPIError):
    """A rank argument is outside ``[0, size)``."""


class TagError(MPIError):
    """An invalid message tag was supplied."""


class CollectiveMismatchError(MPIError):
    """Ranks disagreed about the collective operation being performed."""


class CollectiveAbortedError(MPIError):
    """A collective was abandoned because a participating rank failed."""


class DeadlockError(MPIError):
    """A rank was still blocked when the run could make no further progress.

    Raised per rank by :func:`repro.mpi.runtime.run_spmd` when the scheduler
    finds blocked tasks but nothing runnable — e.g. a ``recv`` whose matching
    send never happens, or a collective a peer never enters.
    """


class SPMDExecutionError(MPIError):
    """One or more ranks raised inside :func:`repro.mpi.runtime.run_spmd`.

    Attributes
    ----------
    failures:
        Dict mapping rank number to the exception instance that rank raised.
        Key ``-1`` is a pseudo-entry used when only *detached progress
        tasks* (nonblocking I/O) missed a wall-clock deadline — they are not
        ranks, so their straggling is reported under this single entry.
    tracebacks:
        Dict mapping rank number to the rank-local formatted traceback (the
        call stack *inside that rank's function*), where one was captured.
        The first failing rank's traceback is included in ``str(exc)`` so
        the root cause is visible without unpacking the attributes.
    """

    def __init__(
        self,
        failures: Mapping[int, BaseException],
        tracebacks: Optional[Mapping[int, str]] = None,
    ) -> None:
        self.failures: Dict[int, BaseException] = dict(failures)
        self.tracebacks: Dict[int, str] = dict(tracebacks or {})
        ordered = sorted(self.failures)
        if len(ordered) > 16:
            ranks = ", ".join(str(r) for r in ordered[:16])
            ranks += f", ... ({len(ordered) - 16} more)"
        else:
            ranks = ", ".join(str(r) for r in ordered)
        first_rank = min(self.failures)
        first = self.failures[first_rank]
        message = (
            f"SPMD execution failed on rank(s) {ranks}; "
            f"rank {first_rank}: {type(first).__name__}: {first}"
        )
        first_tb = self.tracebacks.get(first_rank)
        if first_tb:
            message += (
                f"\n--- rank {first_rank} traceback ---\n{first_tb.rstrip()}"
            )
        super().__init__(message)

    def traceback_of(self, rank: int) -> Optional[str]:
        """The rank-local traceback of ``rank``, if one was captured."""
        return self.tracebacks.get(rank)
