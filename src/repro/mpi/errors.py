"""Exception hierarchy for the MPI runtime simulator."""

from __future__ import annotations

__all__ = [
    "MPIError",
    "CommunicatorError",
    "RankError",
    "TagError",
    "CollectiveMismatchError",
    "SPMDExecutionError",
]


class MPIError(Exception):
    """Base class for all errors raised by the MPI simulator."""


class CommunicatorError(MPIError):
    """Misuse of a communicator (wrong sizes, freed communicator, ...)."""


class RankError(MPIError):
    """A rank argument is outside ``[0, size)``."""


class TagError(MPIError):
    """An invalid message tag was supplied."""


class CollectiveMismatchError(MPIError):
    """Ranks disagreed about the collective operation being performed."""


class SPMDExecutionError(MPIError):
    """One or more ranks raised inside :func:`repro.mpi.runtime.run_spmd`.

    The per-rank exceptions are available in :attr:`failures`, a dict mapping
    rank to the exception instance raised by that rank.
    """

    def __init__(self, failures):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first_rank = min(self.failures)
        first = self.failures[first_rank]
        super().__init__(
            f"SPMD execution failed on rank(s) {ranks}; "
            f"rank {first_rank}: {type(first).__name__}: {first}"
        )
