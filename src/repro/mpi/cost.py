"""Virtual-time cost model for communication operations.

Kept free of other runtime imports so layers that only need the cost model
(the executor, the benchmark harness) never pull in the communicator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["CommCostModel"]


@dataclass(frozen=True)
class CommCostModel:
    """Virtual-time cost of communication operations.

    ``latency`` is charged once per operation, ``byte_cost`` per payload byte
    (only for payloads exposing ``nbytes`` or ``__len__``).  The default model
    is free communication, which is appropriate when only the I/O time is
    being studied; the benchmark harness uses a small non-zero model so the
    negotiation overhead of the handshaking strategies is represented.
    """

    latency: float = 0.0
    byte_cost: float = 0.0

    def cost(self, payload: Any = None) -> float:
        nbytes = 0
        if payload is not None:
            nbytes = getattr(payload, "nbytes", None)
            if nbytes is None:
                try:
                    nbytes = len(payload)
                except TypeError:
                    nbytes = 0
        return self.latency + self.byte_cost * float(nbytes)


class _Volume:
    """A payload stand-in carrying only a byte count for cost charging."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes


def payload_nbytes(obj: Any) -> int:
    """Best-effort byte volume of a (possibly nested) payload."""
    if obj is None:
        return 0
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(value) for value in obj.values())
    return 0
