"""Reduction operators for :meth:`Communicator.reduce` / ``allreduce`` / ``scan``.

Operators work on scalars, sequences (element-wise) and numpy arrays, which
covers everything the library and the examples need (byte counts, timing
maxima, overlap flags).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["SUM", "MAX", "MIN", "PROD", "LAND", "LOR", "BAND", "BOR", "ReduceOp"]

ReduceOp = Callable[[Any, Any], Any]


def _elementwise(op: Callable[[Any, Any], Any]) -> ReduceOp:
    """Lift a scalar binary op to sequences and numpy arrays."""

    def combine(a: Any, b: Any) -> Any:
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return op(np.asarray(a), np.asarray(b))
        if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
            if len(a) != len(b):
                raise ValueError("reduce operands have different lengths")
            out = [combine(x, y) for x, y in zip(a, b)]
            return type(a)(out) if isinstance(a, tuple) else out
        return op(a, b)

    return combine


SUM: ReduceOp = _elementwise(lambda a, b: a + b)
PROD: ReduceOp = _elementwise(lambda a, b: a * b)
MAX: ReduceOp = _elementwise(lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b))
MIN: ReduceOp = _elementwise(lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b))
LAND: ReduceOp = _elementwise(lambda a, b: bool(a) and bool(b))
LOR: ReduceOp = _elementwise(lambda a, b: bool(a) or bool(b))
BAND: ReduceOp = _elementwise(lambda a, b: a & b)
BOR: ReduceOp = _elementwise(lambda a, b: a | b)
