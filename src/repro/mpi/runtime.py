"""SPMD execution harness: one thread per MPI rank.

:func:`run_spmd` is the entry point every example, test and benchmark uses to
run an "MPI program": it spawns ``nprocs`` threads, hands each a
:class:`~repro.mpi.comm.Communicator` for the world communicator (plus any
extra positional/keyword arguments) and collects the per-rank return values.

Exceptions raised by any rank are collected and re-raised as a single
:class:`~repro.mpi.errors.SPMDExecutionError` after all other ranks have been
released (a rank stuck in a collective with a crashed peer would otherwise
deadlock, so the barrier is aborted on failure).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from .clock import VirtualClock
from .comm import CommCostModel, Communicator, _CommGroup
from .errors import SPMDExecutionError

__all__ = ["SPMDResult", "run_spmd"]


@dataclass
class SPMDResult:
    """Results of an SPMD run.

    Attributes
    ----------
    returns:
        Per-rank return values of the rank function.
    clocks:
        Per-rank virtual clocks as they stood when the rank function
        returned; ``max(c.now for c in clocks)`` is the virtual makespan.
    """

    returns: List[Any]
    clocks: List[VirtualClock]

    @property
    def nprocs(self) -> int:
        """Number of ranks that ran."""
        return len(self.returns)

    @property
    def makespan(self) -> float:
        """Virtual time at which the slowest rank finished."""
        return max((c.now for c in self.clocks), default=0.0)


def run_spmd(
    fn: Callable[..., Any],
    nprocs: int,
    *args: Any,
    comm_cost: Optional[CommCostModel] = None,
    timeout: Optional[float] = 120.0,
    **kwargs: Any,
) -> SPMDResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` concurrent ranks.

    Parameters
    ----------
    fn:
        The per-rank function.  Its first argument is the rank's world
        :class:`~repro.mpi.comm.Communicator`.
    nprocs:
        Number of ranks (threads) to run.
    comm_cost:
        Optional virtual-time cost model for communication operations.
    timeout:
        Wall-clock safety net in seconds per rank join; ``None`` disables it.

    Returns
    -------
    SPMDResult
        Per-rank return values and virtual clocks.

    Raises
    ------
    SPMDExecutionError
        If any rank raised; per-rank exceptions are attached.
    """
    if nprocs <= 0:
        raise ValueError("nprocs must be positive")

    group = _CommGroup(nprocs, cost_model=comm_cost)
    returns: List[Any] = [None] * nprocs
    failures: Dict[int, BaseException] = {}
    failure_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = Communicator(group, rank)
        try:
            returns[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported via SPMDExecutionError
            with failure_lock:
                failures[rank] = exc
            # Release peers blocked in a collective with this rank.
            group.barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"mpi-rank-{rank}", daemon=True)
        for rank in range(nprocs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            group.barrier.abort()
            raise SPMDExecutionError(
                {**failures, -1: TimeoutError(f"rank thread {t.name} did not finish")}
            )

    if failures:
        raise SPMDExecutionError(failures)
    return SPMDResult(returns=returns, clocks=list(group.clocks))
