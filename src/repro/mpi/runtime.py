"""SPMD execution harness: every MPI rank is a cooperative scheduler task.

:func:`run_spmd` is the entry point every example, test and benchmark uses to
run an "MPI program": it spawns one :class:`~repro.core.engine.Engine` task
per rank, hands each a :class:`~repro.mpi.comm.Communicator` for the world
communicator (plus any extra positional/keyword arguments) and collects the
per-rank return values.

Execution is deterministic: exactly one rank runs at a time, and the
scheduler always resumes the ready rank with the smallest
``(virtual time, rank)`` key, so two runs of the same program produce
identical interleavings, identical file contents and identical virtual-time
makespans.  Rank counts in the thousands are cheap because a parked rank is
just a frozen call stack — there is no thread contention and no OS-level
synchronisation on the critical path.

Exceptions raised by any rank are collected and re-raised as a single
:class:`~repro.mpi.errors.SPMDExecutionError` carrying, per failing rank,
the rank number, the exception and the rank-local traceback.  When a rank
fails, the communicator group is aborted so peers blocked in a collective
with it are released (with a
:class:`~repro.mpi.errors.CollectiveAbortedError`) instead of deadlocking;
ranks still blocked when nothing can run anymore are reported with a
:class:`~repro.mpi.errors.DeadlockError` naming what they were waiting on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.engine import Engine, Task
from .clock import VirtualClock
from .comm import CommCostModel, Communicator, _CommGroup
from .errors import CollectiveAbortedError, DeadlockError, SPMDExecutionError

__all__ = ["SPMDResult", "run_spmd", "spawn_world", "collect_rank_failures"]

#: How long a rank stuck past the deadline gets to unwind before the run is
#: reported as timed out.
_TIMEOUT_GRACE_SECONDS = 1.0


@dataclass
class SPMDResult:
    """Results of an SPMD run.

    Attributes
    ----------
    returns:
        Per-rank return values of the rank function.
    clocks:
        Per-rank virtual clocks as they stood when the rank function
        returned; ``max(c.now for c in clocks)`` is the virtual makespan.
    """

    returns: List[Any]
    clocks: List[VirtualClock]

    @property
    def nprocs(self) -> int:
        """Number of ranks that ran."""
        return len(self.returns)

    @property
    def makespan(self) -> float:
        """Virtual time at which the slowest rank finished."""
        return max((c.now for c in self.clocks), default=0.0)


def spawn_world(
    engine: Engine,
    group: _CommGroup,
    fn: Callable[..., Any],
    *args: Any,
    name_prefix: str = "mpi-rank",
    tag: Optional[str] = None,
    **kwargs: Any,
) -> List[Task]:
    """Spawn one engine task per rank of ``group`` running ``fn(comm, ...)``.

    The world-construction half of :func:`run_spmd`, reusable by schedulers
    that multiplex several independent SPMD worlds onto one engine (the
    multi-tenant job layer, :mod:`repro.jobs.scheduler`): each rank gets a
    :class:`~repro.mpi.comm.Communicator` facade over ``group`` and runs on
    the group's per-rank clock, so a group whose clocks start at a later
    virtual time simply becomes runnable at that time.  Tasks are spawned in
    rank order (the determinism tiebreak) and labelled
    ``{name_prefix}-{rank}`` with attribution ``tag``.
    """

    def make_rank_main(rank: int) -> Callable[[], Any]:
        comm = Communicator(group, rank)

        def rank_main() -> Any:
            return fn(comm, *args, **kwargs)

        return rank_main

    return [
        engine.spawn(
            make_rank_main(rank),
            name=f"{name_prefix}-{rank}",
            clock=group.clocks[rank],
            tag=tag,
        )
        for rank in range(group.size)
    ]


def collect_rank_failures(
    tasks: List[Task],
) -> Tuple[Dict[int, BaseException], Dict[int, str]]:
    """Per-rank failures (and rank-local tracebacks) after an engine run.

    Maps each failed task to its exception and each deadlock-cancelled task
    to a :class:`~repro.mpi.errors.DeadlockError` naming what it was blocked
    on; the index into ``tasks`` (the rank number) keys both dicts.
    """
    failures: Dict[int, BaseException] = {}
    tracebacks: Dict[int, str] = {}
    for rank, task in enumerate(tasks):
        if task.state == Task.FAILED:
            failures[rank] = task.error
            if task.traceback_text:
                tracebacks[rank] = task.traceback_text
        elif task.state == Task.CANCELLED and task.deadlocked:
            failures[rank] = DeadlockError(
                f"rank {rank} was still blocked on {task.wait_reason or '<unknown>'} "
                "when no rank could make progress"
            )
    return failures, tracebacks


def run_spmd(
    fn: Callable[..., Any],
    nprocs: int,
    *args: Any,
    comm_cost: Optional[CommCostModel] = None,
    timeout: Optional[float] = 120.0,
    **kwargs: Any,
) -> SPMDResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` scheduled ranks.

    Parameters
    ----------
    fn:
        The per-rank function.  Its first argument is the rank's world
        :class:`~repro.mpi.comm.Communicator`.
    nprocs:
        Number of ranks (scheduler tasks) to run.
    comm_cost:
        Optional virtual-time cost model for communication operations.
    timeout:
        Wall-clock safety net in seconds for the whole group; ``None``
        disables it.  On expiry every rank that had not finished at the
        deadline is reported by number in the raised
        :class:`SPMDExecutionError` — even if it completed during the short
        unwind grace period, since it exceeded the budget either way.

    Returns
    -------
    SPMDResult
        Per-rank return values and virtual clocks.

    Raises
    ------
    SPMDExecutionError
        If any rank raised, deadlocked or timed out; per-rank exceptions
        (and rank-local tracebacks, where captured) are attached.
    """
    if nprocs <= 0:
        raise ValueError("nprocs must be positive")

    engine = Engine(name="spmd")
    group = _CommGroup(nprocs, cost_model=comm_cost, engine=engine)
    tasks = spawn_world(engine, group, fn, *args, **kwargs)

    # Release peers blocked in a collective with a failed rank (the
    # event-driven counterpart of the old barrier abort).  Detached progress
    # tasks (nonblocking I/O) report their failures through the request that
    # owns them and abort their own progress communicator, so they must not
    # take the world group down.
    def on_task_failed(task: Task) -> None:
        if task.detached:
            return
        group.abort(
            CollectiveAbortedError(
                f"collective aborted: rank {task.tid} failed with "
                f"{type(task.error).__name__}: {task.error}"
            )
        )

    engine.on_task_failed = on_task_failed

    engine.run(timeout=timeout, grace=_TIMEOUT_GRACE_SECONDS)

    failures, tracebacks = collect_rank_failures(tasks)

    if engine.timed_out:
        # Timeout entries take precedence over errors the teardown provoked
        # in the same ranks, so the root cause (the budget) is not masked.
        # Detached progress tasks are not ranks: their tids would read as
        # phantom rank numbers, so stragglers among them are reported under
        # a single pseudo-entry only when no real rank is implicated.
        timeouts = {
            task.tid: TimeoutError(
                f"rank {task.tid} did not finish within the {timeout}s timeout"
            )
            for task in engine.unfinished
            if not task.detached
        }
        if not timeouts and not failures:
            stragglers = [t for t in engine.unfinished if t.detached]
            if stragglers:
                names = ", ".join(t.name for t in stragglers[:4])
                timeouts[-1] = TimeoutError(
                    f"detached progress task(s) ({names}) did not finish "
                    f"within the {timeout}s timeout"
                )
        if failures or timeouts:
            raise SPMDExecutionError({**failures, **timeouts}, tracebacks)

    if failures:
        raise SPMDExecutionError(failures, tracebacks)
    return SPMDResult(returns=[t.result for t in tasks], clocks=list(group.clocks))
